"""Unit tests for the shared tuned event core.

Covers the pieces both engines build on: the event heap (ordering,
lazy deletion), the memoized stage records (service/chunk tables must
reproduce the un-memoized spec bit-for-bit), batch-formation edge
cases (zero-size queries, fusion-cap boundaries), and the direct
G/D/c fast path's eligibility rules.
"""

from __future__ import annotations

from collections import deque

import pytest

from repro.sim.event_core import (
    DirectStage,
    EventHeap,
    Pipeline,
    QueryState,
    ServicedStage,
    SimStage,
    StageMode,
    _split,
    enqueue_units,
    form_batch,
)
from repro.sim.queries import Query


def _stage(mode=StageMode.SPLIT, units=2, chunk=10, fuse=0, sensitivity=0.0):
    return SimStage(
        name="s",
        units=units,
        mode=mode,
        chunk_items=chunk,
        fuse_items=fuse,
        latency_fn=lambda items: 1e-3 + 1e-5 * items,
        pooling_sensitivity=sensitivity,
    )


def _state(size=10, pooling=1.0, qid=0, arrival=0.0):
    return QueryState(Query(qid, arrival, size, pooling))


class TestEventHeap:
    def test_orders_by_time_then_fifo(self):
        heap = EventHeap()
        heap.push(2.0, None, 0, "late")
        heap.push(1.0, None, 0, "a")
        heap.push(1.0, None, 0, "b")
        assert [heap.pop()[4] for _ in range(3)] == ["a", "b", "late"]

    def test_lazy_deletion_skips_cancelled(self):
        heap = EventHeap()
        keep = heap.push(1.0, None, 0, "keep")
        kill = heap.push(0.5, None, 0, "kill")
        heap.cancel(kill)
        assert len(heap) == 1
        assert heap.peek_time() == 1.0  # purges the dead head
        entry = heap.pop()
        assert entry[4] == "keep" and entry[1] == keep
        assert heap.pop() is None

    def test_cancelled_heap_is_falsy(self):
        heap = EventHeap()
        seq = heap.push(1.0, None, 0, None)
        assert heap
        heap.cancel(seq)
        assert not heap
        assert heap.peek_time() is None

    def test_sequence_numbers_monotone(self):
        heap = EventHeap()
        seqs = [heap.push(float(i), None, 0, None) for i in range(5)]
        assert seqs == sorted(seqs)
        assert heap.seq == 5


class TestServicedStageMemos:
    @pytest.mark.parametrize("sensitivity", [0.0, 0.9])
    def test_service_matches_spec_bitwise(self, sensitivity):
        spec = _stage(sensitivity=sensitivity)
        stage = ServicedStage(spec)
        for items in (1, 7, 10, 123):
            for pooling in (0.25, 1.0, 3.7):
                assert stage.service_s(items, pooling) == spec.service_s(
                    items, pooling
                )
                # Second call is served from the memo -- same float.
                assert stage.service_s(items, pooling) == spec.service_s(
                    items, pooling
                )

    def test_unit_service_matches_form_batch_pooling(self):
        """Single-unit batch pooling is (p * items) / items, verbatim."""
        spec = _stage(sensitivity=0.5)
        stage = ServicedStage(spec)
        items, pooling = 3, 0.3
        expected = spec.service_s(items, (pooling * items) / max(items, 1))
        assert stage.unit_service_s(items, pooling) == expected

    def test_chunks_match_split(self):
        stage = ServicedStage(_stage(chunk=10))
        for size in (1, 9, 10, 11, 25, 30):
            assert list(stage.chunks_for(size)) == _split(size, 10)
        assert stage.chunks_for(25) is stage.chunks_for(25)  # memoized


class TestEnqueueEdgeCases:
    def test_zero_size_query_rejected(self):
        """Zero units would never complete; fail loudly instead."""
        queue = deque()
        state = _state()
        with pytest.raises(ValueError, match="size must be >= 1"):
            enqueue_units(_stage(), queue, state, 0)
        with pytest.raises(ValueError, match="size must be >= 1"):
            ServicedStage(_stage()).enqueue(queue, state, 0)
        with pytest.raises(ValueError, match="size must be >= 1"):
            Pipeline([_stage()]).enqueue(0, state, 0, 0.0, EventHeap())
        assert not queue

    def test_split_chunk_boundaries(self):
        assert _split(10, 10) == [10]
        assert _split(11, 10) == [10, 1]
        assert _split(9, 10) == [9]
        with pytest.raises(ValueError, match="chunk"):
            _split(5, 0)

    def test_split_enqueue_sets_pending_units(self):
        queue = deque()
        state = _state(size=25)
        enqueue_units(_stage(chunk=10), queue, state, 25)
        assert state.pending_units == 3
        assert [items for _, items in queue] == [10, 10, 5]

    def test_fuse_enqueue_single_unit(self):
        queue = deque()
        state = _state(size=25)
        enqueue_units(_stage(mode=StageMode.FUSE, fuse=64), queue, state, 25)
        assert state.pending_units == 1
        assert list(queue) == [(state, 25)]


class TestFormBatchBoundaries:
    def test_fusion_respects_cap_exactly(self):
        """Exact fits fuse; one item over the cap stays queued."""
        stage = _stage(mode=StageMode.FUSE, fuse=30)
        queue = deque()
        for size in (10, 20, 1):
            enqueue_units(stage, queue, _state(size=size), size)
        batch, items, _ = form_batch(stage, queue)
        assert items == 30  # 10 + 20 fused, the 1 would fit but FIFO stops
        assert len(batch) == 2
        assert len(queue) == 1

    def test_oversized_head_unit_still_served(self):
        """A unit bigger than the cap is served alone, never starved."""
        stage = _stage(mode=StageMode.FUSE, fuse=30)
        queue = deque()
        enqueue_units(stage, queue, _state(size=100), 100)
        enqueue_units(stage, queue, _state(size=5), 5)
        batch, items, _ = form_batch(stage, queue)
        assert items == 100 and len(batch) == 1

    def test_fuse_zero_cap_means_one_query_per_batch(self):
        stage = _stage(mode=StageMode.FUSE, fuse=0)
        queue = deque()
        enqueue_units(stage, queue, _state(size=4), 4)
        enqueue_units(stage, queue, _state(size=6), 6)
        batch, items, _ = form_batch(stage, queue)
        assert items == 4 and len(batch) == 1

    def test_fast_path_equals_generic_form_batch(self):
        """ServicedStage.form_and_time == form_batch + service_s."""
        spec = _stage(mode=StageMode.FUSE, fuse=40, sensitivity=0.7)
        for sizes in ([12, 9, 30], [40, 1], [3]):
            generic_q, fast_q = deque(), deque()
            for i, size in enumerate(sizes):
                a = _state(size=size, pooling=0.5 + i, qid=i)
                b = _state(size=size, pooling=0.5 + i, qid=i)
                enqueue_units(spec, generic_q, a, size)
                ServicedStage(spec).enqueue(fast_q, b, size)
            stage = ServicedStage(spec)
            while generic_q:
                batch, items, pooling = form_batch(spec, generic_q)
                expected = spec.service_s(items, pooling)
                fast_batch, service = stage.form_and_time(fast_q)
                assert service == expected
                assert [u[1] for u in fast_batch] == [u[1] for u in batch]


class TestDirectStage:
    def test_rejects_fuse_stage(self):
        with pytest.raises(ValueError, match="SPLIT"):
            DirectStage(ServicedStage(_stage(mode=StageMode.FUSE, fuse=8)))

    def test_idle_server_completion_is_sum_of_chunk_services(self):
        spec = _stage(units=2, chunk=10)
        direct = DirectStage(ServicedStage(spec))
        stage = ServicedStage(spec)
        # 25 items -> chunks 10/10/5 on 2 units: two start at t, the
        # third starts when the first unit frees and finishes last.
        s10 = stage.unit_service_s(10, 1.0)
        s5 = stage.unit_service_s(5, 1.0)
        fin = direct.completion_time(1.0, 25, 1.0)
        assert fin == pytest.approx(1.0 + s10 + s5, rel=1e-12)

    def test_busy_units_defer_the_next_query(self):
        direct = DirectStage(ServicedStage(_stage(units=1, chunk=100)))
        first = direct.completion_time(0.0, 10, 1.0)
        second = direct.completion_time(0.0, 10, 1.0)
        assert second == pytest.approx(2 * first, rel=1e-12)


class TestPipeline:
    def test_busy_accounting_tracks_dispatched_service(self):
        heap = EventHeap()
        pipeline = Pipeline([_stage(units=1, chunk=100)], track_busy=True)
        state = _state(size=10)
        pipeline.enqueue(0, state, 10, 0.0, heap)
        assert pipeline.busy[0] > 0.0
        assert len(heap) == 1

    def test_requires_stages(self):
        with pytest.raises(ValueError, match="at least one stage"):
            Pipeline([])

    def test_shared_serviced_stages_not_rewrapped(self):
        stage = ServicedStage(_stage())
        pipeline = Pipeline([stage])
        assert pipeline.stages[0] is stage
