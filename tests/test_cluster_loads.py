"""Tests for diurnal load traces."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.cluster import DiurnalTrace, synchronous_traces


class TestDiurnalTrace:
    def test_peak_occurs_at_peak_hour(self):
        trace = DiurnalTrace(name="a", peak_qps=1000, peak_hour=20.0)
        assert trace.load_at(20.0) == pytest.approx(1000)
        assert trace.load_at(8.0) < trace.load_at(20.0)

    def test_fluctuation_exceeds_half(self):
        """Section II-A: >50% fluctuation between peak and off-peak."""
        trace = DiurnalTrace(name="a", peak_qps=1000, trough_ratio=0.4)
        series = [q for _, q in trace.series(30.0)]
        assert min(series) < 0.5 * max(series)

    @given(hour=st.floats(0.0, 23.99))
    def test_load_positive_and_bounded(self, hour):
        trace = DiurnalTrace(name="a", peak_qps=500, trough_ratio=0.3)
        load = trace.load_at(hour)
        assert 0 < load <= 500 + 1e-9

    def test_series_covers_one_day(self):
        trace = DiurnalTrace(name="a", peak_qps=100)
        series = trace.series(interval_minutes=30.0)
        assert len(series) == 48
        assert series[0][0] == 0.0
        assert series[-1][0] == pytest.approx(23.5)

    def test_peak_and_average(self):
        trace = DiurnalTrace(name="a", peak_qps=100, trough_ratio=0.4)
        assert trace.peak_load() <= 100 + 1e-9
        assert trace.average_load() < trace.peak_load()

    def test_noise_is_reproducible(self):
        a = DiurnalTrace(name="a", peak_qps=100, noise=0.1, seed=1)
        b = DiurnalTrace(name="a", peak_qps=100, noise=0.1, seed=1)
        assert a.load_at(10.3) == b.load_at(10.3)

    def test_sharpness_concentrates_peak(self):
        mild = DiurnalTrace(name="a", peak_qps=100, sharpness=1.0)
        sharp = DiurnalTrace(name="a", peak_qps=100, sharpness=4.0)
        assert sharp.average_load() < mild.average_load()

    def test_validation(self):
        with pytest.raises(ValueError):
            DiurnalTrace(name="a", peak_qps=0)
        with pytest.raises(ValueError):
            DiurnalTrace(name="a", peak_qps=10, trough_ratio=0.0)
        with pytest.raises(ValueError):
            DiurnalTrace(name="a", peak_qps=10, peak_hour=24.0)
        with pytest.raises(ValueError):
            DiurnalTrace(name="a", peak_qps=10, sharpness=0.5)


class TestSynchronousTraces:
    def test_all_peaks_align(self):
        """Fig. 2(d): services peak at the same hour."""
        traces = synchronous_traces({"a": 1000, "b": 2000})
        assert traces["a"].peak_hour == traces["b"].peak_hour
        assert traces["b"].peak_qps == 2000

    def test_names_preserved(self):
        traces = synchronous_traces({"x": 10})
        assert traces["x"].name == "x"
