"""The optimized event core must reproduce the reference engine exactly.

The hot-path overhaul (shared tuned event core, quantized service
memos, merged arrival stream, the DirectStage recurrence for
single-stage SPLIT pipelines) is only a refactor if it is *bit-exact*:
every per-query completion time must equal what the pre-optimization
engine produced on the same fixed-seed trace.

``_ReferenceDES`` below is a line-for-line copy of the pre-overhaul
single-node event loop (all arrivals on the heap, closure dispatch,
un-memoized ``SimStage.service_s``/``_split``); the tests drive it and
the optimized engines over identical traces and compare finish times
with ``==`` on floats -- no tolerances.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque

import numpy as np
import pytest

from repro.cluster.state import Allocation
from repro.fleet import FleetSimulator, build_fleet, build_fleet_trace
from repro.sim import QueryWorkload
from repro.sim.event_core import DirectStage, ServicedStage
from repro.sim.loadgen import generate_trace
from repro.sim.queries import QuerySizeDistribution
from repro.sim.server_sim import (
    DiscreteEventServerSim,
    SimStage,
    StageMode,
    _interpolator,
)


# ----------------------------------------------------------------------
# Reference implementation (pre-optimization event loop, verbatim
# semantics: heap-resident arrivals, per-event closures, no memos).
# ----------------------------------------------------------------------


class _RefState:
    def __init__(self, query):
        self.query = query
        self.pending_units = 0
        self.finish_s = 0.0


def _ref_split(size, chunk):
    full, rem = divmod(size, chunk)
    return [chunk] * full + ([rem] if rem else [])


def _ref_enqueue_units(stage, queue, state, size):
    if stage.mode is StageMode.SPLIT:
        chunks = _ref_split(size, stage.chunk_items)
        state.pending_units = len(chunks)
        queue.extend((state, chunk) for chunk in chunks)
    else:
        state.pending_units = 1
        queue.append((state, size))


def _ref_form_batch(stage, queue):
    batch = [queue.popleft()]
    if stage.mode is StageMode.FUSE and stage.fuse_items > 0:
        total = batch[0][1]
        limit = stage.fuse_items
        while queue and total + queue[0][1] <= limit:
            unit = queue.popleft()
            total += unit[1]
            batch.append(unit)
    items = sum(it for _, it in batch)
    pooling = sum(st.query.pooling_scale * it for st, it in batch) / max(items, 1)
    return batch, items, pooling


class _ReferenceDES:
    """The pre-overhaul single-node event loop."""

    def __init__(self, stages):
        self.stages = list(stages)

    def run(self, queries):
        counter = itertools.count()
        events = []

        def push(time_s, payload):
            heapq.heappush(events, (time_s, next(counter), payload))

        queues = [deque() for _ in self.stages]
        free = [s.units for s in self.stages]
        states = [_RefState(q) for q in queries]
        for st in states:
            push(st.query.arrival_s, ("arrive", st))
        done = []

        def enqueue(idx, state, time_s):
            _ref_enqueue_units(self.stages[idx], queues[idx], state, state.query.size)
            dispatch(idx, time_s)

        def dispatch(idx, time_s):
            stage = self.stages[idx]
            while free[idx] > 0 and queues[idx]:
                batch, items, pooling = _ref_form_batch(stage, queues[idx])
                service = stage.service_s(items, pooling)
                free[idx] -= 1
                push(time_s + service, ("finish", idx, batch))

        while events:
            now, _, payload = heapq.heappop(events)
            if payload[0] == "arrive":
                enqueue(0, payload[1], now)
            else:
                _, idx, batch = payload
                free[idx] += 1
                for state, _items in batch:
                    state.pending_units -= 1
                    if state.pending_units == 0:
                        if idx + 1 < len(self.stages):
                            enqueue(idx + 1, state, now)
                        else:
                            state.finish_s = now
                            done.append(state)
                dispatch(idx, now)
        return done


# ----------------------------------------------------------------------
# Stage/trace factories
# ----------------------------------------------------------------------


def _workload(mean=40.0, pooling_cv=0.4):
    return QueryWorkload(
        size_dist=QuerySizeDistribution(mean=mean, sigma=0.8, max_size=256),
        pooling_cv=pooling_cv,
    )


def _stage(name, units, mode, chunk=16, fuse=0, t_one=0.8e-3, t_nom=3.0e-3,
           nominal=16.0, sensitivity=0.0):
    return SimStage(
        name=name,
        units=units,
        mode=mode,
        chunk_items=chunk,
        fuse_items=fuse,
        latency_fn=_interpolator(t_one, t_nom, nominal),
        pooling_sensitivity=sensitivity,
    )


PIPELINES = {
    "split-1stage-multiunit": [_stage("inference", 3, StageMode.SPLIT, chunk=16)],
    "split-1stage-1unit": [_stage("inference", 1, StageMode.SPLIT, chunk=24)],
    "split-2stage": [
        _stage("sparse", 2, StageMode.SPLIT, chunk=16, sensitivity=0.9),
        _stage("dense", 2, StageMode.SPLIT, chunk=16),
    ],
    "fuse-pipeline": [
        _stage("loading", 2, StageMode.FUSE, chunk=32, fuse=64, sensitivity=0.6),
        _stage("inference", 2, StageMode.FUSE, chunk=32, fuse=64),
    ],
    "split-then-fuse": [
        _stage("sparse", 4, StageMode.SPLIT, chunk=16, sensitivity=0.9),
        _stage("loading", 2, StageMode.FUSE, chunk=32, fuse=96),
        _stage("inference", 2, StageMode.FUSE, chunk=32, fuse=96),
    ],
}


@pytest.mark.parametrize("name", sorted(PIPELINES))
@pytest.mark.parametrize("qps,seed", [(400.0, 3), (900.0, 17)])
def test_single_node_matches_reference_exactly(name, qps, seed):
    """Optimized engine == reference loop, float for float."""
    stages = PIPELINES[name]
    trace = generate_trace(_workload(), qps, duration_s=2.0, seed=seed)
    ref_done = _ReferenceDES(stages).run(trace)
    ref = sorted((st.query.query_id, st.finish_s) for st in ref_done)

    result = DiscreteEventServerSim(list(stages)).run(trace, warmup_s=0.0)
    # Per-query end-to-end latencies carry the full information: query
    # order in the result follows completion order, so re-derive the
    # (id, finish) pairs from a second, instrumented pass.
    new_done = _run_optimized_collect(stages, trace)
    assert new_done == ref
    assert result.completed == len(ref)


def _run_optimized_collect(stages, trace):
    """Run the optimized engine and collect exact (id, finish) pairs."""
    from repro.sim.event_core import EventHeap, Pipeline, QueryState
    from heapq import heappop

    pipeline = Pipeline(stages, track_busy=False)
    heap = EventHeap()
    states = sorted((QueryState(q) for q in trace), key=lambda s: s.arrival_s)
    done = []
    completed = []
    events = heap.items
    i, n = 0, len(states)
    while True:
        if events:
            if i < n and states[i].arrival_s <= events[0][0]:
                st = states[i]
                i += 1
                pipeline.enqueue(0, st, st.size, st.arrival_s, heap)
                continue
            entry = heappop(events)
            now = entry[0]
            pipeline.on_finish(entry[3], entry[4], now, heap, completed)
            for st in completed:
                done.append((st.query.query_id, now))
            completed.clear()
        elif i < n:
            st = states[i]
            i += 1
            pipeline.enqueue(0, st, st.size, st.arrival_s, heap)
        else:
            break
    return sorted(done)


@pytest.mark.parametrize("seed", [5, 23])
def test_direct_recurrence_matches_reference_exactly(seed):
    """DirectStage's G/D/c recurrence == the event loop, bit for bit.

    This is the load-bearing check for the fleet fast path: every CPU
    placement runs through DirectStage.
    """
    spec = _stage("inference", 3, StageMode.SPLIT, chunk=16)
    trace = generate_trace(_workload(), 700.0, duration_s=2.0, seed=seed)
    ref_done = _ReferenceDES([spec]).run(trace)
    ref = sorted((st.query.query_id, st.finish_s) for st in ref_done)

    direct = DirectStage(ServicedStage(spec))
    got = sorted(
        (q.query_id, direct.completion_time(q.arrival_s, q.size, q.pooling_scale))
        for q in trace
    )
    assert got == ref


def test_one_replica_fleet_matches_reference_exactly(
    small_table, rmc1_small_fleet_inputs
):
    """A 1-replica fleet (direct path) == the reference single-node DES.

    The summary statistics are compared with exact float equality --
    identical latency multisets in identical order produce identical
    numpy percentiles and means.
    """
    models, workloads = rmc1_small_fleet_inputs
    tup = small_table.get("T2", "DLRM-RMC1")
    from repro.hardware import SERVER_TYPES
    from repro.sim import plan_cache
    from repro.sim.server_sim import build_stages

    evaluator = plan_cache.shared_evaluator(SERVER_TYPES["T2"])
    partitioned = plan_cache.partitioned_for(SERVER_TYPES["T2"], models["DLRM-RMC1"], tup.plan)
    stages = build_stages(evaluator, partitioned, workloads["DLRM-RMC1"], tup.plan)

    trace = build_fleet_trace(
        workloads, {"DLRM-RMC1": [(0.65 * tup.qps, 4.0)]}, seed=29
    )
    queries = [q for _, q in trace]
    warmup, horizon = 0.4, max(q.arrival_s for q in queries)

    ref_done = _ReferenceDES(stages).run(queries)
    measured = [
        st.finish_s - st.query.arrival_s
        for st in ref_done
        if st.query.arrival_s >= warmup and st.finish_s <= horizon
    ]
    arr = np.asarray(measured) * 1e3

    allocation = Allocation()
    allocation.add("T2", "DLRM-RMC1", 1)
    servers = build_fleet(allocation, small_table, models, workloads)
    assert servers[0].direct is not None  # CPU plan -> fast path
    result = FleetSimulator(servers, policy="rr", sla_ms={"DLRM-RMC1": 20.0}).run(
        trace, warmup_s=warmup
    )
    stats = result.per_model["DLRM-RMC1"]
    assert stats.completed == len(measured)
    assert stats.p50_ms == float(np.percentile(arr, 50))
    assert stats.p95_ms == float(np.percentile(arr, 95))
    assert stats.p99_ms == float(np.percentile(arr, 99))
    assert stats.mean_ms == float(arr.mean())


def test_one_replica_gpu_fleet_matches_reference_exactly(
    small_table, rmc1_small_fleet_inputs
):
    """A 1-replica T7 fleet (event pipeline, FUSE stages) == reference."""
    models, workloads = rmc1_small_fleet_inputs
    tup = small_table.get("T7", "DLRM-RMC1")
    from repro.hardware import SERVER_TYPES
    from repro.sim import plan_cache
    from repro.sim.server_sim import build_stages

    evaluator = plan_cache.shared_evaluator(SERVER_TYPES["T7"])
    partitioned = plan_cache.partitioned_for(SERVER_TYPES["T7"], models["DLRM-RMC1"], tup.plan)
    stages = build_stages(evaluator, partitioned, workloads["DLRM-RMC1"], tup.plan)

    trace = build_fleet_trace(
        workloads, {"DLRM-RMC1": [(0.6 * tup.qps, 3.0)]}, seed=31
    )
    queries = [q for _, q in trace]
    warmup, horizon = 0.3, max(q.arrival_s for q in queries)

    ref_done = _ReferenceDES(stages).run(queries)
    measured = [
        st.finish_s - st.query.arrival_s
        for st in ref_done
        if st.query.arrival_s >= warmup and st.finish_s <= horizon
    ]
    arr = np.asarray(measured) * 1e3

    allocation = Allocation()
    allocation.add("T7", "DLRM-RMC1", 1)
    servers = build_fleet(allocation, small_table, models, workloads)
    assert servers[0].direct is None  # FUSE pipeline -> event path
    result = FleetSimulator(servers, policy="rr", sla_ms={"DLRM-RMC1": 20.0}).run(
        trace, warmup_s=warmup
    )
    stats = result.per_model["DLRM-RMC1"]
    assert stats.completed == len(measured)
    assert stats.p50_ms == float(np.percentile(arr, 50))
    assert stats.p99_ms == float(np.percentile(arr, 99))
    assert stats.mean_ms == float(arr.mean())


@pytest.fixture()
def rmc1_small_fleet_inputs():
    from repro.models import build_model

    models = {"DLRM-RMC1": build_model("DLRM-RMC1")}
    workloads = {
        "DLRM-RMC1": QueryWorkload.for_model(
            models["DLRM-RMC1"].config.mean_query_size
        )
    }
    return models, workloads


# ----------------------------------------------------------------------
# Fault layer present-but-idle == the fault-free engine, float for float
# ----------------------------------------------------------------------


def _mixed_fleet_and_trace(small_table, models, workloads, seed):
    """3 direct-path T2 replicas + 1 event-path T7, moderate load."""
    allocation = Allocation()
    allocation.add("T2", "DLRM-RMC1", 3)
    allocation.add("T7", "DLRM-RMC1", 1)
    servers = build_fleet(allocation, small_table, models, workloads)
    capacity = 3 * small_table.qps("T2", "DLRM-RMC1") + small_table.qps(
        "T7", "DLRM-RMC1"
    )
    trace = build_fleet_trace(
        workloads, {"DLRM-RMC1": [(0.65 * capacity, 3.0)]}, seed=seed
    )
    return allocation, trace


def _run_fleet(small_table, models, workloads, allocation, trace, **kwargs):
    servers = build_fleet(allocation, small_table, models, workloads)
    sim = FleetSimulator(
        servers, policy="p2c", sla_ms={"DLRM-RMC1": 20.0}, seed=7, **kwargs
    )
    result = sim.run(trace, warmup_s=0.3)
    return sim, result


@pytest.mark.parametrize("seed", [13, 41])
def test_empty_fault_schedule_bit_identical(
    small_table, rmc1_small_fleet_inputs, seed
):
    """An empty FaultSchedule forces the (light) fault loop, which must
    reproduce the fault-free engine exactly: same percentiles, same
    per-replica counters, same power -- ``==`` on floats, no tolerances.
    """
    from repro.fleet import FaultSchedule

    models, workloads = rmc1_small_fleet_inputs
    allocation, trace = _mixed_fleet_and_trace(small_table, models, workloads, seed)

    _, base = _run_fleet(small_table, models, workloads, allocation, trace)
    _, idle = _run_fleet(
        small_table, models, workloads, allocation, trace, faults=FaultSchedule()
    )

    assert idle.per_model == base.per_model
    assert idle.avg_power_w == base.avg_power_w
    assert idle.events == base.events
    assert [
        (s.completed, s.qps, s.power_w, s.active_s) for s in idle.servers
    ] == [(s.completed, s.qps, s.power_w, s.active_s) for s in base.servers]
    assert idle.availability == 1.0
    assert idle.fault_events == ()


@pytest.mark.parametrize("seed", [13, 41])
def test_tracked_fault_loop_bit_identical_when_idle(
    small_table, rmc1_small_fleet_inputs, seed
):
    """The tracked loop (retry budget engaged, empty schedule) performs
    the same float operations in the same order as the fault-free loop;
    the per-query log additionally accounts for every arrival.
    """
    from repro.fleet import FaultSchedule

    models, workloads = rmc1_small_fleet_inputs
    allocation, trace = _mixed_fleet_and_trace(small_table, models, workloads, seed)

    _, base = _run_fleet(small_table, models, workloads, allocation, trace)
    sim, idle = _run_fleet(
        small_table,
        models,
        workloads,
        allocation,
        trace,
        faults=FaultSchedule(),
        retries=3,
    )

    assert idle.per_model == base.per_model
    assert idle.avg_power_w == base.avg_power_w
    assert idle.events == base.events
    assert [
        (s.completed, s.qps, s.power_w, s.active_s) for s in idle.servers
    ] == [(s.completed, s.qps, s.power_w, s.active_s) for s in base.servers]
    log = sim.last_query_log
    assert len(log) == len(trace)
    assert all(t.done and t.retries == 0 and not t.hedged for t in log)


@pytest.mark.parametrize("seed", [13, 41])
def test_domain_declarations_alone_bit_identical(
    small_table, rmc1_small_fleet_inputs, seed
):
    """Declaring correlated fault domains (with no fault events) stamps
    replica domains and enables the domain-aware hedging filter, but an
    idle schedule must still reproduce the fault-free engine exactly --
    including with hedging armed, where the singleton-domain filter of
    an undeclared fleet and the rack filter of a declared one must make
    identical policy draws when no fault ever fires.
    """
    from repro.fleet import FaultDomains, FaultSchedule

    models, workloads = rmc1_small_fleet_inputs
    allocation, trace = _mixed_fleet_and_trace(small_table, models, workloads, seed)

    _, base = _run_fleet(small_table, models, workloads, allocation, trace)
    _, idle = _run_fleet(
        small_table, models, workloads, allocation, trace,
        faults=FaultSchedule(domains=FaultDomains(size=2)),
    )
    assert idle.per_model == base.per_model
    assert idle.avg_power_w == base.avg_power_w
    assert idle.events == base.events

    # With hedging armed, explicitly-declared singleton racks must make
    # the exact policy draws of an undeclared fleet: the cross-domain
    # preference then filters exactly the already-attempted replica.
    _, hedged_plain = _run_fleet(
        small_table, models, workloads, allocation, trace,
        faults=FaultSchedule(), hedge_ms=8.0,
    )
    _, hedged_domains = _run_fleet(
        small_table, models, workloads, allocation, trace,
        faults=FaultSchedule(domains=FaultDomains(ranges=[(0, 0), (1, 1), (2, 2), (3, 3)])),
        hedge_ms=8.0,
    )
    assert hedged_domains.per_model == hedged_plain.per_model
    assert hedged_domains.avg_power_w == hedged_plain.avg_power_w


# ----------------------------------------------------------------------
# Streamed arrivals == materialized lists, float for float; the legacy
# loadgen/trace builders == their pre-refactor implementations.
# ----------------------------------------------------------------------


def _legacy_generate_trace(workload, arrival_rate_qps, duration_s, seed=0,
                           start_s=0.0, first_id=0):
    """Verbatim copy of the pre-refactor ``sim.loadgen.generate_trace``."""
    from repro.sim.queries import Query

    rng = np.random.default_rng(seed)
    count = rng.poisson(arrival_rate_qps * duration_s)
    times = (np.sort(rng.uniform(0.0, duration_s, size=count)) + start_s).tolist()
    sizes = workload.size_dist.sample(rng, count).tolist()
    if workload.pooling_cv > 0:
        shape = 1.0 / workload.pooling_cv**2
        pooling = rng.gamma(shape, 1.0 / shape, size=count)
    else:
        pooling = np.ones(count)
    pooling = np.maximum(pooling, 1e-3).tolist()
    return list(
        map(
            Query._make,
            zip(range(first_id, first_id + count), times, sizes, pooling),
        )
    )


def _legacy_build_fleet_trace(workloads, segments, seed=0):
    """Verbatim copy of the pre-refactor ``fleet.engine.build_fleet_trace``."""
    merged = []
    for m_idx, (model, segs) in enumerate(sorted(segments.items())):
        workload = workloads[model]
        clock = 0.0
        next_id = 0
        for s_idx, (qps, dur) in enumerate(segs):
            if qps > 0 and dur > 0:
                queries = _legacy_generate_trace(
                    workload,
                    qps,
                    dur,
                    seed=seed + 7919 * m_idx + s_idx,
                    start_s=clock,
                    first_id=next_id,
                )
                merged.extend((model, q) for q in queries)
                next_id += len(queries)
            clock += dur
    merged.sort(key=lambda mq: mq[1].arrival_s)
    return merged


@pytest.mark.parametrize("seed", [0, 9, 101])
def test_loadgen_adapter_matches_legacy_exactly(seed):
    """The loadgen thin adapter draws the historical sequence bit-for-bit."""
    wl = _workload()
    assert generate_trace(wl, 650.0, 2.5, seed=seed, start_s=0.5, first_id=7) == (
        _legacy_generate_trace(wl, 650.0, 2.5, seed=seed, start_s=0.5, first_id=7)
    )


@pytest.mark.parametrize("seed", [0, 9, 101])
def test_build_fleet_trace_matches_legacy_exactly(seed):
    """The FleetArrivals-backed builder == the pre-refactor merge, and
    streaming the source yields the same elements without the sort."""
    from repro.traces import FleetArrivals, PiecewisePoissonProcess

    workloads = {
        "A": _workload(mean=30.0),
        "B": _workload(mean=60.0, pooling_cv=0.0),
    }
    segments = {
        "A": [(400.0, 1.0), (0.0, 0.5), (900.0, 1.0)],
        "B": [(250.0, 2.5)],
    }
    legacy = _legacy_build_fleet_trace(workloads, segments, seed=seed)
    assert build_fleet_trace(workloads, segments, seed=seed) == legacy
    source = FleetArrivals(
        {m: PiecewisePoissonProcess(workloads[m], s) for m, s in segments.items()},
        seed=seed,
    )
    assert list(source) == legacy
    assert list(source) == legacy  # re-iterable: second pass identical


def _mixed_fleet_stream(small_table, workloads, seed):
    """The streamed twin of ``_mixed_fleet_and_trace``'s traffic."""
    from repro.traces import FleetArrivals, PiecewisePoissonProcess

    capacity = 3 * small_table.qps("T2", "DLRM-RMC1") + small_table.qps(
        "T7", "DLRM-RMC1"
    )
    return FleetArrivals(
        {
            "DLRM-RMC1": PiecewisePoissonProcess(
                workloads["DLRM-RMC1"], [(0.65 * capacity, 3.0)]
            )
        },
        seed=seed,
    )


@pytest.mark.parametrize("seed", [13, 41])
@pytest.mark.parametrize(
    "kwargs",
    [
        {},
        {"faults": "empty"},
        {"faults": "empty", "retries": 2},
        {"faults": "crash", "retries": 1},
        {"faults": "empty", "hedge_ms": 8.0},
    ],
    ids=["fault-free", "light", "tracked", "scripted-crash", "hedged"],
)
def test_streamed_arrivals_bit_identical(
    small_table, rmc1_small_fleet_inputs, seed, kwargs
):
    """A lazily-streamed FleetArrivals source reproduces the
    materialized-list replay exactly through every loop variant --
    fault-free, light, tracked, scripted faults, hedging -- with
    ``==`` on floats, per-replica counters, and the event count.
    """
    from repro.fleet import FaultSchedule, crash as make_crash

    models, workloads = rmc1_small_fleet_inputs
    allocation, trace = _mixed_fleet_and_trace(small_table, models, workloads, seed)
    stream = _mixed_fleet_stream(small_table, workloads, seed)
    assert list(stream) == trace  # identical traffic before replaying

    kwargs = dict(kwargs)
    if kwargs.get("faults") == "empty":
        kwargs["faults"] = FaultSchedule()
    elif kwargs.get("faults") == "crash":
        kwargs["faults"] = FaultSchedule([make_crash(1.0, 0, recover_after=0.5)])

    _, base = _run_fleet(small_table, models, workloads, allocation, trace, **kwargs)
    _, streamed = _run_fleet(
        small_table, models, workloads, allocation, stream, **kwargs
    )
    assert streamed.per_model == base.per_model
    assert streamed.avg_power_w == base.avg_power_w
    assert streamed.events == base.events
    assert streamed.availability == base.availability
    assert [
        (s.completed, s.qps, s.power_w, s.active_s) for s in streamed.servers
    ] == [(s.completed, s.qps, s.power_w, s.active_s) for s in base.servers]


def test_unsorted_trace_keeps_stochastic_fault_horizon(
    small_table, rmc1_small_fleet_inputs
):
    """Sorting an out-of-order list must not shrink the stochastic
    fault horizon: the draw bound is the *latest* arrival, not the
    caller-order last element (which here is the earliest arrival)."""
    from repro.fleet import FaultSchedule

    models, workloads = rmc1_small_fleet_inputs
    allocation, trace = _mixed_fleet_and_trace(small_table, models, workloads, 13)
    rotated = trace[1:] + trace[:1]  # first (earliest) arrival moved last

    def run(source):
        return _run_fleet(
            small_table, models, workloads, allocation, source,
            faults=FaultSchedule.parse("random:crash_mtbf=1.5,mttr=0.3"),
            retries=1,
        )[1]

    base = run(trace)
    shuffled = run(rotated)
    assert base.fault_events  # the schedule actually fired
    assert shuffled.fault_events == base.fault_events
    assert shuffled.per_model == base.per_model
    assert shuffled.availability == base.availability


def test_streamed_arrivals_bit_identical_with_autoscaler(
    small_table, rmc1_small_fleet_inputs
):
    """Lazy tick scheduling preserves the materialized path's decisions."""
    from repro.cluster.state import Allocation as _Alloc
    from repro.fleet import ReactiveAutoscaler
    from repro.traces import FleetArrivals, PiecewisePoissonProcess

    models, workloads = rmc1_small_fleet_inputs
    allocation = _Alloc()
    allocation.add("T2", "DLRM-RMC1", 1)
    standby = _Alloc()
    standby.add("T2", "DLRM-RMC1", 2)
    tup = small_table.get("T2", "DLRM-RMC1")
    segments = {"DLRM-RMC1": [(2.0 * tup.qps, 3.0)]}
    trace = build_fleet_trace(workloads, segments, seed=23)
    stream = FleetArrivals(
        {
            "DLRM-RMC1": PiecewisePoissonProcess(
                workloads["DLRM-RMC1"], segments["DLRM-RMC1"]
            )
        },
        seed=23,
    )

    def run(source):
        servers = build_fleet(
            allocation, small_table, models, workloads, standby=standby
        )
        scaler = ReactiveAutoscaler({"DLRM-RMC1": 20.0}, window_s=0.25, cooldown_s=0.5)
        sim = FleetSimulator(
            servers,
            policy="least",
            sla_ms={"DLRM-RMC1": 20.0},
            autoscaler=scaler,
        )
        return sim.run(source, warmup_s=0.3)

    base = run(trace)
    streamed = run(stream)
    assert streamed.per_model == base.per_model
    assert streamed.avg_power_w == base.avg_power_w
    assert streamed.events == base.events
    assert [(e.time_s, e.model, e.action) for e in streamed.scale_events] == [
        (e.time_s, e.model, e.action) for e in base.scale_events
    ]


def test_idle_fault_loop_matches_with_autoscaler(
    small_table, rmc1_small_fleet_inputs
):
    """Autoscaler tick ordering survives the fault loop unchanged."""
    from repro.fleet import FaultSchedule, ReactiveAutoscaler
    from repro.cluster.state import Allocation as _Alloc

    models, workloads = rmc1_small_fleet_inputs
    allocation = _Alloc()
    allocation.add("T2", "DLRM-RMC1", 1)
    standby = _Alloc()
    standby.add("T2", "DLRM-RMC1", 2)
    tup = small_table.get("T2", "DLRM-RMC1")
    trace = build_fleet_trace(
        workloads, {"DLRM-RMC1": [(2.0 * tup.qps, 3.0)]}, seed=23
    )

    def run(**kwargs):
        servers = build_fleet(
            allocation, small_table, models, workloads, standby=standby
        )
        scaler = ReactiveAutoscaler({"DLRM-RMC1": 20.0}, window_s=0.25, cooldown_s=0.5)
        sim = FleetSimulator(
            servers,
            policy="least",
            sla_ms={"DLRM-RMC1": 20.0},
            autoscaler=scaler,
            **kwargs,
        )
        return sim.run(trace, warmup_s=0.3)

    base = run()
    idle = run(faults=FaultSchedule())
    assert idle.per_model == base.per_model
    assert idle.avg_power_w == base.avg_power_w
    assert [(e.time_s, e.model, e.action) for e in idle.scale_events] == [
        (e.time_s, e.model, e.action) for e in base.scale_events
    ]


# ----------------------------------------------------------------------
# Observability attached or absent == the dark engine, float for float
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", [13, 41])
def test_observer_none_bit_identical(
    small_table, rmc1_small_fleet_inputs, seed
):
    """``observer=None`` (the default) must reproduce the pre-
    observability engine exactly: the dormant hook guards perform no
    float operations, so every percentile, counter, and power figure
    matches ``==`` with no tolerances.
    """
    models, workloads = rmc1_small_fleet_inputs
    allocation, trace = _mixed_fleet_and_trace(small_table, models, workloads, seed)

    _, base = _run_fleet(small_table, models, workloads, allocation, trace)
    _, dark = _run_fleet(
        small_table, models, workloads, allocation, trace, observer=None
    )
    assert dark.per_model == base.per_model
    assert dark.avg_power_w == base.avg_power_w
    assert dark.events == base.events
    assert [
        (s.completed, s.qps, s.power_w, s.active_s) for s in dark.servers
    ] == [(s.completed, s.qps, s.power_w, s.active_s) for s in base.servers]


@pytest.mark.parametrize("seed", [13, 41])
def test_metrics_probe_does_not_perturb(
    small_table, rmc1_small_fleet_inputs, seed
):
    """A live metrics probe only *reads* the simulation (counters and
    latency copies); the observed run's result must equal the dark
    run's float for float, on both the fault-free and fault loops.
    """
    from repro.fleet import FaultSchedule
    from repro.obs import FleetProbe

    models, workloads = rmc1_small_fleet_inputs
    allocation, trace = _mixed_fleet_and_trace(small_table, models, workloads, seed)

    _, base = _run_fleet(small_table, models, workloads, allocation, trace)
    probe = FleetProbe(window_s=0.25)
    _, observed = _run_fleet(
        small_table, models, workloads, allocation, trace, observer=probe
    )
    assert observed.per_model == base.per_model
    assert observed.avg_power_w == base.avg_power_w
    assert observed.events == base.events
    assert probe.metrics_rows

    faults = "crash@0.8:0+0.5"
    _, base_f = _run_fleet(
        small_table, models, workloads, allocation, trace,
        faults=FaultSchedule.parse(faults), retries=2,
    )
    probe_f = FleetProbe(window_s=0.25)
    _, observed_f = _run_fleet(
        small_table, models, workloads, allocation, trace,
        faults=FaultSchedule.parse(faults), retries=2, observer=probe_f,
    )
    assert observed_f.per_model == base_f.per_model
    assert observed_f.avg_power_w == base_f.avg_power_w


@pytest.mark.parametrize("seed", [13, 41])
def test_tracing_probe_does_not_perturb(
    small_table, rmc1_small_fleet_inputs, seed
):
    """Tracing forces the tracked fault loop, which is bit-identical to
    the fault-free loop when idle; a traced fault-free run must
    therefore equal the dark run exactly, while producing one span per
    arrival.
    """
    from repro.obs import FleetProbe

    models, workloads = rmc1_small_fleet_inputs
    allocation, trace = _mixed_fleet_and_trace(small_table, models, workloads, seed)

    _, base = _run_fleet(small_table, models, workloads, allocation, trace)
    probe = FleetProbe(metrics=False, trace=True)
    sim, traced = _run_fleet(
        small_table, models, workloads, allocation, trace, observer=probe
    )
    assert traced.per_model == base.per_model
    assert traced.avg_power_w == base.avg_power_w
    assert len(probe.spans) == len(sim.last_query_log) == len(trace)


# ----------------------------------------------------------------------
# Vectorized core == python core, float for float
# ----------------------------------------------------------------------


# ----------------------------------------------------------------------
# Carbon accounting attached or absent == the dark engine, float for float
# ----------------------------------------------------------------------


def _carbon_trace():
    from repro.carbon import CarbonTrace

    return CarbonTrace.diurnal(base=350.0, swing=150.0, period_s=3.0, steps=12)


def _deferrable_jobs():
    from repro.carbon import DeferrableJob

    return (
        DeferrableJob("batch-0", 0.2, 0.4, 700.0, 2.6),
        DeferrableJob("batch-1", 0.9, 0.3, 500.0, 2.8),
    )


@pytest.mark.parametrize("seed", [13, 41])
@pytest.mark.parametrize(
    "kwargs",
    [
        {},
        {"faults": "empty"},
        {"faults": "empty", "retries": 2},
        {"deferrable": True},
    ],
    ids=["fault-free", "light", "tracked", "with-jobs"],
)
def test_carbon_attached_bit_identical(
    small_table, rmc1_small_fleet_inputs, seed, kwargs
):
    """Attaching a carbon trace (and even deferrable jobs under a cap)
    must not perturb the replay: carbon accounting prices recorded
    activation windows *after* ``_summarize``, and jobs run beside the
    fleet, not on it.  Every realtime figure -- percentiles, counters,
    power, the event count, the JSON document minus its ``carbon``
    block -- compares ``==`` against the carbon-off run, across the
    fault-free, light, and tracked loops.
    """
    from repro.fleet import FaultSchedule

    models, workloads = rmc1_small_fleet_inputs
    allocation, trace = _mixed_fleet_and_trace(small_table, models, workloads, seed)

    kwargs = dict(kwargs)
    carbon_kwargs = {"carbon": _carbon_trace()}
    if kwargs.pop("deferrable", False):
        carbon_kwargs.update(
            deferrable=_deferrable_jobs(),
            deferrable_policy="carbon-waiting",
            power_cap_w=8000.0,
        )
    if kwargs.get("faults") == "empty":
        kwargs["faults"] = FaultSchedule()

    _, base = _run_fleet(small_table, models, workloads, allocation, trace, **kwargs)
    _, priced = _run_fleet(
        small_table, models, workloads, allocation, trace, **kwargs, **carbon_kwargs
    )
    assert priced.per_model == base.per_model
    assert priced.avg_power_w == base.avg_power_w
    assert priced.events == base.events
    assert [
        (s.completed, s.qps, s.power_w, s.active_s) for s in priced.servers
    ] == [(s.completed, s.qps, s.power_w, s.active_s) for s in base.servers]
    # JSON-level pin: the carbon-on document is the carbon-off document
    # plus one extra block.
    doc = priced.to_dict()
    assert doc.pop("carbon")["realtime_g"] > 0.0
    assert doc == base.to_dict()
    assert base.carbon is None


def test_carbon_attached_bit_identical_with_autoscaler(
    small_table, rmc1_small_fleet_inputs
):
    """Scale events land on the same ticks with carbon attached: the
    activation-window append rides ``settle()``, which the autoscaler
    path already calls at every transition."""
    from repro.cluster.state import Allocation as _Alloc
    from repro.fleet import ReactiveAutoscaler

    models, workloads = rmc1_small_fleet_inputs
    allocation = _Alloc()
    allocation.add("T2", "DLRM-RMC1", 1)
    standby = _Alloc()
    standby.add("T2", "DLRM-RMC1", 2)
    tup = small_table.get("T2", "DLRM-RMC1")
    trace = build_fleet_trace(
        workloads, {"DLRM-RMC1": [(2.0 * tup.qps, 3.0)]}, seed=23
    )

    def run(**kwargs):
        servers = build_fleet(
            allocation, small_table, models, workloads, standby=standby
        )
        scaler = ReactiveAutoscaler({"DLRM-RMC1": 20.0}, window_s=0.25, cooldown_s=0.5)
        sim = FleetSimulator(
            servers,
            policy="least",
            sla_ms={"DLRM-RMC1": 20.0},
            autoscaler=scaler,
            **kwargs,
        )
        return sim.run(trace, warmup_s=0.3)

    base = run()
    priced = run(carbon=_carbon_trace())
    assert priced.per_model == base.per_model
    assert priced.avg_power_w == base.avg_power_w
    assert priced.events == base.events
    assert [(e.time_s, e.model, e.action) for e in priced.scale_events] == [
        (e.time_s, e.model, e.action) for e in base.scale_events
    ]
    assert priced.carbon is not None and priced.carbon.realtime_g > 0.0


def test_carbon_attached_matches_sharded_realtime(small_table):
    """The sharded leg: the multi-process merge (now folding energy
    through the shared ``fleet_power_summary`` seam) still equals the
    single-process replay, and the single-process replay with carbon
    attached reports the same realtime figures as both."""
    from repro.fleet.sharded import run_fleet_sharded
    from repro.models import build_model
    from repro.traces import FleetArrivals, PoissonProcess

    names = ("DLRM-RMC1", "DLRM-RMC2")
    sla = {"DLRM-RMC1": 20.0, "DLRM-RMC2": 50.0}
    models = {m: build_model(m) for m in names}
    workloads = {
        m: QueryWorkload.for_model(models[m].config.mean_query_size)
        for m in names
    }
    allocation = Allocation()
    allocation.add("T2", "DLRM-RMC1", 2)
    allocation.add("T3", "DLRM-RMC2", 2)

    def source():
        return FleetArrivals(
            {
                "DLRM-RMC1": PoissonProcess(workloads["DLRM-RMC1"], 300.0, 1.2),
                "DLRM-RMC2": PoissonProcess(workloads["DLRM-RMC2"], 200.0, 1.2),
            },
            seed=17,
        )

    def run_single(**kwargs):
        servers = build_fleet(allocation, small_table, models, workloads)
        sim = FleetSimulator(servers, policy="rr", sla_ms=sla, seed=0, **kwargs)
        return sim.run(source(), warmup_s=0.1)

    base = run_single()
    priced = run_single(carbon=_carbon_trace())
    sharded = run_fleet_sharded(
        allocation, small_table, models, workloads, source(),
        shards=2, policy="rr", sla_ms=sla, seed=0, warmup_s=0.1,
        core="python", max_workers=2,
    )
    assert priced.per_model == base.per_model == sharded.per_model
    assert priced.avg_power_w == base.avg_power_w == sharded.avg_power_w
    assert priced.events == base.events == sharded.events
    assert priced.carbon is not None and sharded.carbon is None


@pytest.mark.parametrize("policy", ["rr", "weighted"])
@pytest.mark.parametrize("seed", [13, 41])
def test_vector_core_bit_identical(
    small_table, rmc1_small_fleet_inputs, policy, seed
):
    """``core="vector"`` replays an oblivious-routing fleet with the
    exact per-replica float recurrences of the python core: summaries,
    per-replica counters, power, and the event count all compare ``==``
    with no tolerances.  (Queue-aware policies and fault loops fall
    back to the python core; tests/test_fast_core.py covers that
    surface.)
    """
    models, workloads = rmc1_small_fleet_inputs
    allocation, trace = _mixed_fleet_and_trace(small_table, models, workloads, seed)

    def run(core):
        servers = build_fleet(allocation, small_table, models, workloads)
        sim = FleetSimulator(
            servers, policy=policy, sla_ms={"DLRM-RMC1": 20.0}, seed=7, core=core
        )
        return sim.run(trace, warmup_s=0.3)

    base = run("python")
    vec = run("vector")
    assert vec.per_model == base.per_model
    assert vec.avg_power_w == base.avg_power_w
    assert vec.events == base.events
    assert [
        (s.completed, s.qps, s.power_w, s.active_s) for s in vec.servers
    ] == [(s.completed, s.qps, s.power_w, s.active_s) for s in base.servers]
