"""Tests for the Poisson trace generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim import PoissonLoadGenerator, QueryWorkload, generate_trace

WL = QueryWorkload.for_model(100)


def test_traces_are_time_sorted():
    trace = generate_trace(WL, arrival_rate_qps=500, duration_s=5, seed=1)
    times = [q.arrival_s for q in trace]
    assert times == sorted(times)


def test_arrival_rate_matches_poisson():
    trace = generate_trace(WL, arrival_rate_qps=1000, duration_s=20, seed=2)
    rate = len(trace) / 20.0
    assert rate == pytest.approx(1000, rel=0.05)


def test_traces_reproducible_by_seed():
    a = generate_trace(WL, 200, 3, seed=42)
    b = generate_trace(WL, 200, 3, seed=42)
    assert [(q.arrival_s, q.size) for q in a] == [(q.arrival_s, q.size) for q in b]
    c = generate_trace(WL, 200, 3, seed=43)
    assert [(q.arrival_s, q.size) for q in a] != [(q.arrival_s, q.size) for q in c]


def test_query_ids_are_consecutive():
    trace = generate_trace(WL, 100, 2, seed=0, first_id=50)
    assert [q.query_id for q in trace] == list(range(50, 50 + len(trace)))


def test_interarrival_times_exponential():
    trace = generate_trace(WL, 2000, 30, seed=9)
    gaps = np.diff([q.arrival_s for q in trace])
    # Exponential: std ~= mean, CV ~= 1.
    assert gaps.std() / gaps.mean() == pytest.approx(1.0, abs=0.1)


def test_invalid_arguments():
    with pytest.raises(ValueError):
        generate_trace(WL, 0, 5)
    with pytest.raises(ValueError):
        generate_trace(WL, 100, 0)


class TestPoissonLoadGenerator:
    def test_segments_chain_continuously(self):
        gen = PoissonLoadGenerator(WL, seed=3)
        seg1 = gen.next_segment(500, 2.0)
        seg2 = gen.next_segment(800, 2.0)
        assert all(q.arrival_s < 2.0 for q in seg1)
        assert all(2.0 <= q.arrival_s < 4.0 for q in seg2)
        assert seg2[0].query_id == seg1[-1].query_id + 1

    def test_segment_rates_differ(self):
        gen = PoissonLoadGenerator(WL, seed=4)
        low = gen.next_segment(100, 10.0)
        high = gen.next_segment(1000, 10.0)
        assert len(high) > 5 * len(low)
