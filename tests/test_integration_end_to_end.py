"""End-to-end integration: offline profiling -> online cluster serving.

Exercises the full Hercules pipeline of Fig. 9 on a reduced fleet:
build models, profile every (server, model) pair with the gradient
search, classify, then drive a diurnal day through all four cluster
schedulers and check the paper's qualitative orderings.
"""

from __future__ import annotations

import pytest

from repro.cluster import (
    ClusterManager,
    GreedyScheduler,
    HerculesClusterScheduler,
    NHScheduler,
    synchronous_traces,
)
from repro.models import build_model, partition_model
from repro.plans import Placement
from repro.sim import QueryWorkload, ServerEvaluator, simulate
from repro.hardware import SERVER_TYPES


@pytest.fixture(scope="module")
def day_results(small_table):
    fleet = {"T2": 70, "T3": 15, "T7": 5}
    traces = synchronous_traces({"DLRM-RMC1": 20_000, "DLRM-RMC2": 3_000})
    results = {}
    for policy in (NHScheduler, GreedyScheduler, HerculesClusterScheduler):
        manager = ClusterManager(
            policy(small_table, fleet), interval_minutes=60.0, over_provision=0.05
        )
        results[policy.__name__] = manager.run_day(traces)
    return results


class TestOfflineOnlinePipeline:
    def test_no_scheduler_drops_load(self, day_results):
        for day in day_results.values():
            assert not day.any_shortfall

    def test_power_ordering_matches_paper(self, day_results):
        """NH >= greedy >= Hercules on provisioned power (Fig. 17d)."""
        nh = day_results["NHScheduler"]
        greedy = day_results["GreedyScheduler"]
        hercules = day_results["HerculesClusterScheduler"]
        assert greedy.peak_power_w < nh.peak_power_w
        assert hercules.average_power_w <= greedy.average_power_w * 1.01
        # Heterogeneity-awareness buys a substantial peak saving.
        assert greedy.peak_power_w < 0.8 * nh.peak_power_w

    def test_diurnal_power_swing(self, day_results):
        day = day_results["HerculesClusterScheduler"]
        assert day.average_power_w < day.peak_power_w


class TestSearchOptimumSurvivesDes:
    def test_profiled_plan_meets_sla_in_simulation(self, small_table):
        """The efficiency tuple's operating point must hold up when the
        discrete-event simulator replays it with real queries."""
        tup = small_table.get("T2", "DLRM-RMC1")
        model = build_model("DLRM-RMC1")
        needs_device = tup.plan.placement.uses_gpu
        partitioned = partition_model(
            model,
            device_memory_bytes=16e9 if needs_device else None,
            co_location=tup.plan.threads if needs_device else 1,
        )
        workload = QueryWorkload.for_model(model.config.mean_query_size)
        evaluator = ServerEvaluator(SERVER_TYPES["T2"])
        perf = simulate(
            evaluator,
            partitioned,
            workload,
            tup.plan,
            arrival_qps=tup.qps * 0.85,
            duration_s=12.0,
            seed=3,
        )
        assert perf.qps == pytest.approx(tup.qps * 0.85, rel=0.1)
        assert perf.latency.p99_ms <= model.sla_ms * 1.5
