"""Tests for the four cluster scheduling policies."""

from __future__ import annotations

import pytest

from repro.cluster import (
    GreedyScheduler,
    HerculesClusterScheduler,
    NHScheduler,
    PriorityAwareScheduler,
)
from repro.plans import ExecutionPlan, Placement
from repro.scheduling import ClassificationTable, EfficiencyTuple

_PLAN = ExecutionPlan(Placement.CPU_MODEL_BASED, threads=1)


def _asymmetric_table() -> ClassificationTable:
    """RMC2-like workload B benefits far more from the NMP type T3."""
    table = ClassificationTable()
    table.add(EfficiencyTuple("T2", "A", qps=1800, power_w=104, plan=_PLAN))
    table.add(EfficiencyTuple("T3", "A", qps=2400, power_w=130, plan=_PLAN))
    table.add(EfficiencyTuple("T2", "B", qps=110, power_w=78, plan=_PLAN))
    table.add(EfficiencyTuple("T3", "B", qps=330, power_w=116, plan=_PLAN))
    return table


FLEET = {"T2": 70, "T3": 15}
LOADS = {"A": 30_000.0, "B": 4_000.0}
ALL_POLICIES = [
    NHScheduler,
    GreedyScheduler,
    PriorityAwareScheduler,
    HerculesClusterScheduler,
]


@pytest.mark.parametrize("policy", ALL_POLICIES)
def test_every_policy_covers_the_load(policy, small_table):
    fleet = {"T2": 70, "T3": 15, "T7": 5}
    loads = {"DLRM-RMC1": 20_000.0, "DLRM-RMC2": 3_000.0}
    scheduler = policy(small_table, fleet)
    alloc = scheduler.allocate(loads, over_provision=0.05)
    assert alloc.respects_fleet(fleet)
    assert not alloc.has_shortfall
    assert alloc.covers(small_table, loads, over_provision=0.05)


@pytest.mark.parametrize("policy", ALL_POLICIES)
def test_zero_load_allocates_nothing(policy):
    scheduler = policy(_asymmetric_table(), dict(FLEET))
    alloc = scheduler.allocate({"A": 0.0, "B": 0.0})
    assert alloc.total_servers == 0


@pytest.mark.parametrize("policy", ALL_POLICIES)
def test_shortfall_reported_when_impossible(policy):
    scheduler = policy(_asymmetric_table(), {"T2": 1, "T3": 1})
    alloc = scheduler.allocate({"A": 1e7, "B": 1e7})
    assert alloc.has_shortfall


def test_greedy_beats_nh_on_power():
    table = _asymmetric_table()
    nh = NHScheduler(table, dict(FLEET)).allocate(LOADS)
    greedy = GreedyScheduler(table, dict(FLEET)).allocate(LOADS)
    assert greedy.provisioned_power_w(table) <= nh.provisioned_power_w(table)


def test_priority_gives_contested_type_to_bigger_gainer():
    """The Fig. 8(c) insight: B (RMC2-like) claims the NMP servers."""
    table = _asymmetric_table()
    priority = PriorityAwareScheduler(table, dict(FLEET))
    alloc = priority.allocate(LOADS)
    t3_for_b = alloc.counts.get(("T3", "B"), 0)
    t3_for_a = alloc.counts.get(("T3", "A"), 0)
    assert t3_for_b > 0
    # B's benefit ratio (330/116 vs 110/78 -> 2.0x) beats A's (1.6x),
    # so B is served before A touches T3.
    needed_by_b = -(-4000 // 330)
    assert t3_for_b >= min(needed_by_b, FLEET["T3"])


def test_hercules_never_worse_than_greedy_on_fixture():
    table = _asymmetric_table()
    greedy = GreedyScheduler(table, dict(FLEET)).allocate(LOADS)
    hercules = HerculesClusterScheduler(table, dict(FLEET)).allocate(LOADS)
    assert hercules.provisioned_power_w(table) <= greedy.provisioned_power_w(
        table
    ) * 1.02
    assert not hercules.has_shortfall


def test_hercules_simplex_backend_matches_scipy():
    table = _asymmetric_table()
    scipy_alloc = HerculesClusterScheduler(table, dict(FLEET), solver="scipy").allocate(
        LOADS
    )
    simplex_alloc = HerculesClusterScheduler(
        table, dict(FLEET), solver="simplex"
    ).allocate(LOADS)
    assert scipy_alloc.provisioned_power_w(table) == pytest.approx(
        simplex_alloc.provisioned_power_w(table), rel=0.05
    )


def test_hercules_falls_back_to_greedy_when_infeasible():
    table = _asymmetric_table()
    scheduler = HerculesClusterScheduler(table, {"T2": 1, "T3": 1})
    alloc = scheduler.allocate({"A": 1e7})
    assert alloc.has_shortfall
    assert alloc.total_servers == 2  # everything available was used


def test_negative_fleet_rejected():
    with pytest.raises(ValueError):
        GreedyScheduler(_asymmetric_table(), {"T2": -1})
