"""Unit tests for the fleet routing policies."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.fleet.routing import (
    ROUTING_POLICIES,
    LeastOutstandingPolicy,
    PowerOfTwoPolicy,
    RoundRobinPolicy,
    RoutingError,
    WeightedPolicy,
    make_policy,
)


class _Stub:
    """Minimal replica: what policies are allowed to look at."""

    def __init__(self, weight: float = 1.0, outstanding: int = 0) -> None:
        self.weight = weight
        self.outstanding = outstanding
        self.wrr_current = 0.0


class TestRegistry:
    def test_all_policies_registered(self):
        assert set(ROUTING_POLICIES) == {"rr", "least", "p2c", "weighted"}

    def test_make_policy_unknown_name(self):
        with pytest.raises(ValueError, match="unknown routing policy"):
            make_policy("fifo")

    @pytest.mark.parametrize("name", sorted(ROUTING_POLICIES))
    def test_make_policy_instances_are_independent(self, name):
        a, b = make_policy(name, seed=1), make_policy(name, seed=1)
        assert a is not b
        assert a.name == name


class TestRoundRobin:
    def test_cycles_through_candidates(self):
        policy = RoundRobinPolicy()
        servers = [_Stub() for _ in range(3)]
        picks = [policy.choose(servers) for _ in range(6)]
        assert picks == servers + servers

    def test_cursor_survives_membership_change(self):
        policy = RoundRobinPolicy()
        servers = [_Stub() for _ in range(4)]
        for _ in range(3):
            policy.choose(servers)
        # A drained replica shrinks the list; the cursor keeps cycling.
        assert policy.choose(servers[:2]) in servers[:2]


class TestLeastOutstanding:
    def test_picks_minimum_backlog(self):
        servers = [_Stub(outstanding=5), _Stub(outstanding=1), _Stub(outstanding=3)]
        assert LeastOutstandingPolicy().choose(servers) is servers[1]

    def test_ties_break_toward_throughput(self):
        slow = _Stub(weight=100.0, outstanding=2)
        fast = _Stub(weight=4000.0, outstanding=2)
        assert LeastOutstandingPolicy().choose([slow, fast]) is fast


class TestPowerOfTwo:
    def test_single_candidate(self):
        only = _Stub()
        assert PowerOfTwoPolicy(seed=0).choose([only]) is only

    def test_prefers_less_loaded_of_sample(self):
        # With two candidates every sample pair is {a, b} (or a repeat),
        # so the loaded replica can win only against itself.
        light, heavy = _Stub(outstanding=0), _Stub(outstanding=50)
        policy = PowerOfTwoPolicy(seed=3)
        picks = [policy.choose([light, heavy]) for _ in range(200)]
        # The loaded replica wins only on a heavy/heavy sample, so the
        # light replica should take ~3/4 of the picks; 0.65 leaves ~10
        # sigma of slack around the binomial expectation of 150/200.
        assert picks.count(light) > 130

    def test_deterministic_for_seed(self):
        servers = [_Stub(outstanding=i % 3) for i in range(5)]
        a = [PowerOfTwoPolicy(seed=9).choose(servers) for _ in range(20)]
        b = [PowerOfTwoPolicy(seed=9).choose(servers) for _ in range(20)]
        assert a == b


class TestWeighted:
    def test_shares_match_weights(self):
        fast = _Stub(weight=3000.0)
        slow = _Stub(weight=1000.0)
        policy = WeightedPolicy()
        picks = [policy.choose([fast, slow]) for _ in range(400)]
        assert picks.count(fast) == 300
        assert picks.count(slow) == 100

    def test_smooth_interleaving(self):
        # Smooth WRR must not burst: with weights 2:1 the slow replica
        # appears within every 3-pick window.
        fast, slow = _Stub(weight=2.0), _Stub(weight=1.0)
        policy = WeightedPolicy()
        picks = [policy.choose([fast, slow]) for _ in range(9)]
        for i in range(0, 9, 3):
            assert slow in picks[i : i + 3]

    def test_zero_weight_guarded(self):
        broken = _Stub(weight=0.0)
        healthy = _Stub(weight=100.0)
        policy = WeightedPolicy()
        picks = [policy.choose([broken, healthy]) for _ in range(50)]
        assert picks.count(healthy) >= 49


class TestSnapshotBatch:
    """Epoch-batched picks over a frozen queue snapshot.

    ``LeastOutstandingPolicy.snapshot_batch`` has two implementations --
    a per-pick scalar argmin and a numpy k-way merge used when
    ``256 <= n * k <= 2_000_000`` -- that must agree pick for pick: the
    merge exploits that a snapshot which only grows by its own picks
    yields a sorted union of per-replica key streams, and any
    divergence from the scalar loop breaks the epoch core's routing.
    """

    @staticmethod
    def _reference(servers, outstanding, n):
        """Sequential argmin with the weight-desc tie-break, by hand."""
        out = list(outstanding)
        picks = []
        for _ in range(n):
            best = 0
            for i in range(1, len(servers)):
                if out[i] < out[best] or (
                    out[i] == out[best]
                    and servers[i].weight > servers[best].weight
                ):
                    best = i
            out[best] += 1
            picks.append(best)
        return picks, out

    @settings(max_examples=60, deadline=None)
    @given(
        k=st.integers(1, 12),
        n=st.integers(1, 500),
        data=st.data(),
    )
    def test_merge_and_scalar_agree(self, k, n, data):
        # n*k spans both sides of the 256 merge threshold, so this
        # sweep exercises the numpy branch and the scalar branch (and,
        # through small draws, their boundary).
        weights = data.draw(
            st.lists(
                st.sampled_from([100.0, 250.0, 1000.0, 4000.0]),
                min_size=k, max_size=k,
            )
        )
        outstanding = data.draw(
            st.lists(st.integers(0, 40), min_size=k, max_size=k)
        )
        servers = [_Stub(weight=w) for w in weights]
        expected_picks, expected_out = self._reference(
            servers, outstanding, n
        )
        got_out = list(outstanding)
        got = LeastOutstandingPolicy().snapshot_batch(servers, got_out, n)
        assert list(got) == expected_picks
        assert got_out == expected_out  # the snapshot absorbed its picks

    def test_merge_branch_forced_large(self):
        """A shape that is unambiguously on the merge path (n*k >= 256)
        still matches the hand reference exactly."""
        servers = [
            _Stub(weight=w)
            for w in (4000.0, 100.0, 4000.0, 250.0, 1000.0, 100.0)
        ]
        outstanding = [3, 0, 7, 0, 2, 5]
        expected_picks, expected_out = self._reference(
            servers, outstanding, 600
        )
        got_out = [3, 0, 7, 0, 2, 5]
        got = LeastOutstandingPolicy().snapshot_batch(servers, got_out, 600)
        assert list(got) == expected_picks
        assert got_out == expected_out

    def test_empty_candidates_raise(self):
        with pytest.raises(RoutingError, match="no routable replicas"):
            LeastOutstandingPolicy().snapshot_batch([], [], 4)


class TestEmptyCandidates:
    """All-replicas-down edge case: a clear error, not an IndexError.

    The fleet engine never routes an empty candidate set (such queries
    are dropped or failed), so this guards direct API users who filter
    replica lists themselves.
    """

    @pytest.mark.parametrize("name", sorted(ROUTING_POLICIES))
    def test_choose_on_empty_raises_routing_error(self, name):
        policy = make_policy(name, seed=1)
        with pytest.raises(RoutingError, match="no routable replicas"):
            policy.choose([])

    def test_routing_error_is_runtime_error(self):
        # Catchable both specifically and as a generic runtime failure.
        assert issubclass(RoutingError, RuntimeError)

    @pytest.mark.parametrize("name", sorted(ROUTING_POLICIES))
    def test_single_survivor_still_routable(self, name):
        policy = make_policy(name, seed=1)
        survivor = _Stub()
        assert policy.choose([survivor]) is survivor
