"""Tests for the ExecutionPlan parallelism-space types."""

from __future__ import annotations

import pytest

from repro.hardware import SERVER_TYPES
from repro.plans import ExecutionPlan, Placement


class TestValidation:
    def test_cpu_model_based_needs_thread(self):
        with pytest.raises(ValueError):
            ExecutionPlan(Placement.CPU_MODEL_BASED, threads=0)

    def test_sd_pipeline_needs_both_sides(self):
        with pytest.raises(ValueError):
            ExecutionPlan(Placement.CPU_SD_PIPELINE, sparse_threads=2, dense_threads=0)
        with pytest.raises(ValueError):
            ExecutionPlan(Placement.CPU_SD_PIPELINE, sparse_threads=0, dense_threads=2)

    def test_gpu_sd_needs_host_sparse(self):
        with pytest.raises(ValueError):
            ExecutionPlan(Placement.GPU_SD, threads=1, sparse_threads=0)

    def test_negative_fusion_rejected(self):
        with pytest.raises(ValueError):
            ExecutionPlan(Placement.GPU_MODEL_BASED, threads=1, fusion_limit=-1)

    def test_bad_batch_rejected(self):
        with pytest.raises(ValueError):
            ExecutionPlan(Placement.CPU_MODEL_BASED, threads=1, batch_size=0)


class TestCoresUsed:
    def test_model_based(self):
        plan = ExecutionPlan(Placement.CPU_MODEL_BASED, threads=5, cores_per_thread=4)
        assert plan.cpu_cores_used == 20

    def test_sd_pipeline(self):
        plan = ExecutionPlan(
            Placement.CPU_SD_PIPELINE,
            sparse_threads=4,
            sparse_cores=3,
            dense_threads=6,
        )
        assert plan.cpu_cores_used == 18

    def test_gpu_placements_count_host_side(self):
        plan = ExecutionPlan(
            Placement.GPU_MODEL_BASED, threads=2, sparse_threads=10, sparse_cores=2
        )
        assert plan.cpu_cores_used == 20


class TestFits:
    def test_core_budget(self):
        t2 = SERVER_TYPES["T2"]  # 20 cores
        assert ExecutionPlan(
            Placement.CPU_MODEL_BASED, threads=10, cores_per_thread=2
        ).fits(t2)
        assert not ExecutionPlan(
            Placement.CPU_MODEL_BASED, threads=10, cores_per_thread=3
        ).fits(t2)

    def test_gpu_requirement(self):
        plan = ExecutionPlan(Placement.GPU_MODEL_BASED, threads=1)
        assert plan.fits(SERVER_TYPES["T7"])
        assert not plan.fits(SERVER_TYPES["T2"])


class TestUtilities:
    def test_with_creates_modified_copy(self):
        plan = ExecutionPlan(Placement.CPU_MODEL_BASED, threads=4, batch_size=64)
        bigger = plan.with_(batch_size=128)
        assert bigger.batch_size == 128 and bigger.threads == 4
        assert plan.batch_size == 64  # original untouched

    def test_describe_is_compact(self):
        plan = ExecutionPlan(
            Placement.CPU_MODEL_BASED, threads=10, cores_per_thread=2, batch_size=256
        )
        assert plan.describe() == "cpu_model_based 10x2 d=256"
        gpu = ExecutionPlan(Placement.GPU_MODEL_BASED, threads=3, fusion_limit=0)
        assert "fusion=none" in gpu.describe()

    def test_plans_are_hashable(self):
        a = ExecutionPlan(Placement.CPU_MODEL_BASED, threads=4)
        b = ExecutionPlan(Placement.CPU_MODEL_BASED, threads=4)
        assert a == b and hash(a) == hash(b)
        assert len({a, b}) == 1
