"""Tests for the Table II hardware substrate."""

from __future__ import annotations

import pytest

from repro.hardware import (
    CPU_T1,
    CPU_T2,
    ComponentUtilization,
    CpuSpec,
    DDR4_T2,
    GPU_P100,
    GPU_V100,
    GpuSpec,
    MemorySpec,
    NMP_X2,
    NMP_X4,
    NMP_X8,
    SERVER_AVAILABILITY,
    SERVER_TYPES,
    get_server_type,
    linear_power,
    standard_fleet,
)


class TestCpuSpecs:
    def test_table2_parameters(self):
        assert CPU_T1.cores == 18 and CPU_T1.frequency_hz == 1.6e9
        assert CPU_T2.cores == 20 and CPU_T2.frequency_hz == 2.0e9
        assert CPU_T1.tdp_w == 86.0 and CPU_T2.tdp_w == 125.0

    def test_effective_flops_scale_with_cores(self):
        assert CPU_T2.effective_flops(10) == pytest.approx(
            10 * CPU_T2.effective_flops(1)
        )
        assert CPU_T2.effective_flops(1) < CPU_T2.peak_flops_per_core

    def test_core_bounds_enforced(self):
        with pytest.raises(ValueError):
            CPU_T2.effective_flops(0)
        with pytest.raises(ValueError):
            CPU_T2.effective_flops(21)

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError):
            CpuSpec(
                name="bad",
                cores=0,
                frequency_hz=1e9,
                flops_per_cycle_per_core=16,
                llc_bytes=1e6,
                tdp_w=100,
                idle_w=10,
            )


class TestMemorySpecs:
    def test_nmp_bandwidth_scales_with_ranks(self):
        assert NMP_X2.nmp_gather_reduce_bw_bytes == pytest.approx(
            2 * NMP_X2.gather_bw_bytes
        )
        assert NMP_X8.nmp_gather_reduce_bw_bytes == pytest.approx(
            8 * NMP_X8.gather_bw_bytes
        )

    def test_plain_ddr4_has_no_nmp_boost(self):
        assert not DDR4_T2.is_nmp
        assert DDR4_T2.nmp_gather_reduce_bw_bytes == pytest.approx(
            DDR4_T2.gather_bw_bytes
        )

    def test_nmp_capacity_and_power_grow_with_ranks(self):
        assert NMP_X2.capacity_bytes < NMP_X4.capacity_bytes < NMP_X8.capacity_bytes
        assert NMP_X2.tdp_w < NMP_X4.tdp_w < NMP_X8.tdp_w
        assert NMP_X2.idle_w < NMP_X4.idle_w < NMP_X8.idle_w

    def test_nmp_pays_extra_idle_power_over_ddr4(self):
        """Fig. 15: NMP idle power is the tax one-hot models pay."""
        assert NMP_X2.idle_w > DDR4_T2.idle_w


class TestGpuSpecs:
    def test_table2_parameters(self):
        assert GPU_P100.sms == 56 and GPU_V100.sms == 80
        assert GPU_V100.hbm_bw_bytes == 900e9
        assert GPU_V100.memory_bytes == 16e9
        assert GPU_V100.tdp_w == 300.0

    def test_utilization_saturates(self):
        assert GPU_V100.utilization(0) == 0.0
        assert GPU_V100.utilization(16) < 0.2
        assert GPU_V100.utilization(100_000) > 0.95
        small = GPU_V100.effective_flops(32)
        large = GPU_V100.effective_flops(4096)
        assert large > 5 * small

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError):
            GpuSpec(
                name="bad",
                sms=0,
                peak_flops=1e12,
                hbm_bw_bytes=1e11,
                memory_bytes=1e9,
                pcie_bw_bytes=1e10,
                tdp_w=100,
                idle_w=10,
            )


class TestServerTypes:
    def test_all_ten_types_defined(self):
        assert set(SERVER_TYPES) == {f"T{i}" for i in range(1, 11)}

    def test_availability_vector(self):
        assert [SERVER_AVAILABILITY[f"T{i}"] for i in range(1, 11)] == [
            100, 100, 15, 10, 5, 10, 5, 6, 4, 2,
        ]

    def test_compositions_follow_table2(self):
        assert not SERVER_TYPES["T1"].has_gpu and not SERVER_TYPES["T1"].has_nmp
        assert SERVER_TYPES["T3"].has_nmp and not SERVER_TYPES["T3"].has_gpu
        assert SERVER_TYPES["T7"].has_gpu and not SERVER_TYPES["T7"].has_nmp
        assert SERVER_TYPES["T10"].has_gpu and SERVER_TYPES["T10"].has_nmp
        assert SERVER_TYPES["T6"].gpu is GPU_P100
        assert SERVER_TYPES["T7"].gpu is GPU_V100

    def test_labels_are_descriptive(self):
        assert SERVER_TYPES["T8"].label == "CPU-T2+NMPx2+V100"
        assert SERVER_TYPES["T1"].label == "CPU-T1"

    def test_tdp_sums_components(self):
        t8 = SERVER_TYPES["T8"]
        assert t8.tdp_w == pytest.approx(
            t8.cpu.tdp_w + t8.memory.tdp_w + t8.gpu.tdp_w
        )

    def test_unknown_type_rejected(self):
        with pytest.raises(KeyError, match="unknown server type"):
            get_server_type("T11")

    def test_standard_fleet_complete(self):
        fleet = standard_fleet()
        assert len(fleet) == 10
        assert sum(n for _, n in fleet) == 257


class TestPowerModel:
    def test_linear_power_endpoints(self):
        assert linear_power(10, 100, 0.0) == 10
        assert linear_power(10, 100, 1.0) == 100
        assert linear_power(10, 100, 0.5) == pytest.approx(55)

    def test_utilization_bounds_enforced(self):
        with pytest.raises(ValueError):
            linear_power(10, 100, 1.5)
        with pytest.raises(ValueError):
            ComponentUtilization(cpu=-0.1)

    def test_server_power_between_idle_and_tdp(self):
        for server in SERVER_TYPES.values():
            idle = server.power_w(ComponentUtilization())
            busy = server.power_w(
                ComponentUtilization(cpu=1.0, memory=1.0, gpu=1.0 if server.has_gpu else 0.0)
            )
            assert idle == pytest.approx(server.idle_w)
            assert busy == pytest.approx(server.tdp_w)
            assert idle < busy
