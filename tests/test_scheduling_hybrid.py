"""Tests for hybrid host + accelerator serving (Fig. 10d)."""

from __future__ import annotations

import pytest

from repro.hardware import SERVER_TYPES
from repro.models import ModelVariant, build_model, partition_model
from repro.plans import ExecutionPlan, Placement
from repro.scheduling import (
    GradientSearch,
    HybridPlan,
    HybridSearch,
    evaluate_hybrid,
)
from repro.sim import QueryWorkload, ServerEvaluator

GPU_PLAN = ExecutionPlan(Placement.GPU_MODEL_BASED, threads=2, fusion_limit=512)
CPU_PLAN = ExecutionPlan(
    Placement.CPU_MODEL_BASED, threads=8, cores_per_thread=2, batch_size=128
)


class TestHybridPlan:
    def test_validation(self):
        with pytest.raises(ValueError, match="GPU placement"):
            HybridPlan(accelerator=CPU_PLAN, host=CPU_PLAN)
        with pytest.raises(ValueError, match="CPU-only"):
            HybridPlan(accelerator=GPU_PLAN, host=GPU_PLAN)

    def test_cores_sum_both_paths(self):
        plan = HybridPlan(accelerator=GPU_PLAN, host=CPU_PLAN)
        assert plan.cpu_cores_used == 16

    def test_fits_requires_gpu_and_core_budget(self):
        plan = HybridPlan(accelerator=GPU_PLAN, host=CPU_PLAN)
        assert plan.fits(SERVER_TYPES["T7"])
        assert not plan.fits(SERVER_TYPES["T2"])  # no GPU
        busy_accel = GPU_PLAN.with_(sparse_threads=8, sparse_cores=1)
        fat_host = CPU_PLAN.with_(threads=16, cores_per_thread=1)
        assert not HybridPlan(accelerator=busy_accel, host=fat_host).fits(
            SERVER_TYPES["T7"]
        )

    def test_describe(self):
        plan = HybridPlan(accelerator=GPU_PLAN, host=CPU_PLAN)
        assert plan.describe().startswith("hybrid[")


class TestEvaluateHybrid:
    @pytest.fixture(scope="class")
    def setup(self):
        model = build_model("DLRM-RMC1")
        evaluator = ServerEvaluator(SERVER_TYPES["T7"])
        wl = QueryWorkload.for_model(model.config.mean_query_size)
        accel_pm = partition_model(model, device_memory_bytes=16e9, co_location=2)
        host_pm = partition_model(model)
        return model, evaluator, wl, accel_pm, host_pm

    def test_throughputs_add(self, setup):
        model, evaluator, wl, accel_pm, host_pm = setup
        plan = HybridPlan(accelerator=GPU_PLAN, host=CPU_PLAN)
        accel_only = evaluator.latency_bounded(
            accel_pm, wl, GPU_PLAN, model.sla_ms
        )
        host_only = evaluator.latency_bounded(host_pm, wl, CPU_PLAN, model.sla_ms)
        hybrid = evaluate_hybrid(
            evaluator, accel_pm, host_pm, wl, plan, model.sla_ms
        )
        assert hybrid.feasible
        assert hybrid.qps == pytest.approx(accel_only.qps + host_only.qps, rel=1e-6)
        assert hybrid.latency.p99_ms <= model.sla_ms + 1e-6

    def test_power_counts_idle_once(self, setup):
        model, evaluator, wl, accel_pm, host_pm = setup
        plan = HybridPlan(accelerator=GPU_PLAN, host=CPU_PLAN)
        accel_only = evaluator.latency_bounded(accel_pm, wl, GPU_PLAN, model.sla_ms)
        host_only = evaluator.latency_bounded(host_pm, wl, CPU_PLAN, model.sla_ms)
        hybrid = evaluate_hybrid(evaluator, accel_pm, host_pm, wl, plan, model.sla_ms)
        # Strictly less than the naive sum (which double counts idle).
        assert hybrid.power_w < accel_only.power_w + host_only.power_w
        assert hybrid.power_w > max(accel_only.power_w, host_only.power_w)

    def test_power_budget_enforced(self, setup):
        model, evaluator, wl, accel_pm, host_pm = setup
        plan = HybridPlan(accelerator=GPU_PLAN, host=CPU_PLAN)
        free = evaluate_hybrid(evaluator, accel_pm, host_pm, wl, plan, model.sla_ms)
        capped = evaluate_hybrid(
            evaluator,
            accel_pm,
            host_pm,
            wl,
            plan,
            model.sla_ms,
            power_budget_w=free.power_w * 0.5,
        )
        assert not capped.feasible

    def test_oversubscribed_cores_rejected(self, setup):
        model, evaluator, wl, accel_pm, host_pm = setup
        fat = HybridPlan(
            accelerator=GPU_PLAN.with_(sparse_threads=10, sparse_cores=2),
            host=CPU_PLAN,
        )
        perf = evaluate_hybrid(evaluator, accel_pm, host_pm, wl, fat, model.sla_ms)
        assert not perf.feasible


class TestHybridSearch:
    def test_extends_gpu_plan_with_leftover_cores(self):
        model = build_model("DLRM-RMC1")
        evaluator = ServerEvaluator(SERVER_TYPES["T7"])
        gpu_result = GradientSearch(evaluator, model).search_gpu_model_based()
        assert gpu_result.feasible
        hybrid_plan, hybrid_perf = HybridSearch(evaluator, model).search(
            gpu_result.plan
        )
        if gpu_result.plan.cpu_cores_used < evaluator.server.cpu.cores:
            assert hybrid_plan is not None
            assert hybrid_perf.qps > gpu_result.perf.qps
        else:
            assert hybrid_plan is None

    def test_no_gpu_returns_none(self):
        model = build_model("DLRM-RMC1")
        evaluator = ServerEvaluator(SERVER_TYPES["T2"])
        plan, perf = HybridSearch(evaluator, model).search(CPU_PLAN)
        assert plan is None and perf is None

    def test_no_leftover_cores_returns_none(self):
        model = build_model("DLRM-RMC2")  # cold path pins all 20 cores
        evaluator = ServerEvaluator(SERVER_TYPES["T7"])
        busy_gpu = ExecutionPlan(
            Placement.GPU_MODEL_BASED,
            threads=1,
            sparse_threads=20,
            sparse_cores=1,
        )
        plan, perf = HybridSearch(evaluator, model).search(busy_gpu)
        assert plan is None and perf is None
