"""Fleet engine tests: analytic consistency, SLA accounting, scaling.

The load-bearing checks mirror how the paper validates its models
against the load-generator prototype:

- a steady-load fleet's per-server throughput must match the offered
  share (and the saturated throughput the closed-form evaluator
  predicts) within tolerance;
- p99 must be monotone non-decreasing in offered load;
- a single-replica fleet must agree with the single-node DES.
"""

from __future__ import annotations

import time

import pytest

from repro.cluster import ClusterManager, GreedyScheduler, synchronous_traces
from repro.cluster.state import Allocation
from repro.fleet import (
    FleetSimulator,
    ReactiveAutoscaler,
    build_fleet,
    build_fleet_trace,
    diurnal_segments,
)
from repro.models import build_model
from repro.sim import QueryWorkload
from repro.sim.server_sim import DiscreteEventServerSim, build_stages
from repro.sim import plan_cache


@pytest.fixture(scope="module")
def rmc1_models():
    return {"DLRM-RMC1": build_model("DLRM-RMC1")}


@pytest.fixture(scope="module")
def rmc1_only_workloads(rmc1_models):
    model = rmc1_models["DLRM-RMC1"]
    return {"DLRM-RMC1": QueryWorkload.for_model(model.config.mean_query_size)}


def _uniform_fleet(small_table, rmc1_models, rmc1_only_workloads, count, srv="T2"):
    allocation = Allocation()
    allocation.add(srv, "DLRM-RMC1", count)
    return build_fleet(allocation, small_table, rmc1_models, rmc1_only_workloads)


def _steady_trace(rmc1_only_workloads, qps, duration, seed=0):
    return build_fleet_trace(
        rmc1_only_workloads, {"DLRM-RMC1": [(qps, duration)]}, seed=seed
    )


class TestAnalyticConsistency:
    def test_per_server_throughput_matches_offered_share(
        self, small_table, rmc1_models, rmc1_only_workloads
    ):
        """Under capacity, each replica completes its routed share."""
        tup = small_table.get("T2", "DLRM-RMC1")
        n = 4
        offered = 0.7 * n * tup.qps
        servers = _uniform_fleet(small_table, rmc1_models, rmc1_only_workloads, n)
        trace = _steady_trace(rmc1_only_workloads, offered, duration=8.0, seed=3)
        # rr splits a uniform fleet evenly; queue-aware policies skew
        # per-server counts through deterministic tie-breaks.
        sim = FleetSimulator(servers, policy="rr", sla_ms={"DLRM-RMC1": 20.0})
        result = sim.run(trace, warmup_s=1.0)
        fleet_qps = result.per_model["DLRM-RMC1"].qps
        assert fleet_qps == pytest.approx(offered, rel=0.06)
        for stats in result.servers:
            assert stats.qps == pytest.approx(offered / n, rel=0.15)

    def test_saturated_throughput_matches_evaluator_capacity(
        self, small_table, rmc1_models, rmc1_only_workloads
    ):
        """Overloaded, a replica converges to the analytic capacity."""
        model = rmc1_models["DLRM-RMC1"]
        workload = rmc1_only_workloads["DLRM-RMC1"]
        tup = small_table.get("T2", "DLRM-RMC1")
        from repro.hardware import SERVER_TYPES

        timings = plan_cache.timings_for(
            SERVER_TYPES["T2"], model, workload, tup.plan
        )
        capacity_qps = timings.capacity_items_s / workload.mean_size
        servers = _uniform_fleet(small_table, rmc1_models, rmc1_only_workloads, 1)
        trace = _steady_trace(
            rmc1_only_workloads, 1.5 * capacity_qps, duration=6.0, seed=5
        )
        sim = FleetSimulator(servers, policy="rr", sla_ms={"DLRM-RMC1": 20.0})
        result = sim.run(trace, warmup_s=1.0)
        measured = result.servers[0].qps
        assert measured == pytest.approx(capacity_qps, rel=0.2)
        # The latency-bounded operating point can never exceed capacity.
        assert tup.qps <= capacity_qps * 1.01

    def test_p99_monotone_in_offered_load(
        self, small_table, rmc1_models, rmc1_only_workloads
    ):
        """Property: heavier offered load never improves the tail."""
        tup = small_table.get("T2", "DLRM-RMC1")
        n = 3
        p99s = []
        for frac in (0.3, 0.55, 0.8):
            servers = _uniform_fleet(small_table, rmc1_models, rmc1_only_workloads, n)
            trace = _steady_trace(
                rmc1_only_workloads, frac * n * tup.qps, duration=6.0, seed=11
            )
            sim = FleetSimulator(servers, policy="least", sla_ms={"DLRM-RMC1": 20.0})
            p99s.append(sim.run(trace, warmup_s=1.0).per_model["DLRM-RMC1"].p99_ms)
        assert p99s[1] >= p99s[0] * 0.95
        assert p99s[2] >= p99s[1] * 0.95
        assert p99s[2] > p99s[0]

    def test_single_replica_fleet_matches_single_node_des(
        self, small_table, rmc1_models, rmc1_only_workloads
    ):
        """A 1-server fleet is the single-node simulator, re-housed."""
        from repro.hardware import SERVER_TYPES

        model = rmc1_models["DLRM-RMC1"]
        workload = rmc1_only_workloads["DLRM-RMC1"]
        tup = small_table.get("T2", "DLRM-RMC1")
        evaluator = plan_cache.shared_evaluator(SERVER_TYPES["T2"])
        partitioned = plan_cache.partitioned_for(SERVER_TYPES["T2"], model, tup.plan)
        stages = build_stages(evaluator, partitioned, workload, tup.plan)

        trace = _steady_trace(rmc1_only_workloads, 0.6 * tup.qps, duration=8.0, seed=7)
        queries = [q for _, q in trace]
        single = DiscreteEventServerSim(stages).run(queries, warmup_s=1.0)

        servers = _uniform_fleet(small_table, rmc1_models, rmc1_only_workloads, 1)
        fleet = FleetSimulator(servers, policy="rr", sla_ms={"DLRM-RMC1": 20.0})
        result = fleet.run(trace, warmup_s=1.0)

        import numpy as np

        stats = result.per_model["DLRM-RMC1"]
        # The fleet excludes completions draining past the horizon, the
        # single-node sim does not -- identical otherwise.
        assert stats.completed == pytest.approx(single.completed, rel=0.01)
        assert stats.p50_ms == pytest.approx(
            float(np.percentile(single.latencies_s, 50)) * 1e3, rel=0.02
        )
        assert stats.p99_ms == pytest.approx(
            float(np.percentile(single.latencies_s, 99)) * 1e3, rel=0.05
        )


class TestEngineBehaviour:
    def test_empty_trace_rejected(
        self, small_table, rmc1_models, rmc1_only_workloads
    ):
        servers = _uniform_fleet(small_table, rmc1_models, rmc1_only_workloads, 1)
        sim = FleetSimulator(servers, sla_ms={"DLRM-RMC1": 20.0})
        with pytest.raises(ValueError, match="empty fleet trace"):
            sim.run([])

    def test_no_servers_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            FleetSimulator([], sla_ms={})

    def test_queries_without_replica_are_dropped(
        self, small_table, rmc1_models, rmc1_only_workloads
    ):
        """A model with zero active replicas loses its stream, visibly."""
        allocation = Allocation()
        allocation.add("T2", "DLRM-RMC1", 1)
        standby = Allocation()
        standby.add("T2", "DLRM-RMC2", 1)
        models = dict(rmc1_models)
        models["DLRM-RMC2"] = build_model("DLRM-RMC2")
        servers = build_fleet(allocation, small_table, models, standby=standby)
        workloads = dict(rmc1_only_workloads)
        workloads["DLRM-RMC2"] = QueryWorkload.for_model(
            models["DLRM-RMC2"].config.mean_query_size
        )
        trace = build_fleet_trace(
            workloads,
            {"DLRM-RMC1": [(200.0, 2.0)], "DLRM-RMC2": [(50.0, 2.0)]},
            seed=1,
        )
        sim = FleetSimulator(
            servers, sla_ms={"DLRM-RMC1": 20.0, "DLRM-RMC2": 50.0}
        )
        result = sim.run(trace)
        assert result.per_model["DLRM-RMC2"].dropped > 0
        assert result.per_model["DLRM-RMC2"].violation_rate == 1.0
        assert result.per_model["DLRM-RMC1"].dropped == 0

    def test_model_absent_from_fleet_surfaces_as_dropped(
        self, small_table, rmc1_models, rmc1_only_workloads
    ):
        """A trace naming a model no replica serves must not vanish."""
        servers = _uniform_fleet(small_table, rmc1_models, rmc1_only_workloads, 1)
        workloads = dict(rmc1_only_workloads)
        workloads["DLRM-RMC2"] = QueryWorkload.for_model(150)
        trace = build_fleet_trace(
            workloads,
            {"DLRM-RMC1": [(200.0, 2.0)], "DLRM-RMC2": [(50.0, 2.0)]},
            seed=6,
        )
        sim = FleetSimulator(
            servers, sla_ms={"DLRM-RMC1": 20.0, "DLRM-RMC2": 50.0}
        )
        result = sim.run(trace)
        assert "DLRM-RMC2" in result.per_model
        assert result.per_model["DLRM-RMC2"].dropped > 0
        assert result.per_model["DLRM-RMC2"].violation_rate == 1.0
        assert result.total_dropped > 0

    def test_report_format_mentions_all_models(
        self, small_table, rmc1_models, rmc1_only_workloads
    ):
        servers = _uniform_fleet(small_table, rmc1_models, rmc1_only_workloads, 2)
        trace = _steady_trace(rmc1_only_workloads, 500.0, duration=2.0)
        result = FleetSimulator(servers, sla_ms={"DLRM-RMC1": 20.0}).run(trace)
        text = result.format()
        assert "DLRM-RMC1" in text
        assert "fleet power" in text

    def test_diurnal_segments_compress_the_day(self):
        traces = synchronous_traces({"DLRM-RMC1": 1000.0})
        segs = diurnal_segments(traces["DLRM-RMC1"], duration_s=4.0, steps=8)
        assert len(segs) == 8
        assert sum(d for _, d in segs) == pytest.approx(4.0)
        assert max(q for q, _ in segs) > 2 * min(q for q, _ in segs)


class TestAutoscaler:
    def test_overload_activates_standby(
        self, small_table, rmc1_models, rmc1_only_workloads
    ):
        tup = small_table.get("T2", "DLRM-RMC1")
        allocation = Allocation()
        allocation.add("T2", "DLRM-RMC1", 1)
        standby = Allocation()
        standby.add("T2", "DLRM-RMC1", 2)
        servers = build_fleet(
            allocation, small_table, rmc1_models, rmc1_only_workloads, standby=standby
        )
        trace = _steady_trace(rmc1_only_workloads, 2.2 * tup.qps, duration=6.0, seed=2)
        scaler = ReactiveAutoscaler(
            {"DLRM-RMC1": 20.0}, window_s=0.25, cooldown_s=0.5
        )
        sim = FleetSimulator(
            servers, policy="least", sla_ms={"DLRM-RMC1": 20.0}, autoscaler=scaler
        )
        result = sim.run(trace, warmup_s=1.0)
        activations = [e for e in result.scale_events if e.action == "activate"]
        assert len(activations) >= 2
        assert result.active_servers == 3

        # Without the autoscaler the same trace must end with a worse tail.
        static = FleetSimulator(
            build_fleet(allocation, small_table, rmc1_models, rmc1_only_workloads),
            policy="least",
            sla_ms={"DLRM-RMC1": 20.0},
        ).run(trace, warmup_s=1.0)
        assert (
            result.per_model["DLRM-RMC1"].p99_ms
            < static.per_model["DLRM-RMC1"].p99_ms
        )

    def test_low_load_drains_replicas(
        self, small_table, rmc1_models, rmc1_only_workloads
    ):
        tup = small_table.get("T2", "DLRM-RMC1")
        servers = _uniform_fleet(small_table, rmc1_models, rmc1_only_workloads, 3)
        trace = _steady_trace(rmc1_only_workloads, 0.1 * tup.qps, duration=6.0, seed=4)
        scaler = ReactiveAutoscaler(
            {"DLRM-RMC1": 20.0}, window_s=0.5, cooldown_s=1.0
        )
        sim = FleetSimulator(
            servers, policy="least", sla_ms={"DLRM-RMC1": 20.0}, autoscaler=scaler
        )
        result = sim.run(trace, warmup_s=1.0)
        drains = [e for e in result.scale_events if e.action == "drain"]
        assert drains, "an over-provisioned fleet at 10% load must drain"
        # min_active floor holds.
        assert sum(1 for s in result.servers if s.ever_active) >= 1

    def test_standby_only_model_bootstraps_from_drops(
        self, small_table, rmc1_models, rmc1_only_workloads
    ):
        """Drops trigger activation even with zero active replicas."""
        allocation = Allocation()
        allocation.add("T2", "DLRM-RMC1", 1)
        standby = Allocation()
        standby.add("T2", "DLRM-RMC2", 1)
        models = dict(rmc1_models)
        models["DLRM-RMC2"] = build_model("DLRM-RMC2")
        workloads = dict(rmc1_only_workloads)
        workloads["DLRM-RMC2"] = QueryWorkload.for_model(
            models["DLRM-RMC2"].config.mean_query_size
        )
        servers = build_fleet(
            allocation, small_table, models, workloads, standby=standby
        )
        trace = build_fleet_trace(
            workloads,
            {"DLRM-RMC1": [(200.0, 5.0)], "DLRM-RMC2": [(40.0, 5.0)]},
            seed=8,
        )
        scaler = ReactiveAutoscaler(
            {"DLRM-RMC1": 20.0, "DLRM-RMC2": 50.0}, window_s=0.25, cooldown_s=0.5
        )
        sim = FleetSimulator(
            servers,
            policy="least",
            sla_ms={"DLRM-RMC1": 20.0, "DLRM-RMC2": 50.0},
            autoscaler=scaler,
        )
        result = sim.run(trace)
        activations = [
            e
            for e in result.scale_events
            if e.action == "activate" and e.model == "DLRM-RMC2"
        ]
        assert activations, "drops must bootstrap the standby replica"
        assert result.per_model["DLRM-RMC2"].completed > 0

    def test_min_active_respected(self):
        scaler = ReactiveAutoscaler({"m": 10.0}, min_active=1)
        events = scaler.tick(
            now=10.0,
            window_lat_ms={"m": [1.0] * 50},
            window_arrivals={"m": 1},
            routable={"m": [type("S", (), {"weight": 100.0})()]},
            standby_for=lambda m: [],
        )
        assert events == []


class TestManagerReplay:
    def test_replay_request_level_yields_interval_results(
        self, small_table, rmc1_models, rmc1_only_workloads
    ):
        fleet = {"T2": 8, "T3": 2}
        manager = ClusterManager(
            GreedyScheduler(small_table, fleet), interval_minutes=240.0
        )
        traces = synchronous_traces({"DLRM-RMC1": 2000.0})
        results = manager.replay_request_level(
            traces,
            rmc1_models,
            rmc1_only_workloads,
            policy="p2c",
            sim_seconds_per_interval=1.0,
            seed=3,
        )
        assert len(results) == 6  # 24h / 240min intervals
        hours = [h for h, _ in results]
        assert hours == sorted(hours)
        for _, res in results:
            assert res.per_model["DLRM-RMC1"].completed > 0
            assert res.avg_power_w > 0


@pytest.mark.slow
def test_steady_state_50_servers_100k_queries_under_30s(
    small_table, rmc1_models, rmc1_only_workloads
):
    """The ISSUE acceptance bound: 50 x 100k steady state in < 30 s."""
    models = dict(rmc1_models)
    models["DLRM-RMC2"] = build_model("DLRM-RMC2")
    workloads = dict(rmc1_only_workloads)
    workloads["DLRM-RMC2"] = QueryWorkload.for_model(
        models["DLRM-RMC2"].config.mean_query_size
    )
    allocation = Allocation()
    for name, counts in {
        "DLRM-RMC1": {"T2": 18, "T3": 6, "T7": 4},
        "DLRM-RMC2": {"T2": 12, "T3": 6, "T7": 4},
    }.items():
        for srv, count in counts.items():
            allocation.add(srv, name, count)
    servers = build_fleet(allocation, small_table, models, workloads)
    assert len(servers) == 50
    capacity = {
        name: sum(
            c * small_table.qps(srv, m)
            for (srv, m), c in allocation.counts.items()
            if m == name
        )
        for name in models
    }
    total = 0.75 * sum(capacity.values())
    duration = 100_000 / total
    trace = build_fleet_trace(
        workloads,
        {name: [(0.75 * capacity[name], duration)] for name in models},
        seed=9,
    )
    assert len(trace) >= 90_000
    start = time.monotonic()
    sim = FleetSimulator(
        servers, policy="p2c", sla_ms={n: m.sla_ms for n, m in models.items()}
    )
    result = sim.run(trace, warmup_s=duration * 0.1)
    elapsed = time.monotonic() - start
    assert elapsed < 30.0, f"fleet steady state took {elapsed:.1f}s"
    assert result.total_completed > 80_000
