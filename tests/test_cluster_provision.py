"""Tests for the LP provisioner: simplex substrate, scipy parity, rounding."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import SimplexSolver, integerize, solve_allocation_lp
from repro.plans import ExecutionPlan, Placement
from repro.scheduling import ClassificationTable, EfficiencyTuple

_PLAN = ExecutionPlan(Placement.CPU_MODEL_BASED, threads=1)


def _table() -> ClassificationTable:
    table = ClassificationTable()
    table.add(EfficiencyTuple("T2", "A", qps=1000, power_w=100, plan=_PLAN))
    table.add(EfficiencyTuple("T3", "A", qps=4000, power_w=150, plan=_PLAN))
    table.add(EfficiencyTuple("T2", "B", qps=100, power_w=90, plan=_PLAN))
    table.add(EfficiencyTuple("T3", "B", qps=400, power_w=120, plan=_PLAN))
    return table


class TestSimplexSolver:
    def test_simple_minimization(self):
        # min x0 + 2 x1  s.t.  -x0 - x1 <= -4 (x0 + x1 >= 4), x <= 10 each
        c = np.array([1.0, 2.0])
        a = np.array([[-1.0, -1.0], [1.0, 0.0], [0.0, 1.0]])
        b = np.array([-4.0, 10.0, 10.0])
        x, obj = SimplexSolver().solve(c, a, b)
        assert x is not None
        assert obj == pytest.approx(4.0)
        assert x[0] == pytest.approx(4.0)

    def test_infeasible_detected(self):
        # x0 >= 5 and x0 <= 2 is infeasible.
        c = np.array([1.0])
        a = np.array([[-1.0], [1.0]])
        b = np.array([-5.0, 2.0])
        x, obj = SimplexSolver().solve(c, a, b)
        assert x is None and math.isinf(obj)

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            SimplexSolver().solve(
                np.array([1.0]), np.array([[1.0, 2.0]]), np.array([1.0])
            )

    @settings(max_examples=30, deadline=None)
    @given(
        costs=st.lists(st.floats(1.0, 100.0), min_size=2, max_size=4),
        demand=st.floats(1.0, 50.0),
    )
    def test_matches_scipy_on_random_covering_lps(self, costs, demand):
        """Covering LPs: min c@x s.t. sum(a_i x_i) >= demand, x_i <= 10."""
        rng = np.random.default_rng(int(demand * 1000) % 2**31)
        n = len(costs)
        rates = rng.uniform(1.0, 10.0, size=n)
        c = np.array(costs)
        a = np.vstack([-rates, np.eye(n)])
        b = np.concatenate([[-demand], np.full(n, 10.0)])
        ours, our_obj = SimplexSolver().solve(c, a, b)
        from scipy.optimize import linprog

        ref = linprog(c, A_ub=a, b_ub=b, method="highs")
        if ref.status == 0:
            assert ours is not None
            assert our_obj == pytest.approx(ref.fun, rel=1e-6, abs=1e-6)
        else:
            assert ours is None


class TestSolveAllocationLp:
    def test_fractional_solution_covers_loads(self):
        table = _table()
        loads = {"A": 10_000.0, "B": 800.0}
        fleet = {"T2": 50, "T3": 10}
        sol = solve_allocation_lp(table, loads, fleet, solver="simplex")
        assert sol.feasible
        cover_a = sum(
            v * table.qps(s, m) for (s, m), v in sol.values.items() if m == "A"
        )
        assert cover_a >= 10_000.0 - 1e-6

    def test_scipy_and_simplex_agree(self):
        table = _table()
        loads = {"A": 12_000.0, "B": 1_000.0}
        fleet = {"T2": 40, "T3": 8}
        scipy_sol = solve_allocation_lp(table, loads, fleet, solver="scipy")
        simplex_sol = solve_allocation_lp(table, loads, fleet, solver="simplex")
        assert scipy_sol.objective_w == pytest.approx(
            simplex_sol.objective_w, rel=1e-6
        )

    def test_prefers_efficient_servers(self):
        table = _table()
        sol = solve_allocation_lp(table, {"A": 4000.0}, {"T2": 100, "T3": 100})
        # T3 serves A at 26.7 qps/W vs T2's 10: the LP should use T3 only.
        assert all(srv == "T3" for srv, _ in sol.values)

    def test_empty_loads_trivial(self):
        sol = solve_allocation_lp(_table(), {"A": 0.0}, {"T2": 10})
        assert sol.feasible and sol.values == {}

    def test_infeasible_when_fleet_too_small(self):
        sol = solve_allocation_lp(_table(), {"A": 1e9}, {"T2": 1, "T3": 1})
        assert not sol.feasible

    def test_over_provision_rate_raises_cost(self):
        table = _table()
        fleet = {"T2": 100, "T3": 100}
        base = solve_allocation_lp(table, {"A": 10_000.0}, fleet, over_provision=0.0)
        padded = solve_allocation_lp(table, {"A": 10_000.0}, fleet, over_provision=0.2)
        assert padded.objective_w == pytest.approx(1.2 * base.objective_w, rel=1e-6)

    def test_unknown_solver_rejected(self):
        with pytest.raises(ValueError):
            solve_allocation_lp(_table(), {"A": 1.0}, {"T2": 1}, solver="cplex")


class TestIntegerize:
    def test_integer_allocation_covers_loads(self):
        table = _table()
        loads = {"A": 9_500.0, "B": 750.0}
        fleet = {"T2": 50, "T3": 10}
        sol = solve_allocation_lp(table, loads, fleet)
        alloc = integerize(sol, table, loads, fleet)
        assert alloc.covers(table, loads)
        assert alloc.respects_fleet(fleet)
        assert not alloc.has_shortfall

    def test_integer_cost_close_to_fractional(self):
        table = _table()
        loads = {"A": 9_500.0, "B": 750.0}
        fleet = {"T2": 50, "T3": 10}
        sol = solve_allocation_lp(table, loads, fleet)
        alloc = integerize(sol, table, loads, fleet)
        assert alloc.provisioned_power_w(table) <= sol.objective_w * 1.2 + 200

    def test_shortfall_recorded_when_fleet_exhausted(self):
        table = _table()
        loads = {"A": 1e8}
        fleet = {"T2": 2, "T3": 2}
        sol = solve_allocation_lp(table, loads, fleet)
        alloc = integerize(sol, table, loads, fleet)
        assert alloc.has_shortfall
        assert alloc.shortfall["A"] > 0
