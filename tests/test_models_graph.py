"""Unit tests for computation graphs."""

from __future__ import annotations

import pytest

from repro.models.graph import Graph, GraphError, Node
from repro.models.ops import Activation, EmbeddingLookup, FullyConnected, MLP


def _diamond() -> Graph:
    """bottom -> (left, right) -> top."""
    g = Graph("diamond")
    g.add(Node(op=FullyConnected(name="bottom", in_dim=8, out_dim=8)))
    g.add(Node(op=FullyConnected(name="left", in_dim=8, out_dim=8), deps=("bottom",)))
    g.add(Node(op=FullyConnected(name="right", in_dim=8, out_dim=8), deps=("bottom",)))
    g.add(Node(op=FullyConnected(name="top", in_dim=16, out_dim=1), deps=("left", "right")))
    return g


def test_construction_and_lookup():
    g = _diamond()
    assert len(g) == 4
    assert "left" in g
    assert g.node("top").deps == ("left", "right")
    with pytest.raises(GraphError):
        g.node("missing")


def test_duplicate_names_rejected():
    g = Graph("g")
    g.add(Node(op=FullyConnected(name="a")))
    with pytest.raises(GraphError):
        g.add(Node(op=FullyConnected(name="a")))


def test_dangling_dependency_rejected():
    g = Graph("g")
    with pytest.raises(GraphError):
        g.add(Node(op=FullyConnected(name="a"), deps=("ghost",)))


def test_sources_and_sinks():
    g = _diamond()
    assert [n.name for n in g.sources()] == ["bottom"]
    assert [n.name for n in g.sinks()] == ["top"]
    assert {n.name for n in g.consumers("bottom")} == {"left", "right"}


def test_topological_order_respects_deps():
    g = _diamond()
    order = [n.name for n in g.topological_order()]
    for node in g:
        for dep in node.deps:
            assert order.index(dep) < order.index(node.name)


def test_subgraph_drops_cross_edges():
    g = _diamond()
    sub = g.subgraph("sub", ["left", "top"])
    assert len(sub) == 2
    assert sub.node("left").deps == ()  # bottom edge dropped
    assert sub.node("top").deps == ("left",)  # right edge dropped
    with pytest.raises(GraphError):
        g.subgraph("bad", ["nope"])


def test_critical_path_of_diamond():
    g = _diamond()
    weights = {"bottom": 1.0, "left": 2.0, "right": 5.0, "top": 1.0}
    assert g.critical_path_length(weights) == pytest.approx(7.0)


def test_cost_rollups_sum_over_nodes():
    g = _diamond()
    items = 32
    assert g.total_flops(items) == pytest.approx(
        sum(n.op.flops(items) for n in g)
    )
    assert g.total_weight_bytes() == pytest.approx(
        sum(n.op.weight_bytes for n in g)
    )


def test_boundary_bytes_only_count_sources_and_sinks():
    g = _diamond()
    assert g.total_input_bytes(4) == pytest.approx(
        g.node("bottom").op.input_bytes(4)
    )
    assert g.total_output_bytes(4) == pytest.approx(
        g.node("top").op.output_bytes(4)
    )


def test_sparse_dense_split_views():
    g = Graph("mixed")
    g.add(Node(op=EmbeddingLookup(name="emb", pooling_factor=10)))
    g.add(Node(op=MLP(name="mlp", layer_dims=(8, 4)), deps=()))
    assert [n.name for n in g.sparse_nodes] == ["emb"]
    assert [n.name for n in g.dense_nodes] == ["mlp"]


def test_empty_graph_behaviour():
    g = Graph("empty")
    assert len(g) == 0
    assert g.critical_path_length({}) == 0.0
    assert g.sinks() == ()
