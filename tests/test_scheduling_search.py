"""Tests for the gradient-based search and the baseline schedulers."""

from __future__ import annotations

import pytest

from repro.hardware import SERVER_TYPES
from repro.models import build_model
from repro.plans import Placement
from repro.scheduling import (
    BaselineTaskScheduler,
    BaymaxScheduler,
    DeepRecSysScheduler,
    GradientSearch,
    HerculesTaskScheduler,
    SearchResult,
)
from repro.sim import ServerEvaluator, ServerPerformance


@pytest.fixture(scope="module")
def t2():
    return ServerEvaluator(SERVER_TYPES["T2"])


@pytest.fixture(scope="module")
def t7():
    return ServerEvaluator(SERVER_TYPES["T7"])


class TestGradientSearch:
    def test_cpu_search_finds_feasible_plan(self, t2, rmc1):
        result = GradientSearch(t2, rmc1).search_cpu_model_based()
        assert result.feasible
        assert result.plan.placement is Placement.CPU_MODEL_BASED
        assert result.perf.latency.p99_ms <= rmc1.sla_ms
        assert result.evaluations > 0
        assert len(result.visited) == result.evaluations

    def test_search_never_below_deeprecsys(self, t2, rmc1, rmc3):
        """Hercules explores a superset of the DeepRecSys space."""
        for model in (rmc1, rmc3):
            hercules = HerculesTaskScheduler(
                ServerEvaluator(SERVER_TYPES["T2"]), model
            ).search()
            baseline = DeepRecSysScheduler(
                ServerEvaluator(SERVER_TYPES["T2"]), model
            ).search_cpu()
            assert hercules.perf.qps >= baseline.perf.qps * 0.999

    def test_gradient_cheaper_than_exhaustive(self, t2, rmc1):
        """The convexity ablation: far fewer evaluations than the full
        Psp(M+D+O) grid (20 threads x 8 batches x 20 core counts)."""
        result = GradientSearch(t2, rmc1).search_cpu_model_based()
        assert result.evaluations < 400

    def test_gpu_search_uses_fusion(self, t7, rmc3):
        result = GradientSearch(t7, rmc3).search_gpu_model_based()
        assert result.feasible
        assert result.plan.placement is Placement.GPU_MODEL_BASED
        assert result.plan.fusion_limit > 0

    def test_gpu_search_skipped_without_gpu(self, t2, rmc1):
        result = GradientSearch(t2, rmc1).search_gpu_model_based()
        assert not result.feasible

    def test_impossible_sla_returns_infeasible(self, t2, rmc1):
        result = GradientSearch(t2, rmc1, sla_ms=0.001).search_cpu_model_based()
        assert not result.feasible
        assert result.plan is None


class TestSearchResult:
    def _result(self, qps, feasible=True):
        if not feasible:
            return SearchResult(
                plan=None, perf=ServerPerformance.infeasible("x"), evaluations=1
            )
        from repro.plans import ExecutionPlan

        from repro.sim import LatencyStats

        perf = ServerPerformance(
            qps=qps,
            latency=LatencyStats(1, 2, 3, 1.5),
            power_w=100.0,
        )
        plan = ExecutionPlan(Placement.CPU_MODEL_BASED, threads=1)
        return SearchResult(plan=plan, perf=perf, evaluations=1)

    def test_merge_keeps_better(self):
        merged = self._result(100).merge(self._result(200))
        assert merged.perf.qps == 200

    def test_merge_handles_infeasible(self):
        good = self._result(100)
        bad = self._result(0, feasible=False)
        assert good.merge(bad).perf.qps == 100
        assert bad.merge(good).perf.qps == 100


class TestHerculesVsBaselines:
    def test_fig14_gpu_gains(self, t7):
        """Fig. 14: compute-dominated models gain most on CPU+GPU."""
        for name, min_gain in (("DLRM-RMC3", 2.0), ("MT-WnD", 3.0), ("DIN", 3.0)):
            model = build_model(name)
            evaluator = ServerEvaluator(SERVER_TYPES["T7"])
            hercules = HerculesTaskScheduler(evaluator, model).search()
            baseline = BaselineTaskScheduler(evaluator, model).search()
            assert hercules.feasible and baseline.feasible
            assert hercules.perf.qps > min_gain * baseline.perf.qps

    def test_baymax_beats_deeprecsys_on_gpu(self, t7, rmc3):
        evaluator = ServerEvaluator(SERVER_TYPES["T7"])
        baymax = BaymaxScheduler(evaluator, rmc3).search()
        deeprecsys = DeepRecSysScheduler(evaluator, rmc3).search_gpu()
        assert baymax.feasible and deeprecsys.feasible
        assert baymax.perf.qps >= deeprecsys.perf.qps
        assert baymax.plan.fusion_limit == 0  # never fuses

    def test_baymax_requires_gpu(self, t2, rmc1):
        result = BaymaxScheduler(t2, rmc1).search()
        assert not result.feasible

    def test_deeprecsys_fixes_one_core_per_thread(self, t2, rmc1):
        result = DeepRecSysScheduler(t2, rmc1).search_cpu()
        assert result.feasible
        assert result.plan.cores_per_thread == 1
        assert result.plan.threads == SERVER_TYPES["T2"].cpu.cores
