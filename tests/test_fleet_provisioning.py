"""Fault-aware provisioning: the availability -> ``R`` fixpoint loop.

Pins the tentpole semantics: the search converges to the smallest
over-provision rate whose fault-injected replay meets the target
service availability, reports the power delta against the fault-blind
baseline, is deterministic given (trace, schedule, seed), and degrades
gracefully (no convergence) when no ``R`` can meet the target.
"""

from __future__ import annotations

import pytest

from repro.cluster import HerculesClusterScheduler
from repro.fleet import (
    FaultDomains,
    FaultSchedule,
    build_fleet_trace,
    crash,
    domain_crash,
    provision_fault_aware,
    service_availability,
)
from repro.models import build_model
from repro.sim import QueryWorkload

MODEL = "DLRM-RMC1"
DURATION_S = 2.0
SEED = 7


@pytest.fixture(scope="module")
def rmc1_models():
    return {MODEL: build_model(MODEL)}


@pytest.fixture(scope="module")
def rmc1_workloads(rmc1_models):
    model = rmc1_models[MODEL]
    return {MODEL: QueryWorkload.for_model(model.config.mean_query_size)}


@pytest.fixture(scope="module")
def provisioning_inputs(small_table, rmc1_workloads):
    """A load that saturates the R=0 allocation: 2.7 replica-equivalents
    of demand lands on ceil(2.7) = 3 replicas at 90% utilization, so a
    mid-run crash overloads the survivors and only headroom (R) can
    absorb it."""
    tup = small_table.get("T2", MODEL)
    loads = {MODEL: 2.7 * tup.qps}
    trace = build_fleet_trace(
        rmc1_workloads, {MODEL: [(loads[MODEL], DURATION_S)]}, seed=SEED
    )
    scheduler = HerculesClusterScheduler(small_table, {"T2": 12})
    return scheduler, loads, trace


def _provision(
    small_table, rmc1_models, rmc1_workloads, provisioning_inputs, *, faults, **kw
):
    scheduler, loads, trace = provisioning_inputs
    kwargs = dict(
        sla_ms={MODEL: 20.0},
        target_availability=0.995,
        baseline_r=0.0,
        policy="least",
        retries=2,
        seed=SEED,
        warmup_s=0.1,
        r_tol=0.05,
    )
    kwargs.update(kw)
    return provision_fault_aware(
        scheduler,
        small_table,
        rmc1_models,
        rmc1_workloads,
        trace,
        loads,
        faults,
        **kwargs,
    )


class TestConvergence:
    def test_converges_above_failing_baseline(
        self, small_table, rmc1_models, rmc1_workloads, provisioning_inputs
    ):
        """The fault-blind R=0 point misses the target; the loop finds a
        bigger R that meets it and prices the difference."""
        schedule = FaultSchedule([crash(1.0, 0, recover_after=0.4)])
        outcome = _provision(
            small_table, rmc1_models, rmc1_workloads, provisioning_inputs,
            faults=schedule,
        )
        assert outcome.converged
        assert not outcome.baseline_meets_target, (
            "the scenario must be one the fault-blind provisioner fails"
        )
        assert outcome.chosen_r is not None and outcome.chosen_r > 0.0
        assert service_availability(outcome.result) >= 0.995
        # The headroom costs real provisioned power, and the report
        # quantifies it against the blind baseline.
        assert outcome.allocation.total_servers > outcome.baseline_allocation.total_servers
        assert outcome.power_delta_w > 0.0
        assert outcome.standby_power_w > 0.0
        assert outcome.provisioned_power_w == pytest.approx(
            outcome.baseline_power_w + outcome.power_delta_w
        )
        # Every evaluated point carries the measured pair the loop fed back.
        assert outcome.evaluations[0].r == 0.0  # baseline first
        for ev in outcome.evaluations:
            assert 0.0 <= ev.service_availability <= 1.0
            assert 0.0 <= ev.uptime_availability <= 1.0
            assert ev.meets_target == (ev.service_availability >= 0.995)

    def test_correlated_domain_crash_needs_more_headroom(
        self, small_table, rmc1_models, rmc1_workloads, provisioning_inputs
    ):
        """Losing a whole 2-replica rack costs at least as much R as
        losing one replica (same instant, same recovery)."""
        single = FaultSchedule([crash(1.0, 0, recover_after=0.4)])
        rack = FaultSchedule(
            domains=FaultDomains(size=2),
            domain_events=[domain_crash(1.0, 0, recover_after=0.4)],
        )
        lone = _provision(
            small_table, rmc1_models, rmc1_workloads, provisioning_inputs,
            faults=single,
        )
        correlated = _provision(
            small_table, rmc1_models, rmc1_workloads, provisioning_inputs,
            faults=rack,
        )
        assert lone.converged and correlated.converged
        assert correlated.chosen_r >= lone.chosen_r
        assert (
            correlated.allocation.total_servers >= lone.allocation.total_servers
        )

    def test_trivial_when_target_already_met(
        self, small_table, rmc1_models, rmc1_workloads, provisioning_inputs
    ):
        """An empty schedule meets any reasonable target at r_min."""
        outcome = _provision(
            small_table, rmc1_models, rmc1_workloads, provisioning_inputs,
            faults=FaultSchedule(),
        )
        assert outcome.converged
        assert outcome.chosen_r == 0.0
        assert outcome.power_delta_w == 0.0
        assert outcome.standby_power_w == 0.0

    def test_reports_non_convergence_on_impossible_target(
        self, small_table, rmc1_models, rmc1_workloads, provisioning_inputs
    ):
        """A permanent all-replica blackout can't be provisioned away:
        the loop stops at r_max and says so instead of looping."""
        blackout = FaultSchedule(
            domains=FaultDomains(size=1000),  # every replica in rack 0
            domain_events=[domain_crash(1.0, 0)],
        )
        outcome = _provision(
            small_table, rmc1_models, rmc1_workloads, provisioning_inputs,
            faults=blackout, r_max=0.4, max_evals=6,
        )
        assert not outcome.converged
        assert outcome.chosen_r is None
        assert outcome.allocation is None
        assert outcome.evaluations  # best effort is still reported
        assert "did not converge" in outcome.format()

    def test_deterministic_given_seed(
        self, small_table, rmc1_models, rmc1_workloads, provisioning_inputs
    ):
        schedule = FaultSchedule.stochastic(
            crash_mtbf_s=3.0, mttr_s=0.4
        )
        a = _provision(
            small_table, rmc1_models, rmc1_workloads, provisioning_inputs,
            faults=schedule,
        )
        b = _provision(
            small_table, rmc1_models, rmc1_workloads, provisioning_inputs,
            faults=schedule,
        )
        assert a.chosen_r == b.chosen_r
        assert a.evaluations == b.evaluations
        assert a.power_delta_w == b.power_delta_w


class TestReporting:
    def test_format_surfaces_the_loop(
        self, small_table, rmc1_models, rmc1_workloads, provisioning_inputs
    ):
        schedule = FaultSchedule([crash(1.0, 0, recover_after=0.4)])
        outcome = _provision(
            small_table, rmc1_models, rmc1_workloads, provisioning_inputs,
            faults=schedule,
        )
        text = outcome.format()
        for token in (
            "svc avail",
            "fault-blind baseline",
            "chosen R=",
            "standby",
            "kW",
        ):
            assert token in text

    def test_service_availability_matches_per_model_accounting(
        self, small_table, rmc1_models, rmc1_workloads, provisioning_inputs
    ):
        schedule = FaultSchedule([crash(1.0, 0, recover_after=0.4)])
        outcome = _provision(
            small_table, rmc1_models, rmc1_workloads, provisioning_inputs,
            faults=schedule,
        )
        result = outcome.baseline_result
        demand = violations = 0.0
        for stats in result.per_model.values():
            d = stats.completed + stats.failed + stats.dropped
            demand += d
            violations += stats.violation_rate * d
        assert service_availability(result) == pytest.approx(
            1.0 - violations / demand
        )

    def test_index_targeted_schedule_too_big_fails_actionably(
        self, small_table, rmc1_models, rmc1_workloads, provisioning_inputs
    ):
        """A schedule naming fleet positions beyond an evaluated
        allocation raises an actionable error (not a mid-replay
        traceback): the search sizes fleets per R, so position-targeted
        specs must use fleet-size-adaptive forms."""
        oversized = FaultSchedule.parse("domain:4-7;crash@1:dom0+0.3")
        with pytest.raises(ValueError, match="fleet-size-adaptive"):
            _provision(
                small_table, rmc1_models, rmc1_workloads, provisioning_inputs,
                faults=oversized,
            )

    def test_replays_at_most_evaluations(
        self, small_table, rmc1_models, rmc1_workloads, provisioning_inputs
    ):
        """Rates that integerize to one allocation share one replay."""
        outcome = _provision(
            small_table, rmc1_models, rmc1_workloads, provisioning_inputs,
            faults=FaultSchedule([crash(1.0, 0, recover_after=0.4)]),
        )
        assert 1 <= outcome.replays <= len(outcome.evaluations)

    def test_input_validation(
        self, small_table, rmc1_models, rmc1_workloads, provisioning_inputs
    ):
        schedule = FaultSchedule()
        with pytest.raises(ValueError, match="target_availability"):
            _provision(
                small_table, rmc1_models, rmc1_workloads, provisioning_inputs,
                faults=schedule, target_availability=1.5,
            )
        with pytest.raises(ValueError, match="r_min"):
            _provision(
                small_table, rmc1_models, rmc1_workloads, provisioning_inputs,
                faults=schedule, r_min=0.5, r_max=0.1,
            )
        with pytest.raises(ValueError, match="r_tol"):
            _provision(
                small_table, rmc1_models, rmc1_workloads, provisioning_inputs,
                faults=schedule, r_tol=0.0,
            )
        with pytest.raises(ValueError, match="max_evals"):
            _provision(
                small_table, rmc1_models, rmc1_workloads, provisioning_inputs,
                faults=schedule, max_evals=1,
            )
