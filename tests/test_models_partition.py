"""Tests for HW-aware partitioning and the Zipf locality model."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.models import build_model, fuse_elementwise, partition_model
from repro.models.graph import Graph, Node
from repro.models.ops import Activation, FullyConnected
from repro.models.partition import ZipfAccessProfile

GPU_MEMORY = 16e9


class TestZipfAccessProfile:
    def test_boundary_hit_rates(self):
        profile = ZipfAccessProfile(alpha=0.95)
        assert profile.hit_rate(0, 1000) == 0.0
        assert profile.hit_rate(1000, 1000) == 1.0
        assert profile.hit_rate(2000, 1000) == 1.0  # clipped

    @given(
        alpha=st.floats(0.3, 2.0),
        total=st.integers(100, 10_000_000),
        split=st.floats(0.01, 0.99),
    )
    def test_hit_rate_monotone_in_hot_rows(self, alpha, total, split):
        profile = ZipfAccessProfile(alpha=alpha)
        smaller = int(total * split * 0.5) + 1
        larger = int(total * split) + 1
        assert profile.hit_rate(smaller, total) <= profile.hit_rate(
            larger, total
        ) + 1e-9

    def test_skew_concentrates_mass(self):
        """10% of rows should capture far more than 10% of accesses."""
        profile = ZipfAccessProfile(alpha=0.95)
        assert profile.hit_rate(100_000, 1_000_000) > 0.4

    def test_higher_alpha_more_locality(self):
        mild = ZipfAccessProfile(alpha=0.5)
        steep = ZipfAccessProfile(alpha=1.2)
        assert steep.hit_rate(10_000, 1_000_000) > mild.hit_rate(
            10_000, 1_000_000
        )

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            ZipfAccessProfile(alpha=0.0)


class TestPartitionModel:
    def test_host_partition_has_no_hot_set(self, rmc1):
        pm = partition_model(rmc1)
        assert not pm.has_hot_partition
        assert pm.cold_miss_rate == 1.0
        assert math.isinf(pm.capacity_budget_bytes)
        assert len(pm.sparse) + len(pm.dense) == len(rmc1.graph)

    def test_sparse_dense_split_is_clean(self, rmc1):
        pm = partition_model(rmc1)
        assert all(n.op.kind.is_sparse for n in pm.sparse)
        assert not any(n.op.kind.is_sparse for n in pm.dense)

    def test_small_model_fits_entirely(self, rmc1):
        # RMC1 production is 3.8 GB < 16 GB: the hot set is everything.
        pm = partition_model(rmc1, device_memory_bytes=GPU_MEMORY)
        assert pm.has_hot_partition
        assert pm.hot_hit_rate == pytest.approx(1.0)
        assert pm.cold_miss_rate == pytest.approx(0.0)

    def test_co_location_shrinks_budget_and_hit_rate(self):
        model = build_model("DLRM-RMC2")  # 38 GB, never fits
        hits = []
        for co_location in (1, 2, 4):
            pm = partition_model(
                model, device_memory_bytes=GPU_MEMORY, co_location=co_location
            )
            assert pm.capacity_budget_bytes == pytest.approx(
                GPU_MEMORY / co_location
            )
            hits.append(pm.hot_hit_rate)
        assert hits[0] > hits[1] > hits[2]
        assert all(0.0 < h < 1.0 for h in hits)

    def test_hot_graph_mirrors_sparse_structure(self):
        model = build_model("DLRM-RMC2")
        pm = partition_model(model, device_memory_bytes=GPU_MEMORY)
        assert pm.hot_sparse is not None
        assert len(pm.hot_sparse) == len(pm.sparse)
        hot_weights = pm.hot_sparse.total_weight_bytes()
        assert hot_weights + pm.dense.total_weight_bytes() <= pm.capacity_budget_bytes

    def test_impossible_budget_rejected(self):
        model = build_model("DLRM-RMC3")
        with pytest.raises(ValueError):
            partition_model(model, device_memory_bytes=1e6)

    def test_invalid_co_location(self, rmc1):
        with pytest.raises(ValueError):
            partition_model(rmc1, device_memory_bytes=GPU_MEMORY, co_location=0)


class TestOperatorFusion:
    def test_activation_folded_into_producer(self):
        g = Graph("g")
        g.add(Node(op=FullyConnected(name="fc", in_dim=4, out_dim=4)))
        g.add(Node(op=Activation(name="relu", dim=4), deps=("fc",)))
        g.add(Node(op=FullyConnected(name="out", in_dim=4, out_dim=1), deps=("relu",)))
        fused = fuse_elementwise(g)
        assert len(fused) == 2
        assert fused.node("out").deps == ("fc",)

    def test_chained_activations_fold_transitively(self):
        g = Graph("g")
        g.add(Node(op=FullyConnected(name="fc", in_dim=4, out_dim=4)))
        g.add(Node(op=Activation(name="a1", dim=4), deps=("fc",)))
        g.add(Node(op=Activation(name="a2", dim=4), deps=("a1",)))
        g.add(Node(op=FullyConnected(name="out", in_dim=4, out_dim=1), deps=("a2",)))
        fused = fuse_elementwise(g)
        assert len(fused) == 2
        assert fused.node("out").deps == ("fc",)

    def test_multi_input_activation_not_folded(self):
        g = Graph("g")
        g.add(Node(op=FullyConnected(name="a", in_dim=4, out_dim=4)))
        g.add(Node(op=FullyConnected(name="b", in_dim=4, out_dim=4)))
        g.add(Node(op=Activation(name="add", dim=4), deps=("a", "b")))
        fused = fuse_elementwise(g)
        assert len(fused) == 3

    def test_fusion_preserves_flops_modulo_elementwise(self, rmc1):
        fused = fuse_elementwise(rmc1.graph)
        assert fused.total_flops(64) <= rmc1.graph.total_flops(64)
