"""Tests for the shared plan-evaluation cache."""

from __future__ import annotations

import pytest

from repro.hardware import SERVER_TYPES
from repro.models import build_model, partition_model
from repro.plans import ExecutionPlan, Placement
from repro.sim import QueryWorkload, ServerEvaluator
from repro.sim import plan_cache


@pytest.fixture(autouse=True)
def fresh_registry():
    plan_cache.clear_shared_caches()
    yield
    plan_cache.clear_shared_caches()


@pytest.fixture(scope="module")
def rmc1_model():
    return build_model("DLRM-RMC1")


@pytest.fixture(scope="module")
def workload(rmc1_model):
    return QueryWorkload.for_model(rmc1_model.config.mean_query_size)


PLAN = ExecutionPlan(Placement.CPU_MODEL_BASED, threads=4, cores_per_thread=2, batch_size=64)


class TestEvaluatorMemo:
    def test_plan_timings_served_from_cache(self, rmc1_model, workload):
        evaluator = ServerEvaluator(SERVER_TYPES["T2"])
        partitioned = partition_model(rmc1_model)
        first = evaluator.plan_timings(partitioned, workload, PLAN)
        second = evaluator.plan_timings(partitioned, workload, PLAN)
        assert second is first
        assert evaluator.timings_cache.stats.hits == 1
        assert evaluator.timings_cache.stats.misses == 1

    def test_distinct_plans_miss(self, rmc1_model, workload):
        evaluator = ServerEvaluator(SERVER_TYPES["T2"])
        partitioned = partition_model(rmc1_model)
        evaluator.plan_timings(partitioned, workload, PLAN)
        evaluator.plan_timings(partitioned, workload, PLAN.with_(batch_size=128))
        assert evaluator.timings_cache.stats.misses == 2
        assert len(evaluator.timings_cache) == 2

    def test_infeasible_plans_not_cached(self, rmc1_model, workload):
        evaluator = ServerEvaluator(SERVER_TYPES["T2"])
        partitioned = partition_model(rmc1_model)
        cores = SERVER_TYPES["T2"].cpu.cores
        bad = ExecutionPlan(
            Placement.CPU_MODEL_BASED, threads=cores + 1, cores_per_thread=2
        )
        for _ in range(2):
            with pytest.raises(ValueError, match="does not fit"):
                evaluator.plan_timings(partitioned, workload, bad)
        assert len(evaluator.timings_cache) == 0

    def test_content_keyed_partitions_share_entries(self, rmc1_model, workload):
        """Structurally equal partitions hash to the same explicit key.

        Content keys (not object identity) are what keeps the cache
        valid across ``pickle``/``fork`` boundaries in the parallel
        profiler.
        """
        evaluator = ServerEvaluator(SERVER_TYPES["T2"])
        a = partition_model(rmc1_model)
        b = partition_model(rmc1_model)
        ta = evaluator.plan_timings(a, workload, PLAN)
        tb = evaluator.plan_timings(b, workload, PLAN)
        assert tb is ta
        assert evaluator.timings_cache.stats.hits == 1
        assert plan_cache.partition_key(a) == plan_cache.partition_key(b)

    def test_clear_resets_stats(self, rmc1_model, workload):
        evaluator = ServerEvaluator(SERVER_TYPES["T2"])
        partitioned = partition_model(rmc1_model)
        evaluator.plan_timings(partitioned, workload, PLAN)
        evaluator.timings_cache.clear()
        assert len(evaluator.timings_cache) == 0
        assert evaluator.timings_cache.stats.lookups == 0


class TestSharedRegistry:
    def test_shared_evaluator_is_singleton_per_type(self):
        a = plan_cache.shared_evaluator(SERVER_TYPES["T2"])
        b = plan_cache.shared_evaluator(SERVER_TYPES["T2"])
        c = plan_cache.shared_evaluator(SERVER_TYPES["T3"])
        assert a is b
        assert a is not c

    def test_stages_memoized_across_calls(self, rmc1_model, workload):
        server = SERVER_TYPES["T2"]
        first = plan_cache.stages_for(server, rmc1_model, workload, PLAN)
        second = plan_cache.stages_for(server, rmc1_model, workload, PLAN)
        assert second is first
        stats = plan_cache.shared_cache_stats()["stages"]
        assert stats.hits == 1
        assert stats.misses == 1
        assert stats.hit_rate == pytest.approx(0.5)

    def test_timings_for_shares_the_evaluator_memo(self, rmc1_model, workload):
        server = SERVER_TYPES["T2"]
        first = plan_cache.timings_for(server, rmc1_model, workload, PLAN)
        second = plan_cache.timings_for(server, rmc1_model, workload, PLAN)
        assert second is first
        evaluator = plan_cache.shared_evaluator(server)
        assert evaluator.timings_cache.stats.hits >= 1

    def test_gpu_model_based_partition_keyed_by_colocation(self, rmc1_model):
        server = SERVER_TYPES["T7"]
        plan1 = ExecutionPlan(
            Placement.GPU_MODEL_BASED, threads=1, fusion_limit=256, sparse_threads=1
        )
        plan2 = plan1.with_(threads=2)
        p1 = plan_cache.partitioned_for(server, rmc1_model, plan1)
        p2 = plan_cache.partitioned_for(server, rmc1_model, plan2)
        assert p1 is plan_cache.partitioned_for(server, rmc1_model, plan1)
        assert p1 is not p2
        assert p1.hot_sparse is not None

    def test_host_partition_shared_across_placements(self, rmc1_model):
        cpu_plan = PLAN
        sd_plan = ExecutionPlan(
            Placement.CPU_SD_PIPELINE,
            threads=0,
            batch_size=64,
            sparse_threads=2,
            dense_threads=2,
        )
        a = plan_cache.partitioned_for(SERVER_TYPES["T2"], rmc1_model, cpu_plan)
        b = plan_cache.partitioned_for(SERVER_TYPES["T2"], rmc1_model, sd_plan)
        assert a is b

    def test_clear_shared_caches(self, rmc1_model, workload):
        plan_cache.stages_for(SERVER_TYPES["T2"], rmc1_model, workload, PLAN)
        plan_cache.clear_shared_caches()
        assert plan_cache.shared_cache_stats()["stages"].lookups == 0


class TestEvictionAndForkSafety:
    def test_eviction_bounds_the_table(self, rmc1_model, workload):
        from repro.sim.plan_cache import PlanTimingsCache

        evaluator = ServerEvaluator(SERVER_TYPES["T2"])
        evaluator.timings_cache = PlanTimingsCache(max_entries=2)
        partitioned = partition_model(rmc1_model)
        for d in (32, 64, 128, 256):
            evaluator.plan_timings(partitioned, workload, PLAN.with_(batch_size=d))
        assert len(evaluator.timings_cache) == 2
        # Oldest entries were evicted: re-requesting recomputes (a miss).
        before = evaluator.timings_cache.stats.misses
        evaluator.plan_timings(partitioned, workload, PLAN.with_(batch_size=32))
        assert evaluator.timings_cache.stats.misses == before + 1

    def test_max_entries_validated(self):
        from repro.sim.plan_cache import PlanTimingsCache

        with pytest.raises(ValueError, match="max_entries"):
            PlanTimingsCache(max_entries=0)

    def test_keys_survive_pickle_round_trip(self, rmc1_model, workload):
        """Explicit content keys, not object identity: a partitioned
        model that crossed a process boundary (pickle round-trip, as in
        the ProcessPoolExecutor fan-out) must hit the same cache entry."""
        import pickle

        partitioned = partition_model(rmc1_model)
        clone = pickle.loads(pickle.dumps(partitioned))
        assert clone is not partitioned
        assert plan_cache.partition_key(clone) == plan_cache.partition_key(
            partitioned
        )
        key_a = plan_cache.PlanTimingsCache.key(partitioned, workload, PLAN)
        key_b = plan_cache.PlanTimingsCache.key(clone, workload, PLAN)
        assert key_a == key_b and hash(key_a) == hash(key_b)

        evaluator = ServerEvaluator(SERVER_TYPES["T2"])
        evaluator.plan_timings(partitioned, workload, PLAN)
        assert evaluator.plan_timings(clone, workload, PLAN) is not None
        assert evaluator.timings_cache.stats.hits == 1

    def test_serviced_stages_shared_across_replicas(self, rmc1_model, workload):
        server = SERVER_TYPES["T2"]
        a = plan_cache.serviced_stages_for(server, rmc1_model, workload, PLAN)
        b = plan_cache.serviced_stages_for(server, rmc1_model, workload, PLAN)
        assert a is b  # one memoized service table per fleet, not per replica
        from repro.sim.event_core import ServicedStage

        assert all(isinstance(s, ServicedStage) for s in a)

    def test_span_for_memoizes_per_timings(self, rmc1_model, workload):
        partitioned = partition_model(rmc1_model)
        evaluator = ServerEvaluator(SERVER_TYPES["T2"])
        timings = evaluator.plan_timings(partitioned, workload, PLAN)
        first = plan_cache.span_for(timings, 100)
        assert first == timings.service_span_s(100)
        stats = plan_cache.shared_cache_stats()["spans"]
        hits = stats.hits
        assert plan_cache.span_for(timings, 100) == first
        assert stats.hits == hits + 1
