"""``bench --compare``: the CI perf gates replayed over saved documents.

``repro.perfbench.BENCH_GATES`` mirrors every threshold the CI lane
asserts; ``compare_bench`` applies them to a *new* BENCH_perf document
next to an *old* one so a regression is visible locally before CI sees
it.  These tests pin the verdict semantics (PASS / FAIL / SKIP), the
regressed flag that drives the CLI exit code, and the gate list itself
staying in sync with the scenarios that exist.
"""

from __future__ import annotations

import json

import pytest

from repro.perfbench import BENCH_GATES, SCENARIOS, compare_bench


def _doc(mode="full", seed=42, **scenarios):
    return {"mode": mode, "seed": seed, "scenarios": scenarios}


def _passing_scenarios():
    """One value per gated metric, comfortably on the passing side."""
    out: dict[str, dict] = {}
    for scenario, metric, op, threshold in BENCH_GATES:
        block = out.setdefault(scenario, {"wall_s": 1.0})
        block[metric] = threshold * (0.5 if op == "<" else 2.0)
    return out


class TestGateList:
    def test_every_gate_names_a_real_scenario(self):
        for scenario, _metric, op, threshold in BENCH_GATES:
            assert scenario in SCENARIOS
            assert op in ("<", ">")
            assert threshold > 0

    def test_vector_path_gates_present(self):
        """The two coverage-gap speedups are gated alongside the
        original fastcore gate."""
        gates = {(s, m): (op, t) for s, m, op, t in BENCH_GATES}
        assert gates[("fleet_replay_fastcore", "speedup_vector_vs_python")] == (">", 3.0)
        assert gates[
            ("fleet_replay_faultpath", "speedup_vector_fault_vs_python")
        ] == (">", 2.5)
        assert gates[
            ("fleet_replay_queueaware", "speedup_vector_epoch_vs_python")
        ] == (">", 2.0)


class TestCompareBench:
    def test_all_passing_is_not_regressed(self):
        doc = _doc(**_passing_scenarios())
        text, regressed = compare_bench(doc, doc)
        assert not regressed
        assert "FAIL" not in text
        assert text.count("PASS") == len(BENCH_GATES)

    def test_new_document_failure_flags_regression(self):
        old = _doc(**_passing_scenarios())
        bad = _passing_scenarios()
        bad["fleet_replay_queueaware"]["speedup_vector_epoch_vs_python"] = 1.3
        text, regressed = compare_bench(old, _doc(**bad))
        assert regressed
        assert "FAIL" in text
        # The failing gate row names the metric and both values.
        row = next(l for l in text.splitlines() if "FAIL" in l)
        assert "speedup_vector_epoch_vs_python" in row
        assert "1.300" in row

    def test_old_document_failure_does_not_regress(self):
        """Only the *new* document is gated: comparing against a bad
        baseline must not fail the good run."""
        bad = _passing_scenarios()
        bad["fleet_replay_fastcore"]["speedup_vector_vs_python"] = 0.9
        _, regressed = compare_bench(_doc(**bad), _doc(**_passing_scenarios()))
        assert not regressed

    def test_missing_metric_skips_not_fails(self):
        present = _passing_scenarios()
        partial = _passing_scenarios()
        del partial["fleet_replay_queueaware"]
        text, regressed = compare_bench(_doc(**present), _doc(**partial))
        assert not regressed
        assert "SKIP" in text

    def test_metric_absent_from_both_documents_omitted(self):
        text, regressed = compare_bench(_doc(), _doc())
        assert not regressed
        assert "PASS" not in text and "FAIL" not in text

    def test_mode_mismatch_noted(self):
        text, _ = compare_bench(
            _doc(mode="quick", **_passing_scenarios()),
            _doc(mode="full", **_passing_scenarios()),
        )
        assert "different modes" in text

    def test_wall_table_in_registry_order(self):
        doc = _doc(**_passing_scenarios())
        text, _ = compare_bench(doc, doc)
        known = set(doc["scenarios"])
        listed = [
            line.split()[0]
            for line in text.splitlines()
            if line.split() and line.split()[0] in known
        ]
        assert listed == [n for n in SCENARIOS if n in known]


class TestCompareCli:
    """``repro.cli bench --compare OLD NEW`` wires the regressed flag
    into the exit code without running any scenario."""

    def _write(self, tmp_path, name, doc):
        path = tmp_path / name
        path.write_text(json.dumps(doc))
        return str(path)

    def test_exit_zero_when_clean(self, tmp_path, capsys):
        from repro.cli import main

        doc = _doc(**_passing_scenarios())
        old = self._write(tmp_path, "old.json", doc)
        new = self._write(tmp_path, "new.json", doc)
        assert main(["bench", "--compare", old, new]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_exit_nonzero_on_regression(self, tmp_path, capsys):
        from repro.cli import main

        bad = _passing_scenarios()
        bad["fleet_replay_faultpath"]["speedup_vector_fault_vs_python"] = 1.1
        old = self._write(tmp_path, "old.json", _doc(**_passing_scenarios()))
        new = self._write(tmp_path, "new.json", _doc(**bad))
        assert main(["bench", "--compare", old, new]) == 1
        assert "FAIL" in capsys.readouterr().out
