"""Sharded fleet replay: bit-identical merge, sketch-backed reports.

The scale-out runner (``repro.fleet.sharded``) promises that replaying
a fleet sharded by model across worker processes reproduces — in exact
percentile mode — the *same floats* the single-process engine reports:
per-model stats, replica rows, fleet energy, the interleaved
scale-event timeline, and the events counter.  The hypothesis lane
pins that across routing policies, shard counts, and seeds (the
``fleet_replay_sharded`` perfbench scenario asserts the same equality
at benchmark scale).  Sketch mode keeps the counting stats float-exact
and is held to the calibrated P² rank-band criterion from
``tests/test_obs.py`` on percentiles.

Unit tests cover the shard planner, the actionable refusals (policy
instances, the vector core, bare iterators), orphan models, arrival
seed lanes, and the engine's forced-horizon guard rails.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.state import Allocation
from repro.fleet import (
    FaultSchedule,
    FleetSimulator,
    ReactiveAutoscaler,
    build_fleet,
)
from repro.fleet.routing import make_policy
from repro.fleet.sharded import plan_shards, run_fleet_sharded
from repro.models import build_model
from repro.obs import FleetProbe
from repro.sim import QueryWorkload
from repro.traces import FleetArrivals, MMPPProcess, PoissonProcess, save_trace

MODELS = ("DLRM-RMC1", "DLRM-RMC2")
SLA = {"DLRM-RMC1": 20.0, "DLRM-RMC2": 50.0}


@pytest.fixture(scope="module")
def fleet_inputs(small_table):
    models = {m: build_model(m) for m in MODELS}
    workloads = {
        m: QueryWorkload.for_model(models[m].config.mean_query_size)
        for m in MODELS
    }
    allocation = Allocation()
    allocation.add("T2", "DLRM-RMC1", 2)
    allocation.add("T3", "DLRM-RMC2", 2)
    return small_table, models, workloads, allocation


def _source(workloads, seed=0, duration=1.2):
    return FleetArrivals(
        {
            "DLRM-RMC1": MMPPProcess(
                workloads["DLRM-RMC1"], [150.0, 900.0], 0.3, duration
            ),
            "DLRM-RMC2": PoissonProcess(workloads["DLRM-RMC2"], 250.0, duration),
        },
        seed=seed,
    )


def _run(
    inputs,
    source,
    *,
    shards,
    policy="rr",
    seed=0,
    percentile_mode="exact",
    autoscale=False,
    standby=None,
):
    table, models, workloads, allocation = inputs
    autoscaler = (
        ReactiveAutoscaler(SLA, window_s=0.2, cooldown_s=0.4)
        if autoscale
        else None
    )
    return run_fleet_sharded(
        allocation,
        table,
        models,
        workloads,
        source,
        shards=shards,
        policy=policy,
        sla_ms=SLA,
        autoscaler=autoscaler,
        seed=seed,
        percentile_mode=percentile_mode,
        warmup_s=0.1,
        standby=standby,
        core="python",
        max_workers=2,
    )


class TestShardedMergeBitIdentity:
    @settings(max_examples=5, deadline=None)
    @given(
        policy=st.sampled_from(["rr", "p2c", "least", "weighted"]),
        shards=st.integers(2, 4),
        seed=st.integers(0, 1000),
    )
    def test_matches_single_process_exactly(
        self, fleet_inputs, policy, shards, seed
    ):
        """float-`==` across the whole report: per-model stats, replica
        rows, energy, events — for every policy, shard count, seed."""
        source = _source(fleet_inputs[2], seed=seed)
        ref = _run(fleet_inputs, source, shards=1, policy=policy, seed=seed)
        out = _run(fleet_inputs, source, shards=shards, policy=policy, seed=seed)
        assert out.to_dict() == ref.to_dict()
        for m, stats in ref.per_model.items():
            got = out.per_model[m]
            assert (got.p50_ms, got.p95_ms, got.p99_ms) == (
                stats.p50_ms,
                stats.p95_ms,
                stats.p99_ms,
            )
            assert (got.qps, got.mean_ms, got.violation_rate) == (
                stats.qps,
                stats.mean_ms,
                stats.violation_rate,
            )
        assert out.avg_power_w == ref.avg_power_w
        assert out.events == ref.events

    @pytest.mark.parametrize("policy", ["p2c", "least"])
    def test_autoscaled_timeline_interleaves_identically(
        self, fleet_inputs, policy
    ):
        """With a reactive autoscaler and a standby pool, the merged
        scale-event timeline is the single-process timeline."""
        standby = Allocation()
        standby.add("T2", "DLRM-RMC1", 2)
        standby.add("T3", "DLRM-RMC2", 1)
        source = _source(fleet_inputs[2], seed=7)
        ref = _run(
            fleet_inputs, source, shards=1, policy=policy, seed=7,
            autoscale=True, standby=standby,
        )
        out = _run(
            fleet_inputs, source, shards=2, policy=policy, seed=7,
            autoscale=True, standby=standby,
        )
        assert out.to_dict() == ref.to_dict()
        assert len(out.scale_events) == len(ref.scale_events)
        for a, b in zip(out.scale_events, ref.scale_events):
            assert (a.time_s, a.model, a.action, a.server.index, a.reason) == (
                b.time_s, b.model, b.action, b.server.index, b.reason
            )

    def test_materialized_list_source(self, fleet_inputs):
        """A pre-drawn list shards without a phase-A scan (its horizon
        is knowable) and still merges bit-identically."""
        trace = list(_source(fleet_inputs[2], seed=11))
        ref = _run(fleet_inputs, trace, shards=1)
        out = _run(fleet_inputs, trace, shards=2)
        assert out.to_dict() == ref.to_dict()

    def test_recorded_trace_source(self, fleet_inputs, tmp_path):
        """A recorded trace file replays sharded through the filtered
        per-worker view and merges bit-identically."""
        from repro.traces import RecordedTrace

        path = str(tmp_path / "trace.jsonl")
        save_trace(path, list(_source(fleet_inputs[2], seed=5)))
        ref = _run(fleet_inputs, RecordedTrace(path), shards=1)
        out = _run(fleet_inputs, RecordedTrace(path), shards=2)
        assert out.to_dict() == ref.to_dict()

    def test_orphan_model_arrivals_count_as_drops(self, fleet_inputs):
        """Arrivals for a model with no replicas anywhere must be folded
        into a live shard so the merged drop accounting matches."""
        table, models, workloads, allocation = fleet_inputs
        wl = workloads["DLRM-RMC1"]
        source = FleetArrivals(
            {
                "DLRM-RMC1": PoissonProcess(wl, 300.0, 1.0),
                "DLRM-RMC2": PoissonProcess(workloads["DLRM-RMC2"], 200.0, 1.0),
                "ZZ-unserved": PoissonProcess(wl, 50.0, 1.0),
            },
            seed=3,
        )
        ref = _run(fleet_inputs, source, shards=1)
        out = _run(fleet_inputs, source, shards=2)
        assert out.to_dict() == ref.to_dict()
        assert out.per_model["ZZ-unserved"].dropped > 0

    def test_shard_with_no_arrivals_idles_over_full_window(self, fleet_inputs):
        """A shard whose models drew zero arrivals still accounts its
        idle replicas across the shared horizon."""
        table, models, workloads, allocation = fleet_inputs
        source = FleetArrivals(
            {"DLRM-RMC1": PoissonProcess(workloads["DLRM-RMC1"], 400.0, 1.0)},
            seed=9,
        )
        ref = _run(fleet_inputs, source, shards=1)
        out = _run(fleet_inputs, source, shards=2)
        assert out.to_dict() == ref.to_dict()
        assert out.per_model["DLRM-RMC2"].completed == 0
        assert out.avg_power_w == ref.avg_power_w


class TestSketchMode:
    def test_counting_stats_exact_percentiles_in_rank_band(self, fleet_inputs):
        """Sketch mode keeps counts/qps/violations float-identical and
        its percentiles inside the calibrated P² rank band (±15 rank
        points, or within a tenth of the data range — the criterion
        ``tests/test_obs.py`` calibrated over 48k adversarial
        mixtures)."""
        table, models, workloads, allocation = fleet_inputs
        source = _source(workloads, seed=3, duration=2.0)
        servers = build_fleet(allocation, table, models, workloads)
        probe = FleetProbe(metrics=False, trace=True)
        sim = FleetSimulator(
            servers, policy="rr", sla_ms=SLA, seed=0, core="python",
            observer=probe,
        )
        ref = sim.run(source, warmup_s=0.1)
        samples = {m: [] for m in MODELS}
        for span in probe.spans:
            if span["outcome"] == "completed" and span["measured"]:
                samples[span["model"]].append(span["latency_ms"])

        out = _run(fleet_inputs, source, shards=2, percentile_mode="sketch")
        for m in MODELS:
            stats, got = ref.per_model[m], out.per_model[m]
            assert got.completed == stats.completed == len(samples[m])
            assert got.dropped == stats.dropped
            assert got.qps == stats.qps
            assert got.violation_rate == stats.violation_rate
            assert got.mean_ms == pytest.approx(stats.mean_ms, rel=1e-9)
            data = samples[m]
            for q, v in (
                (0.5, got.p50_ms), (0.95, got.p95_ms), (0.99, got.p99_ms)
            ):
                lo = float(np.percentile(data, max(0.0, q - 0.15) * 100))
                hi = float(np.percentile(data, min(1.0, q + 0.15) * 100))
                slack = 1e-9 + 1e-9 * max(abs(lo), abs(hi))
                true = float(np.percentile(data, q * 100))
                near = abs(v - true) <= 0.10 * (max(data) - min(data)) + 1e-9
                assert (lo - slack <= v <= hi + slack) or near
        # Replica and power accounting are untouched by the report mode.
        assert [s.to_dict() for s in out.servers] == [
            s.to_dict() for s in ref.servers
        ]
        assert out.avg_power_w == ref.avg_power_w

    def test_sharded_sketch_equals_unsharded_sketch(self, fleet_inputs):
        """The merge is deterministic in sketch mode too: identical
        per-model streams feed identical P² marker updates."""
        source = _source(fleet_inputs[2], seed=21)
        ref = _run(fleet_inputs, source, shards=1, percentile_mode="sketch")
        out = _run(fleet_inputs, source, shards=2, percentile_mode="sketch")
        assert out.to_dict() == ref.to_dict()

    def test_sketch_mode_reports_no_phases(self, fleet_inputs, small_table):
        """Phase breakdowns need the stored sample list; sketch-mode
        fault runs skip them by design."""
        table, models, workloads, allocation = fleet_inputs
        servers = build_fleet(allocation, table, models, workloads)
        sim = FleetSimulator(
            servers, policy="rr", sla_ms=SLA, core="python",
            percentile_mode="sketch",
            faults=FaultSchedule.parse("crash@0.3:0+0.5"),
        )
        result = sim.run(_source(workloads, seed=2, duration=1.0), warmup_s=0.05)
        assert result.phases == ()
        assert result.total_completed > 0

    def test_bad_mode_rejected(self, fleet_inputs):
        table, models, workloads, allocation = fleet_inputs
        servers = build_fleet(allocation, table, models, workloads)
        with pytest.raises(ValueError, match="percentile_mode"):
            FleetSimulator(servers, sla_ms=SLA, percentile_mode="approx")


class TestPlanAndRefusals:
    def test_plan_round_robins_sorted_names(self):
        assert plan_shards(["c", "a", "b"], 2) == [["a", "c"], ["b"]]
        assert plan_shards(["a", "b"], 4) == [["a"], ["b"]]  # clamped
        assert plan_shards(["a"], 1) == [["a"]]
        with pytest.raises(ValueError, match="shards"):
            plan_shards(["a"], 0)

    def test_policy_instance_refused(self, fleet_inputs):
        source = _source(fleet_inputs[2])
        with pytest.raises(ValueError, match="policy name"):
            _run(fleet_inputs, source, shards=2, policy=make_policy("p2c"))

    def test_vector_core_refused(self, fleet_inputs):
        table, models, workloads, allocation = fleet_inputs
        with pytest.raises(ValueError, match="per-event core"):
            run_fleet_sharded(
                allocation, table, models, workloads,
                _source(workloads), shards=2, sla_ms=SLA, core="vector",
            )

    def test_bare_iterator_refused(self, fleet_inputs):
        with pytest.raises(ValueError, match="re-iterable"):
            _run(fleet_inputs, iter(list(_source(fleet_inputs[2]))), shards=2)

    def test_empty_source_refused(self, fleet_inputs):
        with pytest.raises(ValueError, match="empty"):
            _run(fleet_inputs, [], shards=2)


class TestSeedLanes:
    def test_explicit_seeds_reproduce_default_lanes(self, fleet_inputs):
        """Pinning each model's lane to its fleet-wide default draws the
        identical stream — the invariant the sharded runner rests on."""
        from repro.traces.arrivals import MODEL_SEED_STRIDE

        workloads = fleet_inputs[2]
        procs = {
            "DLRM-RMC1": PoissonProcess(workloads["DLRM-RMC1"], 300.0, 0.5),
            "DLRM-RMC2": PoissonProcess(workloads["DLRM-RMC2"], 200.0, 0.5),
        }
        default = FleetArrivals(procs, seed=4)
        lanes = {
            m: 4 + MODEL_SEED_STRIDE * i for i, m in enumerate(sorted(procs))
        }
        pinned = FleetArrivals(procs, seed=4, seeds=lanes)
        assert list(default) == list(pinned)
        # A sub-fleet with pinned lanes draws the same per-model stream.
        sub = FleetArrivals(
            {"DLRM-RMC2": procs["DLRM-RMC2"]},
            seed=4,
            seeds={"DLRM-RMC2": lanes["DLRM-RMC2"]},
        )
        want = [(m, q) for m, q in default if m == "DLRM-RMC2"]
        got = list(sub)
        assert [(m, q.arrival_s, q.size) for m, q in got] == [
            (m, q.arrival_s, q.size) for m, q in want
        ]

    def test_seeds_must_cover_every_model(self, fleet_inputs):
        workloads = fleet_inputs[2]
        procs = {"DLRM-RMC1": PoissonProcess(workloads["DLRM-RMC1"], 100.0, 0.5)}
        with pytest.raises(ValueError, match="seeds"):
            FleetArrivals(procs, seeds={})


class TestForcedHorizon:
    def _sim(self, fleet_inputs, **kwargs):
        table, models, workloads, allocation = fleet_inputs
        servers = build_fleet(allocation, table, models, workloads)
        return FleetSimulator(
            servers, policy="rr", sla_ms=SLA, core="python", **kwargs
        )

    def test_forcing_the_natural_horizon_changes_nothing(self, fleet_inputs):
        source = _source(fleet_inputs[2], seed=6, duration=0.8)
        end = max(q.arrival_s for _, q in source)
        ref = self._sim(fleet_inputs).run(source, warmup_s=0.05)
        out = self._sim(fleet_inputs).run(
            source, warmup_s=0.05, horizon_s=end
        )
        assert out.to_dict() == ref.to_dict()

    def test_horizon_before_last_arrival_raises(self, fleet_inputs):
        source = _source(fleet_inputs[2], seed=6, duration=0.8)
        with pytest.raises(ValueError, match="last arrival"):
            self._sim(fleet_inputs).run(source, warmup_s=0.05, horizon_s=0.06)

    def test_horizon_inside_warmup_raises(self, fleet_inputs):
        source = _source(fleet_inputs[2], seed=6, duration=0.8)
        with pytest.raises(ValueError, match="warmup"):
            self._sim(fleet_inputs).run(source, warmup_s=0.5, horizon_s=0.4)

    def test_fault_mode_refuses_forced_horizon(self, fleet_inputs):
        source = _source(fleet_inputs[2], seed=6, duration=0.8)
        sim = self._sim(
            fleet_inputs, faults=FaultSchedule.parse("crash@0.3:0+0.2")
        )
        with pytest.raises(ValueError, match="fault-free"):
            sim.run(source, warmup_s=0.05, horizon_s=2.0)
