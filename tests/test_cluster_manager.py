"""Tests for the online serving loop and model evolution."""

from __future__ import annotations

import pytest

from repro.cluster import (
    ClusterManager,
    DiurnalTrace,
    GreedyScheduler,
    HerculesClusterScheduler,
    estimate_over_provision,
    linear_evolution,
    run_evolution,
    synchronous_traces,
)
from repro.cluster.evolution import NEW_MODELS, OLD_MODELS
from repro.plans import ExecutionPlan, Placement
from repro.scheduling import ClassificationTable, EfficiencyTuple

_PLAN = ExecutionPlan(Placement.CPU_MODEL_BASED, threads=1)


def _table(models=("A", "B")) -> ClassificationTable:
    table = ClassificationTable()
    for model, (q2, q3) in zip(models, [(1800, 2400), (110, 330)] * 3):
        table.add(EfficiencyTuple("T2", model, qps=q2, power_w=104, plan=_PLAN))
        table.add(EfficiencyTuple("T3", model, qps=q3, power_w=130, plan=_PLAN))
    return table


class TestEstimateOverProvision:
    def test_tracks_steepest_climb(self):
        traces = synchronous_traces({"a": 1000})
        rate = estimate_over_provision(traces, interval_minutes=30.0)
        assert 0.0 < rate < 1.0
        coarser = estimate_over_provision(traces, interval_minutes=120.0)
        assert coarser > rate  # longer interval, bigger climb

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_over_provision({}, interval_minutes=0)


class TestClusterManager:
    def test_day_has_expected_intervals(self):
        table = _table()
        manager = ClusterManager(
            GreedyScheduler(table, {"T2": 50, "T3": 15}),
            interval_minutes=60.0,
            over_provision=0.05,
        )
        day = manager.run_day(synchronous_traces({"A": 10_000, "B": 800}))
        assert len(day.records) == 24
        assert day.peak_power_w >= day.average_power_w
        assert day.peak_servers >= 1

    def test_power_tracks_diurnal_load(self):
        table = _table()
        manager = ClusterManager(
            GreedyScheduler(table, {"T2": 60, "T3": 15}),
            interval_minutes=30.0,
            over_provision=0.05,
        )
        day = manager.run_day(synchronous_traces({"A": 30_000, "B": 2_000}))
        series = dict(day.power_series())
        assert series[20.0] > series[8.0]  # peak hour vs trough

    def test_churn_recorded(self):
        table = _table()
        manager = ClusterManager(
            GreedyScheduler(table, {"T2": 60, "T3": 15}),
            interval_minutes=30.0,
            over_provision=0.05,
        )
        day = manager.run_day(synchronous_traces({"A": 30_000}))
        assert day.records[0].churn  # first interval activates servers
        total_churn = sum(sum(r.churn.values()) for r in day.records[1:])
        assert total_churn > 0  # diurnal swing forces changes

    def test_empty_traces_rejected(self):
        manager = ClusterManager(GreedyScheduler(_table(), {"T2": 1}))
        with pytest.raises(ValueError):
            manager.run_day({})

    def test_bad_interval_rejected(self):
        with pytest.raises(ValueError):
            ClusterManager(GreedyScheduler(_table(), {"T2": 1}), interval_minutes=0)


class TestEvolution:
    def test_linear_mix_endpoints(self):
        mixes = linear_evolution(cycles=5)
        assert set(mixes[0].shares) == set(OLD_MODELS)
        assert set(mixes[-1].shares) == set(NEW_MODELS)
        for mix in mixes:
            assert sum(mix.shares.values()) == pytest.approx(1.0)

    def test_too_few_cycles_rejected(self):
        with pytest.raises(ValueError):
            linear_evolution(cycles=1)

    def test_run_evolution_produces_day_per_cycle(self):
        names = list(OLD_MODELS) + list(NEW_MODELS)
        table = _table(models=names)
        scheduler = GreedyScheduler(table, {"T2": 200, "T3": 50})
        result = run_evolution(scheduler, total_peak_qps=20_000, cycles=3)
        assert len(result.days) == 3
        assert len(result.peak_power_series()) == 3
        assert all(p > 0 for p in result.peak_power_series())
