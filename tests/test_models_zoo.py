"""Tests for the Table I model zoo."""

from __future__ import annotations

import pytest

from repro.models import (
    AttentionKind,
    MODEL_NAMES,
    ModelVariant,
    OpKind,
    all_models,
    build_model,
    get_config,
)


def test_all_six_table1_models_exist():
    assert set(MODEL_NAMES) == {
        "DLRM-RMC1",
        "DLRM-RMC2",
        "DLRM-RMC3",
        "MT-WnD",
        "DIN",
        "DIEN",
    }


@pytest.mark.parametrize("name", MODEL_NAMES)
@pytest.mark.parametrize("variant", list(ModelVariant))
def test_models_build_with_valid_graphs(name, variant):
    model = build_model(name, variant)
    graph = model.graph
    assert len(graph) > 0
    order = [n.name for n in graph.topological_order()]
    for node in graph:
        for dep in node.deps:
            assert order.index(dep) < order.index(node.name)
    assert graph.total_flops(64) > 0
    assert graph.total_weight_bytes() > 0


def test_unknown_model_rejected():
    with pytest.raises(KeyError, match="unknown model"):
        get_config("DLRM-RMC9")


def test_dlrm_memory_is_embedding_dominated():
    """Section IV-B: >95% of production footprint is SparseNet."""
    for name in ("DLRM-RMC1", "DLRM-RMC2", "DLRM-RMC3"):
        model = build_model(name)
        assert model.sparse_fraction_of_memory > 0.95


def test_small_variant_is_smaller():
    for name in MODEL_NAMES:
        prod = build_model(name, ModelVariant.PROD)
        small = build_model(name, ModelVariant.SMALL)
        assert (
            small.graph.total_weight_bytes() < prod.graph.total_weight_bytes()
        )


def test_compute_and_memory_intensity_ordering():
    """Fig. 1: MT-WnD/DIN/DIEN are compute-dominated, RMC1/2 memory-
    dominated; RMC2 moves the most memory per item (100 tables)."""
    items = 128
    per_item = {
        name: (
            build_model(name).graph.total_flops(items) / items,
            build_model(name).graph.total_mem_bytes(items) / items,
        )
        for name in MODEL_NAMES
    }
    assert per_item["MT-WnD"][0] > per_item["DLRM-RMC1"][0]
    assert per_item["DIN"][0] > per_item["DLRM-RMC1"][0]
    assert per_item["DLRM-RMC2"][1] > per_item["DIN"][1]
    assert per_item["DLRM-RMC2"][1] > per_item["MT-WnD"][1]


def test_multi_hot_models_have_gather_reduce_ops():
    for name, expect_pooled in (
        ("DLRM-RMC1", True),
        ("DLRM-RMC2", True),
        ("DLRM-RMC3", True),
        ("MT-WnD", False),
        ("DIN", False),
        ("DIEN", False),
    ):
        graph = build_model(name).graph
        pooled_ops = graph.nodes_of_kind(OpKind.EMBEDDING_GATHER_REDUCE)
        assert bool(pooled_ops) == expect_pooled


def test_attention_models():
    din = build_model("DIN")
    dien = build_model("DIEN")
    assert din.config.attention is AttentionKind.FC
    assert dien.config.attention is AttentionKind.GRU
    assert not din.graph.nodes_of_kind(OpKind.GRU)
    assert dien.graph.nodes_of_kind(OpKind.GRU)
    # DIEN pays for the GRU pass on top of DIN-like attention.
    assert dien.graph.total_flops(100) > din.graph.total_flops(100)


def test_mtwnd_has_parallel_task_towers():
    graph = build_model("MT-WnD").graph
    towers = [n for n in graph if n.name.startswith("predict_task")]
    assert len(towers) == build_model("MT-WnD").config.num_tasks
    # Towers are mutually independent (op-parallelism across tasks).
    for tower in towers:
        assert tower.deps == ("concat",)


def test_sla_targets_follow_fig15():
    expected = {
        "DLRM-RMC1": 20.0,
        "DLRM-RMC2": 50.0,
        "DLRM-RMC3": 50.0,
        "DIN": 50.0,
        "DIEN": 100.0,
        "MT-WnD": 100.0,
    }
    for name, sla in expected.items():
        assert build_model(name).sla_ms == sla


def test_all_models_fit_largest_host_memory():
    """Production sizes are chosen to fit the 128 GB CPU-T2 hosts."""
    for model in all_models():
        assert model.graph.total_weight_bytes() <= 128e9


def test_describe_contains_table1_columns():
    row = build_model("DLRM-RMC1").describe()
    for key in ("model", "tables", "pooling", "weight_gb", "sla_ms"):
        assert key in row
