"""Differential lane: the vectorized event core vs the python core.

``core="vector"`` promises *bit-identical* results to ``core="python"``
for every run it accepts (outstanding-oblivious routing, no faults, no
live observer): the per-replica float recurrences are evaluated in the
same order, so summaries are compared with ``==`` -- no tolerances.
The only reordering the design permits is cross-replica finish-time
ties inside one model's completion stream (documented in
``docs/performance.md``); none of the traffic here produces one, so the
pins below are exact.

The lane sweeps the eligibility surface -- routing policies (rr,
weighted), arrival shapes (piecewise Poisson, MMPP bursts, diurnal
ramps, recorded replay), and autoscaler modes (none, reactive,
predictive) -- and then asserts the *other* half of the contract: every
ineligible configuration falls back (``auto`` logs why, ``vector``
raises), so queue-aware policies, fault loops, tracking, and live
observers always get the exact per-event core.
"""

from __future__ import annotations

import logging

import pytest
from hypothesis import given, settings, strategies as st

np = pytest.importorskip("numpy")

from repro.cluster.state import Allocation
from repro.fleet import FleetSimulator, build_fleet, build_fleet_trace
from repro.sim import QueryWorkload

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")

_ENGINE_LOGGER = "repro.fleet.engine"


@pytest.fixture(scope="module")
def two_model_inputs():
    from repro.models import build_model

    models = {name: build_model(name) for name in ("DLRM-RMC1", "DLRM-RMC2")}
    workloads = {
        name: QueryWorkload.for_model(model.config.mean_query_size)
        for name, model in models.items()
    }
    return models, workloads


def _mixed_allocation(extra_t7: int = 1) -> Allocation:
    """3 direct-path T2 replicas + T7 event-path replicas, RMC1 only."""
    allocation = Allocation()
    allocation.add("T2", "DLRM-RMC1", 3)
    if extra_t7:
        allocation.add("T7", "DLRM-RMC1", extra_t7)
    return allocation


def _rmc1_trace(small_table, workloads, load: float, seed: int, duration=2.5):
    capacity = 3 * small_table.qps("T2", "DLRM-RMC1") + small_table.qps(
        "T7", "DLRM-RMC1"
    )
    return build_fleet_trace(
        {"DLRM-RMC1": workloads["DLRM-RMC1"]},
        {"DLRM-RMC1": [(load * capacity, duration)]},
        seed=seed,
    )


def _replay(small_table, inputs, allocation, trace, core, **kwargs):
    """Build a fresh fleet (servers are mutated by a run) and replay."""
    models, workloads = inputs
    servers = build_fleet(
        allocation, small_table, models, workloads,
        standby=kwargs.pop("standby", None),
    )
    sim = FleetSimulator(
        servers,
        policy=kwargs.pop("policy", "rr"),
        sla_ms={name: 20.0 for name in models},
        seed=kwargs.pop("seed", 7),
        core=core,
        **kwargs,
    )
    result = sim.run(trace, warmup_s=kwargs.get("warmup_s", 0.0) or 0.3)
    return sim, result


def _assert_identical(vec, base):
    """The full exactness contract: summaries, counters, power, events."""
    assert vec.per_model == base.per_model
    assert vec.avg_power_w == base.avg_power_w
    assert vec.events == base.events
    assert [
        (s.completed, s.qps, s.power_w, s.active_s) for s in vec.servers
    ] == [(s.completed, s.qps, s.power_w, s.active_s) for s in base.servers]
    # ScaleEvent embeds the FleetServer object, and the two replays build
    # separate fleets -- compare decisions field for field, not by object.
    assert [
        (e.time_s, e.model, e.action, e.server.index, e.reason)
        for e in vec.scale_events
    ] == [
        (e.time_s, e.model, e.action, e.server.index, e.reason)
        for e in base.scale_events
    ]


# ----------------------------------------------------------------------
# Exact pins across the eligibility surface
# ----------------------------------------------------------------------


@pytest.mark.parametrize("policy", ["rr", "weighted"])
@pytest.mark.parametrize("seed", [13, 41])
def test_vector_bit_identical_mixed_fleet(
    small_table, two_model_inputs, policy, seed
):
    """Direct + FUSE replicas, both oblivious policies, ``==`` floats."""
    allocation = _mixed_allocation()
    trace = _rmc1_trace(small_table, two_model_inputs[1], 0.65, seed)
    _, base = _replay(
        small_table, two_model_inputs, allocation, trace, "python", policy=policy
    )
    _, vec = _replay(
        small_table, two_model_inputs, allocation, trace, "vector", policy=policy
    )
    _assert_identical(vec, base)


def test_vector_bit_identical_two_models(small_table, two_model_inputs):
    """Two model streams routed independently stay exact per model."""
    models, workloads = two_model_inputs
    allocation = Allocation()
    allocation.add("T2", "DLRM-RMC1", 2)
    allocation.add("T3", "DLRM-RMC2", 2)
    segments = {
        "DLRM-RMC1": [(0.7 * 2 * small_table.qps("T2", "DLRM-RMC1"), 2.0)],
        "DLRM-RMC2": [(0.6 * 2 * small_table.qps("T3", "DLRM-RMC2"), 2.0)],
    }
    trace = build_fleet_trace(workloads, segments, seed=17)
    _, base = _replay(small_table, two_model_inputs, allocation, trace, "python")
    _, vec = _replay(small_table, two_model_inputs, allocation, trace, "vector")
    _assert_identical(vec, base)
    assert set(vec.per_model) == {"DLRM-RMC1", "DLRM-RMC2"}


@pytest.mark.parametrize("mode", ["reactive", "predictive"])
def test_vector_bit_identical_with_autoscaler(
    small_table, two_model_inputs, mode
):
    """Segmented delivery reproduces every autoscaler decision exactly:
    the vector core replays arrivals window by window, hands the scaler
    the same outstanding counts and window sketches at every tick, and
    honours drain settles identically."""
    from repro.fleet import PredictiveAutoscaler, ReactiveAutoscaler

    allocation = Allocation()
    allocation.add("T2", "DLRM-RMC1", 1)
    standby = Allocation()
    standby.add("T2", "DLRM-RMC1", 2)
    tup = small_table.get("T2", "DLRM-RMC1")
    trace = build_fleet_trace(
        {"DLRM-RMC1": two_model_inputs[1]["DLRM-RMC1"]},
        {"DLRM-RMC1": [(2.0 * tup.qps, 3.0)]},
        seed=23,
    )

    def scaler():
        if mode == "reactive":
            return ReactiveAutoscaler(
                {"DLRM-RMC1": 20.0}, window_s=0.25, cooldown_s=0.5
            )
        return PredictiveAutoscaler({"DLRM-RMC1": 20.0}, window_s=0.25)

    def run(core):
        return _replay(
            small_table, two_model_inputs, allocation, trace, core,
            standby=standby, autoscaler=scaler(),
        )[1]

    base, vec = run("python"), run("vector")
    _assert_identical(vec, base)
    assert base.scale_events  # the scaler actually acted


@pytest.mark.parametrize("shape", ["mmpp", "diurnal", "recorded"])
def test_vector_bit_identical_arrival_shapes(
    small_table, two_model_inputs, tmp_path, shape
):
    """Bursty, ramping, and file-replayed traffic all replay exactly."""
    from repro.traces import (
        DiurnalProcess,
        FleetArrivals,
        MMPPProcess,
        RecordedTrace,
        save_trace,
    )

    workload = two_model_inputs[1]["DLRM-RMC1"]
    qps = small_table.qps("T2", "DLRM-RMC1")
    allocation = _mixed_allocation(extra_t7=0)

    if shape == "mmpp":
        process = MMPPProcess(
            workload, rates=(0.8 * qps, 2.4 * qps), dwell_s=(0.6, 0.2),
            duration_s=2.5,
        )
        source = FleetArrivals({"DLRM-RMC1": process}, seed=5)
    elif shape == "diurnal":
        process = DiurnalProcess(
            workload, peak_qps=2.0 * qps, duration_s=2.5, steps=8
        )
        source = FleetArrivals({"DLRM-RMC1": process}, seed=5)
    else:
        trace = _rmc1_trace(small_table, two_model_inputs[1], 0.6, seed=9)
        path = tmp_path / "replay.jsonl"
        save_trace(str(path), trace)
        source = RecordedTrace(str(path), default_model="DLRM-RMC1")

    _, base = _replay(small_table, two_model_inputs, allocation, source, "python")
    _, vec = _replay(small_table, two_model_inputs, allocation, source, "vector")
    _assert_identical(vec, base)


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 10**6),
    policy=st.sampled_from(["rr", "weighted"]),
    load=st.floats(0.3, 0.95),
)
def test_vector_matches_python_property(
    small_table, two_model_inputs, seed, policy, load
):
    """Property sweep: any oblivious replay is exact, load and seed free."""
    allocation = _mixed_allocation()
    trace = _rmc1_trace(small_table, two_model_inputs[1], load, seed, duration=1.5)
    _, base = _replay(
        small_table, two_model_inputs, allocation, trace, "python", policy=policy
    )
    _, vec = _replay(
        small_table, two_model_inputs, allocation, trace, "vector", policy=policy
    )
    _assert_identical(vec, base)


def test_auto_selects_vector_without_logging(
    small_table, two_model_inputs, caplog
):
    """``core="auto"`` on an eligible run takes the fast path silently
    and still matches the python core exactly."""
    allocation = _mixed_allocation()
    trace = _rmc1_trace(small_table, two_model_inputs[1], 0.6, seed=3)
    _, base = _replay(small_table, two_model_inputs, allocation, trace, "python")
    with caplog.at_level(logging.INFO, logger=_ENGINE_LOGGER):
        _, auto = _replay(small_table, two_model_inputs, allocation, trace, "auto")
    assert not [
        r for r in caplog.records if "falling back" in r.getMessage()
    ]
    _assert_identical(auto, base)


# ----------------------------------------------------------------------
# Fallback surface: ineligible runs log (auto) or raise (vector)
# ----------------------------------------------------------------------


def _ineligible_kwargs(kind):
    from repro.fleet import FaultSchedule
    from repro.obs import FleetProbe

    if kind == "least":
        return {"policy": "least"}, "queue-aware"
    if kind == "p2c":
        return {"policy": "p2c"}, "queue-aware"
    if kind == "faults":
        return {"faults": FaultSchedule()}, "per-event core"
    if kind == "tracked":
        return {"faults": FaultSchedule(), "retries": 2}, "per-event core"
    assert kind == "observer"
    return {"observer": FleetProbe(window_s=0.25)}, "live observer"


@pytest.mark.parametrize(
    "kind", ["least", "p2c", "faults", "tracked", "observer"]
)
def test_auto_falls_back_and_logs(small_table, two_model_inputs, caplog, kind):
    """Every ineligible configuration degrades to the python core under
    ``auto``, logging the reason, and the result is the python result."""
    kwargs, reason_fragment = _ineligible_kwargs(kind)
    allocation = _mixed_allocation()
    trace = _rmc1_trace(small_table, two_model_inputs[1], 0.6, seed=3)
    _, base = _replay(
        small_table, two_model_inputs, allocation, trace, "python",
        **_ineligible_kwargs(kind)[0],
    )
    with caplog.at_level(logging.INFO, logger=_ENGINE_LOGGER):
        _, auto = _replay(
            small_table, two_model_inputs, allocation, trace, "auto", **kwargs
        )
    fallbacks = [
        r for r in caplog.records if "falling back" in r.getMessage()
    ]
    assert fallbacks, "auto must log why it refused the vector core"
    assert reason_fragment in fallbacks[0].getMessage()
    assert auto.per_model == base.per_model
    assert auto.events == base.events


@pytest.mark.parametrize(
    "kind", ["least", "p2c", "faults", "tracked", "observer"]
)
def test_vector_raises_when_ineligible(small_table, two_model_inputs, kind):
    """Forcing ``core="vector"`` on an ineligible run is an actionable
    error, not a silent degrade."""
    kwargs, reason_fragment = _ineligible_kwargs(kind)
    allocation = _mixed_allocation()
    trace = _rmc1_trace(small_table, two_model_inputs[1], 0.6, seed=3)
    with pytest.raises(ValueError, match="core='vector' is unavailable") as exc:
        _replay(
            small_table, two_model_inputs, allocation, trace, "vector", **kwargs
        )
    assert reason_fragment in str(exc.value)
    assert "core='auto'" in str(exc.value)  # the error names the way out


def test_unknown_core_name_rejected(small_table, two_model_inputs):
    models, workloads = two_model_inputs
    servers = build_fleet(_mixed_allocation(), small_table, models, workloads)
    with pytest.raises(ValueError, match="unknown core"):
        FleetSimulator(servers, policy="rr", sla_ms={"DLRM-RMC1": 20.0},
                       core="numba")


# ----------------------------------------------------------------------
# Input validation parity with the python core
# ----------------------------------------------------------------------


def test_vector_empty_trace_raises(small_table, two_model_inputs):
    with pytest.raises(ValueError, match="empty fleet trace"):
        _replay(small_table, two_model_inputs, _mixed_allocation(), [], "vector")


def test_vector_unsorted_stream_raises(small_table, two_model_inputs):
    """A lazily-streamed source with regressing timestamps fails with
    the same message the python core produces."""
    trace = _rmc1_trace(small_table, two_model_inputs[1], 0.5, seed=3)
    rotated = trace[1:] + trace[:1]  # earliest arrival moved last
    stream = iter(rotated)  # a generator cannot be re-sorted silently
    with pytest.raises(ValueError, match="not sorted by time"):
        _replay(
            small_table, two_model_inputs, _mixed_allocation(), stream, "vector"
        )


def test_vector_unsorted_list_sorted_like_python(small_table, two_model_inputs):
    """Out-of-order *lists* are sorted by both cores before replay."""
    trace = _rmc1_trace(small_table, two_model_inputs[1], 0.5, seed=3)
    rotated = trace[1:] + trace[:1]
    _, base = _replay(
        small_table, two_model_inputs, _mixed_allocation(), rotated, "python"
    )
    _, vec = _replay(
        small_table, two_model_inputs, _mixed_allocation(), rotated, "vector"
    )
    _assert_identical(vec, base)
