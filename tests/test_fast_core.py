"""Differential lane: the vectorized event core vs the python core.

``core="vector"`` promises *bit-identical* results to ``core="python"``
for every run it accepts (outstanding-oblivious routing, no faults, no
live observer): the per-replica float recurrences are evaluated in the
same order, so summaries are compared with ``==`` -- no tolerances.
The only reordering the design permits is cross-replica finish-time
ties inside one model's completion stream (documented in
``docs/performance.md``); none of the traffic here produces one, so the
pins below are exact.

The lane sweeps the eligibility surface -- routing policies (rr,
weighted), arrival shapes (piecewise Poisson, MMPP bursts, diurnal
ramps, recorded replay), and autoscaler modes (none, reactive,
predictive) -- and then asserts the *other* half of the contract: every
ineligible configuration falls back (``auto`` logs why, ``vector``
raises), so queue-aware policies, fault loops, tracking, and live
observers always get the exact per-event core.
"""

from __future__ import annotations

import logging

import pytest
from hypothesis import given, settings, strategies as st

np = pytest.importorskip("numpy")

from repro.cluster.state import Allocation
from repro.fleet import FleetSimulator, build_fleet, build_fleet_trace
from repro.sim import QueryWorkload

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")

_ENGINE_LOGGER = "repro.fleet.engine"


@pytest.fixture(scope="module")
def two_model_inputs():
    from repro.models import build_model

    models = {name: build_model(name) for name in ("DLRM-RMC1", "DLRM-RMC2")}
    workloads = {
        name: QueryWorkload.for_model(model.config.mean_query_size)
        for name, model in models.items()
    }
    return models, workloads


def _mixed_allocation(extra_t7: int = 1) -> Allocation:
    """3 direct-path T2 replicas + T7 event-path replicas, RMC1 only."""
    allocation = Allocation()
    allocation.add("T2", "DLRM-RMC1", 3)
    if extra_t7:
        allocation.add("T7", "DLRM-RMC1", extra_t7)
    return allocation


def _rmc1_trace(small_table, workloads, load: float, seed: int, duration=2.5):
    capacity = 3 * small_table.qps("T2", "DLRM-RMC1") + small_table.qps(
        "T7", "DLRM-RMC1"
    )
    return build_fleet_trace(
        {"DLRM-RMC1": workloads["DLRM-RMC1"]},
        {"DLRM-RMC1": [(load * capacity, duration)]},
        seed=seed,
    )


def _replay(small_table, inputs, allocation, trace, core, **kwargs):
    """Build a fresh fleet (servers are mutated by a run) and replay."""
    models, workloads = inputs
    servers = build_fleet(
        allocation, small_table, models, workloads,
        standby=kwargs.pop("standby", None),
    )
    sim = FleetSimulator(
        servers,
        policy=kwargs.pop("policy", "rr"),
        sla_ms={name: 20.0 for name in models},
        seed=kwargs.pop("seed", 7),
        core=core,
        **kwargs,
    )
    result = sim.run(trace, warmup_s=kwargs.get("warmup_s", 0.0) or 0.3)
    return sim, result


def _assert_identical(vec, base):
    """The full exactness contract: summaries, counters, power, events."""
    assert vec.per_model == base.per_model
    assert vec.avg_power_w == base.avg_power_w
    assert vec.events == base.events
    assert [
        (s.completed, s.qps, s.power_w, s.active_s) for s in vec.servers
    ] == [(s.completed, s.qps, s.power_w, s.active_s) for s in base.servers]
    # ScaleEvent embeds the FleetServer object, and the two replays build
    # separate fleets -- compare decisions field for field, not by object.
    assert [
        (e.time_s, e.model, e.action, e.server.index, e.reason)
        for e in vec.scale_events
    ] == [
        (e.time_s, e.model, e.action, e.server.index, e.reason)
        for e in base.scale_events
    ]


# ----------------------------------------------------------------------
# Exact pins across the eligibility surface
# ----------------------------------------------------------------------


@pytest.mark.parametrize("policy", ["rr", "weighted"])
@pytest.mark.parametrize("seed", [13, 41])
def test_vector_bit_identical_mixed_fleet(
    small_table, two_model_inputs, policy, seed
):
    """Direct + FUSE replicas, both oblivious policies, ``==`` floats."""
    allocation = _mixed_allocation()
    trace = _rmc1_trace(small_table, two_model_inputs[1], 0.65, seed)
    _, base = _replay(
        small_table, two_model_inputs, allocation, trace, "python", policy=policy
    )
    _, vec = _replay(
        small_table, two_model_inputs, allocation, trace, "vector", policy=policy
    )
    _assert_identical(vec, base)


def test_vector_bit_identical_two_models(small_table, two_model_inputs):
    """Two model streams routed independently stay exact per model."""
    models, workloads = two_model_inputs
    allocation = Allocation()
    allocation.add("T2", "DLRM-RMC1", 2)
    allocation.add("T3", "DLRM-RMC2", 2)
    segments = {
        "DLRM-RMC1": [(0.7 * 2 * small_table.qps("T2", "DLRM-RMC1"), 2.0)],
        "DLRM-RMC2": [(0.6 * 2 * small_table.qps("T3", "DLRM-RMC2"), 2.0)],
    }
    trace = build_fleet_trace(workloads, segments, seed=17)
    _, base = _replay(small_table, two_model_inputs, allocation, trace, "python")
    _, vec = _replay(small_table, two_model_inputs, allocation, trace, "vector")
    _assert_identical(vec, base)
    assert set(vec.per_model) == {"DLRM-RMC1", "DLRM-RMC2"}


@pytest.mark.parametrize("mode", ["reactive", "predictive"])
def test_vector_bit_identical_with_autoscaler(
    small_table, two_model_inputs, mode
):
    """Segmented delivery reproduces every autoscaler decision exactly:
    the vector core replays arrivals window by window, hands the scaler
    the same outstanding counts and window sketches at every tick, and
    honours drain settles identically."""
    from repro.fleet import PredictiveAutoscaler, ReactiveAutoscaler

    allocation = Allocation()
    allocation.add("T2", "DLRM-RMC1", 1)
    standby = Allocation()
    standby.add("T2", "DLRM-RMC1", 2)
    tup = small_table.get("T2", "DLRM-RMC1")
    trace = build_fleet_trace(
        {"DLRM-RMC1": two_model_inputs[1]["DLRM-RMC1"]},
        {"DLRM-RMC1": [(2.0 * tup.qps, 3.0)]},
        seed=23,
    )

    def scaler():
        if mode == "reactive":
            return ReactiveAutoscaler(
                {"DLRM-RMC1": 20.0}, window_s=0.25, cooldown_s=0.5
            )
        return PredictiveAutoscaler({"DLRM-RMC1": 20.0}, window_s=0.25)

    def run(core):
        return _replay(
            small_table, two_model_inputs, allocation, trace, core,
            standby=standby, autoscaler=scaler(),
        )[1]

    base, vec = run("python"), run("vector")
    _assert_identical(vec, base)
    assert base.scale_events  # the scaler actually acted


@pytest.mark.parametrize("shape", ["mmpp", "diurnal", "recorded"])
def test_vector_bit_identical_arrival_shapes(
    small_table, two_model_inputs, tmp_path, shape
):
    """Bursty, ramping, and file-replayed traffic all replay exactly."""
    from repro.traces import (
        DiurnalProcess,
        FleetArrivals,
        MMPPProcess,
        RecordedTrace,
        save_trace,
    )

    workload = two_model_inputs[1]["DLRM-RMC1"]
    qps = small_table.qps("T2", "DLRM-RMC1")
    allocation = _mixed_allocation(extra_t7=0)

    if shape == "mmpp":
        process = MMPPProcess(
            workload, rates=(0.8 * qps, 2.4 * qps), dwell_s=(0.6, 0.2),
            duration_s=2.5,
        )
        source = FleetArrivals({"DLRM-RMC1": process}, seed=5)
    elif shape == "diurnal":
        process = DiurnalProcess(
            workload, peak_qps=2.0 * qps, duration_s=2.5, steps=8
        )
        source = FleetArrivals({"DLRM-RMC1": process}, seed=5)
    else:
        trace = _rmc1_trace(small_table, two_model_inputs[1], 0.6, seed=9)
        path = tmp_path / "replay.jsonl"
        save_trace(str(path), trace)
        source = RecordedTrace(str(path), default_model="DLRM-RMC1")

    _, base = _replay(small_table, two_model_inputs, allocation, source, "python")
    _, vec = _replay(small_table, two_model_inputs, allocation, source, "vector")
    _assert_identical(vec, base)


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 10**6),
    policy=st.sampled_from(["rr", "weighted"]),
    load=st.floats(0.3, 0.95),
)
def test_vector_matches_python_property(
    small_table, two_model_inputs, seed, policy, load
):
    """Property sweep: any oblivious replay is exact, load and seed free."""
    allocation = _mixed_allocation()
    trace = _rmc1_trace(small_table, two_model_inputs[1], load, seed, duration=1.5)
    _, base = _replay(
        small_table, two_model_inputs, allocation, trace, "python", policy=policy
    )
    _, vec = _replay(
        small_table, two_model_inputs, allocation, trace, "vector", policy=policy
    )
    _assert_identical(vec, base)


def test_auto_selects_vector_without_logging(
    small_table, two_model_inputs, caplog
):
    """``core="auto"`` on an eligible run takes the fast path silently
    and still matches the python core exactly."""
    allocation = _mixed_allocation()
    trace = _rmc1_trace(small_table, two_model_inputs[1], 0.6, seed=3)
    _, base = _replay(small_table, two_model_inputs, allocation, trace, "python")
    with caplog.at_level(logging.INFO, logger=_ENGINE_LOGGER):
        _, auto = _replay(small_table, two_model_inputs, allocation, trace, "auto")
    assert not [
        r for r in caplog.records if "falling back" in r.getMessage()
    ]
    _assert_identical(auto, base)


def test_auto_takes_vector_fault_path_silently(
    small_table, two_model_inputs, caplog
):
    """A plain fault schedule (no retries/hedging/tracing) no longer
    forces the python core: ``auto`` runs the segmented vectorized
    fault path, silently, and the result is bit-identical."""
    from repro.fleet import FaultSchedule
    from repro.fleet.faults import crash, slowdown

    allocation = _mixed_allocation()
    trace = _rmc1_trace(small_table, two_model_inputs[1], 0.6, seed=3)

    def schedule():
        return FaultSchedule(
            [crash(0.6, 0, recover_after=0.4), slowdown(0.3, 1, 2.0, duration=0.5)]
        )

    _, base = _replay(
        small_table, two_model_inputs, allocation, trace, "python",
        faults=schedule(),
    )
    with caplog.at_level(logging.INFO, logger=_ENGINE_LOGGER):
        _, auto = _replay(
            small_table, two_model_inputs, allocation, trace, "auto",
            faults=schedule(),
        )
    assert not [
        r for r in caplog.records if "falling back" in r.getMessage()
    ]
    _assert_identical(auto, base)
    assert auto.fault_events == base.fault_events


# ----------------------------------------------------------------------
# Scripted-fault differential lane: the segmented vector fault path
# ----------------------------------------------------------------------


def _fault_schedule(kind, n_replicas):
    """Scripted schedules scaled to the fleet: a hard crash, a blip
    (crash + recovery), a transient slowdown, and a storm of all three."""
    from repro.fleet import FaultSchedule
    from repro.fleet.faults import crash, slowdown

    last = n_replicas - 1
    if kind == "crash":
        return FaultSchedule([crash(0.5, 0)])
    if kind == "blip":
        return FaultSchedule([crash(0.4, min(1, last), recover_after=0.3)])
    if kind == "slow":
        return FaultSchedule([slowdown(0.3, 0, 2.5, duration=0.6)])
    assert kind == "storm"
    return FaultSchedule(
        [
            crash(0.35, 0, recover_after=0.4),
            slowdown(0.25, min(1, last), 2.0, duration=0.5),
            crash(0.8, last),
        ]
    )


class TestVectorFaultDifferential:
    """The segmented fault path promises the same ``==`` contract as the
    fault-free vector core: kills, recoveries, and slowdowns partition
    the horizon into fault-free segments replayed through the vector
    machinery, and every per-query float, fault event, availability
    ratio, and phase-breakdown percentile must match the python light
    fault loop exactly."""

    def _run(self, small_table, inputs, kind, core, **kwargs):
        allocation = _mixed_allocation()
        trace = _rmc1_trace(small_table, inputs[1], 0.6, seed=11)
        return _replay(
            small_table, inputs, allocation, trace, core,
            faults=_fault_schedule(kind, 4), **kwargs,
        )[1]

    def _assert_fault_identical(self, vec, base):
        _assert_identical(vec, base)
        assert vec.fault_events == base.fault_events
        assert vec.availability == base.availability
        assert vec.phases == base.phases

    @pytest.mark.parametrize("policy", ["rr", "weighted"])
    @pytest.mark.parametrize("kind", ["crash", "blip", "slow", "storm"])
    def test_fault_legs_bit_identical(
        self, small_table, two_model_inputs, kind, policy
    ):
        base = self._run(small_table, two_model_inputs, kind, "python",
                         policy=policy)
        vec = self._run(small_table, two_model_inputs, kind, "vector",
                        policy=policy)
        self._assert_fault_identical(vec, base)
        assert base.fault_events  # the schedule actually fired

    def test_fault_with_reactive_autoscaler_bit_identical(
        self, small_table, two_model_inputs
    ):
        """Fault segmentation and autoscaler tick segmentation compose:
        the scaler reacts to the crash-induced backlog identically on
        both cores, down to the scale-event timestamps."""
        from repro.fleet import ReactiveAutoscaler

        def run(core):
            standby = Allocation()
            standby.add("T2", "DLRM-RMC1", 2)
            return self._run(
                small_table, two_model_inputs, "storm", core,
                standby=standby,
                autoscaler=ReactiveAutoscaler(
                    {"DLRM-RMC1": 20.0}, window_s=0.25, cooldown_s=0.5
                ),
            )

        base, vec = run("python"), run("vector")
        self._assert_fault_identical(vec, base)

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 10**6), policy=st.sampled_from(["rr", "weighted"]))
    def test_fault_property_sweep(
        self, small_table, two_model_inputs, seed, policy
    ):
        """Any seed, either oblivious policy: the storm schedule replays
        exactly."""
        allocation = _mixed_allocation()
        trace = _rmc1_trace(
            small_table, two_model_inputs[1], 0.6, seed, duration=1.5
        )

        def run(core):
            return _replay(
                small_table, two_model_inputs, allocation, trace, core,
                policy=policy, faults=_fault_schedule("storm", 4),
            )[1]

        base, vec = run("python"), run("vector")
        self._assert_fault_identical(vec, base)


# ----------------------------------------------------------------------
# Statistical-equivalence lane: core="vector-epoch" on queue-aware runs
# ----------------------------------------------------------------------


class TestEpochStatisticalLane:
    """``vector-epoch`` trades per-event queue freshness for batching,
    so its reports are *statistically* equivalent, never ``==``.  The
    bands below were calibrated offline over 2,000 seeded trials
    (seeds x loads 0.4/0.65/0.85 x least/p2c on this fleet shape) with
    zero violations -- worst cases: completed 0.34%, power 1.8%, p50
    ratio 2.05, p99 ratio (0.96, 1.97) -- then widened for headroom; a
    failure here means the epoch core's drift regime changed, not bad
    luck."""
    COMPLETED_REL = 0.02
    POWER_REL = 0.04
    P50_BAND = (0.45, 3.0)
    P99_BAND = (0.45, 3.0)

    def _pair(self, small_table, inputs, seed, load, policy, epoch_ms=5.0):
        allocation = _mixed_allocation()
        trace = _rmc1_trace(
            small_table, inputs[1], load, seed, duration=1.5
        )

        def run(core):
            return _replay(
                small_table, inputs, allocation, trace, core,
                policy=policy, epoch_ms=epoch_ms,
            )[1]

        return run("python"), run("vector-epoch")

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 10**6),
        load=st.floats(0.4, 0.85),
        policy=st.sampled_from(["least", "p2c"]),
    )
    def test_epoch_aggregates_within_calibrated_band(
        self, small_table, two_model_inputs, seed, load, policy
    ):
        base, vec = self._pair(
            small_table, two_model_inputs, seed, load, policy
        )
        b = base.per_model["DLRM-RMC1"]
        v = vec.per_model["DLRM-RMC1"]
        assert abs(v.completed - b.completed) <= max(
            1, self.COMPLETED_REL * b.completed
        )
        assert abs(vec.avg_power_w - base.avg_power_w) <= (
            self.POWER_REL * base.avg_power_w
        )
        lo, hi = self.P50_BAND
        assert lo * b.p50_ms <= v.p50_ms <= hi * b.p50_ms
        lo, hi = self.P99_BAND
        assert lo * b.p99_ms <= v.p99_ms <= hi * b.p99_ms

    def test_oblivious_policies_stay_exact_under_epoch(
        self, small_table, two_model_inputs
    ):
        """rr under ``vector-epoch`` takes the same exact pre-routed
        path as ``vector`` -- epochs only change queue-aware routing."""
        allocation = _mixed_allocation()
        trace = _rmc1_trace(small_table, two_model_inputs[1], 0.6, seed=3)
        _, base = _replay(
            small_table, two_model_inputs, allocation, trace, "python"
        )
        _, vec = _replay(
            small_table, two_model_inputs, allocation, trace, "vector-epoch"
        )
        _assert_identical(vec, base)

    def test_epoch_ms_must_be_positive(self, small_table, two_model_inputs):
        models, workloads = two_model_inputs
        servers = build_fleet(
            _mixed_allocation(), small_table, models, workloads
        )
        for bad in (0.0, -1.0):
            with pytest.raises(ValueError, match="epoch_ms must be > 0"):
                FleetSimulator(
                    servers, policy="least", sla_ms={"DLRM-RMC1": 20.0},
                    core="vector-epoch", epoch_ms=bad,
                )

    def test_epoch_refuses_fault_schedules(
        self, small_table, two_model_inputs
    ):
        """Mid-epoch kills would invalidate the queue snapshots, so
        ``vector-epoch`` + faults is a hard error pointing at ``auto``."""
        from repro.fleet import FaultSchedule
        from repro.fleet.faults import crash

        trace = _rmc1_trace(small_table, two_model_inputs[1], 0.6, seed=3)
        with pytest.raises(ValueError, match="mid-epoch"):
            _replay(
                small_table, two_model_inputs, _mixed_allocation(), trace,
                "vector-epoch", policy="least",
                faults=FaultSchedule([crash(0.5, 0)]),
            )


# ----------------------------------------------------------------------
# Fallback surface: ineligible runs log (auto) or raise (vector)
# ----------------------------------------------------------------------


def _ineligible_kwargs(kind):
    from repro.fleet import FaultSchedule
    from repro.obs import FleetProbe

    if kind == "least":
        return {"policy": "least"}, "queue-aware"
    if kind == "p2c":
        return {"policy": "p2c"}, "queue-aware"
    if kind == "tracked":
        return {"faults": FaultSchedule(), "retries": 2}, "per-event core"
    assert kind == "observer"
    return {"observer": FleetProbe(window_s=0.25)}, "live observer"


@pytest.mark.parametrize(
    "kind", ["least", "p2c", "tracked", "observer"]
)
def test_auto_falls_back_and_logs(small_table, two_model_inputs, caplog, kind):
    """Every ineligible configuration degrades to the python core under
    ``auto``, logging the reason, and the result is the python result."""
    kwargs, reason_fragment = _ineligible_kwargs(kind)
    allocation = _mixed_allocation()
    trace = _rmc1_trace(small_table, two_model_inputs[1], 0.6, seed=3)
    _, base = _replay(
        small_table, two_model_inputs, allocation, trace, "python",
        **_ineligible_kwargs(kind)[0],
    )
    with caplog.at_level(logging.INFO, logger=_ENGINE_LOGGER):
        _, auto = _replay(
            small_table, two_model_inputs, allocation, trace, "auto", **kwargs
        )
    fallbacks = [
        r for r in caplog.records if "falling back" in r.getMessage()
    ]
    assert fallbacks, "auto must log why it refused the vector core"
    assert reason_fragment in fallbacks[0].getMessage()
    assert auto.per_model == base.per_model
    assert auto.events == base.events


@pytest.mark.parametrize(
    "kind", ["least", "p2c", "tracked", "observer"]
)
def test_vector_raises_when_ineligible(small_table, two_model_inputs, kind):
    """Forcing ``core="vector"`` on an ineligible run is an actionable
    error, not a silent degrade."""
    kwargs, reason_fragment = _ineligible_kwargs(kind)
    allocation = _mixed_allocation()
    trace = _rmc1_trace(small_table, two_model_inputs[1], 0.6, seed=3)
    with pytest.raises(ValueError, match="core='vector' is unavailable") as exc:
        _replay(
            small_table, two_model_inputs, allocation, trace, "vector", **kwargs
        )
    assert reason_fragment in str(exc.value)
    assert "core='auto'" in str(exc.value)  # the error names the way out


def test_vector_error_lists_every_reason(small_table, two_model_inputs):
    """A run blocked for several reasons reports them all, ``;``-joined,
    so the configuration is fixed once instead of whack-a-mole."""
    from repro.obs import FleetProbe

    trace = _rmc1_trace(small_table, two_model_inputs[1], 0.6, seed=3)
    with pytest.raises(ValueError) as exc:
        _replay(
            small_table, two_model_inputs, _mixed_allocation(), trace,
            "vector", policy="least",
            observer=FleetProbe(window_s=0.25), retries=1,
        )
    msg = str(exc.value)
    assert "retries, hedging, or tracing" in msg
    assert "live observer" in msg
    assert "queue-aware" in msg
    assert msg.count(";") >= 2  # the reasons arrive joined, not truncated


def test_unknown_core_name_rejected(small_table, two_model_inputs):
    models, workloads = two_model_inputs
    servers = build_fleet(_mixed_allocation(), small_table, models, workloads)
    with pytest.raises(ValueError, match="unknown core"):
        FleetSimulator(servers, policy="rr", sla_ms={"DLRM-RMC1": 20.0},
                       core="numba")


# ----------------------------------------------------------------------
# Input validation parity with the python core
# ----------------------------------------------------------------------


def test_vector_empty_trace_raises(small_table, two_model_inputs):
    with pytest.raises(ValueError, match="empty fleet trace"):
        _replay(small_table, two_model_inputs, _mixed_allocation(), [], "vector")


def test_vector_unsorted_stream_raises(small_table, two_model_inputs):
    """A lazily-streamed source with regressing timestamps fails with
    the same message the python core produces."""
    trace = _rmc1_trace(small_table, two_model_inputs[1], 0.5, seed=3)
    rotated = trace[1:] + trace[:1]  # earliest arrival moved last
    stream = iter(rotated)  # a generator cannot be re-sorted silently
    with pytest.raises(ValueError, match="not sorted by time"):
        _replay(
            small_table, two_model_inputs, _mixed_allocation(), stream, "vector"
        )


def test_vector_unsorted_list_sorted_like_python(small_table, two_model_inputs):
    """Out-of-order *lists* are sorted by both cores before replay."""
    trace = _rmc1_trace(small_table, two_model_inputs[1], 0.5, seed=3)
    rotated = trace[1:] + trace[:1]
    _, base = _replay(
        small_table, two_model_inputs, _mixed_allocation(), rotated, "python"
    )
    _, vec = _replay(
        small_table, two_model_inputs, _mixed_allocation(), rotated, "vector"
    )
    _assert_identical(vec, base)
