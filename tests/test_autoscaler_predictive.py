"""Units and a head-to-head for the predictive autoscaler.

The unit lane drives ``PredictiveAutoscaler.tick`` with stub replicas
to pin the forecasting mechanics (trend extrapolation, multi-activate
on steep ramps, forecast-gated drains, the violation safety net).  The
integration test replays one diurnal ramp through a real fleet twice --
reactive vs predictive -- and asserts the predictive scaler takes
fewer SLA violations without spending more fleet power, the claim the
slow-lane benchmark (`benchmarks/bench_predictive_autoscaling.py`)
quantifies at full scale.
"""

from __future__ import annotations

import pytest

from repro.fleet import PredictiveAutoscaler, ReactiveAutoscaler


class _Replica:
    """Stub with the attributes the autoscalers read."""

    def __init__(self, weight: float, domain: int = 0) -> None:
        self.weight = weight
        self.domain = domain

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_Replica(w={self.weight})"


def _tick(scaler, now, rate, active, standby, latencies=None, arrivals=None):
    """One window: `rate` offered QPS, optional explicit latencies."""
    n = int(rate * scaler.window_s) if arrivals is None else arrivals
    return scaler.tick(
        now,
        {"M": latencies if latencies is not None else [1.0] * min(n, 50)},
        {"M": n},
        {"M": active},
        lambda model: list(standby),
    )


class TestForecast:
    def test_short_history_is_last_rate(self):
        scaler = PredictiveAutoscaler({"M": 20.0})
        assert scaler.forecast_qps("M") == 0.0
        _tick(scaler, 1.0, 100.0, [_Replica(1000.0)], [])
        assert scaler.forecast_qps("M") == pytest.approx(100.0)

    def test_rising_trend_extrapolates_above_last_rate(self):
        scaler = PredictiveAutoscaler({"M": 20.0}, lead_windows=3)
        for k, rate in enumerate([100.0, 200.0, 300.0, 400.0]):
            _tick(scaler, float(k + 1), rate, [_Replica(10_000.0)], [])
        # Perfect linear ramp of +100/window: 3 windows ahead = +300.
        assert scaler.forecast_qps("M") == pytest.approx(700.0)

    def test_falling_trend_extrapolates_below_last_rate(self):
        scaler = PredictiveAutoscaler({"M": 20.0}, lead_windows=2)
        for k, rate in enumerate([900.0, 700.0, 500.0]):
            _tick(scaler, float(k + 1), rate, [_Replica(10_000.0)], [])
        assert scaler.forecast_qps("M") == pytest.approx(100.0)

    def test_forecast_clamped_at_zero(self):
        scaler = PredictiveAutoscaler({"M": 20.0}, lead_windows=8)
        for k, rate in enumerate([300.0, 150.0, 0.0]):
            _tick(scaler, float(k + 1), rate, [_Replica(10_000.0)], [])
        assert scaler.forecast_qps("M") == 0.0


class TestTickActions:
    def test_activates_ahead_of_ramp_before_any_violation(self):
        scaler = PredictiveAutoscaler(
            {"M": 20.0}, lead_windows=3, target_utilization=0.8
        )
        active = [_Replica(1000.0)]
        standby = [_Replica(1000.0), _Replica(900.0)]
        # Ramp toward capacity with every completed query *under* SLA:
        # the reactive trigger stays silent, the forecast does not.
        events = []
        for k, rate in enumerate([200.0, 400.0, 600.0, 800.0]):
            events = _tick(scaler, float(k + 1), rate, active, standby)
        assert [e.action for e in events] == ["activate"]
        assert events[0].server is standby[0]  # fastest standby first
        assert "forecast" in events[0].reason

    def test_multi_activates_on_steep_ramp(self):
        scaler = PredictiveAutoscaler(
            {"M": 20.0}, lead_windows=4, target_utilization=0.8
        )
        active = [_Replica(500.0)]
        standby = [_Replica(500.0), _Replica(500.0), _Replica(500.0)]
        for k, rate in enumerate([100.0, 600.0, 1100.0, 1600.0]):
            events = _tick(scaler, float(k + 1), rate, active, standby)
        # Forecast ~3600 QPS needs 4500 capacity at 0.8 target: all
        # three standbys come online in one tick.
        assert [e.action for e in events] == ["activate"] * 3

    def test_drains_on_downslope_but_keeps_forecast_covered(self):
        scaler = PredictiveAutoscaler(
            {"M": 20.0},
            lead_windows=2,
            target_utilization=0.8,
            drain_utilization=0.5,
        )
        active = [_Replica(1000.0), _Replica(1000.0), _Replica(800.0)]
        for k, rate in enumerate([1200.0, 900.0, 600.0, 300.0]):
            events = _tick(scaler, float(k + 1), rate, active, [])
        assert [e.action for e in events] == ["drain"]
        assert events[0].server is active[2]  # weakest replica drains

    def test_never_drains_below_min_active(self):
        scaler = PredictiveAutoscaler({"M": 20.0}, min_active=2)
        active = [_Replica(1000.0), _Replica(1000.0)]
        for k in range(6):
            events = _tick(scaler, float(k + 1), 10.0, active, [])
            assert events == []

    def test_violation_safety_net_fires_without_trend(self):
        scaler = PredictiveAutoscaler(
            {"M": 20.0}, violation_up=0.05, target_utilization=0.5
        )
        active = [_Replica(10_000.0)]
        standby = [_Replica(1000.0)]
        # Flat low rate (forecast satisfied), but the window's
        # completions blow the SLA: one standby activates anyway.
        events = _tick(
            scaler, 1.0, 40.0, active, standby, latencies=[50.0] * 40
        )
        assert [e.action for e in events] == ["activate"]
        assert "viol" in events[0].reason

    def test_dead_domain_standbys_deprioritized(self):
        scaler = PredictiveAutoscaler({"M": 20.0}, target_utilization=0.8)
        active = [_Replica(100.0, domain=0)]
        fast_dead = _Replica(900.0, domain=1)
        slow_live = _Replica(500.0, domain=2)
        events = scaler.tick(
            1.0,
            {"M": [1.0] * 50},
            {"M": 500},
            {"M": active},
            lambda model: [fast_dead, slow_live],
            dead_domains={1},
        )
        assert events and events[0].server is slow_live

    def test_validation(self):
        with pytest.raises(ValueError):
            PredictiveAutoscaler({"M": 20.0}, window_s=0.0)
        with pytest.raises(ValueError):
            PredictiveAutoscaler({"M": 20.0}, history_windows=1)
        with pytest.raises(ValueError):
            PredictiveAutoscaler({"M": 20.0}, target_utilization=1.5)
        with pytest.raises(ValueError):
            PredictiveAutoscaler(
                {"M": 20.0}, target_utilization=0.5, drain_utilization=0.6
            )


class TestRampHeadToHead:
    def test_predictive_beats_reactive_on_ramp(self, small_table):
        """One compressed diurnal ramp, same fleet, same traffic:
        predictive takes strictly fewer SLA violations than reactive
        at equal-or-lower fleet power."""
        from repro.cluster.state import Allocation
        from repro.fleet import FleetSimulator, build_fleet
        from repro.models import build_model
        from repro.sim import QueryWorkload
        from repro.traces import DiurnalProcess, FleetArrivals

        name = "DLRM-RMC1"
        model = build_model(name)
        models = {name: model}
        workloads = {name: QueryWorkload.for_model(model.config.mean_query_size)}
        sla = {name: model.sla_ms}
        qps1 = small_table.qps("T2", name)

        base = Allocation()
        base.add("T2", name, 2)
        standby = Allocation()
        standby.add("T2", name, 6)
        duration = 12.0
        arrivals = FleetArrivals(
            {
                name: DiurnalProcess(
                    workloads[name],
                    0.7 * 8 * qps1,
                    duration,
                    steps=48,
                    trough_ratio=0.12,
                    peak_position=0.5,
                )
            },
            seed=3,
        )
        window = 0.25

        def run(scaler):
            servers = build_fleet(
                base, small_table, models, workloads, standby=standby
            )
            sim = FleetSimulator(
                servers, policy="least", sla_ms=sla, autoscaler=scaler, seed=1
            )
            return sim.run(arrivals, warmup_s=0.5)

        reactive = run(
            ReactiveAutoscaler(sla, window_s=window, cooldown_s=2 * window)
        )
        predictive = run(
            PredictiveAutoscaler(
                sla,
                window_s=window,
                lead_windows=2,
                target_utilization=0.9,
                drain_utilization=0.7,
            )
        )
        r = reactive.per_model[name]
        p = predictive.per_model[name]
        assert p.violation_rate < r.violation_rate
        assert p.p99_ms < r.p99_ms
        assert predictive.avg_power_w <= reactive.avg_power_w * 1.02
