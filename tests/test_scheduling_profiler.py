"""Tests for offline profiling and the workload-classification table."""

from __future__ import annotations

import pytest

from repro.hardware import SERVER_TYPES
from repro.models import build_model
from repro.scheduling import (
    ClassificationTable,
    EfficiencyTuple,
    OfflineProfiler,
)


from repro.plans import ExecutionPlan, Placement

_DUMMY_PLAN = ExecutionPlan(Placement.CPU_MODEL_BASED, threads=1)


def _tuple(server, model, qps, power, plan=_DUMMY_PLAN):
    return EfficiencyTuple(
        server_name=server, model_name=model, qps=qps, power_w=power, plan=plan
    )


class TestClassificationTable:
    def _table(self):
        table = ClassificationTable()
        table.add(_tuple("T2", "A", 1000, 100))
        table.add(_tuple("T3", "A", 2000, 120))
        table.add(_tuple("T7", "A", 3000, 400))
        table.add(_tuple("T2", "B", 50, 100))
        return table

    def test_lookup(self):
        table = self._table()
        assert table.qps("T3", "A") == 2000
        assert table.power("T7", "A") == 400
        with pytest.raises(KeyError, match="offline profiler"):
            table.get("T9", "A")

    def test_ranking_by_energy_efficiency(self):
        table = self._table()
        ranked = [t.server_name for t in table.rank_servers("A")]
        # qps/W: T3 = 16.7, T2 = 10, T7 = 7.5
        assert ranked == ["T3", "T2", "T7"]

    def test_ranking_by_qps(self):
        table = self._table()
        ranked = [t.server_name for t in table.rank_servers("A", metric="qps")]
        assert ranked == ["T7", "T3", "T2"]

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError):
            self._table().rank_servers("A", metric="latency")

    def test_normalized_to_baseline(self):
        table = self._table()
        norm = table.normalized(metric="qps", baseline_server="T2")
        assert norm["A"]["T2"] == pytest.approx(1.0)
        assert norm["A"]["T3"] == pytest.approx(2.0)
        assert norm["B"]["T2"] == pytest.approx(1.0)
        assert norm["B"]["T3"] == 0.0  # missing pair -> 0

    def test_infeasible_tuples_excluded_from_ranking(self):
        table = self._table()
        table.add(_tuple("T9", "A", 0.0, 50))  # infeasible (plan None, qps 0)
        ranked = [t.server_name for t in table.rank_servers("A")]
        assert "T9" not in ranked


class TestOfflineProfiler:
    def test_profile_pair_produces_tuple(self):
        profiler = OfflineProfiler()
        tup = profiler.profile_pair(SERVER_TYPES["T2"], build_model("DLRM-RMC1"))
        assert tup.feasible
        assert tup.qps > 0 and tup.power_w > 0
        assert tup.plan is not None
        assert tup.qps_per_watt == pytest.approx(tup.qps / tup.power_w)

    def test_profile_reuses_evaluators(self):
        profiler = OfflineProfiler()
        e1 = profiler.evaluator(SERVER_TYPES["T2"])
        e2 = profiler.evaluator(SERVER_TYPES["T2"])
        assert e1 is e2

    def test_small_table_covers_all_pairs(self, small_table):
        assert set(small_table.server_names) == {"T2", "T3", "T7"}
        assert set(small_table.model_names) == {"DLRM-RMC1", "DLRM-RMC2"}
        assert len(small_table.entries) == 6

    def test_fig8a_efficiency_ranking(self, small_table):
        """Fig. 8(a): CPU+NMP > CPU+GPU > CPU for RMC1 and RMC2."""
        for model in ("DLRM-RMC1", "DLRM-RMC2"):
            ranked = [t.server_name for t in small_table.rank_servers(model)]
            assert ranked[0] == "T3"
            assert ranked[-1] == "T2"

    def test_fig8a_nmp_gain_magnitudes(self, small_table):
        """Paper: NMPx2 gives ~1.75x (RMC1) / ~2.04x (RMC2) QPS/W over CPU."""
        for model, low, high in (
            ("DLRM-RMC1", 1.3, 2.6),
            ("DLRM-RMC2", 1.4, 2.8),
        ):
            gain = (
                small_table.get("T3", model).qps_per_watt
                / small_table.get("T2", model).qps_per_watt
            )
            assert low < gain < high
