"""Tests for the PCIe link and co-location interference models."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.perf import InterferenceModel, PcieLink


class TestPcieLink:
    def test_transfer_time_composition(self):
        link = PcieLink(bandwidth_bytes=16e9, latency_s=10e-6)
        assert link.transfer_s(16e9) == pytest.approx(1.0 + 10e-6)
        assert link.transfer_s(0) == 0.0

    def test_sharing_scales_linearly(self):
        link = PcieLink()
        alone = link.transfer_s(1e9, sharers=1)
        shared = link.transfer_s(1e9, sharers=4)
        assert shared > alone
        assert (shared - link.latency_s) == pytest.approx(
            4 * (alone - link.latency_s)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            PcieLink(bandwidth_bytes=0)
        link = PcieLink()
        with pytest.raises(ValueError):
            link.transfer_s(-1)
        with pytest.raises(ValueError):
            link.transfer_s(1, sharers=0)


class TestInterferenceModel:
    def test_no_contention_below_peak(self):
        model = InterferenceModel()
        assert model.bandwidth_fraction(10e9, 34e9) == 1.0

    def test_fair_throttle_above_peak(self):
        model = InterferenceModel()
        assert model.bandwidth_fraction(68e9, 34e9) == pytest.approx(0.5)

    @given(threads=st.integers(1, 64))
    def test_llc_inflation_monotone_and_capped(self, threads):
        model = InterferenceModel(llc_penalty_per_thread=0.02, max_llc_penalty=0.5)
        inflation = model.llc_inflation(threads)
        assert 1.0 <= inflation <= 1.5
        if threads > 1:
            assert inflation >= model.llc_inflation(threads - 1)

    def test_single_thread_no_inflation(self):
        assert InterferenceModel().llc_inflation(1) == 1.0

    def test_memory_time_scale_combines_both_effects(self):
        model = InterferenceModel(llc_penalty_per_thread=0.1)
        scale = model.memory_time_scale(3, demand_bytes_per_s=68e9, peak_bytes_per_s=34e9)
        assert scale == pytest.approx(1.2 / 0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            InterferenceModel(llc_penalty_per_thread=-0.1)
        model = InterferenceModel()
        with pytest.raises(ValueError):
            model.bandwidth_fraction(-1, 10)
        with pytest.raises(ValueError):
            model.llc_inflation(0)
