"""Tests for per-query pooling variance in the DES (Fig. 2c effect)."""

from __future__ import annotations

import pytest

from repro.models import build_model, partition_model
from repro.plans import ExecutionPlan, Placement
from repro.sim import (
    DiscreteEventServerSim,
    Query,
    QueryWorkload,
    QuerySizeDistribution,
    SimStage,
    StageMode,
    build_stages,
)


def _stage(sensitivity: float) -> SimStage:
    return SimStage(
        name="sparse",
        units=1,
        mode=StageMode.SPLIT,
        chunk_items=100,
        fuse_items=0,
        latency_fn=lambda items: 0.01,
        pooling_sensitivity=sensitivity,
    )


class TestPoolingSensitivity:
    def test_insensitive_stage_ignores_pooling(self):
        stage = _stage(0.0)
        assert stage.service_s(50, pooling_scale=3.0) == pytest.approx(0.01)

    def test_fully_sensitive_stage_scales_linearly(self):
        stage = _stage(1.0)
        assert stage.service_s(50, pooling_scale=2.0) == pytest.approx(0.02)
        assert stage.service_s(50, pooling_scale=0.5) == pytest.approx(0.005)

    def test_partial_sensitivity_interpolates(self):
        stage = _stage(0.5)
        assert stage.service_s(50, pooling_scale=3.0) == pytest.approx(0.02)

    def test_unit_pooling_is_identity(self):
        for sensitivity in (0.0, 0.4, 1.0):
            stage = _stage(sensitivity)
            assert stage.service_s(50, pooling_scale=1.0) == pytest.approx(0.01)


class TestDesWithPoolingVariance:
    def test_heavy_pooling_query_served_slower(self):
        sim = DiscreteEventServerSim([_stage(1.0)])
        light = Query(query_id=0, arrival_s=0.0, size=50, pooling_scale=0.5)
        heavy = Query(query_id=1, arrival_s=10.0, size=50, pooling_scale=4.0)
        result = sim.run([light, heavy])
        assert result.latencies_s[1] == pytest.approx(8 * result.latencies_s[0])

    def test_pooling_variance_widens_the_tail(self):
        """More pooling variance means a longer p99 at the same load."""
        from repro.hardware import SERVER_TYPES
        from repro.sim import ServerEvaluator, simulate

        model = build_model("DLRM-RMC1")
        pm = partition_model(model)
        evaluator = ServerEvaluator(SERVER_TYPES["T2"])
        plan = ExecutionPlan(
            Placement.CPU_MODEL_BASED, threads=10, cores_per_thread=2, batch_size=256
        )
        size_dist = QuerySizeDistribution(mean=150.0)
        calm = QueryWorkload(size_dist=size_dist, pooling_cv=0.0)
        wild = QueryWorkload(size_dist=size_dist, pooling_cv=0.8)
        rate = 600.0
        p_calm = simulate(evaluator, pm, calm, plan, rate, duration_s=12.0, seed=7)
        p_wild = simulate(evaluator, pm, wild, plan, rate, duration_s=12.0, seed=7)
        assert p_wild.latency.p99_ms > p_calm.latency.p99_ms

    def test_multi_hot_stages_are_sensitized(self, t2_evaluator, rmc1_workload):
        model = build_model("DLRM-RMC1")
        pm = partition_model(model)
        plan = ExecutionPlan(
            Placement.CPU_SD_PIPELINE,
            batch_size=256,
            sparse_threads=4,
            sparse_cores=2,
            dense_threads=8,
        )
        stages = build_stages(t2_evaluator, pm, rmc1_workload, plan)
        by_name = {s.name: s for s in stages}
        assert by_name["sparse"].pooling_sensitivity > 0
        assert by_name["dense"].pooling_sensitivity == 0

    def test_one_hot_models_are_insensitive(self, t2_evaluator):
        model = build_model("DIN")
        pm = partition_model(model)
        wl = QueryWorkload.for_model(model.config.mean_query_size)
        plan = ExecutionPlan(
            Placement.CPU_MODEL_BASED, threads=10, cores_per_thread=2, batch_size=32
        )
        stages = build_stages(t2_evaluator, pm, wl, plan)
        assert all(s.pooling_sensitivity == 0 for s in stages)
