"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_search_arguments(self):
        args = build_parser().parse_args(["search", "DLRM-RMC1", "T3", "--sla", "30"])
        args_defaults = build_parser().parse_args(["search", "DLRM-RMC1", "T3"])
        assert args.sla == 30.0
        assert args_defaults.sla is None

    def test_rejects_unknown_model(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["search", "DLRM-RMC9", "T3"])

    def test_rejects_unknown_server(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["search", "DLRM-RMC1", "T99"])

    def test_fleet_defaults(self):
        args = build_parser().parse_args(["fleet"])
        assert args.servers == 20
        assert args.policy == "p2c"
        assert args.peak_qps is None
        assert not args.autoscale

    def test_fleet_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fleet", "--policy", "fifo"])


class TestCommands:
    def test_models_lists_zoo(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        for name in ("DLRM-RMC1", "DIEN", "MT-WnD"):
            assert name in out

    def test_servers_lists_fleet(self, capsys):
        assert main(["servers"]) == 0
        out = capsys.readouterr().out
        assert "T10" in out and "CPU-T2+NMPx8+V100" in out

    def test_search_prints_plan(self, capsys):
        assert main(["search", "DLRM-RMC1", "T2"]) == 0
        out = capsys.readouterr().out
        assert "Hercules" in out and "QPS" in out

    def test_search_with_baseline(self, capsys):
        assert main(["search", "DLRM-RMC1", "T2", "--baseline"]) == 0
        out = capsys.readouterr().out
        assert "DeepRecSys+Baymax" in out

    def test_search_impossible_sla_fails(self, capsys):
        assert main(["search", "DLRM-RMC1", "T2", "--sla", "0.001"]) == 1

    def test_profile_small_slice(self, capsys):
        code = main(
            ["profile", "--servers", "T2", "--models", "DLRM-RMC1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "efficiency tuples" in out

    def test_serve_day(self, capsys):
        code = main(
            [
                "serve",
                "--servers", "T2", "T3",
                "--models", "DLRM-RMC1",
                "--policy", "greedy",
                "--peak-qps", "3000",
                "--interval", "120",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "peak" in out and "shortfall: no" in out.lower().replace(
            "false", "no"
        )

    def test_fleet_replay(self, capsys):
        code = main(
            [
                "fleet",
                "--servers", "4",
                "--server-types", "T2",
                "--models", "DLRM-RMC1",
                "--policy", "p2c",
                "--duration", "2",
                "--segments", "8",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "p99 ms" in out and "viol" in out
        assert "fleet power" in out and "queries served" in out
        assert "DLRM-RMC1" in out

    def test_fleet_autoscale(self, capsys):
        code = main(
            [
                "fleet",
                "--servers", "4",
                "--server-types", "T2",
                "--models", "DLRM-RMC1",
                "--duration", "2",
                "--segments", "8",
                "--autoscale",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fleet power" in out


class TestBench:
    def test_bench_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert args.quick is False
        assert args.seed == 0
        assert args.jobs == 1
        assert args.output == "BENCH_perf.json"
        assert args.baseline is None

    def test_bench_subset_writes_json(self, capsys, tmp_path):
        out_path = tmp_path / "bench.json"
        code = main(
            [
                "bench",
                "--quick",
                "--scenarios", "loadgen",
                "--seed", "7",
                "--output", str(out_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "loadgen" in out

        import json

        doc = json.loads(out_path.read_text())
        assert doc["schema"] == 1
        assert doc["mode"] == "quick"
        assert doc["seed"] == 7
        assert set(doc["scenarios"]) == {"loadgen"}
        metrics = doc["scenarios"]["loadgen"]
        assert metrics["wall_s"] > 0
        assert metrics["queries_per_s"] > 0

    def test_bench_baseline_speedups(self, tmp_path):
        base_path = tmp_path / "base.json"
        out_path = tmp_path / "out.json"
        assert main(["bench", "--quick", "--scenarios", "loadgen",
                     "--output", str(base_path)]) == 0
        assert main(["bench", "--quick", "--scenarios", "loadgen",
                     "--baseline", str(base_path),
                     "--output", str(out_path)]) == 0

        import json

        doc = json.loads(out_path.read_text())
        assert "baseline" in doc and "speedup" in doc
        assert doc["speedup"]["loadgen"] > 0

    def test_bench_rejects_unknown_scenario(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["bench", "--quick", "--scenarios", "nope",
                  "--output", str(tmp_path / "x.json")])


class TestObservabilityCLI:
    """`--json`, telemetry export flags, and the `observe` subcommand."""

    FLEET = [
        "fleet",
        "--servers", "4",
        "--server-types", "T2",
        "--models", "DLRM-RMC1",
        "--policy", "p2c",
        "--duration", "2",
        "--segments", "8",
    ]

    def test_fleet_json_is_machine_readable(self, capsys):
        import json

        assert main([*self.FLEET, "--json"]) == 0
        out = capsys.readouterr().out
        payload = json.loads(out)  # stdout is exactly one JSON document
        stats = payload["per_model"]["DLRM-RMC1"]
        assert stats["completed"] > 0
        assert payload["totals"]["completed"] == stats["completed"]
        assert payload["policy"] == "p2c"
        assert set(payload["analytic"]) == {
            "provisioned_power_w", "drawn_power_w"
        }
        # Floats are emitted via repr, so a dump/parse cycle is lossless.
        assert json.loads(json.dumps(payload)) == payload
        assert isinstance(stats["p99_ms"], float)

    def test_fleet_json_matches_table_run(self, capsys):
        import json

        assert main(self.FLEET) == 0
        table = capsys.readouterr().out
        assert main([*self.FLEET, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        # Same seed, same run: the table's served count appears verbatim.
        assert f"queries served {payload['totals']['completed']}" in table

    def test_fleet_metrics_out_writes_csv(self, tmp_path, capsys):
        from repro.obs.probe import METRIC_FIELDS

        out = tmp_path / "metrics.csv"
        assert main([*self.FLEET, "--metrics-out", str(out)]) == 0
        lines = out.read_text().splitlines()
        assert lines[0] == ",".join(METRIC_FIELDS)
        assert len(lines) > 1
        assert "wrote metrics series" in capsys.readouterr().out

    def test_fleet_trace_out_chrome_counts_match_result(self, tmp_path, capsys):
        import json

        trace = tmp_path / "trace.json"
        code = main([*self.FLEET, "--json", "--trace-out", str(trace)])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)

        assert main(["observe", str(trace), "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["format"] == "chrome-trace"
        assert summary["balanced"]
        for key in ("completed", "dropped", "failed", "retried", "hedged"):
            assert summary["measured"][key] == payload["totals"][key], key

    def test_fleet_trace_out_jsonl_summarizes(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        assert main([*self.FLEET, "--trace-out", str(trace)]) == 0
        capsys.readouterr()
        assert main(["observe", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "trace-jsonl" in out

    def test_observe_diff_same_file_is_zero(self, tmp_path, capsys):
        import json

        metrics = tmp_path / "metrics.jsonl"
        assert main([*self.FLEET, "--metrics-out", str(metrics)]) == 0
        capsys.readouterr()
        assert main(["observe", str(metrics), str(metrics), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        for group in doc["diff"]["deltas"].values():
            for cell in group.values():
                assert cell["delta"] == 0

    def test_provision_fault_aware_json(self, capsys):
        import json

        code = main(
            [
                "provision-fault-aware",
                "--servers", "6",
                "--server-types", "T2",
                "--models", "DLRM-RMC1",
                "--duration", "1",
                "--segments", "4",
                "--faults", "crash@0.4:0+0.3",
                "--max-evals", "2",
                "--r-tol", "0.5",
                "--json",
            ]
        )
        assert code in (0, 1)  # exit mirrors convergence, not JSON health
        payload = json.loads(capsys.readouterr().out)
        assert payload["converged"] == (code == 0)
        assert payload["chosen_r"] >= 0.0
        assert payload["evaluations"]
        assert "provisioned_power_w" in payload
        assert "per_model" in payload["result"]
        assert all(":" in key for key in payload["allocation"])
        assert json.loads(json.dumps(payload)) == payload


class TestCarbonCLI:
    FLEET = [
        "fleet",
        "--servers", "4",
        "--server-types", "T2",
        "--models", "DLRM-RMC1",
        "--duration", "2",
        "--segments", "8",
    ]
    CARBON = ["--carbon", "diurnal:base=350,swing=150,period=2,steps=12"]
    JOBS = ["--deferrable", "jobs:count=2,duration=0.3,power=600,slack=1.5"]

    def test_fleet_carbon_only_prints_emissions(self, capsys):
        assert main([*self.FLEET, *self.CARBON]) == 0
        out = capsys.readouterr().out
        assert "gCO2" in out and "grid mean" in out
        assert "deferrable jobs" not in out

    def test_fleet_carbon_with_jobs_prints_plan_line(self, capsys):
        assert main(
            [
                *self.FLEET, *self.CARBON, *self.JOBS,
                "--deferrable-policy", "carbon-waiting",
                "--power-cap", "6000",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "gCO2" in out
        assert "deferrable jobs" in out and "carbon-waiting" in out

    def test_fleet_carbon_json_block(self, capsys):
        import json

        assert main([*self.FLEET, *self.CARBON, *self.JOBS, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        carbon = doc["carbon"]
        assert carbon["realtime_g"] > 0.0
        assert carbon["total_g"] == pytest.approx(
            carbon["realtime_g"] + carbon["deferrable_g"]
        )
        assert carbon["jobs_submitted"] == 2
        assert carbon["jobs_completed"] + carbon["jobs_suspended"] + (
            carbon["jobs_dropped"]
        ) == 2
        assert carbon["policy"] == "no-wait"  # the CLI default

    def test_fleet_json_has_no_carbon_key_when_off(self, capsys):
        import json

        assert main([*self.FLEET, "--json"]) == 0
        assert "carbon" not in json.loads(capsys.readouterr().out)

    def test_fleet_deferrable_requires_carbon(self):
        with pytest.raises(SystemExit, match="--carbon"):
            main([*self.FLEET, *self.JOBS])

    def test_fleet_cap_requires_carbon_and_jobs(self):
        with pytest.raises(SystemExit, match="--carbon"):
            main([*self.FLEET, "--power-cap", "5000"])

    def test_fleet_shards_refuse_carbon(self):
        with pytest.raises(SystemExit, match="shards"):
            main([*self.FLEET, *self.CARBON, "--shards", "2"])

    def test_fleet_carbon_file_roundtrip(self, tmp_path, capsys):
        from repro.carbon import CarbonTrace

        path = tmp_path / "grid.csv"
        CarbonTrace.step((0.0, 1.0), (500.0, 100.0)).save(str(path))
        assert main([*self.FLEET, "--carbon", str(path)]) == 0
        assert "gCO2" in capsys.readouterr().out

    def test_fleet_bad_carbon_spec_fails(self):
        # Grammar errors surface as ValueError with the offending
        # shape named, matching the --faults mini-language convention.
        with pytest.raises(ValueError, match="unknown carbon shape"):
            main([*self.FLEET, "--carbon", "sawtooth:x=1"])

    def test_provision_carbon_aware_json(self, capsys):
        import json

        code = main(
            [
                "provision-carbon-aware",
                "--servers", "6",
                "--server-types", "T2",
                "--models", "DLRM-RMC1",
                "--duration", "1",
                "--segments", "4",
                *self.CARBON,
                "--deferrable", "jobs:count=2,duration=0.2,power=400,slack=2",
                "--policies", "no-wait", "carbon-waiting",
                "--power-caps", "none/8000",
                "--deferral-horizons", "none/1.0",
                "--max-evals", "2",
                "--r-tol", "0.5",
                "--json",
            ]
        )
        assert code in (0, 1)  # exit mirrors convergence, not JSON health
        payload = json.loads(capsys.readouterr().out)
        assert payload["converged"] == (code == 0)
        assert payload["chosen_r"] >= 0.0
        assert payload["evaluations"]
        assert "total_g" in payload and "no_wait_g" in payload
        if payload["converged"]:
            assert payload["result"]["carbon"]["realtime_g"] > 0.0
            # 2 policies x 2 caps x 2 horizons = 8 sweep points.
            assert len(payload["plan"]) == 8
            assert payload["chosen_plan"]["feasible"] is True
            assert payload["deferral_savings_g"] >= 0.0
        assert json.loads(json.dumps(payload)) == payload

    def test_provision_carbon_aware_table(self, capsys):
        code = main(
            [
                "provision-carbon-aware",
                "--servers", "6",
                "--server-types", "T2",
                "--models", "DLRM-RMC1",
                "--duration", "1",
                "--segments", "4",
                *self.CARBON,
                "--max-evals", "2",
                "--r-tol", "0.5",
            ]
        )
        assert code in (0, 1)
        out = capsys.readouterr().out
        assert "availability" in out
        assert "gCO2" in out

    def test_provision_carbon_aware_refuses_shards(self):
        with pytest.raises(SystemExit, match="shards"):
            main(
                [
                    "provision-carbon-aware",
                    "--servers", "4",
                    "--server-types", "T2",
                    "--models", "DLRM-RMC1",
                    *self.CARBON,
                    "--shards", "2",
                ]
            )

    def test_sweep_value_grammar(self, capsys):
        parser = build_parser()
        args = parser.parse_args(
            [
                "provision-carbon-aware",
                *self.CARBON,
                "--power-caps", "none/3000/4500.5",
                "--deferral-horizons", "-",
            ]
        )
        assert args.power_caps == (None, 3000.0, 4500.5)
        assert args.deferral_horizons == (None,)
        with pytest.raises(SystemExit):
            parser.parse_args(
                ["provision-carbon-aware", *self.CARBON, "--power-caps", "abc"]
            )
        capsys.readouterr()
