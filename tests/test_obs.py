"""Observability layer: sketches, probes, traces, and the inspector.

Three pillars:

- the P² streaming quantile sketch tracks ``numpy.percentile`` within
  a rank band on adversarial distributions (hypothesis lane) and is
  *exact* on the startup-buffer path;
- trace conservation: every arrival in the tracked log becomes exactly
  one span with a terminal outcome, child attempts nest inside the
  query's lifetime, and the warmup-measured span counts equal the
  :class:`FleetResult` totals;
- the exported artifacts round-trip: Chrome trace JSON validates
  against the schema checks Perfetto relies on (balanced async pairs,
  non-negative durations, metadata processes), and the CSV/JSONL
  metrics series agree row for row.
"""

from __future__ import annotations

import json
import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.state import Allocation
from repro.fleet import FaultSchedule, FleetSimulator, build_fleet, build_fleet_trace
from repro.obs import (
    METRIC_FIELDS,
    FleetProbe,
    P2Quantile,
    QuantileSketch,
    chrome_trace,
    diff_summaries,
    read_trace_jsonl,
    sniff_format,
    summarize_file,
    write_trace_jsonl,
)
from repro.sim import QueryWorkload


# ----------------------------------------------------------------------
# P² quantile sketch
# ----------------------------------------------------------------------


class TestP2Quantile:
    def test_empty_is_nan(self):
        assert math.isnan(P2Quantile(0.5).value())

    def test_startup_buffer_matches_numpy_exactly(self):
        """Below five samples (marker initialization) the sketch
        interpolates the sorted buffer with numpy's linear rule --
        equality, not tolerance."""
        data = [7.0, 1.0, 4.0, 9.0, 2.0]
        for n in range(1, 5):
            for q in (0.5, 0.9, 0.99):
                sk = P2Quantile(q)
                for x in data[:n]:
                    sk.add(x)
                assert sk.value() == float(np.percentile(data[:n], q * 100))

    def test_constant_stream(self):
        sk = P2Quantile(0.99)
        for _ in range(1000):
            sk.add(3.25)
        assert sk.value() == 3.25

    def test_uniform_converges(self):
        rng = np.random.default_rng(7)
        sk = P2Quantile(0.5)
        for x in rng.uniform(0.0, 1.0, 20_000):
            sk.add(float(x))
        assert abs(sk.value() - 0.5) < 0.02

    @settings(max_examples=40, deadline=None)
    @given(
        data=st.lists(
            st.one_of(
                st.floats(0.0, 1.0),
                st.floats(100.0, 101.0),  # bimodal gap
                st.floats(0.0, 1e6),  # heavy spread
                st.just(5.0),  # duplicates / point mass
            ),
            min_size=50,
            max_size=600,
        ),
        order_seed=st.integers(0, 2**32 - 1),
        q=st.sampled_from([0.5, 0.9, 0.95, 0.99]),
    )
    def test_converges_to_numpy_on_adversarial_mixtures(
        self, data, order_seed, q
    ):
        """Fed in random order (the latency-stream regime), the P²
        estimate either lands within a 15-rank-point band of the true
        percentile or within a tenth of the data range of it -- the
        range clause covers atom-heavy data where any value error is a
        large rank error.  The combined bound was calibrated with zero
        failures over 48k adversarial mixtures."""
        stream = np.random.default_rng(order_seed).permutation(data)
        sk = P2Quantile(q)
        for x in stream:
            sk.add(float(x))
        v = sk.value()
        lo = float(np.percentile(data, max(0.0, q - 0.15) * 100))
        hi = float(np.percentile(data, min(1.0, q + 0.15) * 100))
        slack = 1e-9 + 1e-9 * max(abs(lo), abs(hi))
        in_band = lo - slack <= v <= hi + slack
        true = float(np.percentile(data, q * 100))
        near = abs(v - true) <= 0.10 * (max(data) - min(data)) + 1e-9
        assert in_band or near

    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(6, 2000), reverse=st.booleans())
    def test_sorted_and_reversed_streams(self, n, reverse):
        """Monotone arrival order is the P² worst case for marker
        drift; the median of 0..n-1 must stay within a generous
        rank band even then."""
        data = np.arange(n, dtype=float)
        stream = data[::-1] if reverse else data
        sk = P2Quantile(0.5)
        for x in stream:
            sk.add(float(x))
        lo = float(np.percentile(data, 30))
        hi = float(np.percentile(data, 70))
        assert lo <= sk.value() <= hi

    def test_rejects_bad_quantile(self):
        with pytest.raises(ValueError):
            P2Quantile(0.0)
        with pytest.raises(ValueError):
            P2Quantile(1.0)


class TestQuantileSketch:
    def test_summary_stats(self):
        sk = QuantileSketch()
        for x in (4.0, 1.0, 3.0):
            sk.add(x)
        assert sk.count == 3
        assert sk.min == 1.0
        assert sk.max == 4.0
        assert sk.mean == pytest.approx(8.0 / 3.0)
        assert sk.quantile(0.5) == float(np.percentile([4.0, 1.0, 3.0], 50))

    def test_unknown_quantile_raises(self):
        with pytest.raises(KeyError):
            QuantileSketch().quantile(0.42)


class TestAddManyBitIdentity:
    """Batched insertion is the scalar path, float for float.

    ``add_many`` is the metrics-hook hot path (windows flush buffered
    observations in one call); it must leave *exactly* the state a
    one-at-a-time ``add`` loop would -- marker heights, positions,
    desired positions, startup buffer, running sum -- or the batched
    probe would drift from the documented estimator.
    """

    @staticmethod
    def _p2_state(sk):
        return (sk._count, sk._buf, sk._q, sk._n, sk._desired)

    @settings(max_examples=60, deadline=None)
    @given(
        data=st.lists(
            st.floats(-1e6, 1e6, allow_nan=False), min_size=0, max_size=120
        ),
        cuts=st.lists(st.integers(0, 120), max_size=6),
        q=st.sampled_from([0.5, 0.95, 0.99]),
    )
    def test_p2_chunked_equals_scalar(self, data, cuts, q):
        scalar = P2Quantile(q)
        for x in data:
            scalar.add(x)
        batched = P2Quantile(q)
        bounds = sorted({0, len(data), *[c % (len(data) + 1) for c in cuts]})
        for lo, hi in zip(bounds, bounds[1:]):
            if hi - lo == 1:
                batched.add(data[lo])  # interleave scalar adds too
            else:
                batched.add_many(data[lo:hi])
        assert self._p2_state(batched) == self._p2_state(scalar)
        assert (batched.value() == scalar.value()) or (
            math.isnan(batched.value()) and math.isnan(scalar.value())
        )

    @settings(max_examples=30, deadline=None)
    @given(
        data=st.lists(
            st.floats(0.0, 1e4, allow_nan=False), min_size=0, max_size=80
        ),
        cut=st.integers(0, 80),
    )
    def test_sketch_chunked_equals_scalar(self, data, cut):
        scalar = QuantileSketch()
        for x in data:
            scalar.add(x)
        batched = QuantileSketch()
        cut = cut % (len(data) + 1)
        batched.add_many(data[:cut])
        batched.add_many(data[cut:])
        assert batched.count == scalar.count
        assert batched._sum == scalar._sum
        for p in scalar.quantiles:
            a, b = batched.quantile(p), scalar.quantile(p)
            assert a == b or (math.isnan(a) and math.isnan(b))
        assert (batched.min == scalar.min) or (
            math.isnan(batched.min) and math.isnan(scalar.min)
        )
        assert (batched.max == scalar.max) or (
            math.isnan(batched.max) and math.isnan(scalar.max)
        )


# ----------------------------------------------------------------------
# probe construction and fleet fixtures
# ----------------------------------------------------------------------


class TestProbeValidation:
    def test_rejects_nothing_enabled(self):
        with pytest.raises(ValueError):
            FleetProbe(metrics=False, trace=False)

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            FleetProbe(window_s=0.0)

    def test_rejects_bad_quantiles(self):
        with pytest.raises(ValueError):
            FleetProbe(quantiles=(0.5, 1.5))


@pytest.fixture()
def small_fleet(small_table):
    from repro.models import build_model

    models = {"DLRM-RMC1": build_model("DLRM-RMC1")}
    workloads = {
        "DLRM-RMC1": QueryWorkload.for_model(
            models["DLRM-RMC1"].config.mean_query_size
        )
    }
    allocation = Allocation()
    allocation.add("T2", "DLRM-RMC1", 3)
    allocation.add("T7", "DLRM-RMC1", 1)
    capacity = 3 * small_table.qps("T2", "DLRM-RMC1") + small_table.qps(
        "T7", "DLRM-RMC1"
    )
    trace = build_fleet_trace(
        workloads, {"DLRM-RMC1": [(0.65 * capacity, 2.0)]}, seed=13
    )

    def run(probe=None, **kwargs):
        servers = build_fleet(allocation, small_table, models, workloads)
        sim = FleetSimulator(
            servers,
            policy="p2c",
            sla_ms={"DLRM-RMC1": 20.0},
            seed=7,
            observer=probe,
            **kwargs,
        )
        return sim, sim.run(trace, warmup_s=0.2)

    return run


# ----------------------------------------------------------------------
# streaming metrics
# ----------------------------------------------------------------------


class TestMetricsSeries:
    def test_rows_conserve_counts(self, small_fleet):
        probe = FleetProbe(window_s=0.25)
        _, result = small_fleet(probe)
        rows = probe.metrics_rows
        assert rows, "windows were sampled"
        assert all(set(METRIC_FIELDS) == set(r) for r in rows)
        # A drained fault-free run resolves every arrival: the windowed
        # series must account for each exactly once.
        arrivals = sum(r["arrivals"] for r in rows)
        completed = sum(r["completed"] for r in rows)
        dropped = sum(r["dropped"] for r in rows)
        assert arrivals == completed + dropped
        assert sum(r["failed"] for r in rows) == 0
        # The run-wide measured count is a subset (warmup excluded).
        assert completed >= result.total_completed
        # Windows are monotone on the clock and flagged per model.
        times = [r["t"] for r in rows]
        assert times == sorted(times)
        assert {r["model"] for r in rows} == {"DLRM-RMC1"}

    def test_registry_totals(self, small_fleet):
        probe = FleetProbe(window_s=0.25)
        small_fleet(probe)
        snap = probe.registry.snapshot()
        rows = probe.metrics_rows
        assert snap["counters"]["queries.arrivals"] == sum(
            r["arrivals"] for r in rows
        )
        assert snap["counters"]["windows.sampled"] == len(rows)
        assert snap["gauges"]["run.availability"] == 1.0

    def test_quantile_columns_track_percentiles(self, small_fleet):
        """Each window's p50/p99 lie inside that window's latency range
        and order correctly."""
        probe = FleetProbe(window_s=0.5)
        small_fleet(probe)
        for row in probe.metrics_rows:
            if row["completed"] < 2:
                continue
            assert row["p50_ms"] <= row["p95_ms"] <= row["p99_ms"]
            assert row["p50_ms"] > 0.0

    def test_csv_jsonl_roundtrip_agree(self, small_fleet, tmp_path):
        probe = FleetProbe(window_s=0.25)
        small_fleet(probe)
        csv_path = tmp_path / "m.csv"
        jsonl_path = tmp_path / "m.jsonl"
        probe.export_metrics(str(csv_path))
        probe.export_metrics(str(jsonl_path))
        assert sniff_format(str(csv_path)) == "metrics-csv"
        assert sniff_format(str(jsonl_path)) == "metrics-jsonl"
        a = summarize_file(str(csv_path))
        b = summarize_file(str(jsonl_path))
        delta = diff_summaries(a, b)
        for model_delta in delta["deltas"].values():
            assert all(d["delta"] == 0 for d in model_delta.values())
        # CSV floats are written with repr: parse one back exactly.
        rows = csv_path.read_text().splitlines()
        header = rows[0].split(",")
        first = dict(zip(header, rows[1].split(",")))
        assert float(first["t"]) == probe.metrics_rows[0]["t"]
        assert float(first["qps"]) == probe.metrics_rows[0]["qps"]

    def test_export_requires_metrics(self, small_fleet, tmp_path):
        probe = FleetProbe(metrics=False, trace=True)
        small_fleet(probe)
        with pytest.raises(ValueError):
            probe.export_metrics(str(tmp_path / "m.csv"))

    def test_unknown_extension_rejected(self, small_fleet, tmp_path):
        probe = FleetProbe()
        small_fleet(probe)
        with pytest.raises(ValueError):
            probe.export_metrics(str(tmp_path / "m.parquet"))


# ----------------------------------------------------------------------
# tracing: conservation, nesting, schema
# ----------------------------------------------------------------------


def _span_invariants(spans, sim, result, warmup_s):
    """The conservation properties every traced run must satisfy."""
    log = sim.last_query_log
    assert len(spans) == len(log)
    qids = [s["qid"] for s in spans]
    assert len(set(qids)) == len(qids), "one span per query"
    measured = {"completed": 0, "failed": 0, "dropped": 0}
    for span in spans:
        assert span["outcome"] in ("completed", "failed", "dropped")
        if span["outcome"] == "dropped":
            assert not span["attempts"]
        else:
            assert span["attempts"], "resolved spans carry attempts"
        for i, at in enumerate(span["attempts"]):
            assert at["start_s"] >= span["arrival_s"] - 1e-12
            if at["end_s"] is not None:
                assert at["end_s"] >= at["start_s"] - 1e-12
            assert at["kind"] == "initial" if i == 0 else at["kind"] in (
                "retry",
                "hedge",
            )
        if span["outcome"] == "completed":
            # The winning attempt closes the span; a losing hedge may
            # drain on its replica past the winner's finish.
            ends = [at["end_s"] for at in span["attempts"] if at["end_s"] is not None]
            assert any(abs(e - span["finish_s"]) <= 1e-12 for e in ends)
        if span["measured"]:
            measured[span["outcome"]] += 1
    assert measured["completed"] == result.total_completed
    assert measured["failed"] == result.total_failed
    assert measured["dropped"] == result.total_dropped
    # Retry/hedge attribution uses only the warmup cut (the engine's
    # counters have no horizon clause), unlike the measured flag.
    late = [s for s in spans if s["arrival_s"] >= warmup_s]
    assert sum(s["retries"] for s in late) == result.total_retried
    assert sum(1 for s in late if s["hedged"]) == result.total_hedged


class TestTraceConservation:
    def test_fault_free(self, small_fleet):
        probe = FleetProbe(trace=True)
        sim, result = small_fleet(probe)
        _span_invariants(probe.spans, sim, result, 0.2)

    def test_with_faults_retries_and_hedging(self, small_fleet):
        probe = FleetProbe(trace=True)
        sim, result = small_fleet(
            probe,
            faults=FaultSchedule.parse("crash@0.6:0+0.4;slow@0.9:2*3+0.3"),
            retries=2,
            hedge_ms=8.0,
        )
        spans = probe.spans
        _span_invariants(spans, sim, result, 0.2)
        kinds = {at["kind"] for s in spans for at in s["attempts"]}
        assert "hedge" in kinds
        notes = {a for s in spans for at in s["attempts"] for a in at["annotations"]}
        assert any(n.startswith("straggler_x") for n in notes)
        if result.total_retried:
            assert "retry" in kinds
            assert "killed_by_crash" in notes

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 2**16))
    def test_conservation_over_seeds(self, small_table, seed):
        """Hypothesis lane: arbitrary seeds under a crashy schedule
        never leak or duplicate a query span."""
        from repro.models import build_model

        models = {"DLRM-RMC1": build_model("DLRM-RMC1")}
        workloads = {
            "DLRM-RMC1": QueryWorkload.for_model(
                models["DLRM-RMC1"].config.mean_query_size
            )
        }
        allocation = Allocation()
        allocation.add("T2", "DLRM-RMC1", 2)
        capacity = 2 * small_table.qps("T2", "DLRM-RMC1")
        trace = build_fleet_trace(
            workloads, {"DLRM-RMC1": [(0.7 * capacity, 1.0)]}, seed=seed
        )
        probe = FleetProbe(trace=True)
        servers = build_fleet(allocation, small_table, models, workloads)
        sim = FleetSimulator(
            servers,
            policy="p2c",
            sla_ms={"DLRM-RMC1": 20.0},
            seed=seed,
            observer=probe,
            faults=FaultSchedule.parse("crash@0.3:0+0.2"),
            retries=1,
        )
        result = sim.run(trace, warmup_s=0.1)
        _span_invariants(probe.spans, sim, result, 0.1)


class TestChromeTrace:
    def test_schema_and_balance(self, small_fleet, tmp_path):
        probe = FleetProbe(trace=True)
        small_fleet(probe, faults=FaultSchedule.parse("crash@0.6:0+0.4"), retries=1)
        path = tmp_path / "trace.json"
        probe.export_trace(str(path))
        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        assert doc["displayTimeUnit"] == "ms"
        assert {"warmup_s", "horizon_s"} <= set(doc["otherData"])
        phases = {}
        begins, ends = {}, {}
        for ev in events:
            assert ev["ph"] in ("b", "e", "X", "i", "M")
            phases[ev["ph"]] = phases.get(ev["ph"], 0) + 1
            if ev["ph"] != "M":
                assert ev["ts"] >= 0.0
                assert ev["pid"] in (0, 1, 2)
            if ev["ph"] == "b":
                begins[ev["id"]] = begins.get(ev["id"], 0) + 1
            elif ev["ph"] == "e":
                ends[ev["id"]] = ends.get(ev["id"], 0) + 1
            elif ev["ph"] == "X":
                assert ev["dur"] >= 0.0
        assert begins == ends, "every async begin closes exactly once"
        assert phases.get("M", 0) >= 3, "process_name metadata present"
        assert phases["b"] == len(probe.spans)
        assert phases["X"] == sum(len(s["attempts"]) for s in probe.spans)

    def test_direct_dict_matches_export(self, small_fleet):
        probe = FleetProbe(trace=True)
        sim, _ = small_fleet(probe)
        doc = chrome_trace(
            probe.spans, probe.control_events, probe.warmup_s, probe.horizon
        )
        assert len([e for e in doc["traceEvents"] if e["ph"] == "b"]) == len(
            probe.spans
        )

    def test_trace_jsonl_roundtrip(self, small_fleet, tmp_path):
        probe = FleetProbe(trace=True)
        small_fleet(probe)
        path = tmp_path / "trace.jsonl"
        probe.export_trace(str(path))
        meta, spans, control = read_trace_jsonl(str(path))
        assert meta["spans"] == len(probe.spans) == len(spans)
        assert meta["control_events"] == len(control)
        assert spans == probe.spans

    def test_export_requires_trace(self, small_fleet, tmp_path):
        probe = FleetProbe(metrics=True, trace=False)
        small_fleet(probe)
        with pytest.raises(ValueError):
            probe.export_trace(str(tmp_path / "t.json"))


# ----------------------------------------------------------------------
# control-plane timeline
# ----------------------------------------------------------------------


class TestControlLog:
    def test_fault_events_and_phases_on_timeline(self, small_fleet):
        probe = FleetProbe(trace=True)
        _, result = small_fleet(
            probe, faults=FaultSchedule.parse("crash@0.6:0+0.4"), retries=1
        )
        kinds = {ev["kind"] for ev in probe.control_events}
        assert "fault" in kinds
        assert "phase" in kinds
        times = [ev["t"] for ev in probe.control_events]
        assert times == sorted(times)
        faults = [ev for ev in probe.control_events if ev["kind"] == "fault"]
        assert len(faults) == len(result.fault_events)

    def test_autoscaler_ticks_recorded(self, small_table):
        """An autoscaled run logs decision events with forecast inputs."""
        from repro.fleet import PredictiveAutoscaler
        from repro.models import build_model

        models = {"DLRM-RMC1": build_model("DLRM-RMC1")}
        workloads = {
            "DLRM-RMC1": QueryWorkload.for_model(
                models["DLRM-RMC1"].config.mean_query_size
            )
        }
        allocation = Allocation()
        allocation.add("T2", "DLRM-RMC1", 2)
        standby = Allocation()
        standby.add("T2", "DLRM-RMC1", 2)
        capacity = 2 * small_table.qps("T2", "DLRM-RMC1")
        trace = build_fleet_trace(
            workloads,
            {"DLRM-RMC1": [(0.4 * capacity, 1.0), (1.6 * capacity, 1.0)]},
            seed=3,
        )
        servers = build_fleet(
            allocation, small_table, models, workloads, standby=standby
        )
        probe = FleetProbe(window_s=0.25)
        sim = FleetSimulator(
            servers,
            policy="p2c",
            sla_ms={"DLRM-RMC1": 20.0},
            seed=3,
            autoscaler=PredictiveAutoscaler({"DLRM-RMC1": 20.0}, window_s=0.25),
            observer=probe,
        )
        result = sim.run(trace, warmup_s=0.1)
        ticks = [
            ev for ev in probe.control_events if ev["kind"] == "autoscaler_tick"
        ]
        assert ticks, "autoscaler decisions were captured"
        decisions = [d for ev in ticks for d in ev.get("decisions", ())]
        assert len(decisions) == len(result.scale_events)
        assert any("forecast_qps" in ev for ev in ticks)
