"""Validation tests for ModelConfig."""

from __future__ import annotations

import pytest

from repro.models import AttentionKind, ModelConfig, ModelVariant


def _config(**overrides):
    base = dict(
        name="toy",
        service="test",
        num_tables=4,
        prod_rows=1_000_000,
        small_rows=100_000,
        embedding_dim=16,
        pooling_factor=10,
        pooled=True,
        dense_in=32,
        bottom_mlp=(64, 16),
        predict_mlp=(64,),
    )
    base.update(overrides)
    return ModelConfig(**base)


def test_valid_config_builds():
    cfg = _config()
    assert cfg.is_multi_hot
    assert cfg.rows(ModelVariant.PROD) == 1_000_000
    assert cfg.rows(ModelVariant.SMALL) == 100_000


def test_one_hot_is_not_multi_hot():
    assert not _config(pooling_factor=1, pooled=False).is_multi_hot
    assert not _config(pooling_factor=10, pooled=False).is_multi_hot


@pytest.mark.parametrize(
    "overrides",
    [
        {"num_tables": 0},
        {"prod_rows": 10, "small_rows": 100},  # prod smaller than small
        {"pooling_factor": 0},
        {"sla_ms": 0},
        {"mean_query_size": 0},
        {"attention": AttentionKind.FC, "attention_seq_len": 0},
    ],
)
def test_invalid_configs_rejected(overrides):
    with pytest.raises(ValueError):
        _config(**overrides)


def test_attention_config_needs_sequence():
    cfg = _config(attention=AttentionKind.GRU, attention_seq_len=100)
    assert cfg.attention is AttentionKind.GRU
