"""Documentation stays honest: links resolve, docs and CLI don't drift.

CI's docs job runs this module (plus the literal ``--help`` smoke over
every subcommand).  Three failure modes it guards:

- a README/docs relative link pointing at a moved or deleted file;
- a CLI subcommand or flag added without documentation (or documented
  but removed from the parser);
- the ``--faults`` mini-language reference in ``docs/cli.md`` drifting
  from the grammar ``FaultSchedule.parse`` actually accepts.
"""

from __future__ import annotations

import contextlib
import io
import pathlib
import re

import pytest

from repro.cli import build_parser

REPO = pathlib.Path(__file__).parent.parent
DOC_FILES = [
    REPO / "README.md",
    REPO / "benchmarks" / "README.md",
    *sorted((REPO / "docs").glob("*.md")),
]

_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def _subcommands():
    parser = build_parser()
    actions = [
        a for a in parser._actions if a.__class__.__name__ == "_SubParsersAction"
    ]
    assert actions, "the CLI must expose subcommands"
    return actions[0].choices


def test_doc_files_exist():
    for path in (REPO / "README.md", REPO / "docs" / "architecture.md",
                 REPO / "docs" / "cli.md"):
        assert path.is_file(), f"missing {path.relative_to(REPO)}"


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: str(p.relative_to(REPO)))
def test_relative_links_resolve(doc):
    """Every non-http markdown link points at a real file/directory."""
    text = doc.read_text()
    for target in _LINK_RE.findall(text):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        resolved = (doc.parent / target.split("#")[0]).resolve()
        assert resolved.exists(), (
            f"{doc.relative_to(REPO)} links to {target}, which does not exist"
        )


def test_top_parser_help_renders():
    parser = build_parser()
    with contextlib.redirect_stdout(io.StringIO()) as out:
        with pytest.raises(SystemExit) as exc:
            parser.parse_args(["--help"])
    assert exc.value.code == 0
    assert "provision-fault-aware" in out.getvalue()


@pytest.mark.parametrize("name", sorted(_subcommands()))
def test_subcommand_help_renders(name):
    """`python -m repro.cli <sub> --help` exits 0 for every subcommand."""
    parser = build_parser()
    with contextlib.redirect_stdout(io.StringIO()) as out:
        with pytest.raises(SystemExit) as exc:
            parser.parse_args([name, "--help"])
    assert exc.value.code == 0
    assert "usage" in out.getvalue()


def test_every_subcommand_documented():
    readme = (REPO / "README.md").read_text()
    cli_md = (REPO / "docs" / "cli.md").read_text()
    for name in _subcommands():
        assert f"`{name}`" in readme, f"README.md does not document `{name}`"
        assert name in cli_md, f"docs/cli.md does not document `{name}`"


@pytest.mark.parametrize(
    "subcommand,flags",
    [
        (
            "fleet",
            ["--faults", "--retries", "--hedge-ms", "--autoscale",
             "--autoscale-mode", "--arrivals", "--trace",
             "--over-provision", "--policy", "--seed", "--core",
             "--epoch-ms", "--shards", "--percentile-mode",
             "--carbon", "--deferrable", "--deferrable-policy",
             "--power-cap", "--deferral-horizon",
             "--metrics-out", "--trace-out", "--metrics-window-s", "--json"],
        ),
        (
            "provision-fault-aware",
            ["--faults", "--retries", "--hedge-ms", "--arrivals", "--trace",
             "--target-availability", "--baseline-r", "--r-min", "--r-max",
             "--r-tol", "--max-evals", "--core", "--percentile-mode",
             "--json"],
        ),
        (
            "provision-carbon-aware",
            ["--carbon", "--deferrable", "--policies", "--power-caps",
             "--deferral-horizons", "--target-availability", "--r-min",
             "--r-max", "--r-tol", "--max-evals", "--core",
             "--percentile-mode", "--json"],
        ),
        ("observe", ["--json"]),
        ("bench", ["--quick", "--scenarios", "--baseline", "--output",
                   "--core", "--compare"]),
    ],
)
def test_documented_flags_exist(subcommand, flags):
    """Flags docs/cli.md teaches must exist on the parser, and the
    parser's fault/hedging flags must be taught."""
    sub = _subcommands()[subcommand]
    known = {s for a in sub._actions for s in a.option_strings}
    cli_md = (REPO / "docs" / "cli.md").read_text()
    for flag in flags:
        assert flag in known, f"{subcommand} lost documented flag {flag}"
        assert flag in cli_md, f"docs/cli.md does not mention {subcommand} {flag}"


def test_faults_grammar_docs_match_parser():
    """Every stochastic key and entry kind the grammar accepts is in
    docs/cli.md, and the doc's canonical examples actually parse."""
    from repro.fleet.faults import _STOCHASTIC_KEYS, FaultSchedule

    cli_md = (REPO / "docs" / "cli.md").read_text()
    for key in _STOCHASTIC_KEYS:
        assert f"{key}=" in cli_md, f"docs/cli.md misses stochastic key {key}"
    for token in ("crash@", "blip@", "slow@", "domain:size=", "domain:"):
        assert token in cli_md
    for example in (
        "crash@2:0+1,slow@1:3*2.5+2",
        "domain:0-9;crash@5s:dom0",
        "domain:size=4;random:domain_mtbf=30,domain_mttr=1",
        "random:crash_mtbf=20,mttr=2,slow_mtbf=15",
    ):
        assert example in cli_md, f"docs/cli.md lost the example {example!r}"
        FaultSchedule.parse(example)  # must stay valid grammar


def test_arrivals_grammar_docs_match_parser():
    """Every arrival shape the grammar accepts is taught in docs/cli.md,
    and the doc's canonical examples actually parse and build."""
    from repro.sim import QueryWorkload
    from repro.traces import parse_arrivals
    from repro.traces.spec import _SHAPES

    cli_md = (REPO / "docs" / "cli.md").read_text()
    for shape in _SHAPES:
        assert f"`{shape}`" in cli_md, f"docs/cli.md misses arrival shape {shape}"
    workload = QueryWorkload.for_model(100)
    for example in (
        "poisson:level=0.75",
        "mmpp:levels=0.3/2.0,dwell=1.5/0.2",
        "diurnal:steps=48,noise=0.15",
        "diurnal:noise=0.15+mmpp:levels=0/1.2,dwell=3/0.25",
    ):
        assert example in cli_md, f"docs/cli.md lost the example {example!r}"
        parse_arrivals(example).build(workload, 1000.0, 4.0)  # must stay valid


def test_carbon_grammar_docs_match_parser():
    """Every carbon shape and every deferrable-spec key the grammar
    accepts is taught in docs/carbon.md, every deferrable policy is
    named, and the doc's canonical examples actually parse and build."""
    from repro.carbon import DEFERRABLE_POLICIES, parse_carbon, parse_deferrable
    from repro.carbon.spec import _CARBON_SHAPES, _JOBS_KEYS

    carbon_md = (REPO / "docs" / "carbon.md").read_text()
    cli_md = (REPO / "docs" / "cli.md").read_text()
    for shape in _CARBON_SHAPES:
        assert f"`{shape}`" in carbon_md, (
            f"docs/carbon.md misses carbon shape {shape}"
        )
    for key in _JOBS_KEYS:
        assert f"{key}=" in carbon_md, (
            f"docs/carbon.md misses deferrable key {key}"
        )
    for policy in DEFERRABLE_POLICIES:
        assert f"`{policy}`" in carbon_md, (
            f"docs/carbon.md misses policy {policy}"
        )
    for example in (
        "diurnal:base=350,swing=150",
        "step:levels=400/120/400,at=0/3600/7200",
        "constant:intensity=100+diurnal:base=200,swing=180",
    ):
        for doc, name in ((carbon_md, "docs/carbon.md"), (cli_md, "docs/cli.md")):
            assert example in doc, f"{name} lost the example {example!r}"
        parse_carbon(example).build()  # must stay valid grammar
    for example in (
        "jobs:count=4,duration=600,power=800,slack=2",
        "jobs:count=2,duration=300,power=500,start=600,every=1800",
    ):
        assert example in carbon_md, (
            f"docs/carbon.md lost the example {example!r}"
        )
        parse_deferrable(example).build(86400.0)


def test_no_compiled_artifacts_tracked():
    """No __pycache__ directory or .pyc file may ever be committed.

    A compiled artifact once slipped into the tree alongside its
    source; this guard (plus the .gitignore entries) keeps the mistake
    from recurring.  Skipped when git is unavailable (e.g. an sdist).
    """
    import subprocess

    if not (REPO / ".git").exists():
        pytest.skip("not a git checkout")
    try:
        tracked = subprocess.run(
            ["git", "ls-files"],
            cwd=REPO,
            capture_output=True,
            text=True,
            timeout=30,
            check=True,
        ).stdout.splitlines()
    except (OSError, subprocess.SubprocessError):
        pytest.skip("git unavailable")
    offenders = [
        path
        for path in tracked
        if "__pycache__" in path or path.endswith((".pyc", ".pyo"))
    ]
    assert not offenders, f"compiled artifacts tracked in git: {offenders}"
    gitignore = (REPO / ".gitignore").read_text()
    assert "__pycache__/" in gitignore and "*.pyc" in gitignore


def test_readme_names_tier1_verify():
    """The README's verify command is the ROADMAP's tier-1 lane."""
    readme = (REPO / "README.md").read_text()
    assert "python -m pytest -x -q" in readme
    assert "PYTHONPATH=src" in readme
