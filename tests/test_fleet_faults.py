"""Fault-injection tests: schedules, invariants, autoscaler interplay.

The property-based lane pins the semantics the fault subsystem
guarantees regardless of schedule, load, or seed:

- conservation -- every query ends in exactly one terminal outcome
  (completed, failed after exhausting its retry budget, or dropped);
- no query is ever routed to a dead replica;
- hedging never increases a query's completion time versus its
  fastest finishing attempt;
- identical seeds produce identical reports (scripted and stochastic).

The differential half of the lockdown (fault machinery present but
idle == the fault-free engine, float for float) lives in
``tests/test_perf_equivalence.py``.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.state import Allocation
from repro.fleet import (
    FaultEvent,
    FaultSchedule,
    FleetSimulator,
    ReactiveAutoscaler,
    build_fleet,
    build_fleet_trace,
    crash,
    slowdown,
)
from repro.fleet.routing import LeastOutstandingPolicy
from repro.models import build_model
from repro.sim import QueryWorkload

MODEL = "DLRM-RMC1"


@pytest.fixture(scope="module")
def rmc1_models():
    return {MODEL: build_model(MODEL)}


@pytest.fixture(scope="module")
def rmc1_workloads(rmc1_models):
    model = rmc1_models[MODEL]
    return {MODEL: QueryWorkload.for_model(model.config.mean_query_size)}


def _fleet(small_table, models, workloads, count=3, srv="T2"):
    allocation = Allocation()
    allocation.add(srv, MODEL, count)
    return build_fleet(allocation, small_table, models, workloads)


def _trace(small_table, workloads, rho=0.7, count=3, duration=3.0, seed=3):
    tup = small_table.get("T2", MODEL)
    return build_fleet_trace(
        workloads, {MODEL: [(rho * count * tup.qps, duration)]}, seed=seed
    )


# ----------------------------------------------------------------------
# FaultSchedule: construction, parsing, materialization
# ----------------------------------------------------------------------


class TestFaultSchedule:
    def test_event_validation(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent(1.0, "explode", 0)
        with pytest.raises(ValueError, match="time"):
            FaultEvent(-1.0, "crash", 0)
        with pytest.raises(ValueError, match="factor"):
            FaultEvent(1.0, "slow", 0, factor=0.0)
        with pytest.raises(ValueError, match="duration"):
            crash(1.0, 0, recover_after=-2.0)

    def test_empty_schedule(self):
        assert FaultSchedule().is_empty
        assert FaultSchedule.parse("").is_empty
        assert not FaultSchedule([crash(1.0, 0)]).is_empty
        assert not FaultSchedule.stochastic(crash_mtbf_s=10.0).is_empty

    def test_truthiness_tracks_is_empty(self):
        # A stochastic-only schedule has zero scripted events but must
        # still be truthy (the CLI's exit-code logic relies on it).
        assert not FaultSchedule()
        assert FaultSchedule([crash(1.0, 0)])
        assert FaultSchedule.stochastic(crash_mtbf_s=10.0)
        assert len(FaultSchedule.stochastic(crash_mtbf_s=10.0)) == 0

    def test_parse_scripted_entries(self):
        sched = FaultSchedule.parse("crash@2:0+1,slow@1.5:3*2.5+2,blip@4:1")
        kinds = [(e.kind, e.server_index) for e in sched.events]
        assert kinds == [("crash", 0), ("slow", 3), ("crash", 1)]
        assert sched.events[1].factor == 2.5
        assert sched.events[2].duration_s == 0.25  # blip default recovery

    @pytest.mark.parametrize(
        "bad",
        ["crash@2", "melt@1:0", "slow@1:0", "crash@1:0*2", "random:mtbf=x"],
    )
    def test_parse_rejects_bad_entries(self, bad):
        with pytest.raises(ValueError):
            FaultSchedule.parse(bad)

    def test_parse_stochastic(self):
        sched = FaultSchedule.parse("random:crash_mtbf=20,mttr=2,slow_mtbf=15")
        assert sched.stochastic_params["crash_mtbf_s"] == 20.0
        assert sched.stochastic_params["mttr_s"] == 2.0

    def test_materialize_expands_durations_sorted(self):
        sched = FaultSchedule([crash(2.0, 0, recover_after=1.0), slowdown(1.0, 1, 3.0, duration=4.0)])
        atomic = sched.materialize(2, horizon_s=10.0)
        assert [(e.time_s, e.kind) for e in atomic] == [
            (1.0, "slow"),
            (2.0, "crash"),
            (3.0, "recover"),
            (5.0, "restore"),
        ]

    def test_materialize_validates_indices(self):
        with pytest.raises(ValueError, match="only 2 replicas"):
            FaultSchedule([crash(1.0, 5)]).materialize(2, 10.0)

    def test_stochastic_materialize_deterministic(self):
        sched = FaultSchedule.stochastic(crash_mtbf_s=5.0, mttr_s=1.0, slow_mtbf_s=4.0)
        a = sched.materialize(4, 20.0, seed=7)
        b = sched.materialize(4, 20.0, seed=7)
        c = sched.materialize(4, 20.0, seed=8)
        assert a == b
        assert a != c
        assert all(e.time_s < 20.0 or e.kind in ("recover", "restore") for e in a)


# ----------------------------------------------------------------------
# Property-based invariants
# ----------------------------------------------------------------------


class TestInvariants:
    @settings(max_examples=6, deadline=None)
    @given(
        seed=st.integers(0, 1_000),
        crash_frac=st.floats(0.1, 0.9),
        retries=st.integers(1, 3),
    )
    def test_conservation(
        self, small_table, rmc1_models, rmc1_workloads, seed, crash_frac, retries
    ):
        """Every query is exactly one of completed / failed / dropped."""
        duration = 2.0
        trace = _trace(
            small_table, rmc1_workloads, duration=duration, seed=seed
        )
        servers = _fleet(small_table, rmc1_models, rmc1_workloads)
        sched = FaultSchedule(
            [crash(duration * crash_frac, 0), crash(duration * crash_frac + 0.2, 1)]
        )
        sim = FleetSimulator(
            servers,
            policy="least",
            sla_ms={MODEL: 20.0},
            seed=seed,
            faults=sched,
            retries=retries,
        )
        sim.run(trace, warmup_s=0.0)
        log = sim.last_query_log
        assert len(log) == len(trace)
        outcomes = [t.outcome for t in log]
        # 1 = completed, 2 = failed, 3 = dropped; nothing in flight.
        assert all(o in (1, 2, 3) for o in outcomes)
        completed = sum(1 for o in outcomes if o == 1)
        failed = sum(1 for o in outcomes if o == 2)
        droppedq = sum(1 for o in outcomes if o == 3)
        assert completed + failed + droppedq == len(trace)
        # A failed query exhausted its budget or found no replica.
        for t in log:
            if t.failed:
                assert t.retries <= retries
            if t.done:
                assert t.finish_s is not None

    @settings(max_examples=4, deadline=None)
    @given(seed=st.integers(0, 1_000))
    def test_never_routes_to_dead_replica(
        self, small_table, rmc1_models, rmc1_workloads, seed
    ):
        """Candidate sets handed to the policy never contain dead replicas."""

        class Recording(LeastOutstandingPolicy):
            def choose(self, candidates):
                assert candidates, "engine must not route with no candidates"
                for server in candidates:
                    assert not server.dead, "dead replica in candidate set"
                    assert server.active
                return super().choose(candidates)

        duration = 2.0
        trace = _trace(small_table, rmc1_workloads, duration=duration, seed=seed)
        servers = _fleet(small_table, rmc1_models, rmc1_workloads)
        sched = FaultSchedule(
            [
                crash(0.5, 0, recover_after=0.6),
                crash(0.9, 1),
                slowdown(0.3, 2, 2.0, duration=1.0),
            ]
        )
        sim = FleetSimulator(
            servers,
            policy=Recording(),
            sla_ms={MODEL: 20.0},
            seed=seed,
            faults=sched,
            retries=2,
            hedge_ms=5.0,
        )
        result = sim.run(trace, warmup_s=0.0)
        assert result.per_model[MODEL].completed > 0

    @settings(max_examples=4, deadline=None)
    @given(seed=st.integers(0, 1_000), hedge_ms=st.floats(2.0, 12.0))
    def test_hedging_completes_at_fastest_attempt(
        self, small_table, rmc1_models, rmc1_workloads, seed, hedge_ms
    ):
        """A hedged query's finish equals its earliest finishing attempt."""
        duration = 2.0
        trace = _trace(small_table, rmc1_workloads, duration=duration, seed=seed)
        servers = _fleet(small_table, rmc1_models, rmc1_workloads)
        sched = FaultSchedule([slowdown(0.4, 0, 4.0, duration=1.0)])
        sim = FleetSimulator(
            servers,
            policy="rr",
            sla_ms={MODEL: 20.0},
            seed=seed,
            faults=sched,
            retries=1,
            hedge_ms=hedge_ms,
        )
        result = sim.run(trace, warmup_s=0.0)
        hedged = [t for t in sim.last_query_log if t.hedged and t.done]
        assert result.per_model[MODEL].hedged == len(
            [t for t in sim.last_query_log if t.hedged]
        )
        assert hedged, "the straggler must force some hedges"
        for t in hedged:
            finishes = [a[2] for a in t.attempts if a[3] == 1]
            assert finishes, "a done query has at least one finished attempt"
            assert t.finish_s == min(finishes)
            # The duplicate attempt targeted a different replica.
            assert len({id(a[0]) for a in t.attempts}) == len(t.attempts)

    @settings(max_examples=4, deadline=None)
    @given(seed=st.integers(0, 1_000))
    def test_identical_seeds_identical_reports(
        self, small_table, rmc1_models, rmc1_workloads, seed
    ):
        """Same (trace seed, schedule, sim seed) -> float-identical reports."""
        sched = FaultSchedule.stochastic(
            crash_mtbf_s=2.0, mttr_s=0.5, slow_mtbf_s=3.0, slow_factor=2.5
        )
        trace = _trace(small_table, rmc1_workloads, duration=2.0, seed=seed)

        def run():
            servers = _fleet(small_table, rmc1_models, rmc1_workloads)
            sim = FleetSimulator(
                servers,
                policy="p2c",
                sla_ms={MODEL: 20.0},
                seed=seed,
                faults=sched,
                retries=1,
                hedge_ms=8.0,
            )
            result = sim.run(trace, warmup_s=0.2)
            return result, sim.last_query_log

        res_a, log_a = run()
        res_b, log_b = run()
        assert res_a.per_model == res_b.per_model
        assert res_a.fault_events == res_b.fault_events
        assert res_a.availability == res_b.availability
        assert res_a.phases == res_b.phases
        assert [t.outcome for t in log_a] == [t.outcome for t in log_b]
        assert [t.finish_s for t in log_a] == [t.finish_s for t in log_b]


# ----------------------------------------------------------------------
# Scripted-crash acceptance behaviour
# ----------------------------------------------------------------------


class TestCrashSemantics:
    def test_crash_fails_in_flight_without_retries(
        self, small_table, rmc1_models, rmc1_workloads
    ):
        """Light loop: a crashed replica's in-flight queries fail."""
        trace = _trace(small_table, rmc1_workloads, seed=5)
        servers = _fleet(small_table, rmc1_models, rmc1_workloads)
        sim = FleetSimulator(
            servers,
            policy="least",
            sla_ms={MODEL: 20.0},
            faults=FaultSchedule([crash(1.0, 0), crash(1.5, 1)]),
        )
        result = sim.run(trace, warmup_s=0.0)
        stats = result.per_model[MODEL]
        assert stats.failed > 0
        assert stats.retried == 0
        assert result.availability < 1.0
        assert len(result.fault_events) == 2
        assert result.phases, "fault runs report a phase breakdown"
        # The light loop allocates no per-query records.
        assert sim.last_query_log == ()

    def test_retries_convert_failures(
        self, small_table, rmc1_models, rmc1_workloads
    ):
        """The same crashes with a budget: retried > 0, fewer failures."""
        trace = _trace(small_table, rmc1_workloads, seed=5)
        schedule = FaultSchedule([crash(1.0, 0), crash(1.5, 1)])

        def run(retries):
            servers = _fleet(small_table, rmc1_models, rmc1_workloads)
            sim = FleetSimulator(
                servers,
                policy="least",
                sla_ms={MODEL: 20.0},
                faults=schedule,
                retries=retries,
            )
            return sim.run(trace, warmup_s=0.0).per_model[MODEL]

        without = run(0)
        with_budget = run(2)
        assert with_budget.retried > 0
        assert with_budget.failed < without.failed

    def test_all_replicas_dead_drops_stream(
        self, small_table, rmc1_models, rmc1_workloads
    ):
        """With every replica crashed, later arrivals drop (visibly)."""
        trace = _trace(small_table, rmc1_workloads, seed=7)
        servers = _fleet(small_table, rmc1_models, rmc1_workloads)
        sim = FleetSimulator(
            servers,
            policy="least",
            sla_ms={MODEL: 20.0},
            faults=FaultSchedule([crash(1.0, i) for i in range(3)]),
            retries=1,
        )
        result = sim.run(trace, warmup_s=0.0)
        stats = result.per_model[MODEL]
        assert stats.dropped > 0
        assert stats.violation_rate > 0.0
        assert result.availability < 1.0
        # Conservation still holds through the total blackout.
        log = sim.last_query_log
        assert all(t.outcome in (1, 2, 3) for t in log)

    def test_recovery_restores_service(
        self, small_table, rmc1_models, rmc1_workloads
    ):
        """A recovered replica serves again; availability reflects downtime."""
        duration = 3.0
        trace = _trace(small_table, rmc1_workloads, duration=duration, seed=9)
        servers = _fleet(small_table, rmc1_models, rmc1_workloads)
        sim = FleetSimulator(
            servers,
            policy="rr",
            sla_ms={MODEL: 20.0},
            faults=FaultSchedule([crash(1.0, 0, recover_after=0.5)]),
            retries=1,
        )
        result = sim.run(trace, warmup_s=0.0)
        # Downtime 0.5s of one of three replicas over ~3s.
        horizon = max(q.arrival_s for _, q in trace)
        expected = 1.0 - 0.5 / (3 * horizon)
        assert result.availability == pytest.approx(expected, abs=0.01)
        crashed = next(s for s in sim.servers if s.index == 0)
        assert not crashed.dead
        assert crashed.completed > 0

    def test_recovery_past_horizon_keeps_accounting_sane(
        self, small_table, rmc1_models, rmc1_workloads
    ):
        """A recover firing in the post-horizon drain must not corrupt
        active-time, power, or availability (regression: it used to set
        _active_since past the horizon, driving active_s negative and
        availability above 1)."""
        trace = _trace(small_table, rmc1_workloads, duration=2.0, seed=21)
        horizon = max(q.arrival_s for _, q in trace)
        servers = _fleet(small_table, rmc1_models, rmc1_workloads)
        sim = FleetSimulator(
            servers,
            policy="least",
            sla_ms={MODEL: 20.0},
            # Recovery lands well past the last arrival.
            faults=FaultSchedule([crash(1.0, 0, recover_after=10.0)]),
            retries=1,
        )
        result = sim.run(trace, warmup_s=0.0)
        assert all(s.active_s >= 0.0 for s in sim.servers)
        assert all(s.power_w >= 0.0 for s in result.servers)
        assert 0.0 <= result.availability < 1.0
        # Down from the crash to the horizon: availability matches.
        serving = 3 * horizon - (horizon - 1.0)
        assert result.availability == pytest.approx(
            serving / (3 * horizon), abs=0.01
        )

    def test_overlapping_crash_pins_replica_dead(
        self, small_table, rmc1_models, rmc1_workloads
    ):
        """A permanent crash inside a recovery window wins: the earlier
        scheduled recover must not revive the replica."""
        trace = _trace(small_table, rmc1_workloads, seed=15)
        servers = _fleet(small_table, rmc1_models, rmc1_workloads)
        sim = FleetSimulator(
            servers,
            policy="least",
            sla_ms={MODEL: 20.0},
            faults=FaultSchedule.parse("crash@1:0+1,crash@1.5:0"),
            retries=1,
        )
        result = sim.run(trace, warmup_s=0.0)
        crashed = next(s for s in sim.servers if s.index == 0)
        assert crashed.dead, "the permanent crash must outlive the recover"
        kinds = [e.kind for e in result.fault_events]
        assert kinds.count("crash") == 2
        assert kinds.count("recover") == 0  # swallowed by the overlap
        # Downtime runs from the first crash to the horizon.
        horizon = max(q.arrival_s for _, q in trace)
        serving = 3 * horizon - (horizon - 1.0)
        assert result.availability == pytest.approx(
            serving / (3 * horizon), abs=0.01
        )

    def test_overlapping_slowdowns_end_at_last_restore(
        self, small_table, rmc1_models, rmc1_workloads
    ):
        """A nested shorter slowdown must not cancel the outer episode."""
        trace = _trace(small_table, rmc1_workloads, rho=0.3, seed=16)
        servers = _fleet(small_table, rmc1_models, rmc1_workloads)
        sim = FleetSimulator(
            servers,
            policy="rr",
            sla_ms={MODEL: 20.0},
            # Outer 4x until t=2.5; inner 2x episode ends t=1.5 -- its
            # restore is swallowed, the factor resets only at t=2.5.
            faults=FaultSchedule.parse("slow@0.5:0*4+2,slow@1:0*2+0.5"),
        )
        result = sim.run(trace, warmup_s=0.0)
        kinds = [e.kind for e in result.fault_events]
        assert kinds.count("slow") == 2
        assert kinds.count("restore") == 1  # only the last one applies
        slowed = next(s for s in sim.servers if s.index == 0)
        assert slowed.slow_factor == 1.0  # restored by the end

    def test_availability_bounded_with_activated_standbys(
        self, small_table, rmc1_models, rmc1_workloads
    ):
        """Crashing replicas the autoscaler activated must keep
        availability inside [0, 1] (regression: the old formula divided
        by initially-active capacity only and went negative)."""
        tup = small_table.get("T2", MODEL)
        allocation = Allocation()
        allocation.add("T2", MODEL, 1)
        standby = Allocation()
        standby.add("T2", MODEL, 2)
        servers = build_fleet(
            allocation, small_table, rmc1_models, rmc1_workloads, standby=standby
        )
        duration = 4.0
        trace = build_fleet_trace(
            rmc1_workloads, {MODEL: [(2.5 * tup.qps, duration)]}, seed=18
        )
        scaler = ReactiveAutoscaler({MODEL: 20.0}, window_s=0.2, cooldown_s=0.1)
        sim = FleetSimulator(
            servers,
            policy="least",
            sla_ms={MODEL: 20.0},
            autoscaler=scaler,
            faults=FaultSchedule([crash(2.0, 1), crash(2.0, 2)]),
            retries=1,
        )
        result = sim.run(trace, warmup_s=0.0)
        activations = [e for e in result.scale_events if e.action == "activate"]
        assert len(activations) >= 2, "both standbys must come online first"
        assert 0.0 <= result.availability < 1.0

    def test_straggler_slows_only_the_episode(
        self, small_table, rmc1_models, rmc1_workloads
    ):
        """Service started inside the slow window takes factor-x longer."""
        trace = _trace(small_table, rmc1_workloads, rho=0.4, seed=11)

        def run(factor):
            servers = _fleet(small_table, rmc1_models, rmc1_workloads)
            schedule = (
                FaultSchedule([slowdown(1.0, 0, factor, duration=1.0)])
                if factor is not None
                else FaultSchedule()
            )
            sim = FleetSimulator(
                servers,
                policy="rr",
                sla_ms={MODEL: 20.0},
                faults=schedule,
            )
            return sim.run(trace, warmup_s=0.0)

        clean = run(None)
        slowed = run(6.0)
        assert slowed.per_model[MODEL].p99_ms > clean.per_model[MODEL].p99_ms
        # Same queries completed either way: slowdowns delay, never lose.
        assert slowed.per_model[MODEL].failed == 0


# ----------------------------------------------------------------------
# Autoscaler interaction
# ----------------------------------------------------------------------


class TestAutoscalerInteraction:
    def test_crash_triggers_standby_activation_within_window(
        self, small_table, rmc1_models, rmc1_workloads
    ):
        """Losing a replica mid-ramp activates a standby within ~2 windows."""
        tup = small_table.get("T2", MODEL)
        allocation = Allocation()
        allocation.add("T2", MODEL, 2)
        standby = Allocation()
        standby.add("T2", MODEL, 2)
        servers = build_fleet(
            allocation, small_table, rmc1_models, rmc1_workloads, standby=standby
        )
        duration, window = 4.0, 0.25
        trace = build_fleet_trace(
            rmc1_workloads, {MODEL: [(1.5 * tup.qps, duration)]}, seed=2
        )
        t_crash = 1.5
        scaler = ReactiveAutoscaler(
            {MODEL: 20.0}, window_s=window, cooldown_s=0.5 * window
        )
        sim = FleetSimulator(
            servers,
            policy="least",
            sla_ms={MODEL: 20.0},
            autoscaler=scaler,
            faults=FaultSchedule([crash(t_crash, 0)]),
            retries=2,
        )
        result = sim.run(trace, warmup_s=0.5)
        post_crash = [
            e
            for e in result.scale_events
            if e.action == "activate" and e.time_s > t_crash
        ]
        assert post_crash, "the crash must trigger standby activation"
        assert post_crash[0].time_s <= t_crash + 2 * window

    def test_autoscaler_never_activates_dead_standby(
        self, small_table, rmc1_models, rmc1_workloads
    ):
        """A crashed standby replica is invisible to the scaler."""
        tup = small_table.get("T2", MODEL)
        allocation = Allocation()
        allocation.add("T2", MODEL, 1)
        standby = Allocation()
        standby.add("T2", MODEL, 1)
        servers = build_fleet(
            allocation, small_table, rmc1_models, rmc1_workloads, standby=standby
        )
        duration = 3.0
        trace = build_fleet_trace(
            rmc1_workloads, {MODEL: [(2.0 * tup.qps, duration)]}, seed=4
        )
        scaler = ReactiveAutoscaler({MODEL: 20.0}, window_s=0.25, cooldown_s=0.1)
        sim = FleetSimulator(
            servers,
            policy="least",
            sla_ms={MODEL: 20.0},
            autoscaler=scaler,
            faults=FaultSchedule([crash(0.1, 1)]),  # kill the standby early
            retries=1,
        )
        result = sim.run(trace, warmup_s=0.0)
        assert not [e for e in result.scale_events if e.action == "activate"]
        dead_standby = next(s for s in sim.servers if s.index == 1)
        assert dead_standby.dead
        assert dead_standby.completed == 0

    def test_drained_replicas_finish_in_flight_before_going_cold(
        self, small_table, rmc1_models, rmc1_workloads
    ):
        """Draining loses nothing: all queries complete, server ends cold."""
        tup = small_table.get("T2", MODEL)
        servers = _fleet(small_table, rmc1_models, rmc1_workloads, count=3)
        duration = 4.0
        trace = build_fleet_trace(
            rmc1_workloads, {MODEL: [(0.1 * tup.qps, duration)]}, seed=6
        )
        scaler = ReactiveAutoscaler({MODEL: 20.0}, window_s=0.5, cooldown_s=1.0)
        sim = FleetSimulator(
            servers,
            policy="least",
            sla_ms={MODEL: 20.0},
            autoscaler=scaler,
            faults=FaultSchedule(),  # fault machinery on, no faults
            retries=1,
        )
        result = sim.run(trace, warmup_s=0.0)
        drains = [e for e in result.scale_events if e.action == "drain"]
        assert drains, "an over-provisioned fleet at 10% load must drain"
        # Conservation through drains: every query completed.
        log = sim.last_query_log
        assert all(t.done for t in log)
        assert result.per_model[MODEL].failed == 0
        for event in drains:
            drained = event.server
            assert drained.outstanding == 0
            if not drained.active:  # went cold after finishing in-flight work
                assert not drained.draining


# ----------------------------------------------------------------------
# Report surface
# ----------------------------------------------------------------------


class TestFaultReport:
    def test_format_shows_fault_columns_and_phases(
        self, small_table, rmc1_models, rmc1_workloads
    ):
        trace = _trace(small_table, rmc1_workloads, seed=5)
        servers = _fleet(small_table, rmc1_models, rmc1_workloads)
        sim = FleetSimulator(
            servers,
            policy="least",
            sla_ms={MODEL: 20.0},
            faults=FaultSchedule([crash(1.0, 0)]),
            retries=1,
        )
        text = sim.run(trace, warmup_s=0.0).format()
        for token in ("failed", "retried", "hedged", "availability", "phase ["):
            assert token in text

    def test_fault_free_format_unchanged(
        self, small_table, rmc1_models, rmc1_workloads
    ):
        trace = _trace(small_table, rmc1_workloads, seed=5)
        servers = _fleet(small_table, rmc1_models, rmc1_workloads)
        sim = FleetSimulator(servers, policy="least", sla_ms={MODEL: 20.0})
        text = sim.run(trace, warmup_s=0.0).format()
        assert "failed" not in text
        assert "availability" not in text

    def test_invalid_fault_config_rejected(
        self, small_table, rmc1_models, rmc1_workloads
    ):
        servers = _fleet(small_table, rmc1_models, rmc1_workloads)
        with pytest.raises(ValueError, match="retries"):
            FleetSimulator(servers, sla_ms={MODEL: 20.0}, retries=-1)
        with pytest.raises(ValueError, match="hedge_ms"):
            FleetSimulator(servers, sla_ms={MODEL: 20.0}, hedge_ms=0.0)
