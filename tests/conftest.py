"""Shared fixtures: models, evaluators, and a small profiled table.

Expensive artifacts (model graphs, evaluators, efficiency tables) are
session-scoped so the suite stays fast while every test works against
real production-scale configurations.
"""

from __future__ import annotations

import pytest

from repro.hardware import SERVER_TYPES
from repro.models import ModelVariant, build_model, partition_model
from repro.scheduling import OfflineProfiler
from repro.sim import QueryWorkload, ServerEvaluator


@pytest.fixture(scope="session")
def rmc1():
    return build_model("DLRM-RMC1")


@pytest.fixture(scope="session")
def rmc3():
    return build_model("DLRM-RMC3")


@pytest.fixture(scope="session")
def din():
    return build_model("DIN")


@pytest.fixture(scope="session")
def rmc1_small():
    return build_model("DLRM-RMC1", ModelVariant.SMALL)


@pytest.fixture(scope="session")
def rmc1_partitioned(rmc1):
    return partition_model(rmc1)


@pytest.fixture(scope="session")
def rmc1_workload(rmc1):
    return QueryWorkload.for_model(rmc1.config.mean_query_size)


@pytest.fixture(scope="session")
def t2_evaluator():
    return ServerEvaluator(SERVER_TYPES["T2"])


@pytest.fixture(scope="session")
def t3_evaluator():
    return ServerEvaluator(SERVER_TYPES["T3"])


@pytest.fixture(scope="session")
def t7_evaluator():
    return ServerEvaluator(SERVER_TYPES["T7"])


@pytest.fixture(scope="session")
def small_table():
    """Efficiency table for a T2/T3/T7 cluster serving RMC1 + RMC2."""
    servers = [SERVER_TYPES[s] for s in ("T2", "T3", "T7")]
    models = [build_model("DLRM-RMC1"), build_model("DLRM-RMC2")]
    return OfflineProfiler().profile(servers, models)
