"""Correlated fault domains: parsing, simultaneity, domain-aware hedging.

The invariants this lane pins:

- a domain-targeted fault expands to *every* member at the *same*
  timestamp, so the whole rack leaves the routable set together
  (property-tested over random schedules and seeds);
- domain-aware hedging never places both attempts of one query inside
  one fault domain while a live replica exists in another domain;
- undeclared fleets are singleton domains and behave exactly as before
  (the differential half lives in ``tests/test_perf_equivalence.py``).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.state import Allocation
from repro.fleet import (
    FaultDomains,
    FaultSchedule,
    FleetSimulator,
    build_fleet,
    build_fleet_trace,
    domain_crash,
    domain_slowdown,
    prefer_other_domains,
)
from repro.models import build_model
from repro.sim import QueryWorkload

MODEL = "DLRM-RMC1"


@pytest.fixture(scope="module")
def rmc1_models():
    return {MODEL: build_model(MODEL)}


@pytest.fixture(scope="module")
def rmc1_workloads(rmc1_models):
    model = rmc1_models[MODEL]
    return {MODEL: QueryWorkload.for_model(model.config.mean_query_size)}


def _fleet(small_table, models, workloads, count=6, srv="T2"):
    allocation = Allocation()
    allocation.add(srv, MODEL, count)
    return build_fleet(allocation, small_table, models, workloads)


def _trace(small_table, workloads, rho=0.5, count=6, duration=2.0, seed=3):
    tup = small_table.get("T2", MODEL)
    return build_fleet_trace(
        workloads, {MODEL: [(rho * count * tup.qps, duration)]}, seed=seed
    )


# ----------------------------------------------------------------------
# FaultDomains and grammar
# ----------------------------------------------------------------------


class TestFaultDomains:
    def test_ranges_map_with_singleton_fill(self):
        doms = FaultDomains(ranges=[(0, 2), (4, 5)])
        assert doms.map(8) == [0, 0, 0, 2, 1, 1, 3, 4]
        assert doms.members(8) == {0: [0, 1, 2], 1: [4, 5]}
        assert doms.num_domains(8) == 2

    def test_size_partition(self):
        doms = FaultDomains(size=3)
        assert doms.map(8) == [0, 0, 0, 1, 1, 1, 2, 2]
        assert doms.members(8) == {0: [0, 1, 2], 1: [3, 4, 5], 2: [6, 7]}
        assert doms.num_domains(8) == 3

    def test_validation(self):
        with pytest.raises(ValueError, match="exactly one"):
            FaultDomains()
        with pytest.raises(ValueError, match="exactly one"):
            FaultDomains(ranges=[(0, 1)], size=2)
        with pytest.raises(ValueError, match="overlap"):
            FaultDomains(ranges=[(0, 3), (2, 5)])
        with pytest.raises(ValueError, match="bad domain range"):
            FaultDomains(ranges=[(3, 1)])
        with pytest.raises(ValueError, match="size"):
            FaultDomains(size=0)
        with pytest.raises(ValueError, match="exceeds the fleet"):
            FaultDomains(ranges=[(0, 9)]).map(4)

    def test_parse_domain_sections(self):
        sched = FaultSchedule.parse("domain:0-2,domain:3-5;crash@1:dom1+0.5")
        assert sched.domains == FaultDomains(ranges=[(0, 2), (3, 5)])
        assert len(sched.domain_events) == 1
        assert sched.domain_events[0].domain == 1
        # The issue's canonical example parses too.
        sched = FaultSchedule.parse("domain:0-9;crash@5s:dom0")
        assert sched.domain_events[0].time_s == 5.0

    def test_parse_size_and_stochastic(self):
        sched = FaultSchedule.parse(
            "domain:size=4;random:domain_mtbf=30,domain_mttr=1"
        )
        assert sched.domains == FaultDomains(size=4)
        assert sched.stochastic_params["domain_mtbf_s"] == 30.0
        assert sched.stochastic_params["domain_mttr_s"] == 1.0

    @pytest.mark.parametrize(
        "bad",
        [
            "crash@1:dom0",  # no declaration
            "domain:size=2;domain:0-1",  # mixed shapes
            "domain:0-1;domain:size=2",
            "random:domain_mtbf=5",  # stochastic domains w/o declaration
            "domain:size=0",
            "random:crash_mtbf=5;random:slow_mtbf=5",  # two random sections
            "domain:0-1;slow@1:dom0",  # slow needs *factor
        ],
    )
    def test_parse_rejects_bad_domain_specs(self, bad):
        with pytest.raises(ValueError):
            FaultSchedule.parse(bad)

    def test_materialize_rejects_undeclared_domain_target(self):
        sched = FaultSchedule.parse("domain:0-1;crash@1:dom5")
        with pytest.raises(ValueError, match="domain 5"):
            sched.materialize(8, 10.0)

    def test_plain_specs_still_parse(self):
        """The pre-domain grammar is a strict subset of the new one."""
        sched = FaultSchedule.parse("crash@2:0+1,slow@1:3*2.5+2")
        assert len(sched.events) == 2
        assert sched.domains is None
        sched = FaultSchedule.parse("random:crash_mtbf=20,mttr=2")
        assert sched.stochastic_params["crash_mtbf_s"] == 20.0

    def test_materialize_expands_domain_members_same_timestamp(self):
        sched = FaultSchedule.parse("domain:0-2;crash@1:dom0+0.5")
        atomic = sched.materialize(5, 10.0)
        crashes = [e for e in atomic if e.kind == "crash"]
        recovers = [e for e in atomic if e.kind == "recover"]
        assert {e.server_index for e in crashes} == {0, 1, 2}
        assert {e.time_s for e in crashes} == {1.0}
        assert {e.time_s for e in recovers} == {1.5}

    def test_domain_slowdown_expands(self):
        sched = FaultSchedule(
            domains=FaultDomains(size=2),
            domain_events=[domain_slowdown(0.5, 1, 3.0, duration=1.0)],
        )
        atomic = sched.materialize(4, 10.0)
        slows = [e for e in atomic if e.kind == "slow"]
        assert {e.server_index for e in slows} == {2, 3}
        assert all(e.factor == 3.0 for e in slows)

    def test_stochastic_domain_draws_deterministic_and_correlated(self):
        sched = FaultSchedule.stochastic(
            domain_mtbf_s=5.0, domain_mttr_s=1.0, domains=FaultDomains(size=3)
        )
        a = sched.materialize(9, 30.0, seed=11)
        b = sched.materialize(9, 30.0, seed=11)
        c = sched.materialize(9, 30.0, seed=12)
        assert a == b
        assert a != c
        crashes = [e for e in a if e.kind == "crash"]
        assert crashes, "5x MTBF over a 30s horizon must fire"
        # Every crash timestamp covers a whole domain.
        by_time: dict[float, set[int]] = {}
        for e in crashes:
            by_time.setdefault(e.time_s, set()).add(e.server_index)
        for members in by_time.values():
            doms = {idx // 3 for idx in members}
            assert len(doms) == 1
            dom = doms.pop()
            assert members == set(range(3 * dom, 3 * dom + 3))

    def test_domain_map_defaults_to_singletons(self):
        assert FaultSchedule().domain_map(4) == [0, 1, 2, 3]
        sched = FaultSchedule.parse("domain:size=2")
        assert sched.domain_map(4) == [0, 0, 1, 1]
        assert sched.is_empty  # declaration alone injects nothing


# ----------------------------------------------------------------------
# Simultaneity through the engine (the property the issue names)
# ----------------------------------------------------------------------


class TestDomainSimultaneity:
    @settings(max_examples=6, deadline=None)
    @given(
        seed=st.integers(0, 1_000),
        crash_frac=st.floats(0.2, 0.8),
        dom=st.integers(0, 1),
    )
    def test_domain_members_leave_routable_together(
        self, small_table, rmc1_models, rmc1_workloads, seed, crash_frac, dom
    ):
        """All members of a crashed domain leave the routable set at the
        same simulation timestamp (and nothing routes to them after)."""
        duration = 2.0
        t_crash = duration * crash_frac
        trace = _trace(small_table, rmc1_workloads, duration=duration, seed=seed)
        servers = _fleet(small_table, rmc1_models, rmc1_workloads, count=6)
        sched = FaultSchedule(
            domains=FaultDomains(size=3),
            domain_events=[domain_crash(t_crash, dom)],
        )
        sim = FleetSimulator(
            servers,
            policy="least",
            sla_ms={MODEL: 20.0},
            seed=seed,
            faults=sched,
            retries=2,
        )
        result = sim.run(trace, warmup_s=0.0)
        members = set(range(3 * dom, 3 * dom + 3))
        crashes = [e for e in result.fault_events if e.kind == "crash"]
        assert {e.server_index for e in crashes} == members
        assert {e.time_s for e in crashes} == {t_crash}
        # Nothing dispatched to a member after the crash instant: every
        # completed attempt on a member started at or before t_crash.
        for tracked in sim.last_query_log:
            for attempt in tracked.attempts:
                if attempt[0].index in members:
                    assert attempt[1] <= t_crash
        # The surviving domain absorbed the re-routed load.
        assert result.per_model[MODEL].completed > 0

    def test_blackout_when_single_domain_hosts_model(
        self, small_table, rmc1_models, rmc1_workloads
    ):
        """A domain crash covering every replica is a full blackout."""
        trace = _trace(small_table, rmc1_workloads, count=3, duration=2.0, seed=9)
        servers = _fleet(small_table, rmc1_models, rmc1_workloads, count=3)
        sched = FaultSchedule(
            domains=FaultDomains(ranges=[(0, 2)]),
            domain_events=[domain_crash(1.0, 0)],
        )
        sim = FleetSimulator(
            servers, policy="least", sla_ms={MODEL: 20.0}, faults=sched, retries=1
        )
        result = sim.run(trace, warmup_s=0.0)
        assert result.per_model[MODEL].dropped > 0
        assert result.availability < 1.0


# ----------------------------------------------------------------------
# Domain-aware hedging
# ----------------------------------------------------------------------


class TestDomainAwareHedging:
    def test_prefer_other_domains_helper(self, small_table, rmc1_models, rmc1_workloads):
        servers = _fleet(small_table, rmc1_models, rmc1_workloads, count=4)
        for s, dom in zip(servers, [0, 0, 1, 1]):
            s.domain = dom
        picked = prefer_other_domains(servers, {0})
        assert [s.index for s in picked] == [2, 3]
        # Fallback: every candidate shares an attempted domain.
        assert prefer_other_domains(servers[:2], {0}) == servers[:2]
        # Singleton domains (the undeclared default) filter nothing.
        for s in servers:
            s.domain = s.index
        assert list(prefer_other_domains(servers, {99})) == list(servers)

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 1_000), hedge_ms=st.floats(2.0, 10.0))
    def test_hedge_never_lands_in_attempted_domain(
        self, small_table, rmc1_models, rmc1_workloads, seed, hedge_ms
    ):
        """With two live domains, a hedged query's two attempts are in
        different fault domains -- always, for any seed/hedge delay."""
        duration = 2.0
        trace = _trace(small_table, rmc1_workloads, duration=duration, seed=seed)
        servers = _fleet(small_table, rmc1_models, rmc1_workloads, count=6)
        # A straggling domain forces hedges; both domains stay live.
        sched = FaultSchedule(
            domains=FaultDomains(size=3),
            domain_events=[
                domain_slowdown(duration * 0.2, 0, 4.0, duration=duration * 0.5)
            ],
        )
        sim = FleetSimulator(
            servers,
            policy="rr",
            sla_ms={MODEL: 20.0},
            seed=seed,
            faults=sched,
            hedge_ms=hedge_ms,
        )
        result = sim.run(trace, warmup_s=0.0)
        hedged = [t for t in sim.last_query_log if t.hedged]
        assert result.per_model[MODEL].hedged == len(hedged)
        assert hedged, "a 4x domain straggler under rr must force hedges"
        for t in hedged:
            doms = [a[0].domain for a in t.attempts]
            assert len(doms) == len(set(doms)), (
                "hedge placed two attempts in one fault domain while "
                "another live domain existed"
            )

    def test_hedge_falls_back_within_domain_when_alone(
        self, small_table, rmc1_models, rmc1_workloads
    ):
        """With every replica in one domain, hedging still fires (a
        same-domain duplicate beats none)."""
        duration = 2.0
        trace = _trace(small_table, rmc1_workloads, count=3, duration=duration, seed=5)
        servers = _fleet(small_table, rmc1_models, rmc1_workloads, count=3)
        sched = FaultSchedule(
            domains=FaultDomains(ranges=[(0, 2)]),
            domain_events=[
                domain_slowdown(duration * 0.2, 0, 4.0, duration=duration * 0.5)
            ],
        )
        sim = FleetSimulator(
            servers,
            policy="rr",
            sla_ms={MODEL: 20.0},
            seed=5,
            faults=sched,
            hedge_ms=6.0,
        )
        sim.run(trace, warmup_s=0.0)
        hedged = [t for t in sim.last_query_log if t.hedged]
        assert hedged
        for t in hedged:
            # Distinct replicas even when domains coincide.
            assert len({id(a[0]) for a in t.attempts}) == len(t.attempts)

    def test_domains_stamped_on_servers_and_report(
        self, small_table, rmc1_models, rmc1_workloads
    ):
        trace = _trace(small_table, rmc1_workloads, duration=1.0, seed=2)
        servers = _fleet(small_table, rmc1_models, rmc1_workloads, count=4)
        sched = FaultSchedule.parse("domain:size=2")
        sim = FleetSimulator(
            servers, policy="rr", sla_ms={MODEL: 20.0}, faults=sched
        )
        result = sim.run(trace, warmup_s=0.0)
        assert [s.domain for s in sim.servers] == [0, 0, 1, 1]
        assert [s.domain for s in result.servers] == [0, 0, 1, 1]
        # Without a schedule, singleton domains.
        servers = _fleet(small_table, rmc1_models, rmc1_workloads, count=4)
        sim = FleetSimulator(servers, policy="rr", sla_ms={MODEL: 20.0})
        result = sim.run(trace, warmup_s=0.0)
        assert [s.domain for s in result.servers] == [0, 1, 2, 3]
