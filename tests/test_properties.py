"""Cross-cutting property-based tests (hypothesis).

These pin down the invariants the schedulers rely on:

- the evaluator's tail latency and power are monotone in load;
- latency-bounded throughput never exceeds raw pipeline capacity;
- the DES conserves queries (all arrivals eventually complete);
- random covering LPs: the built-in simplex matches SciPy and the
  integerized allocation always covers or reports shortfall;
- graph roll-ups are additive under sparse/dense splitting.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import integerize, solve_allocation_lp
from repro.models import build_model, partition_model
from repro.plans import ExecutionPlan, Placement
from repro.scheduling import ClassificationTable, EfficiencyTuple
from repro.sim import DiscreteEventServerSim, Query, SimStage, StageMode

_PLAN = ExecutionPlan(Placement.CPU_MODEL_BASED, threads=1)


class TestEvaluatorMonotonicity:
    @settings(max_examples=12, deadline=None)
    @given(
        low=st.floats(0.05, 0.45),
        high=st.floats(0.5, 0.95),
    )
    def test_latency_and_power_monotone_in_load(
        self, t2_evaluator, rmc1_partitioned, rmc1_workload, low, high
    ):
        plan = ExecutionPlan(
            Placement.CPU_MODEL_BASED, threads=10, cores_per_thread=2, batch_size=256
        )
        timings = t2_evaluator.plan_timings(rmc1_partitioned, rmc1_workload, plan)
        capacity_qps = timings.capacity_items_s / rmc1_workload.mean_size
        p_low = t2_evaluator.perf_at(timings, rmc1_workload, capacity_qps * low)
        p_high = t2_evaluator.perf_at(timings, rmc1_workload, capacity_qps * high)
        assert p_high.latency.p99_ms >= p_low.latency.p99_ms
        assert p_high.power_w >= p_low.power_w
        assert p_high.cpu_util >= p_low.cpu_util

    @settings(max_examples=8, deadline=None)
    @given(sla=st.floats(5.0, 500.0))
    def test_bounded_qps_below_capacity(
        self, t2_evaluator, rmc1_partitioned, rmc1_workload, sla
    ):
        plan = ExecutionPlan(
            Placement.CPU_MODEL_BASED, threads=10, cores_per_thread=2, batch_size=256
        )
        timings = t2_evaluator.plan_timings(rmc1_partitioned, rmc1_workload, plan)
        capacity_qps = timings.capacity_items_s / rmc1_workload.mean_size
        perf = t2_evaluator.latency_bounded(
            rmc1_partitioned, rmc1_workload, plan, sla_ms=sla
        )
        if perf.feasible:
            assert perf.qps <= capacity_qps
            assert perf.latency.p99_ms <= sla


class TestDesConservation:
    @settings(max_examples=15, deadline=None)
    @given(
        sizes=st.lists(st.integers(1, 400), min_size=1, max_size=40),
        units=st.integers(1, 4),
        chunk=st.integers(16, 256),
    )
    def test_all_queries_complete(self, sizes, units, chunk):
        stage = SimStage(
            name="inference",
            units=units,
            mode=StageMode.SPLIT,
            chunk_items=chunk,
            fuse_items=0,
            latency_fn=lambda items: 1e-4 + items * 1e-6,
        )
        queries = [
            Query(query_id=i, arrival_s=i * 1e-3, size=s)
            for i, s in enumerate(sizes)
        ]
        result = DiscreteEventServerSim([stage]).run(queries)
        assert result.completed == len(queries)
        assert (result.latencies_s > 0).all()

    @settings(max_examples=10, deadline=None)
    @given(
        sizes=st.lists(st.integers(1, 300), min_size=2, max_size=30),
        fuse=st.integers(0, 600),
    )
    def test_fusion_conserves_queries(self, sizes, fuse):
        stage = SimStage(
            name="inference",
            units=2,
            mode=StageMode.FUSE,
            chunk_items=1,
            fuse_items=fuse,
            latency_fn=lambda items: 1e-4,
        )
        queries = [
            Query(query_id=i, arrival_s=0.0, size=s) for i, s in enumerate(sizes)
        ]
        result = DiscreteEventServerSim([stage]).run(queries)
        assert result.completed == len(queries)
        assert result.items_served == sum(sizes)


class TestLpProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        num_servers=st.integers(2, 4),
        num_models=st.integers(1, 3),
    )
    def test_integerized_allocation_covers_or_reports(
        self, seed, num_servers, num_models
    ):
        rng = np.random.default_rng(seed)
        table = ClassificationTable()
        fleet = {}
        servers = [f"S{i}" for i in range(num_servers)]
        models = [f"M{j}" for j in range(num_models)]
        for s in servers:
            fleet[s] = int(rng.integers(1, 30))
            for m in models:
                table.add(
                    EfficiencyTuple(
                        server_name=s,
                        model_name=m,
                        qps=float(rng.uniform(50, 5000)),
                        power_w=float(rng.uniform(50, 500)),
                        plan=_PLAN,
                    )
                )
        loads = {m: float(rng.uniform(100, 20_000)) for m in models}
        solution = solve_allocation_lp(table, loads, fleet, solver="simplex")
        if not solution.feasible:
            return
        alloc = integerize(solution, table, loads, fleet)
        assert alloc.respects_fleet(fleet)
        for m, load in loads.items():
            covered = alloc.capacity_qps(table, m) + alloc.shortfall.get(m, 0.0)
            assert covered >= load - 1e-3

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_simplex_matches_scipy_objective(self, seed):
        rng = np.random.default_rng(seed)
        table = ClassificationTable()
        fleet = {"A": int(rng.integers(2, 40)), "B": int(rng.integers(2, 40))}
        for s in fleet:
            for m in ("X", "Y"):
                table.add(
                    EfficiencyTuple(
                        server_name=s,
                        model_name=m,
                        qps=float(rng.uniform(100, 3000)),
                        power_w=float(rng.uniform(80, 400)),
                        plan=_PLAN,
                    )
                )
        loads = {"X": float(rng.uniform(500, 30_000)), "Y": float(rng.uniform(100, 5_000))}
        a = solve_allocation_lp(table, loads, fleet, solver="scipy")
        b = solve_allocation_lp(table, loads, fleet, solver="simplex")
        assert a.feasible == b.feasible
        if a.feasible:
            assert a.objective_w == pytest.approx(b.objective_w, rel=1e-5, abs=1e-4)


class TestGraphSplitAdditivity:
    @pytest.mark.parametrize(
        "name", ["DLRM-RMC1", "DLRM-RMC3", "MT-WnD", "DIN", "DIEN"]
    )
    def test_sparse_plus_dense_equals_whole(self, name):
        model = build_model(name)
        pm = partition_model(model)
        for items in (1, 64, 777):
            whole_flops = model.graph.total_flops(items)
            split_flops = pm.sparse.total_flops(items) + pm.dense.total_flops(items)
            assert split_flops == pytest.approx(whole_flops)
            whole_weights = model.graph.total_weight_bytes()
            split_weights = (
                pm.sparse.total_weight_bytes() + pm.dense.total_weight_bytes()
            )
            assert split_weights == pytest.approx(whole_weights)
