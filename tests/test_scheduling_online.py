"""Tests for the online calibration stage (Section IV-A)."""

from __future__ import annotations

import pytest

from repro.hardware import SERVER_TYPES
from repro.models import build_model
from repro.scheduling import (
    ClassificationTable,
    EfficiencyTuple,
    OfflineProfiler,
    OnlineCalibrator,
)


@pytest.fixture(scope="module")
def rmc1_tuple():
    return OfflineProfiler().profile_pair(
        SERVER_TYPES["T2"], build_model("DLRM-RMC1")
    )


class TestOnlineCalibrator:
    def test_calibration_produces_consistent_tuple(self, rmc1_tuple):
        calibrator = OnlineCalibrator(duration_s=8.0, seed=1)
        result = calibrator.calibrate_pair(rmc1_tuple)
        assert result.calibrated.server_name == rmc1_tuple.server_name
        assert result.calibrated.model_name == rmc1_tuple.model_name
        assert result.calibrated.plan == rmc1_tuple.plan
        assert 0.0 < result.backoff <= 1.0
        # Measured throughput within the offline profile's ballpark.
        assert result.calibrated.qps == pytest.approx(
            rmc1_tuple.qps * result.backoff, rel=0.15
        )

    def test_measured_point_respects_constraints(self, rmc1_tuple):
        calibrator = OnlineCalibrator(duration_s=8.0, sla_slack=1.2, seed=2)
        result = calibrator.calibrate_pair(rmc1_tuple)
        model = build_model("DLRM-RMC1")
        if result.backoff < 1.0:
            # Backoff only happens when the original point violated.
            assert result.measured.latency.p99_ms <= model.sla_ms * 1.2 * 1.05
        assert result.measured.power_w <= rmc1_tuple.power_w * 1.1

    def test_infeasible_tuple_rejected(self):
        calibrator = OnlineCalibrator()
        bad = EfficiencyTuple(
            server_name="T2", model_name="DLRM-RMC1", qps=0.0, power_w=1.0, plan=None
        )
        with pytest.raises(ValueError, match="infeasible"):
            calibrator.calibrate_pair(bad)

    def test_calibrate_table_passes_through_infeasible(self, rmc1_tuple):
        table = ClassificationTable()
        table.add(rmc1_tuple)
        table.add(
            EfficiencyTuple(
                server_name="T3",
                model_name="DLRM-RMC1",
                qps=0.0,
                power_w=1.0,
                plan=None,
            )
        )
        calibrator = OnlineCalibrator(duration_s=5.0, sla_slack=1.2)
        out = calibrator.calibrate(table)
        assert len(out.entries) == 2
        assert not out.get("T3", "DLRM-RMC1").feasible
        assert out.get("T2", "DLRM-RMC1").qps > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            OnlineCalibrator(duration_s=0)
        with pytest.raises(ValueError):
            OnlineCalibrator(sla_slack=0)
        with pytest.raises(ValueError):
            OnlineCalibrator(max_backoff_steps=0)
