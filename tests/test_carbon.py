"""Carbon layer: trace exactness, policy properties, fleet integration.

Three lanes:

- **Property lane** (hypothesis): on generated step traces and job
  sets, every policy conserves work (submitted == completed +
  suspended + dropped), never trades a feasible deadline for carbon,
  and respects the exemplar's emission ladder ``no-wait >=
  lowest-carbon-slot >= carbon-waiting >= suspend-resume``; trace
  files round-trip bit-exactly through CSV and JSONL.
- **Error lane**: malformed trace rows fail with ``"{path}:{line}:"``
  prefixes, spec mini-language mistakes name the offending section.
- **Fleet lane**: a carbon-attached replay populates ``result.carbon``
  deterministically and rejects inconsistent knob combinations.  (The
  carbon-off == carbon-on differential pin lives in
  ``tests/test_perf_equivalence.py``.)
"""

from __future__ import annotations

import json
import math
import os
import re
import tempfile

import pytest
from hypothesis import given, settings, strategies as st

from repro.carbon import (
    DEFERRABLE_POLICIES,
    CarbonTrace,
    DeferrableJob,
    parse_carbon,
    parse_deferrable,
    read_carbon_trace,
    run_deferrable,
    save_carbon_trace,
)
from repro.fleet.report import J_PER_KWH, fleet_power_summary

_HORIZON = 100.0

#: The provable emission ladder, cheapest-last (module docstring of
#: ``repro.carbon.deferrable`` explains why each step holds).
_LADDER = ("no-wait", "lowest-carbon-slot", "carbon-waiting", "suspend-resume")


@st.composite
def carbon_traces(draw):
    """Step traces with strictly increasing times and >= 0 intensity."""
    n = draw(st.integers(1, 8))
    t0 = draw(st.floats(0.0, 10.0))
    gaps = draw(st.lists(st.floats(0.5, 30.0), min_size=n, max_size=n))
    times = []
    acc = t0
    for gap in gaps:
        times.append(acc)
        acc += gap
    intensities = draw(
        st.lists(st.floats(0.0, 1000.0), min_size=n, max_size=n)
    )
    return CarbonTrace(times, intensities)


@st.composite
def job_sets(draw):
    """1-5 jobs submitted inside the first 60% of the horizon."""
    count = draw(st.integers(1, 5))
    jobs = []
    for i in range(count):
        submit = draw(st.floats(0.0, _HORIZON * 0.6))
        duration = draw(st.floats(0.05, _HORIZON * 0.25))
        slack = draw(st.floats(0.0, 3.0))
        power = draw(st.floats(10.0, 1000.0))
        jobs.append(
            DeferrableJob(
                name=f"job-{i}",
                submit_s=submit,
                duration_s=duration,
                power_w=power,
                deadline_s=submit + duration * (1.0 + slack),
            )
        )
    return jobs


class TestDeferrableProperties:
    @settings(max_examples=40, deadline=None)
    @given(trace=carbon_traces(), jobs=job_sets(),
           policy=st.sampled_from(DEFERRABLE_POLICIES))
    def test_work_conservation(self, trace, jobs, policy):
        """Every submitted job ends in exactly one terminal state."""
        report = run_deferrable(
            jobs, trace, policy=policy, horizon_s=_HORIZON
        )
        assert report.submitted == len(jobs)
        assert (
            report.completed + report.suspended + report.dropped
            == report.submitted
        )
        for outcome in report.outcomes:
            # run + remaining always reconstructs the job's duration.
            job = next(j for j in jobs if j.name == outcome.name)
            assert outcome.run_s + outcome.remaining_s == pytest.approx(
                job.duration_s, abs=1e-6
            )
            if outcome.status == "completed":
                assert outcome.remaining_s == 0.0

    @settings(max_examples=40, deadline=None)
    @given(trace=carbon_traces(), jobs=job_sets(),
           policy=st.sampled_from(DEFERRABLE_POLICIES))
    def test_no_policy_violates_a_feasible_deadline(self, trace, jobs, policy):
        """Uncapped, every deadline inside the horizon is met.

        The forced-run safety net (``forced_at = latest_finish -
        remaining``) makes this hold for every policy, including the
        carbon-waiting waiter the issue singles out.
        """
        report = run_deferrable(
            jobs, trace, policy=policy, horizon_s=_HORIZON
        )
        for outcome in report.outcomes:
            if outcome.deadline_s <= _HORIZON:
                assert outcome.status == "completed"
                assert outcome.finish_s <= outcome.deadline_s + 1e-6

    @settings(max_examples=40, deadline=None)
    @given(trace=carbon_traces(), jobs=job_sets())
    def test_emission_ladder(self, trace, jobs):
        """Carbon-aware policies emit <= no-wait on every trace; the
        full ladder holds whenever every policy completes all jobs.

        The completion gate matters: a deadline past the horizon lets
        carbon-waiting legitimately park work beyond the measurement
        window (job ends *suspended*), and running less work always
        emits less gas -- comparing those totals against a policy that
        finished everything would reward incompleteness, not carbon
        awareness.
        """
        reports = {
            policy: run_deferrable(
                jobs, trace, policy=policy, horizon_s=_HORIZON
            )
            for policy in _LADDER
        }
        totals = {p: r.total_gco2 for p, r in reports.items()}
        slack = 1e-6 * max(1.0, totals["no-wait"])
        for policy in _LADDER[1:]:
            assert totals[policy] <= totals["no-wait"] + slack, (
                f"{policy} emitted more than no-wait: {totals}"
            )
        if all(r.completed == len(jobs) for r in reports.values()):
            for costlier, cheaper in zip(_LADDER, _LADDER[1:]):
                assert totals[cheaper] <= totals[costlier] + slack, (
                    f"{cheaper} emitted more than {costlier}: {totals}"
                )

    @settings(max_examples=20, deadline=None)
    @given(trace=carbon_traces(), jobs=job_sets(),
           policy=st.sampled_from(DEFERRABLE_POLICIES))
    def test_executor_is_deterministic(self, trace, jobs, policy):
        """Same inputs, same report -- byte for byte."""
        first = run_deferrable(jobs, trace, policy=policy, horizon_s=_HORIZON)
        second = run_deferrable(jobs, trace, policy=policy, horizon_s=_HORIZON)
        assert json.dumps(first.to_dict()) == json.dumps(second.to_dict())

    def test_power_cap_starves_oversized_jobs(self):
        """A job that never fits under the cap ends dropped, and the
        realtime profile is what consumes the headroom."""
        trace = CarbonTrace.constant(300.0)
        jobs = [DeferrableJob("big", 0.0, 5.0, 800.0, 20.0)]
        profile = ((0.0, 100.0, 900.0),)
        report = run_deferrable(
            jobs, trace, policy="no-wait", horizon_s=_HORIZON,
            power_cap_w=1200.0, realtime_profile=profile,
        )
        assert report.dropped == 1
        assert report.outcomes[0].run_s == 0.0
        # Raise the cap and the same job completes immediately.
        report = run_deferrable(
            jobs, trace, policy="no-wait", horizon_s=_HORIZON,
            power_cap_w=2000.0, realtime_profile=profile,
        )
        assert report.completed == 1

    def test_deferral_horizon_tightens_deadline(self):
        """deferral_horizon_s caps slip past the natural finish."""
        trace = CarbonTrace.step((0.0, 10.0), (1000.0, 10.0))
        job = DeferrableJob("j", 0.0, 2.0, 100.0, 50.0)
        free = run_deferrable(
            [job], trace, policy="suspend-resume", horizon_s=_HORIZON
        )
        # Unconstrained, the job waits for the cheap step at t=10.
        assert free.outcomes[0].start_s >= 10.0
        tight = run_deferrable(
            [job], trace, policy="suspend-resume", horizon_s=_HORIZON,
            deferral_horizon_s=1.0,
        )
        # Effective deadline 0 + 2 + 1 = 3s: must run in the dirty step.
        assert tight.outcomes[0].status == "completed"
        assert tight.outcomes[0].finish_s <= 3.0 + 1e-9
        assert tight.outcomes[0].gco2_g > free.outcomes[0].gco2_g

    def test_suspend_resume_splits_across_a_peak(self):
        """The preemptive policy runs cheap seconds on both sides of an
        expensive plateau, counting one suspension."""
        trace = CarbonTrace.step((0.0, 2.0, 6.0), (50.0, 900.0, 50.0))
        job = DeferrableJob("j", 0.0, 4.0, 100.0, 12.0)
        report = run_deferrable(
            [job], trace, policy="suspend-resume", horizon_s=20.0
        )
        outcome = report.outcomes[0]
        assert outcome.status == "completed"
        assert outcome.suspensions == 1
        assert outcome.run_windows[0][1] <= 2.0 + 1e-9
        assert outcome.run_windows[-1][0] >= 6.0 - 1e-9
        # Only cheap seconds were bought: 4s x 100W at 50 g/kWh.
        assert outcome.gco2_g == pytest.approx(
            100.0 * 50.0 * 4.0 / J_PER_KWH
        )


class TestCarbonTrace:
    def test_step_semantics_and_integral(self):
        trace = CarbonTrace.step((0.0, 10.0, 20.0), (100.0, 400.0, 200.0))
        assert trace.intensity_at(-5.0) == 100.0  # first extends back
        assert trace.intensity_at(9.999) == 100.0
        assert trace.intensity_at(10.0) == 400.0
        assert trace.intensity_at(99.0) == 200.0  # last extends forward
        assert trace.integral(0.0, 20.0) == pytest.approx(
            10 * 100.0 + 10 * 400.0
        )
        assert trace.integral(5.0, 25.0) == pytest.approx(
            5 * 100.0 + 10 * 400.0 + 5 * 200.0
        )
        assert trace.mean(0.0, 20.0) == pytest.approx(250.0)

    def test_lowest_window_prefers_trough_then_earliest(self):
        trace = CarbonTrace.step((0.0, 10.0, 20.0), (300.0, 50.0, 300.0))
        # The 5s window fits wholly inside the [10, 20) trough.
        assert trace.lowest_window(5.0, 0.0, 40.0) == 10.0
        # Ties (flat trace) resolve to the earliest start.
        flat = CarbonTrace.constant(100.0)
        assert flat.lowest_window(5.0, 3.0, 40.0) == 3.0

    def test_diurnal_shape(self):
        trace = CarbonTrace.diurnal(
            base=350.0, swing=150.0, period_s=24.0, steps=24
        )
        assert len(trace) == 24
        # Trough lands mid-period (solar midday), peak at the edges.
        assert min(trace.intensities) == trace.intensity_at(12.0)
        assert min(trace.intensities) >= 200.0 - 1e-9
        assert max(trace.intensities) <= 500.0 + 1e-9
        with pytest.raises(ValueError, match="swing"):
            CarbonTrace.diurnal(base=100.0, swing=200.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="strictly increase"):
            CarbonTrace((0.0, 0.0), (1.0, 2.0))
        with pytest.raises(ValueError, match=">= 0"):
            CarbonTrace((0.0,), (-1.0,))
        with pytest.raises(ValueError, match="at least one"):
            CarbonTrace((), ())
        with pytest.raises(ValueError, match="pair up"):
            CarbonTrace((0.0, 1.0), (1.0,))


class TestCarbonTraceRoundTrip:
    @settings(max_examples=25, deadline=None)
    @given(trace=carbon_traces(), fmt=st.sampled_from(["csv", "jsonl"]))
    def test_write_read_exact(self, trace, fmt):
        """repr-written floats make the round trip bit-identical."""
        path = tempfile.mktemp(suffix=f".{fmt}")
        try:
            assert save_carbon_trace(path, trace) == len(trace)
            loaded = read_carbon_trace(path)
            assert loaded == trace  # tuple equality: exact floats
            assert loaded.times == trace.times
            assert loaded.intensities == trace.intensities
        finally:
            os.unlink(path)

    def test_extension_routing_and_override(self):
        trace = CarbonTrace.constant(250.0)
        path = tempfile.mktemp(suffix=".ndjson")
        try:
            trace.save(path)
            assert CarbonTrace.load(path) == trace
            # fmt= overrides a lying extension.
            assert read_carbon_trace(path, fmt="jsonl") == trace
        finally:
            os.unlink(path)
        with pytest.raises(ValueError, match="format"):
            save_carbon_trace("/tmp/carbon.txt", trace)

    def _write(self, suffix: str, text: str) -> str:
        path = tempfile.mktemp(suffix=suffix)
        with open(path, "w") as fh:
            fh.write(text)
        return path

    def test_malformed_rows_name_path_and_line(self):
        cases = [
            (".csv", "time_s,gco2_per_kwh\n0.0,100.0\n1.0\n", 3, "columns"),
            (".csv", "time_s,gco2_per_kwh\n0.0,abc\n", 2, "not numeric"),
            (".csv", "time_s,gco2_per_kwh\n0.0,100.0\n0.0,50.0\n", 3,
             "strictly"),
            (".csv", "time_s,gco2_per_kwh\n0.0,-4.0\n", 2, ">= 0"),
            (".jsonl", '{"t": 0.0, "gco2_per_kwh": 100.0}\nnot json\n', 2,
             "invalid JSON"),
            (".jsonl", '{"t": 0.0}\n', 1, "needs keys"),
        ]
        for suffix, text, line, detail in cases:
            path = self._write(suffix, text)
            try:
                with pytest.raises(ValueError) as exc:
                    read_carbon_trace(path)
                assert str(exc.value).startswith(f"{path}:{line}:"), (
                    f"{detail}: {exc.value}"
                )
                assert detail in str(exc.value)
            finally:
                os.unlink(path)

    def test_empty_file_and_bad_header(self):
        path = self._write(".csv", "time_s,gco2_per_kwh\n")
        try:
            with pytest.raises(ValueError, match="empty carbon trace"):
                read_carbon_trace(path)
        finally:
            os.unlink(path)
        path = self._write(".csv", "a,b\n0.0,1.0\n")
        try:
            with pytest.raises(ValueError, match="needs time_s"):
                read_carbon_trace(path)
        finally:
            os.unlink(path)


class TestSpecs:
    def test_carbon_spec_shapes_and_superposition(self):
        flat = parse_carbon("constant:intensity=400").build()
        assert flat.intensity_at(123.0) == 400.0
        stepped = parse_carbon("step:levels=400/120/400,at=0/3600/7200").build()
        assert stepped.intensity_at(3600.0) == 120.0
        both = parse_carbon(
            "constant:intensity=100+step:levels=50/10,at=0/10"
        ).build()
        assert both.intensity_at(0.0) == 150.0
        assert both.intensity_at(10.0) == 110.0
        day = parse_carbon("diurnal:base=300,swing=100,period=10,steps=5")
        assert len(day.build()) == 5

    def test_carbon_spec_errors_name_section(self):
        with pytest.raises(ValueError, match="unknown carbon shape"):
            parse_carbon("sawtooth:x=1")
        with pytest.raises(ValueError, match="constant:intensity=4,bogus=2"):
            parse_carbon("constant:intensity=4,bogus=2")
        with pytest.raises(ValueError, match="duplicate"):
            parse_carbon("constant:intensity=4,intensity=5")
        with pytest.raises(ValueError, match="levels= and at="):
            parse_carbon("step:levels=1/2")
        with pytest.raises(ValueError, match="matching levels/at"):
            parse_carbon("step:levels=1/2,at=0").build()
        with pytest.raises(ValueError, match="empty"):
            parse_carbon("  ")

    def test_deferrable_spec_builds_jobs(self):
        spec = parse_deferrable(
            "jobs:count=3,duration=10,power=500,slack=2.0,start=5,every=20"
        )
        jobs = spec.build(100.0)
        assert [j.submit_s for j in jobs] == [5.0, 25.0, 45.0]
        assert all(j.duration_s == 10.0 and j.power_w == 500.0 for j in jobs)
        assert all(j.deadline_s == j.submit_s + 30.0 for j in jobs)
        assert len({j.name for j in jobs}) == 3
        # every= defaults to spreading the batch across the window.
        spread = parse_deferrable("jobs:count=4,duration=1,power=10").build(80.0)
        assert [j.submit_s for j in spread] == [0.0, 20.0, 40.0, 60.0]

    def test_deferrable_spec_errors(self):
        with pytest.raises(ValueError, match="duration= and power="):
            parse_deferrable("jobs:count=2")
        with pytest.raises(ValueError, match="only 'jobs'"):
            parse_deferrable("tasks:duration=1,power=1")
        with pytest.raises(ValueError, match="slack"):
            parse_deferrable("jobs:duration=1,power=1,slack=-1").build(10.0)


class TestFleetPowerSummary:
    def test_rows_fold_in_order(self):
        energy, avg = fleet_power_summary([(100.0, 2.0), (50.0, 4.0)], 10.0)
        assert energy == 400.0
        assert avg == 40.0

    def test_zero_horizon_never_divides_by_zero(self):
        """The shared seam clamps the horizon instead of raising -- the
        empty-run edge both the engine and the sharded merge hit."""
        energy, avg = fleet_power_summary([], 0.0)
        assert (energy, avg) == (0.0, 0.0)
        energy, avg = fleet_power_summary([(100.0, 2.0)], 0.0)
        assert energy == 200.0
        assert avg == 200.0 / 1e-9  # clamped, finite
        assert math.isfinite(avg)


class TestFleetIntegration:
    @pytest.fixture()
    def fleet_run(self, small_table):
        from repro.cluster.state import Allocation
        from repro.fleet import FleetSimulator, build_fleet, build_fleet_trace
        from repro.models import build_model
        from repro.sim import QueryWorkload

        models = {"DLRM-RMC1": build_model("DLRM-RMC1")}
        workloads = {
            "DLRM-RMC1": QueryWorkload.for_model(
                models["DLRM-RMC1"].config.mean_query_size
            )
        }
        allocation = Allocation()
        allocation.add("T2", "DLRM-RMC1", 2)
        qps = 2 * small_table.qps("T2", "DLRM-RMC1")
        trace = build_fleet_trace(
            workloads, {"DLRM-RMC1": [(0.5 * qps, 2.0)]}, seed=11
        )

        def run(**kwargs):
            servers = build_fleet(allocation, small_table, models, workloads)
            sim = FleetSimulator(
                servers, policy="rr", sla_ms={"DLRM-RMC1": 20.0}, seed=5,
                **kwargs,
            )
            return sim, sim.run(trace, warmup_s=0.2)

        return run

    def test_carbon_block_populates_and_is_deterministic(self, fleet_run):
        carbon = CarbonTrace.diurnal(period_s=2.0, steps=8)
        jobs = (
            DeferrableJob("a", 0.1, 0.3, 500.0, 1.9),
            DeferrableJob("b", 0.5, 0.2, 300.0, 1.8),
        )
        runs = [
            fleet_run(
                carbon=carbon, deferrable=jobs,
                deferrable_policy="carbon-waiting", power_cap_w=4000.0,
            )
            for _ in range(2)
        ]
        (sim, first), (_, second) = runs
        assert json.dumps(first.to_dict()) == json.dumps(second.to_dict())
        stats = first.carbon
        assert stats is not None
        assert stats.realtime_g > 0.0
        assert stats.total_g == stats.realtime_g + stats.deferrable_g
        assert stats.jobs_submitted == 2
        assert stats.policy == "carbon-waiting"
        assert sim.last_deferrable_report.submitted == 2
        # The formatted report carries the carbon lines.
        assert "gCO2" in first.format()
        assert "carbon-waiting" in first.format()
        # And the dormant run has no carbon key at all.
        _, dark = fleet_run()
        assert dark.carbon is None
        assert "carbon" not in dark.to_dict()

    def test_carbon_knobs_validated(self, fleet_run):
        with pytest.raises(ValueError, match="carbon"):
            fleet_run(deferrable=(DeferrableJob("a", 0.0, 1.0, 10.0, 5.0),))
        with pytest.raises(ValueError, match="carbon"):
            fleet_run(power_cap_w=100.0)
        with pytest.raises(ValueError, match="policy"):
            fleet_run(
                carbon=CarbonTrace.constant(100.0),
                deferrable=(DeferrableJob("a", 0.0, 1.0, 10.0, 5.0),),
                deferrable_policy="greedy",
            )

    def test_vector_core_refuses_carbon(self, fleet_run):
        """Window recording needs the per-event core; core='vector'
        must fail actionably rather than silently skip accounting."""
        with pytest.raises(ValueError, match="carbon"):
            fleet_run(carbon=CarbonTrace.constant(100.0), core="vector")
