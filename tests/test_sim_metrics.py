"""Tests for serving metrics types."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.sim import LatencyStats, ServerPerformance, percentile


class TestPercentile:
    def test_basic(self):
        samples = list(range(1, 101))
        assert percentile(samples, 50) == pytest.approx(50.5)
        assert percentile(samples, 99) == pytest.approx(99.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 101)


class TestLatencyStats:
    def test_from_samples(self):
        samples_s = np.array([0.001, 0.002, 0.003, 0.010])
        stats = LatencyStats.from_samples_s(samples_s)
        assert stats.p50_ms == pytest.approx(2.5)
        assert stats.p99_ms <= 10.0 + 1e-9
        assert stats.mean_ms == pytest.approx(4.0)

    @given(st.lists(st.floats(1e-6, 10.0), min_size=2, max_size=50))
    def test_percentile_ordering_invariant(self, samples):
        stats = LatencyStats.from_samples_s(samples)
        assert stats.p50_ms <= stats.p95_ms <= stats.p99_ms

    def test_sla_check(self):
        stats = LatencyStats(p50_ms=5, p95_ms=10, p99_ms=20, mean_ms=6)
        assert stats.meets(20.0)
        assert not stats.meets(19.9)


class TestServerPerformance:
    def _perf(self, qps=100.0, power=200.0):
        stats = LatencyStats(p50_ms=5, p95_ms=10, p99_ms=15, mean_ms=6)
        return ServerPerformance(qps=qps, latency=stats, power_w=power)

    def test_efficiency_metrics(self):
        perf = self._perf(qps=100, power=200)
        assert perf.qps_per_watt == pytest.approx(0.5)
        assert perf.energy_per_query_j == pytest.approx(2.0)

    def test_infeasible_sentinel(self):
        bad = ServerPerformance.infeasible("over budget", power_w=50.0)
        assert not bad.feasible
        assert bad.qps == 0.0
        assert bad.qps_per_watt == 0.0
        assert math.isinf(bad.latency.p99_ms)
        assert math.isinf(bad.energy_per_query_j)
        assert "over budget" in bad.infeasible_reason
