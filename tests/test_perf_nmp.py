"""Tests for the NMP simulator and its latency/energy LUT."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.hardware import DDR4_T2, NMP_X2, NMP_X4, NMP_X8
from repro.models.ops import EmbeddingLookup, FullyConnected
from repro.perf import NmpLut, build_lut, simulate_gather_reduce

EMB = EmbeddingLookup(
    name="emb", num_tables=8, rows_per_table=3_000_000, pooling_factor=80
)
ONE_HOT = EmbeddingLookup(name="oh", pooling_factor=1, pooled=False)


class TestSimulateGatherReduce:
    def test_rank_parallelism_scales_latency(self):
        x2 = simulate_gather_reduce(EMB, 256, NMP_X2)
        x8 = simulate_gather_reduce(EMB, 256, NMP_X8)
        assert x8.latency_s < x2.latency_s
        assert x2.latency_s / x8.latency_s == pytest.approx(4.0, rel=0.2)

    def test_channel_traffic_is_pooled_outputs_only(self):
        result = simulate_gather_reduce(EMB, 64, NMP_X2)
        assert result.channel_bytes == pytest.approx(EMB.output_bytes(64))
        gathered = EMB.mem_bytes(64)
        assert result.channel_bytes < gathered / 10  # pooling 80 compresses

    def test_energy_scales_with_batch(self):
        small = simulate_gather_reduce(EMB, 32, NMP_X2)
        large = simulate_gather_reduce(EMB, 320, NMP_X2)
        assert large.energy_j == pytest.approx(10 * small.energy_j, rel=0.05)

    def test_rejects_plain_memory(self):
        with pytest.raises(ValueError, match="no NMP ranks"):
            simulate_gather_reduce(EMB, 32, DDR4_T2)

    def test_rejects_one_hot_lookup(self):
        with pytest.raises(ValueError, match="gather-and-reduce"):
            simulate_gather_reduce(ONE_HOT, 32, NMP_X2)

    def test_rejects_bad_batch(self):
        with pytest.raises(ValueError):
            simulate_gather_reduce(EMB, 0, NMP_X2)


class TestNmpLut:
    def test_lut_matches_simulation_on_grid(self):
        lut = build_lut(NMP_X4, [EMB])
        for batch in (1, 16, 256, 2048):
            direct = simulate_gather_reduce(EMB, batch, NMP_X4)
            assert lut.latency_s(EMB, batch) == pytest.approx(
                direct.latency_s, rel=1e-6
            )
            assert lut.energy_j(EMB, batch) == pytest.approx(
                direct.energy_j, rel=1e-6
            )

    @given(batch=st.integers(1, 6000))
    def test_interpolation_close_to_simulation(self, batch):
        lut = build_lut(NMP_X2, [EMB])
        direct = simulate_gather_reduce(EMB, batch, NMP_X2)
        assert lut.latency_s(EMB, batch) == pytest.approx(
            direct.latency_s, rel=0.2
        )

    @given(small=st.integers(1, 2000), factor=st.integers(2, 4))
    def test_latency_monotone_in_batch(self, small, factor):
        lut = build_lut(NMP_X2, [EMB])
        assert lut.latency_s(EMB, small * factor) >= lut.latency_s(EMB, small) - 1e-12

    def test_lazy_population_on_unknown_op(self):
        lut = NmpLut(NMP_X2)
        assert len(lut) == 0
        other = EmbeddingLookup(name="x", num_tables=2, pooling_factor=20)
        assert lut.latency_s(other, 128) > 0
        assert len(lut) == 1

    def test_rejects_non_embedding_ops(self):
        lut = NmpLut(NMP_X2)
        with pytest.raises(TypeError):
            lut.latency_s(FullyConnected(name="fc"), 8)

    def test_rejects_plain_memory(self):
        with pytest.raises(ValueError):
            NmpLut(DDR4_T2)
