"""Integration: offline profile -> online calibration -> provisioning.

Exercises the complete Fig. 9 flow including the online stage this
repo implements beyond the characterization benches: the efficiency
table is profiled offline (closed form), re-measured online against
sampled traffic (DES), and the calibrated table drives the LP
provisioner.
"""

from __future__ import annotations

import pytest

from repro.cluster import HerculesClusterScheduler, ClusterManager, synchronous_traces
from repro.hardware import SERVER_TYPES
from repro.models import build_model
from repro.scheduling import OfflineProfiler, OnlineCalibrator


@pytest.fixture(scope="module")
def offline_table():
    profiler = OfflineProfiler()
    return profiler.profile(
        [SERVER_TYPES["T2"], SERVER_TYPES["T3"]], [build_model("DLRM-RMC1")]
    )


class TestOnlinePipeline:
    def test_calibrated_table_remains_usable(self, offline_table):
        calibrator = OnlineCalibrator(duration_s=6.0, sla_slack=1.2, seed=11)
        online_table = calibrator.calibrate(offline_table)
        assert set(online_table.entries) == set(offline_table.entries)
        for key, tup in online_table.entries.items():
            assert tup.feasible
            offline = offline_table.entries[key]
            # Calibration can only back the rate off, never inflate it
            # beyond measurement noise.
            assert tup.qps <= offline.qps * 1.1

    def test_provisioning_with_calibrated_table(self, offline_table):
        calibrator = OnlineCalibrator(duration_s=6.0, sla_slack=1.2, seed=13)
        online_table = calibrator.calibrate(offline_table)
        fleet = {"T2": 70, "T3": 15}
        traces = synchronous_traces({"DLRM-RMC1": 15_000.0})
        manager = ClusterManager(
            HerculesClusterScheduler(online_table, fleet),
            interval_minutes=60.0,
            over_provision=None,  # estimate R from the trace history
        )
        day = manager.run_day(traces)
        assert not day.any_shortfall
        assert day.worst_coverage_margin >= 1.0

    def test_calibration_preserves_ranking(self, offline_table):
        """Online measurement must not flip the NMP-over-CPU ranking."""
        calibrator = OnlineCalibrator(duration_s=6.0, sla_slack=1.2, seed=17)
        online_table = calibrator.calibrate(offline_table)
        offline_rank = [
            t.server_name for t in offline_table.rank_servers("DLRM-RMC1")
        ]
        online_rank = [
            t.server_name for t in online_table.rank_servers("DLRM-RMC1")
        ]
        assert offline_rank == online_rank == ["T3", "T2"]
