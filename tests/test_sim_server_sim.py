"""Tests for the discrete-event server simulator."""

from __future__ import annotations

import pytest

from repro.models import ModelVariant, build_model, partition_model
from repro.plans import ExecutionPlan, Placement
from repro.sim import (
    DiscreteEventServerSim,
    Query,
    QueryWorkload,
    SimStage,
    StageMode,
    simulate,
)
from repro.sim.server_sim import _split


class TestSplit:
    def test_exact_division(self):
        assert _split(512, 256) == [256, 256]

    def test_remainder(self):
        assert _split(300, 128) == [128, 128, 44]

    def test_small_query(self):
        assert _split(5, 256) == [5]

    def test_invalid_chunk(self):
        with pytest.raises(ValueError):
            _split(10, 0)


def _one_stage(units=2, mode=StageMode.SPLIT, chunk=100, fuse=0, service=0.01):
    return SimStage(
        name="inference",
        units=units,
        mode=mode,
        chunk_items=chunk,
        fuse_items=fuse,
        latency_fn=lambda items: service,
    )


class TestDiscreteEventServerSim:
    def test_single_query_latency_is_service_time(self):
        sim = DiscreteEventServerSim([_one_stage(service=0.02)])
        queries = [Query(query_id=0, arrival_s=0.0, size=50)]
        result = sim.run(queries)
        assert result.completed == 1
        assert result.latencies_s[0] == pytest.approx(0.02)

    def test_split_query_uses_parallel_units(self):
        # 200 items -> 2 chunks on 2 units: one service time total.
        sim = DiscreteEventServerSim([_one_stage(units=2, chunk=100, service=0.05)])
        queries = [Query(query_id=0, arrival_s=0.0, size=200)]
        result = sim.run(queries)
        assert result.latencies_s[0] == pytest.approx(0.05)

    def test_split_query_serializes_on_one_unit(self):
        sim = DiscreteEventServerSim([_one_stage(units=1, chunk=100, service=0.05)])
        queries = [Query(query_id=0, arrival_s=0.0, size=200)]
        result = sim.run(queries)
        assert result.latencies_s[0] == pytest.approx(0.10)

    def test_queueing_delay_under_contention(self):
        sim = DiscreteEventServerSim([_one_stage(units=1, chunk=100, service=0.05)])
        queries = [
            Query(query_id=i, arrival_s=0.0, size=50) for i in range(4)
        ]
        result = sim.run(queries)
        assert result.latencies_s.max() == pytest.approx(0.20)

    def test_fusion_merges_queued_queries(self):
        captured = []

        def latency_fn(items):
            captured.append(items)
            return 0.05

        stage = SimStage(
            name="inference",
            units=1,
            mode=StageMode.FUSE,
            chunk_items=1,
            fuse_items=300,
            latency_fn=latency_fn,
        )
        sim = DiscreteEventServerSim([stage])
        queries = [Query(query_id=i, arrival_s=0.0, size=100) for i in range(3)]
        result = sim.run(queries)
        # First batch grabs the head query; once the unit frees, the
        # remaining two fuse into one 200-item batch.
        assert captured[0] == 100
        assert 200 in captured
        assert result.completed == 3

    def test_two_stage_pipeline(self):
        stages = [
            _one_stage(units=1, chunk=100, service=0.01),
            SimStage(
                name="dense",
                units=1,
                mode=StageMode.SPLIT,
                chunk_items=100,
                fuse_items=0,
                latency_fn=lambda items: 0.02,
            ),
        ]
        sim = DiscreteEventServerSim(stages)
        queries = [Query(query_id=0, arrival_s=0.0, size=80)]
        result = sim.run(queries)
        assert result.latencies_s[0] == pytest.approx(0.03)

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            DiscreteEventServerSim([_one_stage()]).run([])

    def test_no_stages_rejected(self):
        with pytest.raises(ValueError):
            DiscreteEventServerSim([])


class TestDesVsAnalytical:
    """The DES validates the closed-form evaluator (same plan, load)."""

    @pytest.mark.parametrize("load_fraction", [0.3, 0.6])
    def test_cpu_model_based_agreement(
        self, t2_evaluator, rmc1_partitioned, rmc1_workload, load_fraction
    ):
        plan = ExecutionPlan(
            Placement.CPU_MODEL_BASED, threads=10, cores_per_thread=2, batch_size=256
        )
        timings = t2_evaluator.plan_timings(rmc1_partitioned, rmc1_workload, plan)
        qps = timings.capacity_items_s / rmc1_workload.mean_size * load_fraction
        analytic = t2_evaluator.perf_at(timings, rmc1_workload, qps)
        des = simulate(
            t2_evaluator,
            rmc1_partitioned,
            rmc1_workload,
            plan,
            arrival_qps=qps,
            duration_s=15.0,
            seed=5,
        )
        assert des.qps == pytest.approx(qps, rel=0.1)
        # Tail latency within 2x band (queueing formulas are approximations).
        assert des.latency.p99_ms < 2.5 * analytic.latency.p99_ms
        assert analytic.latency.p99_ms < 4.0 * des.latency.p99_ms
        assert des.power_w == pytest.approx(analytic.power_w, rel=0.15)

    def test_gpu_fusion_des_runs(self, t7_evaluator):
        model = build_model("DLRM-RMC3", ModelVariant.SMALL)
        wl = QueryWorkload.for_model(model.config.mean_query_size)
        pm = partition_model(model, device_memory_bytes=16e9, co_location=2)
        plan = ExecutionPlan(
            Placement.GPU_MODEL_BASED, threads=2, fusion_limit=2048
        )
        perf = simulate(
            t7_evaluator, pm, wl, plan, arrival_qps=2000, duration_s=8.0, seed=1
        )
        assert perf.qps == pytest.approx(2000, rel=0.15)
        assert perf.gpu_util > 0
        assert perf.latency.p99_ms < 100.0
