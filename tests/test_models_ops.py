"""Unit tests for the operator taxonomy (cost functions and validation)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.models.ops import (
    Activation,
    Attention,
    Concat,
    EmbeddingLookup,
    FeatureInteraction,
    FullyConnected,
    GRUCell,
    MLP,
    OpKind,
)

ALL_OPS = [
    EmbeddingLookup(name="emb", num_tables=4, rows_per_table=1000, pooling_factor=20),
    EmbeddingLookup(name="one_hot", pooling_factor=1, pooled=False),
    FullyConnected(name="fc", in_dim=64, out_dim=32),
    MLP(name="mlp", layer_dims=(64, 128, 32)),
    FeatureInteraction(name="inter", num_vectors=5, dim=16),
    Attention(name="attn", seq_len=50, dim=16),
    GRUCell(name="gru", seq_len=10, hidden=16),
    Concat(name="cat", total_dim=96),
    Activation(name="relu", dim=32),
]


@pytest.mark.parametrize("op", ALL_OPS, ids=lambda o: o.name)
def test_costs_are_non_negative(op):
    for items in (1, 7, 256):
        assert op.flops(items) >= 0.0
        assert op.mem_bytes(items) > 0.0
        assert op.input_bytes(items) >= 0.0
        assert op.output_bytes(items) > 0.0
        assert op.weight_bytes >= 0.0


@pytest.mark.parametrize("op", ALL_OPS, ids=lambda o: o.name)
@given(small=st.integers(1, 500), factor=st.integers(2, 8))
def test_costs_monotone_in_items(op, small, factor):
    large = small * factor
    assert op.flops(large) >= op.flops(small)
    assert op.mem_bytes(large) >= op.mem_bytes(small)
    assert op.input_bytes(large) >= op.input_bytes(small)
    assert op.output_bytes(large) > op.output_bytes(small)


def test_embedding_kinds():
    pooled = EmbeddingLookup(name="e", pooling_factor=40, pooled=True)
    assert pooled.kind is OpKind.EMBEDDING_GATHER_REDUCE
    one_hot = EmbeddingLookup(name="e", pooling_factor=1, pooled=False)
    assert one_hot.kind is OpKind.EMBEDDING_GATHER
    # Pooling factor 1 with pooled=True is still effectively a gather.
    trivial = EmbeddingLookup(name="e", pooling_factor=1, pooled=True)
    assert trivial.kind is OpKind.EMBEDDING_GATHER
    assert pooled.kind.is_sparse and one_hot.kind.is_sparse
    assert not FullyConnected(name="f").kind.is_sparse


def test_embedding_lookup_counts_scale_with_pooling():
    base = EmbeddingLookup(name="e", num_tables=2, pooling_factor=10)
    double = EmbeddingLookup(name="e", num_tables=2, pooling_factor=20)
    assert double.lookups(8) == pytest.approx(2 * base.lookups(8))
    assert double.mem_bytes(8) == pytest.approx(2 * base.mem_bytes(8))


def test_pooled_embedding_output_independent_of_pooling():
    narrow = EmbeddingLookup(name="e", pooling_factor=10, pooled=True)
    wide = EmbeddingLookup(name="e", pooling_factor=100, pooled=True)
    assert narrow.output_bytes(16) == pytest.approx(wide.output_bytes(16))


def test_unpooled_embedding_output_scales_with_pooling():
    narrow = EmbeddingLookup(name="e", pooling_factor=10, pooled=False)
    wide = EmbeddingLookup(name="e", pooling_factor=100, pooled=False)
    assert wide.output_bytes(16) == pytest.approx(10 * narrow.output_bytes(16))


def test_weight_shared_embedding_has_no_footprint():
    op = EmbeddingLookup(name="hist", rows_per_table=10_000, weight_shared=True)
    assert op.weight_bytes == 0.0
    assert op.mem_bytes(4) > 0.0  # still moves bytes when read


def test_fc_flops_formula():
    fc = FullyConnected(name="fc", in_dim=10, out_dim=20)
    assert fc.flops(3) == pytest.approx(2 * 3 * 10 * 20)
    assert fc.weight_bytes == pytest.approx((10 * 20 + 20) * 4)


def test_mlp_equals_stacked_fcs():
    mlp = MLP(name="m", layer_dims=(8, 16, 4))
    fc1 = FullyConnected(name="a", in_dim=8, out_dim=16)
    fc2 = FullyConnected(name="b", in_dim=16, out_dim=4)
    assert mlp.flops(5) == pytest.approx(fc1.flops(5) + fc2.flops(5))
    assert mlp.weight_bytes == pytest.approx(fc1.weight_bytes + fc2.weight_bytes)
    assert mlp.in_dim == 8 and mlp.out_dim == 4


def test_interaction_pair_count():
    op = FeatureInteraction(name="i", num_vectors=11, dim=32)
    assert op.num_pairs == 55
    assert op.out_dim == 55 + 32


def test_attention_history_is_read_once_per_batch():
    """The user history is shared by a query's items (cache-resident)."""
    op = Attention(name="a", seq_len=400, dim=32)
    per_item_small = op.mem_bytes(1)
    per_item_large = op.mem_bytes(1000) / 1000
    # Amortization: per-item memory cost shrinks with batch size.
    assert per_item_large < per_item_small


def test_gru_is_mostly_sequential():
    op = GRUCell(name="g", seq_len=10, hidden=8)
    assert op.parallel_fraction < 0.5


@pytest.mark.parametrize(
    "bad",
    [
        lambda: EmbeddingLookup(name="", num_tables=1),
        lambda: EmbeddingLookup(name="e", num_tables=0),
        lambda: EmbeddingLookup(name="e", pooling_factor=0.5),
        lambda: EmbeddingLookup(name="e", embedding_dim=0),
        lambda: FullyConnected(name="f", in_dim=0),
        lambda: MLP(name="m", layer_dims=(8,)),
        lambda: MLP(name="m", layer_dims=(8, 0)),
        lambda: FeatureInteraction(name="i", num_vectors=1),
        lambda: Attention(name="a", seq_len=0),
        lambda: GRUCell(name="g", hidden=0),
        lambda: Concat(name="c", total_dim=0),
        lambda: Activation(name="r", dim=0),
        lambda: FullyConnected(name="f", parallel_fraction=1.5),
    ],
)
def test_invalid_operators_rejected(bad):
    with pytest.raises(ValueError):
        bad()
