"""Tests for query-size / pooling distributions and workloads."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import (
    PoolingFactorDistribution,
    Query,
    QuerySizeDistribution,
    QueryWorkload,
)


class TestQuerySizeDistribution:
    def test_sample_mean_close_to_target(self):
        dist = QuerySizeDistribution(mean=120.0, sigma=0.8)
        rng = np.random.default_rng(7)
        samples = dist.sample(rng, 200_000)
        assert samples.mean() == pytest.approx(120.0, rel=0.05)

    def test_samples_respect_clipping(self):
        dist = QuerySizeDistribution(mean=100.0, min_size=10, max_size=500)
        rng = np.random.default_rng(1)
        samples = dist.sample(rng, 10_000)
        assert samples.min() >= 10 and samples.max() <= 500

    def test_heavy_tail_shape(self):
        """Fig. 2(b): p99 far above the median."""
        dist = QuerySizeDistribution(mean=120.0, sigma=0.8)
        assert dist.percentile(99) > 4 * dist.percentile(50)
        assert dist.percentile(75) > dist.percentile(50)

    @given(p_low=st.floats(1, 50), p_high=st.floats(51, 99))
    def test_percentiles_monotone(self, p_low, p_high):
        dist = QuerySizeDistribution()
        assert dist.percentile(p_low) <= dist.percentile(p_high)

    def test_percentile_matches_empirical(self):
        dist = QuerySizeDistribution(mean=150.0, sigma=0.7)
        rng = np.random.default_rng(3)
        samples = dist.sample(rng, 300_000)
        for p in (50, 95, 99):
            assert dist.percentile(p) == pytest.approx(
                float(np.percentile(samples, p)), rel=0.08
            )

    def test_validation(self):
        with pytest.raises(ValueError):
            QuerySizeDistribution(mean=0)
        with pytest.raises(ValueError):
            QuerySizeDistribution(min_size=10, max_size=5)
        with pytest.raises(ValueError):
            QuerySizeDistribution().percentile(0)


class TestPoolingFactorDistribution:
    def test_shape_and_bounds(self):
        dist = PoolingFactorDistribution(mean=80.0, num_tables=15)
        rng = np.random.default_rng(11)
        samples = dist.sample(rng, queries=500)
        assert samples.shape == (500, 15)
        assert (samples >= 1.0).all()

    def test_table_means_vary(self):
        """Fig. 2(c): per-table pooling means spread widely."""
        dist = PoolingFactorDistribution(mean=80.0, spread=0.5, num_tables=15)
        rng = np.random.default_rng(5)
        means = dist.table_means(rng)
        assert means.max() / means.min() > 2.0

    def test_zero_variance_degenerates(self):
        dist = PoolingFactorDistribution(mean=40.0, cv=0.0, spread=0.0, num_tables=4)
        rng = np.random.default_rng(0)
        samples = dist.sample(rng, queries=3)
        assert np.allclose(samples, 40.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            PoolingFactorDistribution(mean=0.5)
        with pytest.raises(ValueError):
            PoolingFactorDistribution(num_tables=0)


class TestQuery:
    def test_validation(self):
        with pytest.raises(ValueError):
            Query(query_id=0, arrival_s=0.0, size=0)
        with pytest.raises(ValueError):
            Query(query_id=0, arrival_s=-1.0, size=5)
        with pytest.raises(ValueError):
            Query(query_id=0, arrival_s=0.0, size=5, pooling_scale=0.0)


class TestQueryWorkload:
    def test_for_model_matches_mean(self):
        wl = QueryWorkload.for_model(150)
        assert wl.mean_size == 150.0

    def test_tail_size_uses_distribution(self):
        wl = QueryWorkload.for_model(100)
        assert wl.tail_size(99) > wl.tail_size(50) >= 1
