"""Tests for table/series formatting."""

from __future__ import annotations

import pytest

from repro.analysis import format_series, format_table


class TestFormatTable:
    def test_basic_alignment(self):
        out = format_table(
            ["name", "qps"], [["T2", 1234.5], ["T10", 9.87]], precision=1
        )
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert "1,234.5" in out
        assert "9.9" in out

    def test_title_and_bools(self):
        out = format_table(["ok"], [[True], [False]], title="Check")
        assert out.splitlines()[0] == "Check"
        assert "yes" in out and "no" in out

    def test_nan_rendered_as_dash(self):
        out = format_table(["v"], [[float("nan")]])
        assert "-" in out.splitlines()[-1]

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_scientific_for_extremes(self):
        out = format_table(["v"], [[1.5e9]])
        assert "e+" in out


class TestFormatSeries:
    def test_bars_scale_with_value(self):
        out = format_series([(0, 10.0), (1, 20.0)], width=10)
        lines = out.splitlines()
        assert lines[-1].count("#") == 10
        assert lines[-2].count("#") == 5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            format_series([])
