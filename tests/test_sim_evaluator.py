"""Tests for the closed-form steady-state evaluator."""

from __future__ import annotations

import math

import pytest

from repro.hardware import SERVER_TYPES
from repro.models import build_model, partition_model, ModelVariant
from repro.plans import ExecutionPlan, Placement
from repro.sim import QueryWorkload, ServerEvaluator


def cpu_plan(threads=10, cores=2, batch=256):
    return ExecutionPlan(
        Placement.CPU_MODEL_BASED,
        threads=threads,
        cores_per_thread=cores,
        batch_size=batch,
    )


class TestCpuModelBased:
    def test_timings_have_positive_capacity(
        self, t2_evaluator, rmc1_partitioned, rmc1_workload
    ):
        t = t2_evaluator.plan_timings(rmc1_partitioned, rmc1_workload, cpu_plan())
        assert t.capacity_items_s > 0
        assert t.cpu_core_s_per_item > 0
        assert t.gpu_busy_s_per_item == 0
        assert len(t.stages) == 1

    def test_memory_bound_capacity_respects_bandwidth(
        self, t2_evaluator, rmc1_partitioned, rmc1_workload
    ):
        """RMC1 is memory-dominated: aggregate gather bandwidth caps
        throughput no matter how many threads are used."""
        t = t2_evaluator.plan_timings(
            rmc1_partitioned, rmc1_workload, cpu_plan(threads=20, cores=1)
        )
        achieved = t.capacity_items_s * t.mem_bytes_per_item
        peak = SERVER_TYPES["T2"].memory.gather_bw_bytes
        assert achieved <= peak * 1.1

    def test_fewer_colocated_threads_reduce_interference(
        self, t2_evaluator, rmc1_partitioned, rmc1_workload
    ):
        """The Fig. 4 effect: 10x2 beats 20x1 for memory-dominated RMC1."""
        sla = 64.0
        p20 = t2_evaluator.latency_bounded(
            rmc1_partitioned, rmc1_workload, cpu_plan(20, 1), sla
        )
        p10 = t2_evaluator.latency_bounded(
            rmc1_partitioned, rmc1_workload, cpu_plan(10, 2), sla
        )
        assert p10.qps > p20.qps
        assert p10.qps_per_watt > p20.qps_per_watt
        assert p10.cpu_util < p20.cpu_util

    def test_plan_must_fit_cores(self, t2_evaluator, rmc1_partitioned, rmc1_workload):
        with pytest.raises(ValueError, match="does not fit"):
            t2_evaluator.plan_timings(
                rmc1_partitioned, rmc1_workload, cpu_plan(threads=21, cores=1)
            )

    def test_model_must_fit_host_memory(self, rmc1_workload):
        t1 = ServerEvaluator(SERVER_TYPES["T1"])  # 64 GB host
        big = partition_model(build_model("DIEN"))
        big_model_bytes = big.model.graph.total_weight_bytes()
        if big_model_bytes <= 64e9:
            pytest.skip("model fits; nothing to check")
        with pytest.raises(ValueError, match="GB"):
            t1.plan_timings(big, rmc1_workload, cpu_plan())


class TestQueueingModel:
    def test_latency_grows_with_load(
        self, t2_evaluator, rmc1_partitioned, rmc1_workload
    ):
        plan = cpu_plan()
        timings = t2_evaluator.plan_timings(rmc1_partitioned, rmc1_workload, plan)
        capacity_qps = timings.capacity_items_s / rmc1_workload.mean_size
        p_light = t2_evaluator.perf_at(timings, rmc1_workload, capacity_qps * 0.2)
        p_heavy = t2_evaluator.perf_at(timings, rmc1_workload, capacity_qps * 0.9)
        assert p_heavy.latency.p99_ms > p_light.latency.p99_ms
        assert p_heavy.power_w > p_light.power_w

    def test_overload_is_infeasible(
        self, t2_evaluator, rmc1_partitioned, rmc1_workload
    ):
        plan = cpu_plan()
        timings = t2_evaluator.plan_timings(rmc1_partitioned, rmc1_workload, plan)
        capacity_qps = timings.capacity_items_s / rmc1_workload.mean_size
        perf = t2_evaluator.perf_at(timings, rmc1_workload, capacity_qps * 1.2)
        assert not perf.feasible
        assert "overloaded" in perf.infeasible_reason

    def test_percentiles_ordered(self, t2_evaluator, rmc1_partitioned, rmc1_workload):
        perf = t2_evaluator.evaluate(
            rmc1_partitioned, rmc1_workload, cpu_plan(), arrival_qps=800
        )
        lat = perf.latency
        assert lat.p50_ms <= lat.p95_ms <= lat.p99_ms


class TestLatencyBounded:
    def test_result_meets_sla(self, t2_evaluator, rmc1_partitioned, rmc1_workload):
        perf = t2_evaluator.latency_bounded(
            rmc1_partitioned, rmc1_workload, cpu_plan(), sla_ms=64.0
        )
        assert perf.feasible
        assert perf.latency.p99_ms <= 64.0

    def test_monotone_in_sla(self, t2_evaluator, rmc1_partitioned, rmc1_workload):
        plan = cpu_plan()
        qps = [
            t2_evaluator.latency_bounded(
                rmc1_partitioned, rmc1_workload, plan, sla_ms=sla
            ).qps
            for sla in (16.0, 64.0, 256.0)
        ]
        assert qps[0] <= qps[1] <= qps[2]

    def test_impossible_sla_is_infeasible(
        self, t2_evaluator, rmc1_partitioned, rmc1_workload
    ):
        perf = t2_evaluator.latency_bounded(
            rmc1_partitioned, rmc1_workload, cpu_plan(), sla_ms=0.01
        )
        assert not perf.feasible

    def test_power_budget_constrains_throughput(
        self, t2_evaluator, rmc1_partitioned, rmc1_workload
    ):
        plan = cpu_plan()
        free = t2_evaluator.latency_bounded(
            rmc1_partitioned, rmc1_workload, plan, sla_ms=64.0
        )
        capped = t2_evaluator.latency_bounded(
            rmc1_partitioned,
            rmc1_workload,
            plan,
            sla_ms=64.0,
            power_budget_w=free.power_w * 0.9,
        )
        assert capped.qps < free.qps
        assert capped.power_w <= free.power_w * 0.9 + 1e-6


class TestNmpServer:
    def test_nmp_speeds_up_multi_hot_models(
        self, t2_evaluator, t3_evaluator, rmc1_partitioned, rmc1_workload
    ):
        plan = cpu_plan()
        base = t2_evaluator.latency_bounded(
            rmc1_partitioned, rmc1_workload, plan, sla_ms=20.0
        )
        nmp = t3_evaluator.latency_bounded(
            rmc1_partitioned, rmc1_workload, plan, sla_ms=20.0
        )
        assert nmp.qps > 1.5 * base.qps

    def test_nmp_does_not_help_one_hot_models(self, t2_evaluator, t3_evaluator):
        model = build_model("DIN")
        pm = partition_model(model)
        wl = QueryWorkload.for_model(model.config.mean_query_size)
        # Small batches: DIN's attention makes large per-core batches
        # blow the SLA regardless of memory system.
        plan = cpu_plan(batch=32)
        base = t2_evaluator.latency_bounded(pm, wl, plan, sla_ms=100.0)
        nmp = t3_evaluator.latency_bounded(pm, wl, plan, sla_ms=100.0)
        assert nmp.qps == pytest.approx(base.qps, rel=0.1)
        # ... but pays the NMP idle-power tax (Fig. 15b).
        assert nmp.qps_per_watt < base.qps_per_watt


class TestSdPipeline:
    def test_pipeline_stages(self, t2_evaluator, rmc1_partitioned, rmc1_workload):
        plan = ExecutionPlan(
            Placement.CPU_SD_PIPELINE,
            batch_size=256,
            sparse_threads=4,
            sparse_cores=2,
            dense_threads=8,
        )
        t = t2_evaluator.plan_timings(rmc1_partitioned, rmc1_workload, plan)
        names = [s.name for s in t.stages]
        assert names == ["sparse", "dense"]
        assert t.capacity_items_s > 0


class TestGpuPlacements:
    def test_gpu_model_based_small_model(self, t7_evaluator, rmc1_workload):
        model = build_model("DLRM-RMC1", ModelVariant.SMALL)
        pm = partition_model(model, device_memory_bytes=16e9, co_location=2)
        plan = ExecutionPlan(
            Placement.GPU_MODEL_BASED, threads=2, fusion_limit=1024
        )
        t = t7_evaluator.plan_timings(pm, rmc1_workload, plan)
        names = [s.name for s in t.stages]
        assert names == ["loading", "inference"]
        assert t.gpu_busy_s_per_item > 0
        assert t.fill_items == 1024

    def test_gpu_model_based_requires_hot_partition(
        self, t7_evaluator, rmc1_partitioned, rmc1_workload
    ):
        plan = ExecutionPlan(Placement.GPU_MODEL_BASED, threads=1)
        with pytest.raises(ValueError, match="hot-sparse"):
            t7_evaluator.plan_timings(rmc1_partitioned, rmc1_workload, plan)

    def test_cold_path_requires_host_threads(self, t7_evaluator, rmc1_workload):
        model = build_model("DLRM-RMC2")  # 38 GB: never fully hot
        pm = partition_model(model, device_memory_bytes=16e9, co_location=1)
        assert pm.cold_miss_rate > 0
        plan = ExecutionPlan(Placement.GPU_MODEL_BASED, threads=1, sparse_threads=0)
        with pytest.raises(ValueError, match="sparse_threads"):
            t7_evaluator.plan_timings(pm, rmc1_workload, plan)

    def test_gpu_memory_capacity_enforced(self, t7_evaluator, rmc1_workload):
        model = build_model("DLRM-RMC1")  # 3.8 GB per copy
        pm = partition_model(model, device_memory_bytes=16e9, co_location=1)
        plan = ExecutionPlan(Placement.GPU_MODEL_BASED, threads=8)
        with pytest.raises(ValueError, match="device memory"):
            t7_evaluator.plan_timings(pm, rmc1_workload, plan)

    def test_gpu_sd_stages(self, t7_evaluator, rmc1_partitioned, rmc1_workload):
        plan = ExecutionPlan(
            Placement.GPU_SD,
            threads=2,
            fusion_limit=2048,
            sparse_threads=8,
            sparse_cores=2,
            batch_size=256,
        )
        t = t7_evaluator.plan_timings(rmc1_partitioned, rmc1_workload, plan)
        names = [s.name for s in t.stages]
        assert names == ["sparse", "loading", "inference"]

    def test_gpu_placement_needs_gpu(self, t2_evaluator, rmc1_partitioned, rmc1_workload):
        plan = ExecutionPlan(
            Placement.GPU_SD,
            threads=1,
            sparse_threads=2,
            fusion_limit=512,
        )
        with pytest.raises(ValueError, match="does not fit"):
            t2_evaluator.plan_timings(rmc1_partitioned, rmc1_workload, plan)

    def test_query_fusion_improves_gpu_throughput(self, t7_evaluator, rmc1_workload):
        """The Fig. 6 effect: fusing queries into large batches raises
        latency-bounded throughput for compute-heavy models."""
        model = build_model("DLRM-RMC3", ModelVariant.SMALL)
        wl = QueryWorkload.for_model(model.config.mean_query_size)
        pm = partition_model(model, device_memory_bytes=16e9, co_location=1)
        no_fusion = t7_evaluator.latency_bounded(
            pm, wl, ExecutionPlan(Placement.GPU_MODEL_BASED, threads=1), sla_ms=50.0
        )
        fused = t7_evaluator.latency_bounded(
            pm,
            wl,
            ExecutionPlan(Placement.GPU_MODEL_BASED, threads=1, fusion_limit=4096),
            sla_ms=50.0,
        )
        assert fused.qps > 1.5 * no_fusion.qps
