"""Property lane for the arrival-process subsystem (``repro.traces``).

Hypothesis pins the invariants every consumer relies on:

- timestamps are non-decreasing and stay inside the process's span;
- ids are consecutive from ``first_id``;
- per-segment arrival counts conserve the configured rate (within
  Poisson concentration bounds);
- identical seeds reproduce identical streams, different seeds differ;
- a recorded trace round-trips through the CSV/JSONL writer/reader
  with exact floats.

Unit tests cover the ``--arrivals`` grammar, the recorded-trace
scanner, and the engine's unsorted-stream guard.
"""

from __future__ import annotations

import math
import os
import tempfile

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import QueryWorkload
from repro.sim.queries import Query
from repro.traces import (
    DiurnalProcess,
    FleetArrivals,
    MMPPProcess,
    PiecewisePoissonProcess,
    PoissonProcess,
    RecordedTrace,
    SuperposedProcess,
    parse_arrivals,
    read_trace,
    save_trace,
)

WL = QueryWorkload.for_model(80)

segments_st = st.lists(
    st.tuples(st.floats(0.0, 1500.0), st.floats(0.1, 1.5)),
    min_size=1,
    max_size=4,
)


def _assert_stream_invariants(queries, end_s, first_id=0):
    times = [q.arrival_s for q in queries]
    assert times == sorted(times)
    assert all(0.0 <= t <= end_s for t in times)
    assert [q.query_id for q in queries] == list(
        range(first_id, first_id + len(queries))
    )
    assert all(q.size >= 1 and q.pooling_scale > 0 for q in queries)


class TestPiecewisePoisson:
    @settings(max_examples=20, deadline=None)
    @given(segments=segments_st, seed=st.integers(0, 10_000))
    def test_sorted_bounded_consecutive(self, segments, seed):
        process = PiecewisePoissonProcess(WL, segments)
        queries = list(process.stream(seed=seed))
        _assert_stream_invariants(queries, process.end_s)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_segment_rate_conservation(self, seed):
        """Each segment's count concentrates around rate * duration."""
        segments = [(400.0, 2.0), (1600.0, 1.5), (200.0, 1.0)]
        process = PiecewisePoissonProcess(WL, segments)
        queries = list(process.stream(seed=seed))
        clock = 0.0
        for qps, dur in segments:
            count = sum(1 for q in queries if clock <= q.arrival_s < clock + dur)
            expected = qps * dur
            # 6-sigma Poisson bound: ~1e-9 flake probability per segment.
            assert abs(count - expected) <= 6.0 * math.sqrt(expected) + 1.0
            clock += dur

    @settings(max_examples=10, deadline=None)
    @given(segments=segments_st, seed=st.integers(0, 10_000))
    def test_seed_determinism(self, segments, seed):
        process = PiecewisePoissonProcess(WL, segments)
        a = list(process.stream(seed=seed))
        b = list(process.stream(seed=seed))
        assert a == b
        if sum(q * d for q, d in segments if q > 0 and d > 0) > 50:
            c = list(process.stream(seed=seed + 1))
            assert a != c

    def test_matches_legacy_loadgen_exactly(self):
        from repro.sim.loadgen import generate_trace

        queries = list(PoissonProcess(WL, 700.0, 3.0).stream(seed=13))
        assert queries == generate_trace(WL, 700.0, 3.0, seed=13)


class TestShapedProcesses:
    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        low=st.floats(0.0, 300.0),
        high=st.floats(500.0, 3000.0),
        dwell=st.floats(0.05, 1.0),
        duration=st.floats(0.5, 3.0),
    )
    def test_mmpp_invariants(self, seed, low, high, dwell, duration):
        process = MMPPProcess(WL, [low, high], dwell, duration)
        queries = list(process.stream(seed=seed))
        _assert_stream_invariants(queries, process.end_s)
        assert queries == list(process.stream(seed=seed))

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        noise=st.floats(0.0, 0.4),
        steps=st.integers(4, 32),
        days=st.integers(1, 2),
    )
    def test_diurnal_invariants(self, seed, noise, steps, days):
        process = DiurnalProcess(
            WL, 900.0, 4.0, steps=steps, noise=noise, days=days
        )
        queries = list(process.stream(seed=seed))
        _assert_stream_invariants(queries, process.end_s)
        assert queries == list(process.stream(seed=seed))

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_superposition_merges_and_renumbers(self, seed):
        base = PoissonProcess(WL, 400.0, 3.0)
        burst = MMPPProcess(WL, [0.0, 1500.0], [1.0, 0.2], 3.0)
        combined = SuperposedProcess([base, burst])
        queries = list(combined.stream(seed=seed))
        _assert_stream_invariants(queries, combined.end_s)
        # Superposition conserves the component draws: same count as
        # the parts streamed with the component seeds.
        parts = len(list(base.stream(seed=seed))) + len(
            list(burst.stream(seed=seed + 1))
        )
        assert len(queries) == parts

    def test_mmpp_mean_rate_is_dwell_weighted(self):
        process = MMPPProcess(WL, [100.0, 1900.0], [3.0, 1.0], 10.0)
        assert process.mean_qps == pytest.approx((100 * 3 + 1900 * 1) / 4.0)

    def test_diurnal_level_peaks_at_peak_position(self):
        process = DiurnalProcess(WL, 1000.0, 8.0, peak_position=0.5)
        assert process.level_at(0.5) == pytest.approx(1.0)
        assert process.level_at(0.0) == pytest.approx(process.trough_ratio)


class TestRecordedRoundTrip:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000), fmt=st.sampled_from(["csv", "jsonl"]))
    def test_write_read_exact(self, seed, fmt):
        source = FleetArrivals(
            {
                "A": PoissonProcess(WL, 300.0, 1.5),
                "B": MMPPProcess(WL, [50.0, 900.0], 0.3, 1.5),
            },
            seed=seed,
        )
        original = list(source)
        path = tempfile.mktemp(suffix=f".{fmt}")
        try:
            assert save_trace(path, original) == len(original)
            recorded = RecordedTrace(path)
            replayed = list(recorded)
            assert [
                (m, q.arrival_s, q.size, q.pooling_scale) for m, q in replayed
            ] == [(m, q.arrival_s, q.size, q.pooling_scale) for m, q in original]
            assert recorded.validate() == len(original)
            assert recorded.end_s == original[-1][1].arrival_s
            assert recorded.models() == ("A", "B")
        finally:
            os.unlink(path)

    def test_single_model_file_and_default_model(self):
        queries = list(PoissonProcess(WL, 500.0, 1.0).stream(seed=3))
        path = tempfile.mktemp(suffix=".csv")
        try:
            save_trace(path, queries)  # bare Query records, no model column
            with pytest.raises(ValueError, match="no model"):
                list(read_trace(path))
            pairs = list(read_trace(path, default_model="M"))
            assert [q.arrival_s for _, q in pairs] == [
                q.arrival_s for q in queries
            ]
            assert {m for m, _ in pairs} == {"M"}
        finally:
            os.unlink(path)

    def test_unsorted_file_fails_validation_and_replay(self):
        path = tempfile.mktemp(suffix=".csv")
        try:
            save_trace(
                path,
                [("M", Query(0, 1.0, 10, 1.0)), ("M", Query(1, 0.5, 10, 1.0))],
            )
            with pytest.raises(ValueError, match="regress"):
                RecordedTrace(path).validate()
        finally:
            os.unlink(path)

    def test_unknown_extension_rejected(self):
        with pytest.raises(ValueError, match="format"):
            save_trace("/tmp/trace.txt", [])

    def test_truncated_csv_row_names_file_and_line(self):
        """A ragged CSV row (truncated write, manual edit) must fail
        with the file and 1-based line number, not a bare unpack
        error deep in the scanner."""
        path = tempfile.mktemp(suffix=".csv")
        try:
            save_trace(
                path,
                [("M", Query(0, 0.5, 10, 1.0)), ("M", Query(1, 0.9, 10, 1.0))],
            )
            with open(path) as fh:
                lines = fh.readlines()
            lines[-1] = lines[-1].rsplit(",", 2)[0] + "\n"  # truncate row
            with open(path, "w") as fh:
                fh.writelines(lines)
            with pytest.raises(ValueError, match=rf"{path}:3: row has"):
                list(read_trace(path))
        finally:
            os.unlink(path)

    def test_csv_rejects_model_names_that_would_corrupt_rows(self):
        """A comma or newline in a model name would silently shift every
        column on read; the CSV writer must refuse up front (JSONL
        handles such names fine and round-trips them)."""
        queries = [("web,burst", Query(0, 0.5, 10, 1.0))]
        csv_path = tempfile.mktemp(suffix=".csv")
        try:
            with pytest.raises(ValueError, match="comma or newline"):
                save_trace(csv_path, queries)
        finally:
            if os.path.exists(csv_path):
                os.unlink(csv_path)
        jsonl_path = tempfile.mktemp(suffix=".jsonl")
        try:
            save_trace(jsonl_path, queries)
            replayed = list(read_trace(jsonl_path))
            assert [m for m, _ in replayed] == ["web,burst"]
        finally:
            os.unlink(jsonl_path)

    def test_mean_qps_single_timestamp_uses_one_second_span(self):
        """A trace whose arrivals share one timestamp has zero span;
        ``mean_qps`` must treat it as one second (documented fallback),
        not divide by a 1e-9 epsilon into a 10⁹x rate."""
        path = tempfile.mktemp(suffix=".csv")
        try:
            save_trace(
                path,
                [("M", Query(0, 2.5, 10, 1.0)), ("M", Query(1, 2.5, 12, 1.0))],
            )
            assert RecordedTrace(path).mean_qps == {"M": pytest.approx(2.0)}
        finally:
            os.unlink(path)


class TestArrivalSpecGrammar:
    @pytest.mark.parametrize(
        "spec,shapes",
        [
            ("poisson:level=0.75", ["poisson"]),
            ("mmpp:levels=0.3/2.0,dwell=1.5/0.2", ["mmpp"]),
            ("diurnal:steps=48,noise=0.15", ["diurnal"]),
            (
                "diurnal:noise=0.15+mmpp:levels=0/1.2,dwell=3/0.25",
                ["diurnal", "mmpp"],
            ),
        ],
    )
    def test_valid_specs_parse_and_build(self, spec, shapes):
        parsed = parse_arrivals(spec)
        assert [s.shape for s in parsed.sections] == shapes
        process = parsed.build(WL, peak_qps=1000.0, duration_s=4.0)
        queries = list(process.stream(seed=1))
        _assert_stream_invariants(queries, process.end_s)

    @pytest.mark.parametrize(
        "spec",
        [
            "",
            "poisson:bogus=1",
            "mmpp:dwell=1",  # missing levels
            "mmpp:levels=1/2",  # missing dwell
            "sawtooth:level=1",
            "poisson:level=0.5+",
        ],
    )
    def test_invalid_specs_raise(self, spec):
        with pytest.raises(ValueError):
            parse_arrivals(spec)

    def test_duplicate_key_raises_not_last_wins(self):
        """``mmpp:dwell=1,dwell=2`` used to silently keep the last
        value; a repeated key is always a typo and must raise."""
        for spec in (
            "mmpp:levels=1/2,dwell=1,dwell=2",
            "poisson:level=0.5,level=0.9",
            "diurnal:noise=0.1+mmpp:levels=0/1,dwell=3/0.2,levels=0/2",
        ):
            with pytest.raises(ValueError, match="duplicate"):
                parse_arrivals(spec)

    def test_diurnal_days_validated_at_build(self):
        for bad in ("diurnal:days=0", "diurnal:days=-1"):
            with pytest.raises(ValueError, match="days"):
                parse_arrivals(bad).build(WL, 1000.0, 4.0)

    def test_levels_scale_with_peak(self):
        process = parse_arrivals("poisson:level=0.5").build(WL, 2000.0, 2.0)
        assert process.mean_qps == pytest.approx(1000.0)
        absolute = parse_arrivals("poisson:qps=300").build(WL, 2000.0, 2.0)
        assert absolute.mean_qps == pytest.approx(300.0)


class TestEngineStreamGuards:
    def test_unsorted_stream_raises_in_engine(self, small_table):
        from repro.cluster.state import Allocation
        from repro.fleet import FleetSimulator, build_fleet
        from repro.models import build_model

        models = {"DLRM-RMC1": build_model("DLRM-RMC1")}
        workloads = {
            "DLRM-RMC1": QueryWorkload.for_model(
                models["DLRM-RMC1"].config.mean_query_size
            )
        }
        allocation = Allocation()
        allocation.add("T2", "DLRM-RMC1", 1)
        servers = build_fleet(allocation, small_table, models, workloads)
        sim = FleetSimulator(servers, policy="rr", sla_ms={"DLRM-RMC1": 20.0})
        bad = iter(
            [
                ("DLRM-RMC1", Query(0, 1.0, 10, 1.0)),
                ("DLRM-RMC1", Query(1, 0.5, 10, 1.0)),
            ]
        )
        with pytest.raises(ValueError, match="not sorted"):
            sim.run(bad)

    def test_empty_stream_raises(self, small_table):
        from repro.cluster.state import Allocation
        from repro.fleet import FleetSimulator, build_fleet
        from repro.models import build_model

        models = {"DLRM-RMC1": build_model("DLRM-RMC1")}
        workloads = {
            "DLRM-RMC1": QueryWorkload.for_model(
                models["DLRM-RMC1"].config.mean_query_size
            )
        }
        allocation = Allocation()
        allocation.add("T2", "DLRM-RMC1", 1)
        servers = build_fleet(allocation, small_table, models, workloads)
        sim = FleetSimulator(servers, policy="rr", sla_ms={"DLRM-RMC1": 20.0})
        with pytest.raises(ValueError, match="empty"):
            sim.run(iter([]))

    def test_end_s_not_touched_without_stochastic_faults(self, small_table):
        """The engine must not force a RecordedTrace's full-file scan
        (its ``end_s``) unless a stochastic schedule actually needs the
        draw horizon."""
        from repro.cluster.state import Allocation
        from repro.fleet import FleetSimulator, build_fleet
        from repro.models import build_model
        from repro.traces import FleetArrivals, PoissonProcess

        models = {"DLRM-RMC1": build_model("DLRM-RMC1")}
        workloads = {
            "DLRM-RMC1": QueryWorkload.for_model(
                models["DLRM-RMC1"].config.mean_query_size
            )
        }
        allocation = Allocation()
        allocation.add("T2", "DLRM-RMC1", 1)

        class _ExpensiveEnd(FleetArrivals):
            @property
            def end_s(self):
                raise AssertionError("end_s fetched without stochastic faults")

        source = _ExpensiveEnd(
            {"DLRM-RMC1": PoissonProcess(workloads["DLRM-RMC1"], 300.0, 1.0)}
        )
        servers = build_fleet(allocation, small_table, models, workloads)
        sim = FleetSimulator(servers, policy="rr", sla_ms={"DLRM-RMC1": 20.0})
        result = sim.run(source)
        assert result.total_completed > 0

    def test_stochastic_faults_need_horizon(self, small_table):
        from repro.cluster.state import Allocation
        from repro.fleet import FaultSchedule, FleetSimulator, build_fleet
        from repro.models import build_model

        models = {"DLRM-RMC1": build_model("DLRM-RMC1")}
        workloads = {
            "DLRM-RMC1": QueryWorkload.for_model(
                models["DLRM-RMC1"].config.mean_query_size
            )
        }
        allocation = Allocation()
        allocation.add("T2", "DLRM-RMC1", 2)
        servers = build_fleet(allocation, small_table, models, workloads)
        sim = FleetSimulator(
            servers,
            policy="rr",
            sla_ms={"DLRM-RMC1": 20.0},
            faults=FaultSchedule.parse("random:crash_mtbf=5"),
        )
        # A bare iterator exposes no end_s: stochastic draws would run
        # forever, so the engine must refuse actionably.
        stream = iter([("DLRM-RMC1", Query(0, 0.1, 10, 1.0))])
        with pytest.raises(ValueError, match="end_s"):
            sim.run(stream)
