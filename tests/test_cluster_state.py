"""Tests for cluster allocations and the state table."""

from __future__ import annotations

import pytest

from repro.cluster import Allocation, ClusterStateTable
from repro.plans import ExecutionPlan, Placement
from repro.scheduling import ClassificationTable, EfficiencyTuple

_PLAN = ExecutionPlan(Placement.CPU_MODEL_BASED, threads=1)


def _table() -> ClassificationTable:
    table = ClassificationTable()
    table.add(EfficiencyTuple("T2", "A", qps=1000, power_w=100, plan=_PLAN))
    table.add(EfficiencyTuple("T3", "A", qps=2000, power_w=150, plan=_PLAN))
    table.add(EfficiencyTuple("T2", "B", qps=100, power_w=90, plan=_PLAN))
    return table


class TestAllocation:
    def test_add_and_counts(self):
        alloc = Allocation()
        alloc.add("T2", "A", 3)
        alloc.add("T2", "B", 2)
        alloc.add("T3", "A", 1)
        alloc.add("T2", "A", 1)  # accumulates
        assert alloc.counts[("T2", "A")] == 4
        assert alloc.servers_of_type("T2") == 6
        assert alloc.servers_for_model("A") == 5
        assert alloc.total_servers == 7

    def test_zero_add_is_noop(self):
        alloc = Allocation()
        alloc.add("T2", "A", 0)
        assert alloc.counts == {}
        with pytest.raises(ValueError):
            alloc.add("T2", "A", -1)

    def test_capacity_and_power(self):
        table = _table()
        alloc = Allocation()
        alloc.add("T2", "A", 2)
        alloc.add("T3", "A", 1)
        assert alloc.capacity_qps(table, "A") == pytest.approx(4000)
        assert alloc.provisioned_power_w(table) == pytest.approx(350)

    def test_coverage_check(self):
        table = _table()
        alloc = Allocation()
        alloc.add("T2", "A", 2)
        assert alloc.covers(table, {"A": 2000})
        assert not alloc.covers(table, {"A": 2000}, over_provision=0.1)
        assert not alloc.covers(table, {"A": 2000, "B": 50})

    def test_fleet_check(self):
        alloc = Allocation()
        alloc.add("T2", "A", 5)
        assert alloc.respects_fleet({"T2": 5})
        assert not alloc.respects_fleet({"T2": 4})

    def test_shortfall_flag(self):
        alloc = Allocation()
        assert not alloc.has_shortfall
        alloc.shortfall["A"] = 100.0
        assert alloc.has_shortfall


class TestClusterStateTable:
    def test_transition_churn(self):
        state = ClusterStateTable(fleet={"T2": 10, "T3": 5})
        first = Allocation()
        first.add("T2", "A", 4)
        churn = state.transition_to(first)
        assert churn == {"T2": 4}
        second = Allocation()
        second.add("T2", "A", 2)
        second.add("T3", "A", 1)
        churn = state.transition_to(second)
        assert churn == {"T2": 2, "T3": 1}
        assert state.active_counts == {("T2", "A"): 2, ("T3", "A"): 1}

    def test_rejects_overallocation(self):
        state = ClusterStateTable(fleet={"T2": 2})
        alloc = Allocation()
        alloc.add("T2", "A", 3)
        with pytest.raises(ValueError, match="exceeds fleet"):
            state.transition_to(alloc)

    def test_rejects_negative_fleet(self):
        with pytest.raises(ValueError):
            ClusterStateTable(fleet={"T2": -1})
