"""Tests for intra-interval coverage validation in the cluster manager."""

from __future__ import annotations

import pytest

from repro.cluster import (
    ClusterManager,
    GreedyScheduler,
    estimate_over_provision,
    synchronous_traces,
)
from repro.plans import ExecutionPlan, Placement
from repro.scheduling import ClassificationTable, EfficiencyTuple

_PLAN = ExecutionPlan(Placement.CPU_MODEL_BASED, threads=1)


def _table() -> ClassificationTable:
    table = ClassificationTable()
    table.add(EfficiencyTuple("T2", "A", qps=1000, power_w=100, plan=_PLAN))
    table.add(EfficiencyTuple("T3", "A", qps=2500, power_w=140, plan=_PLAN))
    return table


def _manager(over_provision, interval=60.0):
    return ClusterManager(
        GreedyScheduler(_table(), {"T2": 80, "T3": 15}),
        interval_minutes=interval,
        over_provision=over_provision,
    )


class TestCoverageMargin:
    def test_adequate_r_keeps_margin_above_one(self):
        traces = synchronous_traces({"A": 20_000})
        rate = estimate_over_provision(traces, 60.0)
        day = _manager(over_provision=rate).run_day(traces)
        assert day.worst_coverage_margin >= 1.0
        assert day.intervals_underwater == 0

    def test_zero_r_goes_underwater_on_the_climb(self):
        """Without over-provisioning, the load outgrows the allocation
        inside climbing intervals -- exactly what R exists to absorb."""
        traces = synchronous_traces({"A": 20_000})
        day = _manager(over_provision=0.0, interval=120.0).run_day(traces)
        assert day.worst_coverage_margin < 1.0
        assert day.intervals_underwater > 0

    def test_margin_recorded_per_interval(self):
        traces = synchronous_traces({"A": 10_000})
        day = _manager(over_provision=0.1).run_day(traces)
        assert all(r.coverage_margin > 0 for r in day.records)

    def test_validate_minutes_validation(self):
        with pytest.raises(ValueError):
            ClusterManager(
                GreedyScheduler(_table(), {"T2": 1}), validate_minutes=0
            )
