"""Tests for the roofline operator timing models."""

from __future__ import annotations

import pytest

from repro.hardware import CPU_T2, DDR4_T2, GPU_V100, NMP_X2
from repro.models.ops import EmbeddingLookup, FullyConnected, GRUCell, MLP
from repro.perf import CpuOpModel, GpuOpModel, NmpLut
from repro.perf.opmodel import CPU_DISPATCH_OVERHEAD_S

EMB = EmbeddingLookup(name="emb", num_tables=4, pooling_factor=40, embedding_dim=32)
ONE_HOT = EmbeddingLookup(name="oh", num_tables=4, pooling_factor=1, pooled=False)
FC = FullyConnected(name="fc", in_dim=512, out_dim=512)
GRU = GRUCell(name="gru", seq_len=8, hidden=64)


@pytest.fixture(scope="module")
def cpu_ddr4():
    return CpuOpModel(CPU_T2, DDR4_T2)


@pytest.fixture(scope="module")
def cpu_nmp():
    return CpuOpModel(CPU_T2, NMP_X2, NmpLut(NMP_X2))


@pytest.fixture(scope="module")
def gpu():
    return GpuOpModel(GPU_V100)


class TestCpuOpModel:
    def test_nmp_memory_requires_lut(self):
        with pytest.raises(ValueError, match="requires an NMP LUT"):
            CpuOpModel(CPU_T2, NMP_X2)

    def test_embedding_is_memory_bound(self, cpu_ddr4):
        timing = cpu_ddr4.op_timing(EMB, 256)
        assert timing.memory_bound
        assert timing.latency_s >= timing.memory_s

    def test_fc_is_compute_bound_at_large_batch(self, cpu_ddr4):
        timing = cpu_ddr4.op_timing(FC, 1024)
        assert not timing.memory_bound

    def test_overhead_amortizes_with_batch(self, cpu_ddr4):
        small = cpu_ddr4.op_timing(FC, 1).latency_s
        large = cpu_ddr4.op_timing(FC, 512).latency_s / 512
        assert large < small
        assert small >= CPU_DISPATCH_OVERHEAD_S

    def test_bandwidth_share_slows_memory_ops(self, cpu_ddr4):
        full = cpu_ddr4.op_timing(EMB, 256, bw_fraction=1.0)
        half = cpu_ddr4.op_timing(EMB, 256, bw_fraction=0.5)
        assert half.memory_s == pytest.approx(2 * full.memory_s)

    def test_nmp_accelerates_pooled_lookups_only(self, cpu_ddr4, cpu_nmp):
        pooled_host = cpu_ddr4.op_timing(EMB, 512).latency_s
        pooled_nmp = cpu_nmp.op_timing(EMB, 512).latency_s
        assert pooled_nmp < pooled_host
        one_hot_host = cpu_ddr4.op_timing(ONE_HOT, 512).latency_s
        one_hot_nmp = cpu_nmp.op_timing(ONE_HOT, 512).latency_s
        # One-hot gathers behave like plain DRAM (paper Section VI-B).
        assert one_hot_nmp == pytest.approx(one_hot_host, rel=0.05)

    def test_gru_pays_sequential_penalty(self, cpu_ddr4):
        equivalent_mlp = MLP(name="m", layer_dims=(64, 384, 64))
        gru_time = cpu_ddr4.op_timing(GRU, 64).compute_s
        assert gru_time > 0

    def test_invalid_arguments(self, cpu_ddr4):
        with pytest.raises(ValueError):
            cpu_ddr4.op_timing(FC, 0)
        with pytest.raises(ValueError):
            cpu_ddr4.op_timing(FC, 8, bw_fraction=0.0)


class TestGpuOpModel:
    def test_colocation_divides_throughput(self, gpu):
        alone = gpu.op_timing(FC, 2048, co_located=1)
        shared = gpu.op_timing(FC, 2048, co_located=4)
        assert shared.compute_s == pytest.approx(4 * alone.compute_s)

    def test_batch_efficiency_improves_per_item_time(self, gpu):
        tiny = gpu.op_timing(FC, 8).latency_s / 8
        big = gpu.op_timing(FC, 8192).latency_s / 8192
        assert big < tiny / 4

    def test_kernel_launch_floor(self, gpu):
        timing = gpu.op_timing(FC, 1)
        assert timing.latency_s >= GPU_V100.kernel_launch_s

    def test_invalid_arguments(self, gpu):
        with pytest.raises(ValueError):
            gpu.op_timing(FC, 8, co_located=0)
