"""Smoke tests for the runnable examples.

The quickstart runs end-to-end (it is fast); the heavier examples are
compiled and checked for a main() entry so they cannot silently rot.
"""

from __future__ import annotations

import pathlib
import py_compile
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"


def test_examples_directory_complete():
    names = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert {
        "quickstart.py",
        "server_search.py",
        "cluster_serving.py",
        "model_evolution.py",
        "fleet_serving.py",
        "fleet_faults.py",
        "fleet_bursty_trace.py",
        "fleet_sharded_replay.py",
        "fault_aware_provisioning.py",
        "carbon_aware_fleet.py",
    } <= names


@pytest.mark.parametrize(
    "name",
    [
        "quickstart.py",
        "server_search.py",
        "cluster_serving.py",
        "model_evolution.py",
        "fleet_serving.py",
        "fleet_faults.py",
        "fleet_bursty_trace.py",
        "fleet_sharded_replay.py",
        "fault_aware_provisioning.py",
        "carbon_aware_fleet.py",
    ],
)
def test_examples_compile(name):
    py_compile.compile(str(EXAMPLES_DIR / name), doraise=True)


def test_quickstart_runs_end_to_end():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert "Hercules improvement" in result.stdout
    assert "SLA holds" in result.stdout


def test_server_search_runs_end_to_end():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "server_search.py"), "DLRM-RMC3", "T2"],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert "Per-placement optima" in result.stdout
