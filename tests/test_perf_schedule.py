"""Tests for list scheduling of operator workers (Fig. 5 behaviour)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.models import build_model
from repro.models.graph import Graph, Node
from repro.models.ops import FullyConnected
from repro.perf import list_schedule


def _chain(n: int) -> Graph:
    g = Graph("chain")
    prev: tuple[str, ...] = ()
    for i in range(n):
        g.add(Node(op=FullyConnected(name=f"n{i}"), deps=prev))
        prev = (f"n{i}",)
    return g


def _fan(n: int) -> Graph:
    g = Graph("fan")
    for i in range(n):
        g.add(Node(op=FullyConnected(name=f"n{i}")))
    return g


def test_chain_gains_nothing_from_workers():
    g = _chain(6)
    lat = {f"n{i}": 1.0 for i in range(6)}
    serial = list_schedule(g, lat, 1)
    parallel = list_schedule(g, lat, 4)
    assert serial.makespan_s == pytest.approx(6.0)
    assert parallel.makespan_s == pytest.approx(6.0)
    assert parallel.idle_fraction == pytest.approx(0.75)


def test_fan_parallelizes_perfectly():
    g = _fan(8)
    lat = {f"n{i}": 1.0 for i in range(8)}
    r = list_schedule(g, lat, 4)
    assert r.makespan_s == pytest.approx(2.0)
    assert r.idle_fraction == pytest.approx(0.0)
    assert r.speedup_vs_serial == pytest.approx(4.0)


@given(
    workers=st.integers(1, 8),
    latencies=st.lists(st.floats(0.01, 5.0), min_size=1, max_size=12),
)
def test_makespan_bounds(workers, latencies):
    """Greedy schedules obey the classical bounds for any DAG shape."""
    g = _fan(len(latencies))
    lat = {f"n{i}": latencies[i] for i in range(len(latencies))}
    r = list_schedule(g, lat, workers)
    total = sum(latencies)
    assert r.makespan_s <= total + 1e-9  # never worse than serial
    assert r.makespan_s >= total / workers - 1e-9  # work conservation
    assert r.makespan_s >= max(latencies) - 1e-9  # longest op
    assert r.busy_s == pytest.approx(total)


def test_dependencies_respected():
    g = Graph("g")
    g.add(Node(op=FullyConnected(name="a")))
    g.add(Node(op=FullyConnected(name="b"), deps=("a",)))
    r = list_schedule(g, {"a": 2.0, "b": 1.0}, 4)
    placements = {p.name: p for p in r.nodes}
    assert placements["b"].start_s >= placements["a"].finish_s - 1e-12


def test_fig5_idle_grows_with_workers():
    """Fig. 5(c): operator dependencies leave parallel workers idle.

    Measured with real CPU op timings at batch 256, as in the paper.
    MT-WnD's four independent task towers pack well, so only a weak
    bound applies there; the dependency-chained models idle heavily.
    """
    from repro.hardware import CPU_T2, DDR4_T2
    from repro.perf import CpuOpModel

    cpu = CpuOpModel(CPU_T2, DDR4_T2)
    for name in ("DLRM-RMC1", "DLRM-RMC3", "MT-WnD", "DIN", "DIEN"):
        graph = build_model(name).graph
        lat = {n.name: cpu.op_timing(n.op, 256).latency_s for n in graph}
        idles = [
            list_schedule(graph, lat, workers).idle_fraction
            for workers in (1, 2, 4)
        ]
        assert idles[0] == pytest.approx(0.0)
        assert idles[-1] >= idles[1] - 1e-9
        if name != "MT-WnD":  # independent towers pack near-perfectly
            assert idles[-1] > 0.2


def test_missing_latency_rejected():
    g = _fan(2)
    with pytest.raises(ValueError, match="missing latencies"):
        list_schedule(g, {"n0": 1.0}, 2)


def test_zero_workers_rejected():
    with pytest.raises(ValueError):
        list_schedule(_fan(1), {"n0": 1.0}, 0)
