"""Fig. 14: Hercules task scheduler vs the DeepRecSys+Baymax baseline.

For every Table I model on the four headline server types (T2 CPU, T3
CPU+NMP, T7 CPU+GPU, T8 CPU+NMP+GPU), runs both schedulers at the
model's SLA target and reports latency-bounded throughput and speedup.

Paper result: 1.03x-9.0x improvement; the largest gains are
compute-dominated models on GPU servers (RMC3/MT-WnD/DIN/DIEN on T7),
modest gains for MT-WnD/DIN/DIEN on CPU-only servers where SparseNet
is <5% of latency.
"""

from __future__ import annotations

from _shared import MODEL_ORDER, evaluator, model
from conftest import run_once

from repro.analysis import format_table
from repro.scheduling import BaselineTaskScheduler, HerculesTaskScheduler

SERVERS = ("T2", "T3", "T7", "T8")


def _run_fig14():
    rows = []
    for server_name in SERVERS:
        for model_name in MODEL_ORDER:
            ev = evaluator(server_name)
            m = model(model_name)
            hercules = HerculesTaskScheduler(ev, m).search()
            baseline = BaselineTaskScheduler(ev, m).search()
            gain = (
                hercules.perf.qps / baseline.perf.qps
                if baseline.feasible and hercules.feasible
                else float("nan")
            )
            rows.append(
                [
                    server_name,
                    model_name,
                    round(baseline.perf.qps) if baseline.feasible else 0,
                    round(hercules.perf.qps) if hercules.feasible else 0,
                    round(gain, 2),
                    hercules.plan.describe() if hercules.plan else "-",
                ]
            )
    return rows


def test_fig14_scheduler_comparison(benchmark, show):
    rows = run_once(benchmark, _run_fig14)
    show(
        format_table(
            ["server", "model", "baseline QPS", "hercules QPS", "gain", "best plan"],
            rows,
            title="Fig. 14 -- Hercules vs DeepRecSys/Baymax task scheduling",
        )
    )
    gains = {(r[0], r[1]): r[4] for r in rows}
    # Hercules never loses to the baseline (superset of its space).
    for key, gain in gains.items():
        if gain == gain:  # skip NaN (both infeasible)
            assert gain >= 0.99, f"hercules lost at {key}: {gain}"
    # Largest gains: compute-dominated models on the GPU server.
    assert gains[("T7", "DLRM-RMC3")] > 2.0
    assert gains[("T7", "MT-WnD")] > 3.0
    assert gains[("T7", "DIN")] > 3.0
    assert gains[("T7", "DIEN")] > 3.0
    # Modest gains for one-hot models on CPU-only servers (<5% sparse).
    assert gains[("T2", "DIN")] < 1.3
    assert gains[("T2", "DIEN")] < 1.3
    assert gains[("T2", "MT-WnD")] < 1.3
    # Overall range consistent with the paper's 1.03x-9.0x claim.
    real = [g for g in gains.values() if g == g]
    assert max(real) < 12.0 and min(real) >= 0.99
