"""Ablation: locality-aware hot-embedding partition vs uniform split.

The locality-aware partition ranks rows by access frequency (Zipf); a
uniform (locality-oblivious) split of the same capacity would catch
only ``hot_rows / total_rows`` of the accesses.  The hit-rate gap
translates directly into host-side cold work and PCIe partial-sum
traffic (Fig. 10d path).
"""

from __future__ import annotations

from _shared import model
from conftest import run_once

from repro.analysis import format_table
from repro.models import partition_model
from repro.models.partition import ZipfAccessProfile

GPU_MEMORY = 16e9
MODELS = ("DLRM-RMC2", "DLRM-RMC3", "DIN")


def _run_ablation():
    rows = []
    for name in MODELS:
        m = model(name)
        for co_location in (1, 2):
            pm = partition_model(
                m, device_memory_bytes=GPU_MEMORY, co_location=co_location
            )
            total_rows = max(
                n.op.rows_per_table for n in pm.sparse  # type: ignore[union-attr]
            )
            uniform_hit = min(1.0, pm.hot_rows_per_table / total_rows)
            rows.append(
                [
                    name,
                    co_location,
                    pm.hot_rows_per_table,
                    round(pm.hot_hit_rate, 3),
                    round(uniform_hit, 3),
                    round(pm.hot_hit_rate / uniform_hit, 1)
                    if uniform_hit > 0
                    else float("inf"),
                ]
            )
    return rows


def test_ablation_locality_partition(benchmark, show):
    rows = run_once(benchmark, _run_ablation)
    show(
        format_table(
            [
                "model",
                "co-located",
                "hot rows/table",
                "locality hit rate",
                "uniform hit rate",
                "gain",
            ],
            rows,
            title="Ablation -- locality-aware vs uniform embedding partition (16 GB)",
        )
    )
    for row in rows:
        _, _, hot_rows, locality_hit, uniform_hit, gain = row
        if uniform_hit < 1.0:
            assert locality_hit > uniform_hit  # Zipf skew is the win
        assert 0.0 < locality_hit <= 1.0


def test_zipf_skew_sensitivity(benchmark, show):
    """Hit rate of a 10%-capacity hot set across locality regimes."""

    def run():
        rows = []
        for alpha in (0.5, 0.8, 0.95, 1.1):
            profile = ZipfAccessProfile(alpha=alpha)
            rows.append(
                [alpha, round(profile.hit_rate(100_000, 1_000_000), 3)]
            )
        return rows

    rows = run_once(benchmark, run)
    show(
        format_table(
            ["zipf alpha", "hit rate @10% capacity"],
            rows,
            title="Ablation -- locality sensitivity of the hot partition",
        )
    )
    hits = [r[1] for r in rows]
    assert hits == sorted(hits)  # more skew, more locality capture
