"""Reactive vs predictive autoscaling under faults, window by window.

``bench_predictive_autoscaling.py`` draws the power/SLA frontier on a
clean diurnal day; this bench asks the harder operational question:
when replicas *crash mid-ramp*, which autoscaler recovers the tail
faster?  A rack-style outage takes every base replica down for a
stretch of the day, and both regimes replay the identical fleet,
traffic, faults, and retry budget.

The comparison leans on the observability layer instead of run-wide
aggregates: a :class:`repro.obs.FleetProbe` samples each replay into a
windowed metrics series (qps, P² p99, violations, queue depth, active
replicas), and the outage's impact is read off the windows overlapping
the crash interval -- the violation burst the ``FleetResult``
percentiles average away.

Asserted: the probe's series conserves the engine's own counts, the
outage windows carry the violation burst (each regime's in-outage
violation rate and queue peak are at least those of the equally loaded
stretch just before the crash), both regimes scale, and the
control-plane timeline records the crashes.

Marked ``slow``: two full fault-injected fleet replays plus profiling.
"""

from __future__ import annotations

import pytest

from _shared import model, workload
from conftest import run_once

from repro.analysis import format_table
from repro.cluster.state import Allocation
from repro.fleet import (
    FleetSimulator,
    PredictiveAutoscaler,
    ReactiveAutoscaler,
    build_fleet,
)
from repro.fleet.faults import FaultSchedule
from repro.hardware import SERVER_TYPES
from repro.obs import FleetProbe
from repro.scheduling import OfflineProfiler
from repro.traces import DiurnalProcess, FleetArrivals

MODEL = "DLRM-RMC1"
DURATION_S = 16.0
WINDOW_S = 0.25
SEED = 3
BASE_REPLICAS = 3
STANDBY_REPLICAS = 6
PEAK_FRACTION = 0.65
# All three base replicas die together at the peak and come back 2 s
# later -- a correlated outage the autoscaler must absorb with the
# standbys alone while queries retry off the crashed attempts.
OUTAGE_START_S = 8.0
OUTAGE_DUR_S = 2.0
FAULTS = ",".join(
    f"crash@{OUTAGE_START_S}:{i}+{OUTAGE_DUR_S}" for i in range(BASE_REPLICAS)
)


def _build():
    m = model(MODEL)
    models = {MODEL: m}
    workloads = {MODEL: workload(MODEL)}
    table = OfflineProfiler().profile([SERVER_TYPES["T2"]], [m])
    qps1 = table.qps("T2", MODEL)
    total = BASE_REPLICAS + STANDBY_REPLICAS
    arrivals = FleetArrivals(
        {
            MODEL: DiurnalProcess(
                workloads[MODEL],
                PEAK_FRACTION * total * qps1,
                DURATION_S,
                steps=64,
                trough_ratio=0.15,
                peak_position=0.5,
                sharpness=2.0,
                noise=0.05,
            )
        },
        seed=SEED,
    )
    return models, workloads, table, arrivals


def _run_regimes():
    models, workloads, table, arrivals = _build()
    sla = {MODEL: models[MODEL].sla_ms}

    base = Allocation()
    base.add("T2", MODEL, BASE_REPLICAS)
    standby = Allocation()
    standby.add("T2", MODEL, STANDBY_REPLICAS)

    def replay(autoscaler):
        servers = build_fleet(
            base, table, models, workloads, standby=standby
        )
        probe = FleetProbe(window_s=WINDOW_S, metrics=True)
        sim = FleetSimulator(
            servers,
            policy="least",
            sla_ms=sla,
            autoscaler=autoscaler,
            faults=FaultSchedule.parse(FAULTS),
            retries=2,
            seed=1,
            observer=probe,
        )
        return sim.run(arrivals, warmup_s=DURATION_S * 0.04), probe

    return {
        "reactive": replay(
            ReactiveAutoscaler(sla, window_s=WINDOW_S, cooldown_s=2 * WINDOW_S)
        ),
        "predictive": replay(
            PredictiveAutoscaler(
                sla,
                window_s=WINDOW_S,
                lead_windows=2,
                history_windows=8,
                target_utilization=0.9,
                drain_utilization=0.7,
            )
        ),
    }


def _window_split(probe):
    """Outage windows vs the equally long stretch just before them.

    Comparing against the immediately preceding windows isolates the
    crash's own burst from the ramp's scaling lag: traffic level is
    near-identical on both sides of the cut, only the outage differs.
    """
    lo = OUTAGE_START_S
    hi = OUTAGE_START_S + OUTAGE_DUR_S + 2 * WINDOW_S
    outage, before = [], []
    for row in probe.metrics_rows:
        if lo <= row["t"] < hi:
            outage.append(row)
        elif lo - (hi - lo) <= row["t"] < lo:
            before.append(row)
    return outage, before


def _rate(rows):
    arrivals = sum(r["arrivals"] for r in rows)
    violations = sum(r["violations"] for r in rows)
    return violations / arrivals if arrivals else 0.0


@pytest.mark.slow
def test_autoscalers_under_faults(benchmark, show, record):
    results = run_once(benchmark, _run_regimes)
    rows = []
    doc = {}
    for regime, (res, probe) in results.items():
        stats = res.per_model[MODEL]
        outage, before = _window_split(probe)
        burst, calm = _rate(outage), _rate(before)
        peak_queue = max(r["queue_depth"] for r in probe.metrics_rows)
        rows.append(
            [
                regime,
                stats.completed,
                stats.failed,
                round(stats.p99_ms, 1),
                f"{calm * 100:.2f}%",
                f"{burst * 100:.2f}%",
                peak_queue,
                round(res.avg_power_w, 1),
                len(res.scale_events),
            ]
        )
        doc[regime] = {
            "completed": stats.completed,
            "failed": stats.failed,
            "p99_ms": stats.p99_ms,
            "violation_rate": stats.violation_rate,
            "violation_rate_outage": burst,
            "violation_rate_before": calm,
            "peak_queue_depth": peak_queue,
            "avg_power_w": res.avg_power_w,
            "scale_events": len(res.scale_events),
            "availability": res.availability,
        }
    show(
        format_table(
            ["regime", "served", "failed", "p99 ms", "viol (before)",
             "viol (outage)", "peak queue", "avg power W", "scale events"],
            rows,
            title=(
                f"Autoscalers vs a {OUTAGE_DUR_S:.0f}s "
                f"{BASE_REPLICAS}-replica outage "
                f"at t={OUTAGE_START_S:.0f}s (windowed metrics series)"
            ),
        )
    )
    record(doc)

    for regime, (res, probe) in results.items():
        stats = res.per_model[MODEL]
        # The metrics series conserves the engine's own accounting:
        # windowed arrivals cover every query the run resolved.
        series_arrivals = sum(r["arrivals"] for r in probe.metrics_rows)
        resolved = stats.completed + stats.dropped + stats.failed
        assert series_arrivals >= resolved, regime
        # The crashes landed, reached the control-plane timeline, and
        # the run saw real unavailability.
        assert len(res.fault_events) >= 2, regime
        assert any(ev["kind"] == "fault" for ev in probe.control_events), regime
        assert res.availability < 1.0, regime
        # Both regimes actually scaled under the outage+ramp.
        assert res.scale_events, regime
        # The violation burst is where the metrics series says it is:
        # killing every base replica at the peak must hurt at least as
        # much inside the outage windows as in the equally loaded
        # stretch just before them -- and the queue visibly backs up.
        outage, before = _window_split(probe)
        assert outage and before, regime
        assert _rate(outage) >= _rate(before), regime
        assert (
            max(r["queue_depth"] for r in outage)
            >= max(r["queue_depth"] for r in before)
        ), regime
