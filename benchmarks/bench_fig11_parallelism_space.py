"""Fig. 11: the Psp(M+D) scheduling surfaces are convex.

Sweeps model-based scheduling of DLRM-RMC1 over (threads x batch) on
the CPU and (co-location x fusion) on the GPU, printing the
latency-bounded-throughput surface the gradient search walks, and
checking the convexity property Algorithm 1 relies on: along each axis
throughput rises to a single peak and then falls (unimodality).
"""

from __future__ import annotations

from _shared import evaluator, model, workload
from conftest import run_once

from repro.analysis import format_table
from repro.models import ModelVariant, build_model, partition_model
from repro.plans import ExecutionPlan, Placement

CPU_THREADS = (1, 2, 4, 6, 8, 10, 14, 20)
CPU_BATCHES = (16, 64, 256, 1024)
GPU_COLOC = (1, 2, 3, 4)
GPU_FUSION = (256, 1024, 4096)


def _unimodal(values, tolerance=0.02):
    """True when the sequence rises to one peak then falls."""
    peak = max(range(len(values)), key=lambda i: values[i])
    rising = all(
        values[i + 1] >= values[i] * (1 - tolerance) for i in range(peak)
    )
    falling = all(
        values[i + 1] <= values[i] * (1 + tolerance)
        for i in range(peak, len(values) - 1)
    )
    return rising and falling


def _run_cpu_surface():
    ev = evaluator("T2")
    m = model("DLRM-RMC1")
    pm = partition_model(m)
    wl = workload("DLRM-RMC1")
    surface = {}
    for threads in CPU_THREADS:
        for batch in CPU_BATCHES:
            plan = ExecutionPlan(
                Placement.CPU_MODEL_BASED,
                threads=threads,
                cores_per_thread=1,
                batch_size=batch,
            )
            perf = ev.latency_bounded(pm, wl, plan, sla_ms=m.sla_ms)
            surface[(threads, batch)] = perf.qps if perf.feasible else 0.0
    return surface


def _run_gpu_surface():
    ev = evaluator("T7")
    m = build_model("DLRM-RMC1", ModelVariant.SMALL)
    wl = workload("DLRM-RMC1")
    surface = {}
    for coloc in GPU_COLOC:
        pm = partition_model(m, device_memory_bytes=16e9, co_location=coloc)
        for fusion in GPU_FUSION:
            plan = ExecutionPlan(
                Placement.GPU_MODEL_BASED, threads=coloc, fusion_limit=fusion
            )
            perf = ev.latency_bounded(pm, wl, plan, sla_ms=m.sla_ms)
            surface[(coloc, fusion)] = perf.qps if perf.feasible else 0.0
    return surface


def test_fig11_cpu_surface_convex(benchmark, show):
    surface = run_once(benchmark, _run_cpu_surface)
    rows = [
        [t] + [round(surface[(t, b)]) for b in CPU_BATCHES] for t in CPU_THREADS
    ]
    show(
        format_table(
            ["threads"] + [f"d={b}" for b in CPU_BATCHES],
            rows,
            title="Fig. 11(a) -- DLRM-RMC1 latency-bounded QPS over Psp(M+D), CPU-T2",
        )
    )
    # Unimodal along the thread axis for every batch size.
    for b in CPU_BATCHES:
        series = [surface[(t, b)] for t in CPU_THREADS]
        assert _unimodal(series), f"thread axis not unimodal at d={b}: {series}"
    assert max(surface.values()) > 0


def test_fig11_gpu_surface_convex(benchmark, show):
    surface = run_once(benchmark, _run_gpu_surface)
    rows = [
        [g] + [round(surface[(g, f)]) for f in GPU_FUSION] for g in GPU_COLOC
    ]
    show(
        format_table(
            ["co-located"] + [f"fusion={f}" for f in GPU_FUSION],
            rows,
            title="Fig. 11(d) -- DLRM-RMC1(small) QPS over Psp(M+D), V100",
        )
    )
    for f in GPU_FUSION:
        series = [surface[(g, f)] for g in GPU_COLOC]
        assert _unimodal(series, tolerance=0.05)
    assert max(surface.values()) > 0
