"""Perf-regression lane: the hot-path scenarios of ``repro.perfbench``.

Runs the same fixed-seed scenarios as ``python -m repro.cli bench
--quick`` under the pytest-benchmark harness, prints the summary
table, and records machine-readable metrics to
``benchmarks/results/bench_perf_core.json`` (same schema as the
repo-root ``BENCH_perf.json``).

Assertions are sanity-only (scenarios completed, produced work): wall
times are *recorded*, never asserted, so a slow CI box cannot fail the
lane -- regressions are judged by comparing BENCH_perf.json across
commits.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis import format_table
from repro.perfbench import run_bench

SEED = 0


def test_perf_core_scenarios(benchmark, show, record):
    doc = run_once(benchmark, lambda: run_bench(quick=True, seed=SEED, jobs=1))
    record(doc)

    rows = []
    for name, metrics in doc["scenarios"].items():
        rate = (
            metrics.get("queries_per_s")
            or metrics.get("pairs_per_s")
            or metrics.get("evaluations_per_s")
            or 0.0
        )
        rows.append(
            [
                name,
                round(metrics["wall_s"], 3),
                round(rate),
                metrics.get("events") or "-",
            ]
        )
    show(
        format_table(
            ["scenario", "wall s", "rate /s", "events"],
            rows,
            title=f"perf-core quick scenarios (seed {SEED})",
        )
    )

    scenarios = doc["scenarios"]
    assert set(scenarios) == {
        "search",
        "profile_table",
        "loadgen",
        "single_node_des",
        "fleet_replay",
        "fleet_replay_faultpath",
    }
    assert all(m["wall_s"] > 0 for m in scenarios.values())
    assert scenarios["fleet_replay"]["completed"] > 0
    assert scenarios["fleet_replay"]["events"] > scenarios["fleet_replay"]["queries"]
    assert scenarios["single_node_des"]["completed"] > 0
    assert scenarios["profile_table"]["feasible_pairs"] > 0
    assert scenarios["search"]["feasible"] == scenarios["search"]["pairs"]
    # The idle fault layer matched the fault-free loop (the scenario
    # raises on any float mismatch) and reported its cost ratio.
    assert scenarios["fleet_replay_faultpath"]["ratio_vs_fault_off"] > 0
