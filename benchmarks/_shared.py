"""Shared, memoized artifacts for the benchmark harness.

Profiling all 60 workload/server pairs costs tens of seconds; every
bench that needs the classification table shares one copy through
these caches.
"""

from __future__ import annotations

import functools

from repro.hardware import SERVER_TYPES, ServerType
from repro.models import ModelVariant, RecommendationModel, build_model
from repro.scheduling import ClassificationTable, OfflineProfiler
from repro.sim import QueryWorkload, ServerEvaluator

#: Canonical model order used by every bench printout.
MODEL_ORDER = ("DLRM-RMC1", "DLRM-RMC2", "DLRM-RMC3", "MT-WnD", "DIN", "DIEN")

#: Paper Fig. 15 SLA targets, keyed by model.
SLA_MS = {
    "DLRM-RMC1": 20.0,
    "DLRM-RMC2": 50.0,
    "DLRM-RMC3": 50.0,
    "DIN": 50.0,
    "DIEN": 100.0,
    "MT-WnD": 100.0,
}


@functools.lru_cache(maxsize=None)
def model(name: str, variant: ModelVariant = ModelVariant.PROD) -> RecommendationModel:
    return build_model(name, variant)


@functools.lru_cache(maxsize=None)
def workload(name: str) -> QueryWorkload:
    return QueryWorkload.for_model(model(name).config.mean_query_size)


@functools.lru_cache(maxsize=None)
def evaluator(server_name: str) -> ServerEvaluator:
    return ServerEvaluator(SERVER_TYPES[server_name])


@functools.lru_cache(maxsize=None)
def profile_table(server_names: tuple[str, ...], model_names: tuple[str, ...]) -> ClassificationTable:
    """Efficiency-tuple table for the requested fleet slice (cached)."""
    profiler = OfflineProfiler()
    servers: list[ServerType] = [SERVER_TYPES[s] for s in server_names]
    models = [model(m) for m in model_names]
    return profiler.profile(servers, models)


def full_table() -> ClassificationTable:
    """The complete 10-server x 6-model classification table."""
    return profile_table(tuple(SERVER_TYPES), MODEL_ORDER)


def small_table() -> ClassificationTable:
    """The Fig. 8 characterization slice: T2/T3/T7 x RMC1/RMC2."""
    return profile_table(("T2", "T3", "T7"), ("DLRM-RMC1", "DLRM-RMC2"))
