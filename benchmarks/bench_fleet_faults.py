"""How routing policies absorb crashes and stragglers, with hedging.

The fault-injection complement of ``bench_fleet_routing``: the same
heterogeneous fleet and trace are replayed under three regimes --
fault-free, a mid-run crash of the two highest-throughput replicas
(with a retry budget), and a straggler episode slowing one replica 4x
-- for each routing policy, with and without hedged dispatch under the
straggler.  The interesting quantities are availability, goodput, and
the straggler-phase p99: queue-aware policies route *around* a
straggler automatically, the oblivious ones need hedging to recover
the tail, and everyone loses capacity (not correctness) to a crash
when retries are budgeted.

Marked ``slow``: the sweep replays the trace 4 policies x 4 regimes.
"""

from __future__ import annotations

import pytest

from _shared import model, workload
from conftest import run_once

from repro.analysis import format_table
from repro.cluster.state import Allocation
from repro.fleet import (
    FaultSchedule,
    FleetSimulator,
    build_fleet,
    build_fleet_trace,
    crash,
    slowdown,
)
from repro.hardware import SERVER_TYPES
from repro.scheduling import OfflineProfiler

POLICIES = ("rr", "weighted", "p2c", "least")
MODELS = ("DLRM-RMC1", "DLRM-RMC2")
# rr splits the stream evenly, so the smallest replica sees the highest
# utilization; 0.45 keeps it moderately loaded fault-free, leaving the
# headroom hedged duplicates need (at >0.9 utilization hedging storms).
RHO = 0.45
QUERIES = 30_000
SEED = 13
RETRIES = 2
HEDGE_MS = 10.0


def _build():
    models = {name: model(name) for name in MODELS}
    workloads = {name: workload(name) for name in MODELS}
    table = OfflineProfiler().profile(
        [SERVER_TYPES[s] for s in ("T2", "T3", "T7")], list(models.values())
    )
    # RMC1 spans the full heterogeneity spread; RMC2 only runs on the
    # accelerated boxes (its T2 operating point is ~100 QPS, so placing
    # it there would leave round-robin saturated even fault-free and
    # the sweep would measure overload, not faults).
    allocation = Allocation()
    allocation.add("T2", "DLRM-RMC1", 5)
    allocation.add("T3", "DLRM-RMC1", 3)
    allocation.add("T7", "DLRM-RMC1", 2)
    allocation.add("T3", "DLRM-RMC2", 4)
    allocation.add("T7", "DLRM-RMC2", 3)
    capacity = {
        name: sum(
            count * table.qps(srv, m)
            for (srv, m), count in allocation.counts.items()
            if m == name
        )
        for name in MODELS
    }
    total_rate = RHO * sum(capacity.values())
    duration = QUERIES / total_rate
    trace = build_fleet_trace(
        workloads,
        {name: [(RHO * capacity[name], duration)] for name in MODELS},
        seed=SEED,
    )
    return models, workloads, table, allocation, trace, duration


def _regimes(servers, duration):
    """Fault regimes over a concrete fleet (indices depend on build order)."""
    # The two fastest replicas carry the most weighted/least traffic, so
    # killing them is the worst scripted case for every policy.  The
    # straggler is the *slowest* replica: under round-robin it still
    # receives 1/N of the stream (saturating it), while the rest of the
    # fleet keeps the headroom hedged duplicates need -- slowing the
    # fastest replica instead puts the whole fleet past capacity, where
    # hedging famously melts down rather than helps.
    by_weight = sorted(servers, key=lambda s: s.weight, reverse=True)
    fast_two = [by_weight[0].index, by_weight[1].index]
    slow_one = by_weight[-1].index
    t_fault = duration * 0.4
    return {
        "none": (None, None),
        "crash": (
            FaultSchedule(
                [crash(t_fault, fast_two[0]), crash(t_fault * 1.2, fast_two[1])]
            ),
            None,
        ),
        "straggle": (
            FaultSchedule([slowdown(t_fault, slow_one, 4.0, duration=duration * 0.3)]),
            None,
        ),
        "straggle+hedge": (
            FaultSchedule([slowdown(t_fault, slow_one, 4.0, duration=duration * 0.3)]),
            HEDGE_MS,
        ),
    }


def _run_sweep():
    models, workloads, table, allocation, trace, duration = _build()
    sla = {name: models[name].sla_ms for name in MODELS}
    results = {}
    for policy in POLICIES:
        for regime_name in ("none", "crash", "straggle", "straggle+hedge"):
            servers = build_fleet(allocation, table, models, workloads)
            schedule, hedge = _regimes(servers, duration)[regime_name]
            sim = FleetSimulator(
                servers,
                policy=policy,
                sla_ms=sla,
                seed=SEED,
                faults=schedule,
                retries=RETRIES if schedule is not None else 0,
                hedge_ms=hedge,
            )
            results[(policy, regime_name)] = sim.run(trace, warmup_s=duration * 0.1)
    return results, duration


@pytest.mark.slow
def test_fleet_fault_absorption(benchmark, show, record):
    results, duration = run_once(benchmark, _run_sweep)
    rows = []
    for (policy, regime), res in results.items():
        worst_p99 = max(s.p99_ms for s in res.per_model.values())
        rows.append(
            [
                policy,
                regime,
                res.total_completed,
                res.total_failed,
                res.total_retried,
                res.total_hedged,
                f"{res.availability * 100:.1f}%",
                round(worst_p99, 1),
                f"{res.worst_violation_rate * 100:.2f}%",
            ]
        )
    show(
        format_table(
            [
                "policy",
                "regime",
                "served",
                "failed",
                "retried",
                "hedged",
                "avail",
                "worst p99",
                "viol",
            ],
            rows,
            title=f"Fault absorption by routing policy (rho={RHO}, retries={RETRIES})",
        )
    )
    record(
        {
            f"{policy}/{regime}": {
                "completed": res.total_completed,
                "failed": res.total_failed,
                "retried": res.total_retried,
                "hedged": res.total_hedged,
                "availability": res.availability,
                "worst_p99_ms": max(s.p99_ms for s in res.per_model.values()),
            }
            for (policy, regime), res in results.items()
        }
    )

    for policy in POLICIES:
        clean = results[(policy, "none")]
        crashed = results[(policy, "crash")]
        hedged = results[(policy, "straggle+hedge")]
        # Fault-free runs are fully available and lose nothing.
        assert clean.availability == 1.0
        assert clean.total_failed == 0 and clean.total_retried == 0
        # A crash shows up as lost capacity and retried work; with this
        # much headroom the surviving replicas absorb the re-enqueued
        # queries, so goodput may tie the clean run but never beats it.
        assert crashed.availability < 1.0
        assert crashed.total_retried > 0
        assert crashed.total_completed <= clean.total_completed
        # Hedging fires under the straggler but never loses queries.
        assert hedged.total_hedged > 0
        assert hedged.total_failed == 0

    # The straggler must hurt the oblivious policy (it keeps feeding the
    # slow replica) and hedging must buy most of that tail back.
    rr_clean = max(s.p99_ms for s in results[("rr", "none")].per_model.values())
    rr_straggle = max(
        s.p99_ms for s in results[("rr", "straggle")].per_model.values()
    )
    rr_hedged = max(
        s.p99_ms for s in results[("rr", "straggle+hedge")].per_model.values()
    )
    assert rr_straggle > 2.0 * rr_clean
    assert rr_hedged < rr_straggle
    # Queue-aware routing absorbs the same straggler without help.
    least_straggle = max(
        s.p99_ms for s in results[("least", "straggle")].per_model.values()
    )
    assert least_straggle < rr_straggle
