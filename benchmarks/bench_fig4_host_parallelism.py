"""Fig. 4: host-side model/op-parallelism vs DeepRecSys.

Compares the DeepRecSys configuration (20 threads x 1 core) with the
op-parallel 10 threads x 2 cores on DLRM-RMC1 over the paper's SLA
sweep (64-512 ms), reporting latency-bounded QPS, energy efficiency
(QPS/W), and average CPU utilization.

Paper result: 10x2 improves QPS by up to 1.35x and QPS/W by up to
1.33x while *lowering* CPU utilization -- showing utilization is not a
useful classification metric.
"""

from __future__ import annotations

from _shared import evaluator, model, workload
from conftest import run_once

from repro.analysis import format_table
from repro.models import partition_model
from repro.plans import ExecutionPlan, Placement
from repro.scheduling import BATCH_GRID

SLA_SWEEP_MS = (64.0, 128.0, 256.0, 512.0)


def _best_at(ev, pm, wl, threads, cores, sla_ms):
    best = None
    for d in BATCH_GRID:
        plan = ExecutionPlan(
            Placement.CPU_MODEL_BASED,
            threads=threads,
            cores_per_thread=cores,
            batch_size=d,
        )
        perf = ev.latency_bounded(pm, wl, plan, sla_ms=sla_ms)
        if perf.feasible and (best is None or perf.qps > best.qps):
            best = perf
    return best


def _run_fig4():
    ev = evaluator("T2")
    m = model("DLRM-RMC1")
    pm = partition_model(m)
    wl = workload("DLRM-RMC1")
    rows = []
    for sla in SLA_SWEEP_MS:
        drs = _best_at(ev, pm, wl, threads=20, cores=1, sla_ms=sla)
        herc = _best_at(ev, pm, wl, threads=10, cores=2, sla_ms=sla)
        rows.append(
            [
                sla,
                round(drs.qps),
                round(herc.qps),
                round(herc.qps / drs.qps, 2),
                round(drs.qps_per_watt, 1),
                round(herc.qps_per_watt, 1),
                round(drs.cpu_util, 2),
                round(herc.cpu_util, 2),
            ]
        )
    return rows


def test_fig4_host_parallelism(benchmark, show):
    rows = run_once(benchmark, _run_fig4)
    show(
        format_table(
            [
                "SLA_ms",
                "20x1 QPS",
                "10x2 QPS",
                "gain",
                "20x1 QPS/W",
                "10x2 QPS/W",
                "20x1 util",
                "10x2 util",
            ],
            rows,
            title="Fig. 4 -- DLRM-RMC1 on CPU-T2: DeepRecSys (20x1) vs 10x2",
        )
    )
    for row in rows:
        gain = row[3]
        assert 1.0 < gain < 1.6  # paper: up to 1.35x
        assert row[5] > row[4]  # better energy efficiency
        assert row[7] < row[6]  # lower CPU utilization (Fig. 4c)
