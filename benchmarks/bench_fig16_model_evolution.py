"""Fig. 16: model evolution on CPU-only vs accelerated clusters.

Shifts the workload mix linearly from DLRM-RMC1/2/3 to DIN/DIEN/MT-WnD
over model-update cycles and provisions a CPU-only cluster (T1+T2) for
each cycle's diurnal day.

Paper result: on CPU-only hardware the growing share of
higher-complexity models inflates cluster capacity and provisioned
power severalfold by the end of the evolution; deploying accelerated
servers recovers most of it (Fig. 16b).
"""

from __future__ import annotations

from _shared import MODEL_ORDER, profile_table
from conftest import run_once

from repro.analysis import format_table
from repro.cluster import GreedyScheduler, HerculesClusterScheduler, run_evolution

TOTAL_PEAK_QPS = 4_000.0
CYCLES = 5
CPU_FLEET = {"T1": 100, "T2": 100}
ACCEL_FLEET = {
    "T1": 100, "T2": 70, "T3": 15, "T4": 10, "T5": 5,
    "T6": 10, "T7": 5, "T8": 6, "T9": 4, "T10": 2,
}


def _run_fig16():
    cpu_table = profile_table(("T1", "T2"), MODEL_ORDER)
    accel_table = profile_table(tuple(ACCEL_FLEET), MODEL_ORDER)
    cpu_result = run_evolution(
        GreedyScheduler(cpu_table, dict(CPU_FLEET)),
        total_peak_qps=TOTAL_PEAK_QPS,
        cycles=CYCLES,
    )
    accel_result = run_evolution(
        HerculesClusterScheduler(accel_table, dict(ACCEL_FLEET)),
        total_peak_qps=TOTAL_PEAK_QPS,
        cycles=CYCLES,
    )
    return cpu_table, cpu_result, accel_table, accel_result


def test_fig16_model_evolution(benchmark, show):
    cpu_table, cpu_result, accel_table, accel_result = run_once(
        benchmark, _run_fig16
    )
    rows = []
    for i, (mix, cpu_day, accel_day) in enumerate(
        zip(cpu_result.mixes, cpu_result.days, accel_result.days)
    ):
        new_share = sum(
            share
            for name, share in mix.shares.items()
            if name in ("DIN", "DIEN", "MT-WnD")
        )
        rows.append(
            [
                i,
                round(new_share * 100),
                round(cpu_day.peak_power_w / 1e3, 2),
                cpu_day.peak_servers,
                round(accel_day.peak_power_w / 1e3, 2),
                accel_day.peak_servers,
                cpu_day.any_shortfall,
            ]
        )
    show(
        format_table(
            [
                "cycle",
                "new models %",
                "CPU-only peak kW",
                "CPU-only servers",
                "accel peak kW",
                "accel servers",
                "cpu shortfall",
            ],
            rows,
            title="Fig. 16 -- model evolution: CPU-only vs accelerated cluster",
        )
    )
    cpu_power = cpu_result.peak_power_series()
    # Evolution toward complex models inflates CPU-only cost severalfold.
    assert cpu_power[-1] > 2.0 * cpu_power[0]
    assert cpu_result.peak_server_series()[-1] > 2.0 * cpu_result.peak_server_series()[0]
    # The accelerated cluster absorbs the evolution far more cheaply.
    accel_power = accel_result.peak_power_series()
    assert accel_power[-1] < 0.6 * cpu_power[-1]
