"""Fig. 7: latency breakdown vs query-fusion limit on the GPU.

Sweeps the fusion limit for DLRM-RMC3, MT-WnD and DIN (one inference
thread on one V100, as in the paper) and reports the queuing /
data-loading / model-inference latency shares plus GPU utilization.

Paper result: DLRM-RMC3's multi-hot sparse indices make data loading
dominate (65-83% of latency, ~25% GPU utilization); MT-WnD and DIN
keep the GPU busy.
"""

from __future__ import annotations

from _shared import evaluator, workload
from conftest import run_once

from repro.analysis import format_table
from repro.models import ModelVariant, build_model, partition_model
from repro.plans import ExecutionPlan, Placement

MODELS = ("DLRM-RMC3", "MT-WnD", "DIN")
FUSION_SWEEP = (0, 500, 1000, 2000, 4000, 6000)
LOAD_FRACTION = 0.7


def _run_fig7():
    ev = evaluator("T7")
    rows = []
    for name in MODELS:
        m = build_model(name, ModelVariant.SMALL)
        wl = workload(name)
        pm = partition_model(m, device_memory_bytes=16e9, co_location=1)
        for fusion in FUSION_SWEEP:
            plan = ExecutionPlan(
                Placement.GPU_MODEL_BASED,
                threads=1,
                fusion_limit=fusion,
                sparse_threads=ev.server.cpu.cores if pm.cold_miss_rate > 0 else 0,
            )
            timings = ev.plan_timings(pm, wl, plan)
            qps = timings.capacity_items_s / wl.mean_size * LOAD_FRACTION
            perf = ev.perf_at(timings, wl, qps)
            rows.append(
                [
                    name,
                    fusion if fusion else "none",
                    round(perf.breakdown["queuing"] * 100, 1),
                    round(perf.breakdown["loading"] * 100, 1),
                    round(perf.breakdown["inference"] * 100, 1),
                    round(perf.gpu_util * 100, 1),
                ]
            )
    return rows


def test_fig7_fusion_breakdown(benchmark, show):
    rows = run_once(benchmark, _run_fig7)
    show(
        format_table(
            ["model", "fusion", "queuing%", "loading%", "inference%", "gpu_util%"],
            rows,
            title="Fig. 7 -- latency breakdown vs fusion limit (1 thread, V100, 70% load)",
        )
    )
    by_model = {}
    for row in rows:
        by_model.setdefault(row[0], []).append(row)
    # The paper's directional findings:
    # (1) RMC3's multi-hot sparse indices make data loading a far larger
    #     share than for the one-hot models;
    rmc3_loading = max(r[3] for r in by_model["DLRM-RMC3"])
    assert rmc3_loading > 3 * max(r[3] for r in by_model["MT-WnD"])
    assert rmc3_loading > 3 * max(r[3] for r in by_model["DIN"])
    # (2) queuing delay grows with the fusion limit;
    for series in by_model.values():
        assert series[-1][2] > series[0][2]
    # (3) at large fusion the GPU stays less utilized for RMC3 than for
    #     the compute-heavy models.
    rmc3_large = by_model["DLRM-RMC3"][-1]
    assert by_model["DIN"][-1][5] >= rmc3_large[5]
    assert by_model["MT-WnD"][-1][5] >= rmc3_large[5]
