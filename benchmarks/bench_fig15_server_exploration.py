"""Fig. 15: server-architecture exploration across the full fleet.

Profiles all 6 workloads x 10 server types and prints throughput and
energy efficiency normalized to CPU-T1, with the paper's SLA targets
(20/50/50/50/100/100 ms).

Paper result: the optimal architecture is workload-dependent -- NMP
types win for memory-dominated RMC1/RMC2, GPU types for
compute-dominated RMC3/MT-WnD/DIN/DIEN, and NMP brings no throughput
gain (only an idle-power tax) for the one-hot models.
"""

from __future__ import annotations

from _shared import MODEL_ORDER, full_table
from conftest import run_once

from repro.analysis import format_table
from repro.hardware import SERVER_TYPES

SERVER_ORDER = tuple(SERVER_TYPES)


def _run_fig15():
    table = full_table()
    qps_norm = table.normalized(metric="qps", baseline_server="T1")
    eff_norm = table.normalized(metric="qps_per_watt", baseline_server="T1")
    return table, qps_norm, eff_norm


def _rows(norm):
    return [
        [model] + [round(norm[model].get(s, 0.0), 2) for s in SERVER_ORDER]
        for model in MODEL_ORDER
    ]


def test_fig15_server_architecture_exploration(benchmark, show):
    table, qps_norm, eff_norm = run_once(benchmark, _run_fig15)
    show(
        format_table(
            ["model"] + list(SERVER_ORDER),
            _rows(qps_norm),
            title="Fig. 15(a) -- normalized latency-bounded QPS (T1 = 1.0)",
        )
    )
    show(
        format_table(
            ["model"] + list(SERVER_ORDER),
            _rows(eff_norm),
            title="Fig. 15(b) -- normalized energy efficiency QPS/W (T1 = 1.0)",
        )
    )
    # Memory-dominated models: NMP beats plain CPU on QPS and QPS/W.
    for model in ("DLRM-RMC1", "DLRM-RMC2"):
        assert qps_norm[model]["T3"] > 1.4 * qps_norm[model]["T2"]
        assert eff_norm[model]["T3"] > eff_norm[model]["T2"]
    # Compute-dominated models: the V100 server dominates CPU types.
    for model in ("DLRM-RMC3", "MT-WnD", "DIN", "DIEN"):
        assert qps_norm[model]["T7"] > 3.0 * qps_norm[model]["T2"]
    # One-hot models: NMP buys no throughput but costs idle power.
    for model in ("MT-WnD", "DIN", "DIEN"):
        assert qps_norm[model]["T3"] <= qps_norm[model]["T2"] * 1.05
        assert eff_norm[model]["T3"] < eff_norm[model]["T2"]
    # The best architecture differs across workloads (the Fig. 15 headline).
    best_by_eff = {
        model: max(SERVER_ORDER, key=lambda s: eff_norm[model][s])
        for model in MODEL_ORDER
    }
    assert len(set(best_by_eff.values())) >= 2
