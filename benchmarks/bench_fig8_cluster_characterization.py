"""Fig. 8: heterogeneity-aware cluster scheduling characterization.

(a) Latency-bounded energy efficiency of DLRM-RMC1 and RMC2 on the
    three server types (CPU, CPU+NMP, CPU+GPU) -- establishing the
    CPU+NMP > CPU+GPU > CPU ranking.
(b-c) Provisioned power of the heterogeneity-oblivious (NH), greedy,
    and priority-aware schedulers over a diurnal day with availability
    70/15/5.

Paper result: greedy saves up to 41.6% provisioned power over NH;
priority-aware saves a further 11.4% (peak) by routing the contested
CPU+NMP servers to RMC2, which benefits more.
"""

from __future__ import annotations

from _shared import small_table
from conftest import run_once

from repro.analysis import format_table
from repro.cluster import (
    ClusterManager,
    GreedyScheduler,
    NHScheduler,
    PriorityAwareScheduler,
    synchronous_traces,
)

FLEET = {"T2": 70, "T3": 15, "T7": 5}
PEAKS = {"DLRM-RMC1": 20_000.0, "DLRM-RMC2": 5_500.0}


def _run_fig8():
    table = small_table()
    efficiency_rows = []
    for model in ("DLRM-RMC1", "DLRM-RMC2"):
        base = table.get("T2", model).qps_per_watt
        efficiency_rows.append(
            [
                model,
                round(base, 2),
                round(table.get("T3", model).qps_per_watt / base, 2),
                round(table.get("T7", model).qps_per_watt / base, 2),
            ]
        )
    traces = synchronous_traces(PEAKS)
    power_rows = []
    for policy in (NHScheduler, GreedyScheduler, PriorityAwareScheduler):
        manager = ClusterManager(policy(table, dict(FLEET)), over_provision=0.05)
        day = manager.run_day(traces)
        power_rows.append(
            [
                policy.__name__,
                round(day.peak_power_w / 1e3, 2),
                round(day.average_power_w / 1e3, 2),
                day.any_shortfall,
            ]
        )
    return efficiency_rows, power_rows


def test_fig8_characterization(benchmark, show):
    efficiency_rows, power_rows = run_once(benchmark, _run_fig8)
    show(
        format_table(
            ["model", "T2 QPS/W", "T3 (NMP) gain", "T7 (GPU) gain"],
            efficiency_rows,
            title="Fig. 8(a) -- energy efficiency by server type (vs CPU T2)",
        )
    )
    show(
        format_table(
            ["scheduler", "peak kW", "avg kW", "shortfall"],
            power_rows,
            title="Fig. 8(c) -- provisioned power (T2/T3/T7 avail 70/15/5)",
        )
    )
    # Fig. 8(a): NMP > GPU > CPU on efficiency for both workloads,
    # with RMC2 benefiting more from NMP than RMC1 (paper: 2.04 vs 1.75).
    for row in efficiency_rows:
        _, base, nmp_gain, gpu_gain = row
        assert nmp_gain > gpu_gain > 0.9
        assert 1.3 < nmp_gain < 2.8
    # Fig. 8(c): heterogeneity-awareness saves large provisioned power.
    nh, greedy, priority = power_rows
    assert greedy[1] < 0.7 * nh[1]  # paper: up to 41.6% saving
    assert priority[1] <= greedy[1] * 1.001
    assert priority[2] <= greedy[2] * 1.001
    assert not any(row[3] for row in power_rows)
