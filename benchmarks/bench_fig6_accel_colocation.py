"""Fig. 6: accelerator model co-location and query fusion.

Reproduces the three accelerator scheduling policies on DLRM-RMC3,
MT-WnD and DIN (small variants, as in the paper's characterization):

1. DeepRecSys: no co-location, no fusion.
2. Baymax: co-location only.
3. Co-location + query fusion (what Hercules explores).

Paper result: Baymax gains up to 1.66x/1.03x/1.36x over DeepRecSys;
adding fusion gains a further 2.95x/7.87x/6.0x with 2.29x/3.14x/3.36x
energy-efficiency improvement.
"""

from __future__ import annotations

from _shared import SLA_MS, evaluator, workload
from conftest import run_once

from repro.analysis import format_table
from repro.models import ModelVariant, build_model, partition_model
from repro.plans import ExecutionPlan, Placement
from repro.scheduling import FUSION_GRID

MODELS = ("DLRM-RMC3", "MT-WnD", "DIN")
GPU_MEMORY = 16e9


def _best(ev, m, wl, sla, co_location_range, fusion_range):
    best = None
    for g in co_location_range:
        try:
            pm = partition_model(m, device_memory_bytes=GPU_MEMORY, co_location=g)
        except ValueError:
            break
        host_threads = ev.server.cpu.cores if pm.cold_miss_rate > 0 else 0
        for fusion in fusion_range:
            plan = ExecutionPlan(
                Placement.GPU_MODEL_BASED,
                threads=g,
                fusion_limit=fusion,
                sparse_threads=host_threads,
                sparse_cores=1,
                batch_size=256,
            )
            perf = ev.latency_bounded(pm, wl, plan, sla_ms=sla)
            if perf.feasible and (best is None or perf.qps > best.qps):
                best = perf
    return best


def _run_fig6():
    ev = evaluator("T7")
    rows = []
    for name in MODELS:
        m = build_model(name, ModelVariant.SMALL)
        wl = workload(name)
        sla = SLA_MS[name]
        deeprecsys = _best(ev, m, wl, sla, (1,), (0,))
        baymax = _best(ev, m, wl, sla, range(1, 9), (0,))
        fused = _best(ev, m, wl, sla, range(1, 9), (0, *FUSION_GRID))
        rows.append(
            [
                name,
                round(deeprecsys.qps),
                round(baymax.qps),
                round(fused.qps),
                round(baymax.qps / deeprecsys.qps, 2),
                round(fused.qps / baymax.qps, 2),
                round(fused.qps_per_watt / baymax.qps_per_watt, 2),
            ]
        )
    return rows


def test_fig6_colocation_and_fusion(benchmark, show):
    rows = run_once(benchmark, _run_fig6)
    show(
        format_table(
            [
                "model",
                "DeepRecSys QPS",
                "Baymax QPS",
                "coloc+fusion QPS",
                "baymax gain",
                "fusion gain",
                "fusion QPS/W gain",
            ],
            rows,
            title="Fig. 6 -- accelerator-side scheduling on V100 (small models)",
        )
    )
    for row in rows:
        _, drs, baymax, fused, g_baymax, g_fusion, g_eff = row
        assert baymax >= drs  # co-location never hurts
        assert g_fusion > 1.5  # fusion is the big win (paper: 2.95-7.87x)
        assert g_eff > 1.0
