"""The power-vs-availability frontier of fault-aware provisioning.

``provision_fault_aware`` answers one point question -- the smallest
over-provision rate ``R`` meeting a target availability.  This bench
draws the whole frontier: a heterogeneous fleet under a correlated
rack-outage schedule is replayed across a sweep of ``R`` values, and
for each the provisioned power, drawn power, and measured service
availability are tabulated -- "how much does each availability nine
cost in watts?".  The fixpoint search is then run against the frontier
and must land on the cheapest swept rate meeting the target.

Asserted (loose, structural -- wall times are not gated here):

- availability at the largest swept ``R`` is at least availability at
  ``R = 0`` (headroom never hurts absorption);
- provisioned power is non-decreasing in ``R``;
- the search converges, meets the target, and chooses an ``R`` no
  costlier than the cheapest swept rate that met the target.

Marked ``slow``: the sweep replays the trace once per swept rate plus
the search's own replays.
"""

from __future__ import annotations

import pytest

from _shared import model, workload
from conftest import run_once

from repro.analysis import format_table
from repro.cluster import HerculesClusterScheduler
from repro.fleet import (
    FaultSchedule,
    FleetSimulator,
    build_fleet,
    build_fleet_trace,
    provision_fault_aware,
    service_availability,
)
from repro.scheduling import OfflineProfiler
from repro.hardware import SERVER_TYPES

MODEL = "DLRM-RMC1"
DURATION_S = 3.0
SEED = 23
TARGET = 0.999
R_SWEEP = (0.0, 0.1, 0.2, 0.4, 0.7)
#: Demand in T2 replica-equivalents: the R=0 allocation runs hot, so a
#: rack outage forces the frontier to actually bend.
LOAD_UNITS = 5.4
FLEET = {"T2": 24}
FAULTS = f"domain:size=2;crash@{DURATION_S * 0.4}:dom0+0.5,crash@{DURATION_S * 0.65}:dom1+0.5"


def _build():
    models = {MODEL: model(MODEL)}
    workloads = {MODEL: workload(MODEL)}
    table = OfflineProfiler().profile([SERVER_TYPES["T2"]], [models[MODEL]])
    tup = table.get("T2", MODEL)
    loads = {MODEL: LOAD_UNITS * tup.qps}
    trace = build_fleet_trace(
        workloads, {MODEL: [(loads[MODEL], DURATION_S)]}, seed=SEED
    )
    scheduler = HerculesClusterScheduler(table, dict(FLEET))
    faults = FaultSchedule.parse(FAULTS)
    return models, workloads, table, scheduler, loads, trace, faults


def _sweep():
    models, workloads, table, scheduler, loads, trace, faults = _build()
    sla = {MODEL: models[MODEL].sla_ms}
    frontier = []
    for r in R_SWEEP:
        allocation = scheduler.allocate(loads, over_provision=r)
        servers = build_fleet(allocation, table, models, workloads)
        sim = FleetSimulator(
            servers,
            policy="least",
            sla_ms=sla,
            seed=SEED,
            faults=faults,
            retries=2,
        )
        result = sim.run(trace, warmup_s=DURATION_S * 0.05)
        frontier.append(
            {
                "r": r,
                "servers": allocation.total_servers,
                "provisioned_w": allocation.provisioned_power_w(table),
                "drawn_w": result.avg_power_w,
                "service_availability": service_availability(result),
                "uptime_availability": result.availability,
                "p99_ms": result.per_model[MODEL].p99_ms,
            }
        )
    outcome = provision_fault_aware(
        scheduler,
        table,
        models,
        workloads,
        trace,
        loads,
        faults,
        sla_ms=sla,
        target_availability=TARGET,
        baseline_r=0.05,
        policy="least",
        retries=2,
        seed=SEED,
        warmup_s=DURATION_S * 0.05,
        r_tol=0.05,
    )
    return frontier, outcome


@pytest.mark.slow
def test_fault_aware_provisioning_frontier(benchmark, show, record):
    frontier, outcome = run_once(benchmark, _sweep)

    rows = [
        [
            f"{pt['r']:.2f}",
            pt["servers"],
            f"{pt['provisioned_w'] / 1e3:.2f}",
            f"{pt['drawn_w'] / 1e3:.2f}",
            f"{pt['service_availability'] * 100:.3f}%",
            f"{pt['uptime_availability'] * 100:.2f}%",
            f"{pt['p99_ms']:.1f}",
        ]
        for pt in frontier
    ]
    show(
        format_table(
            ["R", "servers", "prov kW", "drawn kW", "svc avail", "uptime", "p99 ms"],
            rows,
            title=(
                "power vs availability across R "
                f"(rack outages, target {TARGET * 100:.1f}%)"
            ),
        )
        + "\n\n"
        + outcome.format()
    )
    record(
        {
            "frontier": frontier,
            "chosen_r": outcome.chosen_r,
            "converged": outcome.converged,
            "power_delta_w": outcome.power_delta_w,
            "standby_power_w": outcome.standby_power_w,
        }
    )

    # The frontier bends the right way.
    assert (
        frontier[-1]["service_availability"] >= frontier[0]["service_availability"]
    )
    powers = [pt["provisioned_w"] for pt in frontier]
    assert powers == sorted(powers), "provisioned power must rise with R"

    # The search lands on (or below) the cheapest swept rate that works.
    assert outcome.converged
    assert service_availability(outcome.result) >= TARGET
    meeting = [pt for pt in frontier if pt["service_availability"] >= TARGET]
    assert meeting, "some swept R must meet the target for this scenario"
    assert outcome.provisioned_power_w <= meeting[0]["provisioned_w"] + 1e-6
