"""Fig. 5: operator-worker idle time from graph dependencies.

Replays the Fig. 5 experiment: execute each Table I model graph at
batch 256 with 1-4 parallel operator workers and measure the idle
fraction of worker time.  The paper reports 25-74% idle cycles for 2-4
workers, caused by dependency stalls (Predict-FC waits on Bottom-FC and
the SparseNet).
"""

from __future__ import annotations

from _shared import MODEL_ORDER, model
from conftest import run_once

from repro.analysis import format_table
from repro.hardware import CPU_T2, DDR4_T2
from repro.perf import CpuOpModel, list_schedule

BATCH = 256


def _run_fig5():
    cpu = CpuOpModel(CPU_T2, DDR4_T2)
    rows = []
    for name in MODEL_ORDER:
        graph = model(name).graph
        latencies = {n.name: cpu.op_timing(n.op, BATCH).latency_s for n in graph}
        idle = [
            round(list_schedule(graph, latencies, workers).idle_fraction * 100, 1)
            for workers in (1, 2, 3, 4)
        ]
        serial_ms = round(list_schedule(graph, latencies, 1).makespan_s * 1e3, 2)
        rows.append([name, serial_ms, *idle])
    return rows


def test_fig5_op_worker_idle(benchmark, show):
    rows = run_once(benchmark, _run_fig5)
    show(
        format_table(
            ["model", "serial_ms", "idle%@1", "idle%@2", "idle%@3", "idle%@4"],
            rows,
            title=f"Fig. 5 -- operator-worker idle time (batch {BATCH})",
        )
    )
    for row in rows:
        name, _, i1, i2, i3, i4 = row
        assert i1 == 0.0
        assert i4 >= i2 - 1e-9
        if name != "MT-WnD":  # independent task towers pack well
            assert 20.0 < i4 < 80.0  # paper: 25-74%
