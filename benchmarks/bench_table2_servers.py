"""Table II: the ten heterogeneous server configurations.

Regenerates the Table II inventory (composition, cores, memory,
bandwidth, TDP, availability) and benchmarks evaluator construction,
which includes building the NMP latency LUT for NMP-equipped types.
"""

from __future__ import annotations

from _shared import evaluator
from conftest import run_once

from repro.analysis import format_table
from repro.hardware import SERVER_AVAILABILITY, SERVER_TYPES
from repro.sim import ServerEvaluator


def _build_table2_rows():
    rows = []
    for name, server in SERVER_TYPES.items():
        rows.append(
            [
                name,
                server.label,
                server.cpu.cores,
                round(server.memory.capacity_bytes / 1e9),
                round(server.memory.nmp_gather_reduce_bw_bytes / 1e9, 1),
                round(server.gpu.peak_flops / 1e12, 1) if server.gpu else 0.0,
                round(server.tdp_w),
                SERVER_AVAILABILITY[name],
            ]
        )
    return rows


def test_table2_server_types(benchmark, show):
    rows = run_once(benchmark, _build_table2_rows)
    show(
        format_table(
            [
                "type",
                "composition",
                "cores",
                "mem_GB",
                "gather_GB/s",
                "gpu_TFLOPs",
                "TDP_W",
                "avail",
            ],
            rows,
            title="Table II -- heterogeneous server types (N1-N10)",
        )
    )
    assert len(rows) == 10
    assert sum(r[-1] for r in rows) == 257
    by_name = {r[0]: r for r in rows}
    # NMP rank parallelism scales the gather-reduce bandwidth.
    assert by_name["T5"][4] > 3 * by_name["T3"][4]


def test_table2_evaluator_construction(benchmark):
    """Includes the offline NMP-LUT build for the NMPx8 type."""
    result = benchmark(lambda: ServerEvaluator(SERVER_TYPES["T5"]))
    assert result.server.has_nmp
