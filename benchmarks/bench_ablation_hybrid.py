"""Ablation: hybrid host + accelerator serving (Fig. 10d extension).

The paper notes the host cores left over by an accelerator mapping can
serve additional inference threads.  This ablation measures how much
latency-bounded throughput the hybrid path adds on the CPU+GPU server
for each model, and its energy-efficiency cost (the host runs hot).
"""

from __future__ import annotations

from _shared import MODEL_ORDER, evaluator, model, workload
from conftest import run_once

from repro.analysis import format_table
from repro.scheduling import GradientSearch, HybridSearch


def _run_ablation():
    rows = []
    for name in MODEL_ORDER:
        ev = evaluator("T7")
        m = model(name)
        wl = workload(name)
        space = GradientSearch(ev, m, wl)
        gpu_result = space.search_gpu_model_based().merge(space.search_gpu_sd())
        if not gpu_result.feasible or not gpu_result.plan.placement.uses_gpu:
            rows.append([name, 0, 0, float("nan"), float("nan"), "no GPU plan"])
            continue
        hybrid_plan, hybrid_perf = HybridSearch(ev, m, wl).search(gpu_result.plan)
        if hybrid_plan is None:
            rows.append(
                [
                    name,
                    round(gpu_result.perf.qps),
                    round(gpu_result.perf.qps),
                    1.0,
                    1.0,
                    "no spare cores",
                ]
            )
            continue
        rows.append(
            [
                name,
                round(gpu_result.perf.qps),
                round(hybrid_perf.qps),
                round(hybrid_perf.qps / gpu_result.perf.qps, 2),
                round(
                    hybrid_perf.qps_per_watt / gpu_result.perf.qps_per_watt, 2
                ),
                hybrid_plan.host.describe(),
            ]
        )
    return rows


def test_ablation_hybrid_serving(benchmark, show):
    rows = run_once(benchmark, _run_ablation)
    show(
        format_table(
            [
                "model",
                "GPU-only QPS",
                "hybrid QPS",
                "QPS gain",
                "QPS/W ratio",
                "host path",
            ],
            rows,
            title="Ablation -- hybrid host+accelerator serving on T7",
        )
    )
    gains = {r[0]: r[3] for r in rows if r[3] == r[3]}
    # Hybrid never loses throughput and helps at least one model.
    assert all(g >= 0.99 for g in gains.values())
    assert any(g > 1.1 for g in gains.values())
