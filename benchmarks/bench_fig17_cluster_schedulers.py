"""Fig. 17: NH vs greedy vs Hercules on the accelerated fleet.

Replays the Day-D2 snapshot (20% of traffic shifted to the new
DIN/DIEN/MT-WnD models) through the three cluster schedulers on the
full Table II fleet and reports provisioned power and activated
capacity over the day.

Paper result: greedy saves 50.8%/42.7% (peak/average) provisioned
power over NH; Hercules saves a further 23.7%/9.1% over greedy by
solving the global allocation LP.
"""

from __future__ import annotations

from _shared import MODEL_ORDER, full_table
from conftest import run_once

from repro.analysis import format_series, format_table
from repro.cluster import (
    ClusterManager,
    GreedyScheduler,
    HerculesClusterScheduler,
    NHScheduler,
    synchronous_traces,
)
from repro.hardware import SERVER_AVAILABILITY

#: Day-D2 peak loads: ~80% of traffic on the DLRM family, 20% shifted
#: to the newer models, scaled so the fleet is stressed at peak but
#: not exhausted (the regime where scheduler quality matters).
DAY_D2_PEAKS = {
    "DLRM-RMC1": 60_000.0,
    "DLRM-RMC2": 4_000.0,
    "DLRM-RMC3": 25_000.0,
    "DIN": 8_000.0,
    "DIEN": 6_000.0,
    "MT-WnD": 4_000.0,
}


def _run_fig17():
    table = full_table()
    fleet = dict(SERVER_AVAILABILITY)
    traces = synchronous_traces(DAY_D2_PEAKS)
    days = {}
    for policy in (NHScheduler, GreedyScheduler, HerculesClusterScheduler):
        manager = ClusterManager(policy(table, fleet), over_provision=0.05)
        days[policy.__name__] = manager.run_day(traces)
    return days


def test_fig17_cluster_provisioning(benchmark, show):
    days = run_once(benchmark, _run_fig17)
    rows = []
    for name, day in days.items():
        rows.append(
            [
                name,
                round(day.peak_power_w / 1e3, 2),
                round(day.average_power_w / 1e3, 2),
                day.peak_servers,
                round(day.average_servers, 1),
                day.any_shortfall,
            ]
        )
    show(
        format_table(
            ["scheduler", "peak kW", "avg kW", "peak servers", "avg servers", "shortfall"],
            rows,
            title="Fig. 17 -- Day-D2 provisioning on the accelerated fleet",
        )
    )
    hercules_day = days["HerculesClusterScheduler"]
    show(
        format_series(
            hercules_day.power_series(),
            x_label="hour",
            y_label="provisioned kW",
            title="Fig. 17(d) -- Hercules provisioned power over Day-D2",
        )
    )
    nh = days["NHScheduler"]
    greedy = days["GreedyScheduler"]
    hercules = days["HerculesClusterScheduler"]
    assert not greedy.any_shortfall and not hercules.any_shortfall
    # Greedy's heterogeneity-awareness is the first big win over NH
    # (paper: 50.8% peak / 42.7% average).
    assert greedy.peak_power_w < 0.6 * nh.peak_power_w
    assert greedy.average_power_w < 0.75 * nh.average_power_w
    # Hercules' LP provisioning beats greedy (paper: 23.7% / 9.1%).
    assert hercules.peak_power_w < greedy.peak_power_w
    assert hercules.average_power_w < greedy.average_power_w
    # Diurnal shape survives in the provisioned power.
    series = dict(hercules.power_series())
    assert series[20.0] > series[8.0]
