"""Ablation: provisioning interval and over-provision rate R.

Section IV-C: provisioning runs at coarse intervals (tens of minutes)
to amortize workload setup, and the over-provision rate R absorbs the
load growth within an interval.  This ablation sweeps both knobs on
the Fig. 8 fleet and reports the power/churn trade-off:

- longer intervals need a larger estimated R (steeper intra-interval
  climbs) and therefore more provisioned power;
- shorter intervals track the diurnal curve tighter but churn servers
  more often.
"""

from __future__ import annotations

from _shared import small_table
from conftest import run_once

from repro.analysis import format_table
from repro.cluster import (
    ClusterManager,
    HerculesClusterScheduler,
    estimate_over_provision,
    synchronous_traces,
)

FLEET = {"T2": 70, "T3": 15, "T7": 5}
PEAKS = {"DLRM-RMC1": 20_000.0, "DLRM-RMC2": 4_000.0}
INTERVALS_MIN = (15.0, 30.0, 60.0, 120.0)


def _run_ablation():
    table = small_table()
    traces = synchronous_traces(PEAKS)
    rows = []
    for interval in INTERVALS_MIN:
        rate = estimate_over_provision(traces, interval)
        manager = ClusterManager(
            HerculesClusterScheduler(table, dict(FLEET)),
            interval_minutes=interval,
            over_provision=rate,
        )
        day = manager.run_day(traces)
        total_churn = sum(sum(r.churn.values()) for r in day.records)
        rows.append(
            [
                interval,
                round(rate * 100, 1),
                round(day.peak_power_w / 1e3, 2),
                round(day.average_power_w / 1e3, 2),
                total_churn,
                day.any_shortfall,
            ]
        )
    return rows


def test_ablation_provisioning_interval(benchmark, show):
    rows = run_once(benchmark, _run_ablation)
    show(
        format_table(
            [
                "interval min",
                "estimated R %",
                "peak kW",
                "avg kW",
                "day churn (servers)",
                "shortfall",
            ],
            rows,
            title="Ablation -- provisioning interval vs over-provision rate",
        )
    )
    rates = [r[1] for r in rows]
    churn = [r[4] for r in rows]
    avg_power = [r[3] for r in rows]
    # Longer intervals need a larger R ...
    assert rates == sorted(rates)
    # ... and pay more average provisioned power ...
    assert avg_power[-1] >= avg_power[0]
    # ... while short intervals churn more servers.
    assert churn[0] >= churn[-1]
    assert not any(r[5] for r in rows)
