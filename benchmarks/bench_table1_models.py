"""Table I: the six production recommendation model configurations.

Regenerates the Table I summary (tables, rows, pooling, footprint,
per-item compute/memory intensity, SLA) from the model zoo and checks
the Fig. 1 quadrant structure: DLRM-RMC1/RMC2 memory-dominated,
RMC3/MT-WnD/DIN/DIEN compute-dominated.
"""

from __future__ import annotations

from _shared import MODEL_ORDER, model
from conftest import run_once

from repro.analysis import format_table
from repro.models import ModelVariant, build_model


def _build_table1_rows():
    rows = []
    for name in MODEL_ORDER:
        m = model(name)
        d = m.describe()
        rows.append(
            [
                d["model"],
                d["service"],
                d["tables"],
                d["rows_per_table"],
                d["pooling"],
                round(d["weight_gb"], 1),
                round(d["flops_per_item"] / 1e6, 2),
                round(d["mem_bytes_per_item"] / 1e3, 1),
                d["sla_ms"],
            ]
        )
    return rows


def test_table1_model_zoo(benchmark, show):
    rows = run_once(benchmark, _build_table1_rows)
    show(
        format_table(
            [
                "model",
                "service",
                "tables",
                "rows/table",
                "pooling",
                "weights_GB",
                "MFLOP/item",
                "mem_KB/item",
                "SLA_ms",
            ],
            rows,
            title="Table I -- production-scale model configurations",
        )
    )
    by_name = {r[0]: r for r in rows}
    # Fig. 1 quadrants: compute intensity (MFLOP/item).
    assert by_name["MT-WnD"][6] > by_name["DLRM-RMC1"][6]
    assert by_name["DIN"][6] > by_name["DLRM-RMC1"][6]
    # Memory intensity (KB/item): RMC2's 100 tables dominate.
    assert by_name["DLRM-RMC2"][7] == max(r[7] for r in rows)


def test_table1_build_cost(benchmark):
    """Model construction is cheap enough to rebuild per experiment."""
    result = benchmark(lambda: build_model("DLRM-RMC2", ModelVariant.PROD))
    assert result.graph is not None
