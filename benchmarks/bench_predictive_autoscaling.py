"""Predictive vs reactive autoscaling vs the paper's fixed ``R``.

The paper buys diurnal headroom with a fixed over-provision rate ``R``
-- every provisioned replica burns power all day waiting for the
evening peak.  The fleet's reactive autoscaler recovers that power by
provisioning at the trough and activating standbys when violations
appear -- *after* the SLA has already been missed.  The predictive
autoscaler closes the gap from the third side: it forecasts the ramp
from the arrival stream's own windowed rate history and activates
standbys ahead of it.

This bench replays one compressed diurnal day (with burst noise)
through the identical fleet under the three regimes and draws the
power/SLA frontier:

- ``fixed-R``: all replicas active from t=0 (the paper-style static
  provisioning at peak coverage);
- ``reactive``: trough base + standbys, violation-triggered;
- ``predictive``: same fleet, rate-trend forecast with a 2-window
  lead.

Asserted ordering (the PR's acceptance criterion): predictive beats
reactive on SLA violations during the ramp at equal-or-lower fleet
power, and lands between reactive and fixed-R on power.

Marked ``slow``: three full fleet replays plus profiling.
"""

from __future__ import annotations

import pytest

from _shared import model, workload
from conftest import run_once

from repro.analysis import format_table
from repro.cluster.state import Allocation
from repro.fleet import (
    FleetSimulator,
    PredictiveAutoscaler,
    ReactiveAutoscaler,
    build_fleet,
)
from repro.hardware import SERVER_TYPES
from repro.scheduling import OfflineProfiler
from repro.traces import DiurnalProcess, FleetArrivals

MODEL = "DLRM-RMC1"
DURATION_S = 16.0
WINDOW_S = 0.25
SEED = 3
BASE_REPLICAS = 3
STANDBY_REPLICAS = 9
# Diurnal peak sized to ~70% of the full (base + standby) fleet: the
# trough base runs comfortable, the peak needs most standbys online.
PEAK_FRACTION = 0.7


def _build():
    m = model(MODEL)
    models = {MODEL: m}
    workloads = {MODEL: workload(MODEL)}
    table = OfflineProfiler().profile([SERVER_TYPES["T2"]], [m])
    qps1 = table.qps("T2", MODEL)
    total = BASE_REPLICAS + STANDBY_REPLICAS
    arrivals = FleetArrivals(
        {
            MODEL: DiurnalProcess(
                workloads[MODEL],
                PEAK_FRACTION * total * qps1,
                DURATION_S,
                steps=64,
                trough_ratio=0.12,
                peak_position=0.5,
                sharpness=2.0,
                noise=0.05,
            )
        },
        seed=SEED,
    )
    return models, workloads, table, arrivals


def _run_regimes():
    models, workloads, table, arrivals = _build()
    sla = {MODEL: models[MODEL].sla_ms}

    base = Allocation()
    base.add("T2", MODEL, BASE_REPLICAS)
    standby = Allocation()
    standby.add("T2", MODEL, STANDBY_REPLICAS)
    full = Allocation()
    full.add("T2", MODEL, BASE_REPLICAS + STANDBY_REPLICAS)

    def replay(allocation, standby_alloc, autoscaler):
        servers = build_fleet(
            allocation, table, models, workloads, standby=standby_alloc
        )
        sim = FleetSimulator(
            servers, policy="least", sla_ms=sla, autoscaler=autoscaler, seed=1
        )
        return sim.run(arrivals, warmup_s=DURATION_S * 0.04)

    return {
        "fixed-R": replay(full, None, None),
        "reactive": replay(
            base,
            standby,
            ReactiveAutoscaler(sla, window_s=WINDOW_S, cooldown_s=2 * WINDOW_S),
        ),
        "predictive": replay(
            base,
            standby,
            PredictiveAutoscaler(
                sla,
                window_s=WINDOW_S,
                lead_windows=2,
                history_windows=8,
                target_utilization=0.9,
                drain_utilization=0.7,
            ),
        ),
    }


@pytest.mark.slow
def test_predictive_autoscaling_frontier(benchmark, show, record):
    results = run_once(benchmark, _run_regimes)
    rows = []
    for regime, res in results.items():
        stats = res.per_model[MODEL]
        rows.append(
            [
                regime,
                stats.completed,
                round(stats.p99_ms, 1),
                f"{stats.violation_rate * 100:.2f}%",
                round(res.avg_power_w, 1),
                len(res.scale_events),
                res.active_servers,
            ]
        )
    show(
        format_table(
            ["regime", "served", "p99 ms", "viol", "avg power W", "scale events", "active"],
            rows,
            title=(
                "Power/SLA frontier over one diurnal ramp "
                f"(peak at {PEAK_FRACTION:.0%} of full-fleet capacity)"
            ),
        )
    )
    record(
        {
            regime: {
                "completed": res.per_model[MODEL].completed,
                "p99_ms": res.per_model[MODEL].p99_ms,
                "violation_rate": res.per_model[MODEL].violation_rate,
                "avg_power_w": res.avg_power_w,
                "scale_events": len(res.scale_events),
            }
            for regime, res in results.items()
        }
    )

    fixed = results["fixed-R"]
    reactive = results["reactive"]
    predictive = results["predictive"]
    v = lambda r: r.per_model[MODEL].violation_rate  # noqa: E731

    # Fixed-R is the SLA gold standard and the power ceiling.
    assert v(fixed) <= v(predictive)
    assert fixed.avg_power_w > reactive.avg_power_w
    assert fixed.avg_power_w > predictive.avg_power_w
    # The acceptance ordering: predictive takes strictly fewer SLA
    # violations than reactive during the ramp, at equal-or-lower
    # fleet power (the forecast drains the downslope as early as it
    # provisions the upslope).
    assert v(predictive) < v(reactive)
    assert predictive.avg_power_w <= reactive.avg_power_w * 1.02
    # Both autoscaled regimes actually scaled.
    assert reactive.scale_events and predictive.scale_events
