"""Scale-out scenario pack: sharded replay and sketch-backed reports.

Three operational stories the scale-out machinery of PR 8 exists for,
each replayed end to end (all slow lane):

1. **Flash crowd** — MMPP storms hammer a four-model fleet at twice
   the steady rate.  The replay runs sharded by model across a
   process pool (`repro.fleet.run_fleet_sharded`) and the merged
   report is asserted equal, float for float, to the single-process
   engine — the bit-identity contract at bench scale, with the shard
   speedup recorded for multi-core hosts.
2. **Model-launch day** — a new model ramps from a trickle to full
   capacity while the rest of the fleet serves its normal day; a
   reactive autoscaler activates standbys along the ramp.  Sharded
   and single-process replays must agree on the full scale-event
   timeline, not just the aggregates.
3. **Multi-day diurnal with faults** — three compressed days of
   diurnal traffic under stochastic crashes.  Fault injection cannot
   shard (cross-model dead domains), so this replay runs
   single-process with ``percentile_mode="sketch"``: the light fault
   loop plus P² report sketches keep memory O(models) where exact
   mode would hold every completion — the bench asserts the RSS
   growth stays under a budget a (~180 MB) exact-mode sample list
   would blow through, which is why this replay only *completes*
   (within the budget) in sketch mode.
"""

from __future__ import annotations

import os

import pytest

from _shared import SLA_MS, model, profile_table, workload
from conftest import run_once

from repro.analysis import format_table
from repro.cluster.state import Allocation
from repro.fleet import (
    FaultSchedule,
    FleetSimulator,
    ReactiveAutoscaler,
    build_fleet,
)
from repro.fleet.sharded import run_fleet_sharded
from repro.traces import (
    DiurnalProcess,
    FleetArrivals,
    MMPPProcess,
    PiecewisePoissonProcess,
)

SEED = 5
MODELS = ("DIN", "DLRM-RMC1", "DLRM-RMC2", "DLRM-RMC3")
SERVER_TYPES_USED = ("T2", "T3", "T7")
#: Replicas per (server type, model) — every model on two types so a
#: domain has somewhere to scale, four models so four shards are real.
REPLICAS = {
    ("T2", "DLRM-RMC1"): 3,
    ("T3", "DLRM-RMC1"): 2,
    ("T2", "DLRM-RMC2"): 3,
    ("T3", "DLRM-RMC2"): 2,
    ("T3", "DLRM-RMC3"): 2,
    ("T7", "DLRM-RMC3"): 2,
    ("T2", "DIN"): 2,
    ("T7", "DIN"): 2,
}


def _fleet():
    table = profile_table(SERVER_TYPES_USED, MODELS)
    models = {m: model(m) for m in MODELS}
    workloads = {m: workload(m) for m in MODELS}
    allocation = Allocation()
    for (srv, name), count in sorted(REPLICAS.items()):
        allocation.add(srv, name, count)
    capacity = {
        n: sum(
            c * table.qps(srv, m)
            for (srv, m), c in allocation.counts.items()
            if m == n
        )
        for n in MODELS
    }
    sla = {m: SLA_MS[m] for m in MODELS}
    return table, models, workloads, allocation, capacity, sla


def _walltime(fn):
    import time

    start = time.perf_counter()
    out = fn()
    return time.perf_counter() - start, out


@pytest.mark.slow
def test_flash_crowd_sharded_replay(benchmark, show, record):
    """Storm traffic, 4 shards vs 1 process: reports must be equal."""
    table, models, workloads, allocation, capacity, sla = _fleet()
    duration = 6.0
    stream = FleetArrivals(
        {
            # Quiet at 40% of capacity, storms at 120% — the crowd
            # briefly exceeds what the fleet can serve.
            n: MMPPProcess(
                workloads[n],
                [0.4 * capacity[n], 1.2 * capacity[n]],
                [1.2, 0.3],
                duration,
            )
            for n in MODELS
        },
        seed=SEED,
    )

    def replay(shards):
        return _walltime(
            lambda: run_fleet_sharded(
                allocation, table, models, workloads, stream,
                shards=shards, policy="rr", sla_ms=sla, seed=SEED,
                warmup_s=duration * 0.05, core="python",
            )
        )

    def run():
        single = replay(1)
        sharded = replay(4)
        return single, sharded

    (wall_1, result_1), (wall_4, result_4) = run_once(benchmark, run)

    assert result_4.to_dict() == result_1.to_dict(), (
        "sharded flash-crowd replay diverged from the single process"
    )

    rows = [
        [
            s.model,
            s.completed,
            s.dropped,
            round(s.p99_ms, 1),
            round(s.sla_ms),
            f"{s.violation_rate * 100:.2f}%",
        ]
        for s in sorted(result_4.per_model.values(), key=lambda s: s.model)
    ]
    show(
        "Flash crowd, 4 shards == 1 process (bit-identical)\n"
        + format_table(
            ["model", "served", "dropped", "p99 ms", "SLA ms", "viol"], rows
        )
        + f"\nwall: single {wall_1:.2f}s, 4 shards {wall_4:.2f}s "
        f"(speedup {wall_1 / wall_4:.2f}x on {os.cpu_count()} cpus)"
    )
    record(
        {
            "flash_crowd": {
                "sharded_merge_equal": True,
                "wall_single_s": wall_1,
                "wall_sharded_s": wall_4,
                "speedup_shards": wall_1 / wall_4,
                "cpus": os.cpu_count(),
                "completed": result_4.total_completed,
                "dropped": result_4.total_dropped,
            }
        }
    )


@pytest.mark.slow
def test_model_launch_day_sharded(benchmark, show, record):
    """A model ramps from a trickle to beyond its base capacity while
    the fleet serves a normal day; the autoscaler's activation
    timeline must interleave identically sharded and unsharded."""
    table, models, workloads, allocation, capacity, sla = _fleet()
    duration = 8.0
    launched = "DIN"
    # The launch ramp: 5% -> 30% -> 70% -> 120% of base capacity in
    # equal quarters.  Established models run a steady diurnal day.
    ramp = [
        (level * capacity[launched], duration / 4)
        for level in (0.05, 0.3, 0.7, 1.2)
    ]
    processes = {
        n: DiurnalProcess(
            workloads[n], 0.8 * capacity[n], duration, steps=32, noise=0.05
        )
        for n in MODELS
        if n != launched
    }
    processes[launched] = PiecewisePoissonProcess(workloads[launched], ramp)
    stream = FleetArrivals(processes, seed=SEED)

    standby = Allocation()
    standby.add("T2", launched, 2)
    standby.add("T7", launched, 1)
    standby.add("T2", "DLRM-RMC1", 1)

    def replay(shards):
        return run_fleet_sharded(
            allocation, table, models, workloads, stream,
            shards=shards, policy="least", sla_ms=sla,
            autoscaler=ReactiveAutoscaler(sla, window_s=0.25, cooldown_s=0.5),
            seed=SEED, warmup_s=duration * 0.02, standby=standby,
            core="python",
        )

    def run():
        return replay(1), replay(4)

    result_1, result_4 = run_once(benchmark, run)

    assert result_4.to_dict() == result_1.to_dict(), (
        "sharded launch-day replay diverged from the single process"
    )
    activations = [
        ev for ev in result_4.scale_events
        if ev.model == launched and ev.action == "activate"
    ]
    assert activations, "the launch ramp must activate standby capacity"
    timeline = [
        (round(ev.time_s, 2), ev.model, ev.action)
        for ev in result_4.scale_events
    ]
    assert timeline == [
        (round(ev.time_s, 2), ev.model, ev.action)
        for ev in result_1.scale_events
    ]

    launched_stats = result_4.per_model[launched]
    show(
        f"Model-launch day ({launched}): {len(activations)} standby "
        f"activation(s), {len(result_4.scale_events)} scale events total\n"
        f"{launched} served {launched_stats.completed} "
        f"(p99 {launched_stats.p99_ms:.1f} ms vs SLA "
        f"{launched_stats.sla_ms:.0f} ms)\n"
        "sharded timeline == single-process timeline: yes"
    )
    record(
        {
            "model_launch_day": {
                "sharded_merge_equal": True,
                "launch_activations": len(activations),
                "scale_events": len(result_4.scale_events),
                "launched_completed": launched_stats.completed,
            }
        }
    )


@pytest.mark.slow
def test_multiday_diurnal_faults_sketch_mode(benchmark, show, record):
    """Three compressed days under stochastic crashes, sketch reports.

    Fault replays cannot shard, so the memory ceiling is the whole
    point here: the light fault loop (no retries — victims fail) plus
    ``percentile_mode="sketch"`` holds O(models) report state.  The
    replay streams ~1.8M queries; an exact-mode report would append
    every completion (~180 MB of tuples and list at this scale, GBs
    at production scale) where the sketch run must stay inside a
    64 MiB RSS-growth budget.
    """
    try:
        import resource
    except ImportError:
        pytest.skip("resource module unavailable (non-POSIX)")

    table, models, workloads, base_allocation, _, sla = _fleet()
    # A 4x fleet and longer compressed days push the replay past a
    # million queries — the volume where report memory starts to bite.
    allocation = Allocation()
    for (srv, name), count in sorted(base_allocation.counts.items()):
        allocation.add(srv, name, count * 4)
    capacity = {
        n: sum(
            c * table.qps(srv, m)
            for (srv, m), c in allocation.counts.items()
            if m == n
        )
        for n in MODELS
    }
    days, day_s = 3, 8.0
    rho = 0.7
    stream = FleetArrivals(
        {
            n: DiurnalProcess(
                workloads[n], rho * capacity[n], day_s,
                steps=48, noise=0.1, days=days,
            )
            for n in MODELS
        },
        seed=SEED,
    )
    faults = FaultSchedule.parse("random:crash_mtbf=18,mttr=1.5")
    servers = build_fleet(allocation, table, models, workloads)
    # Weighted routing splits load in proportion to replica capacity;
    # rr would saturate the slowest server type at this utilization
    # and the resulting backlog (in-flight queries) would dwarf the
    # report memory this bench is measuring.
    sim = FleetSimulator(
        servers, policy="weighted", sla_ms=sla, seed=SEED, core="python",
        faults=faults, percentile_mode="sketch",
    )

    def run():
        rss_before = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        result = sim.run(stream, warmup_s=day_s * 0.05)
        rss_after = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        return result, rss_after - rss_before

    result, rss_delta_kb = run_once(benchmark, run)

    budget_kb = 65_536
    queries = result.total_completed + result.total_failed
    exact_estimate_kb = queries * 100 // 1024  # ~100 B/completion held
    assert rss_delta_kb <= budget_kb, (
        f"sketch-mode multi-day replay grew RSS by {rss_delta_kb} KiB "
        f"(budget {budget_kb} KiB)"
    )
    assert queries > 1_000_000, "the bench must replay a multi-day volume"
    assert result.availability < 1.0, "crashes must cost availability"
    assert result.phases == ()  # sketch mode skips phase breakdowns

    show(
        f"Multi-day diurnal + faults, sketch mode: {queries:,} queries "
        f"over {days} compressed days\n"
        f"RSS growth {rss_delta_kb:,} KiB (budget {budget_kb:,} KiB; an "
        f"exact-mode sample list alone would hold ~{exact_estimate_kb:,} "
        "KiB)\n"
        f"availability {result.availability * 100:.2f}%, worst violation "
        f"rate {result.worst_violation_rate * 100:.2f}%"
    )
    record(
        {
            "multiday_sketch": {
                "queries": queries,
                "rss_delta_kb": rss_delta_kb,
                "rss_budget_kb": budget_kb,
                "exact_mode_estimate_kb": exact_estimate_kb,
                "availability": result.availability,
                "fault_events": len(result.fault_events),
            }
        }
    )
