"""Fig. 2(b-d): workload characterization.

Regenerates (b) the heavy-tail query-size histogram with p75/p95/p99
markers, (c) the pooling-factor distribution across 15 embedding tables
over 500 queries, and (d) the synchronous diurnal load of two services.
"""

from __future__ import annotations

import numpy as np

from conftest import run_once

from repro.analysis import format_series, format_table
from repro.cluster import synchronous_traces
from repro.sim import PoolingFactorDistribution, QuerySizeDistribution


def _query_size_histogram():
    dist = QuerySizeDistribution(mean=120.0, sigma=0.8)
    rng = np.random.default_rng(0)
    samples = dist.sample(rng, 100_000)
    edges = [1, 25, 50, 100, 200, 400, 800, 1600, 2048]
    hist, _ = np.histogram(samples, bins=edges)
    return dist, edges, hist / hist.sum()


def test_fig2b_query_size_tail(benchmark, show):
    dist, edges, freq = run_once(benchmark, _query_size_histogram)
    rows = [
        [f"{lo}-{hi}", round(float(f), 4)]
        for lo, hi, f in zip(edges[:-1], edges[1:], freq)
    ]
    show(
        format_table(
            ["size bin", "frequency"],
            rows,
            precision=4,
            title=(
                "Fig. 2(b) -- query-size histogram "
                f"(p50={dist.percentile(50)}, p75={dist.percentile(75)}, "
                f"p95={dist.percentile(95)}, p99={dist.percentile(99)})"
            ),
        )
    )
    # Heavy tail: p99 well beyond p75, sizes span 10..1000+.
    assert dist.percentile(99) > 3 * dist.percentile(75)
    assert dist.percentile(99) >= 500


def _pooling_distribution():
    dist = PoolingFactorDistribution(mean=80.0, cv=0.6, spread=0.5, num_tables=15)
    rng = np.random.default_rng(1)
    samples = dist.sample(rng, queries=500)
    return samples


def test_fig2c_pooling_factors(benchmark, show):
    samples = run_once(benchmark, _pooling_distribution)
    rows = []
    for table_id in range(samples.shape[1]):
        col = samples[:, table_id]
        rows.append(
            [
                f"emb{table_id}",
                round(float(col.mean()), 1),
                round(float(np.percentile(col, 5)), 1),
                round(float(np.percentile(col, 95)), 1),
            ]
        )
    show(
        format_table(
            ["table", "mean pooling", "p5", "p95"],
            rows,
            title="Fig. 2(c) -- pooling factors of 15 tables over 500 queries",
        )
    )
    means = samples.mean(axis=0)
    # Large cross-table variance and per-query spread.
    assert means.max() / means.min() > 2.0
    assert samples.shape == (500, 15)


def test_fig2d_diurnal_loads(benchmark, show):
    traces = run_once(
        benchmark,
        lambda: synchronous_traces({"service-1": 50_000, "service-2": 30_000}),
    )
    series1 = traces["service-1"].series(interval_minutes=60.0)
    show(
        format_series(
            series1,
            x_label="hour",
            y_label="load (QPS)",
            title="Fig. 2(d) -- diurnal load of service-1 (service-2 synchronous)",
        )
    )
    for trace in traces.values():
        loads = [q for _, q in trace.series(60.0)]
        assert min(loads) < 0.5 * max(loads)  # >50% fluctuation
    # Synchronous peaks across services.
    assert traces["service-1"].peak_hour == traces["service-2"].peak_hour
