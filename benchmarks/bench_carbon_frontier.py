"""The emissions-vs-availability frontier of carbon-aware operation.

``provision_carbon_aware`` answers one point question -- the
lowest-carbon plan meeting an availability target.  This bench draws
the frontier behind that answer: one fleet, sized once to the target,
replayed with a carbon trace attached, then the *same* deferrable work
placed by every policy at several power caps.  Availability is held
equal by construction -- the realtime replay is identical across
policies (the differential lane pins it float-for-float), only the
batch-job placement moves -- so the table isolates what each policy's
time-shifting is worth in gCO2.

Asserted (structural -- wall times are not gated here):

- every policy conserves work (submitted == completed + suspended +
  dropped) and, uncapped, completes everything;
- the emission ordering ``no-wait >= lowest-carbon-slot >=
  carbon-waiting >= suspend-resume`` holds at every power cap where
  all policies complete the same work;
- carbon-waiting strictly beats no-wait on this diurnal grid (the
  headline the issue asks the bench to witness);
- the provisioning search converges, meets the target, and its chosen
  plan emits no more than the swept no-wait baseline.

Marked ``slow``: the search replays the fleet once per candidate
``R``; the policy sweep itself re-runs only the deferrable executor.
"""

from __future__ import annotations

import pytest

from _shared import SLA_MS, model, profile_table, workload
from conftest import run_once

from repro.analysis import format_table
from repro.carbon import (
    DEFERRABLE_POLICIES,
    CarbonTrace,
    DeferrableJob,
    run_deferrable,
)
from repro.carbon.accounting import realtime_power_profile
from repro.cluster import HerculesClusterScheduler
from repro.fleet import (
    FleetSimulator,
    build_fleet,
    build_fleet_trace,
    provision_carbon_aware,
    service_availability,
)

MODEL = "DLRM-RMC1"
DURATION_S = 3.0
SEED = 23
TARGET = 0.999
LOAD_UNITS = 4.0
FLEET = {"T2": 24}
#: One compressed "day" of grid intensity over the replay window.
CARBON = CarbonTrace.diurnal(
    base=350.0, swing=150.0, period_s=DURATION_S, steps=24
)
POWER_CAPS = (None, 9000.0)


def _jobs(horizon_s: float) -> tuple[DeferrableJob, ...]:
    """Four batch jobs with real slack, submitted through the day."""
    duration = horizon_s / 12.0
    return tuple(
        DeferrableJob(
            name=f"batch-{i}",
            submit_s=i * horizon_s / 6.0,
            duration_s=duration,
            power_w=900.0,
            deadline_s=i * horizon_s / 6.0 + duration * 5.0,
        )
        for i in range(4)
    )


def _sweep():
    models = {MODEL: model(MODEL)}
    workloads = {MODEL: workload(MODEL)}
    table = profile_table(("T2",), (MODEL,))
    tup = table.get("T2", MODEL)
    loads = {MODEL: LOAD_UNITS * tup.qps}
    trace = build_fleet_trace(
        workloads, {MODEL: [(loads[MODEL], DURATION_S)]}, seed=SEED
    )
    scheduler = HerculesClusterScheduler(table, dict(FLEET))
    sla = {MODEL: SLA_MS[MODEL]}
    warmup = DURATION_S * 0.05

    outcome = provision_carbon_aware(
        scheduler,
        table,
        models,
        workloads,
        trace,
        loads,
        CARBON,
        sla_ms=sla,
        jobs=_jobs(DURATION_S),
        power_caps=POWER_CAPS,
        target_availability=TARGET,
        policy="least",
        seed=SEED,
        warmup_s=warmup,
        r_tol=0.05,
    )
    assert outcome.converged, "the availability search must converge"
    assert service_availability(outcome.result) >= TARGET

    # The frontier proper: same fleet, same profile, every policy at
    # every cap -- only the deferrable placement moves.
    servers = build_fleet(outcome.allocation, table, models, workloads)
    sim = FleetSimulator(
        servers, policy="least", sla_ms=sla, seed=SEED, carbon=CARBON
    )
    replay = sim.run(trace, warmup_s=warmup)
    profile = realtime_power_profile(sim.servers)
    horizon = replay.duration_s + warmup
    jobs = _jobs(DURATION_S)

    frontier = []
    for cap in POWER_CAPS:
        for policy in DEFERRABLE_POLICIES:
            report = run_deferrable(
                jobs,
                CARBON,
                policy=policy,
                horizon_s=horizon,
                power_cap_w=cap,
                realtime_profile=profile,
            )
            assert (
                report.completed + report.suspended + report.dropped
                == report.submitted
            )
            frontier.append(
                {
                    "power_cap_w": cap,
                    "policy": policy,
                    "completed": report.completed,
                    "suspensions": report.suspension_events,
                    "deferrable_g": report.total_gco2,
                    "realtime_g": replay.carbon.realtime_g,
                    "total_g": replay.carbon.realtime_g + report.total_gco2,
                }
            )
    return frontier, outcome, replay


@pytest.mark.slow
def test_carbon_frontier_policy_ordering(benchmark, show, record):
    frontier, outcome, replay = run_once(benchmark, _sweep)

    rows = [
        [
            "none" if pt["power_cap_w"] is None else f"{pt['power_cap_w']:.0f}",
            pt["policy"],
            pt["completed"],
            pt["suspensions"],
            f"{pt['deferrable_g']:.4f}",
            f"{pt['total_g']:.4f}",
        ]
        for pt in frontier
    ]
    show(
        format_table(
            ["cap W", "policy", "done", "susp", "deferrable g", "total g"],
            rows,
            title=(
                "gCO2 by policy at equal availability "
                f"(target {TARGET * 100:.1f}%, chosen R={outcome.chosen_r:.3f})"
            ),
        )
        + "\n\n"
        + outcome.format()
    )
    record(
        {
            "frontier": frontier,
            "chosen_r": outcome.chosen_r,
            "chosen_policy": outcome.chosen_plan.policy
            if outcome.chosen_plan
            else None,
            "no_wait_g": outcome.no_wait_g,
            "total_g": outcome.total_g,
            "savings_g": outcome.deferral_savings_g,
        }
    )

    by_cap = {}
    for pt in frontier:
        by_cap.setdefault(pt["power_cap_w"], {})[pt["policy"]] = pt
    ladder = ("no-wait", "lowest-carbon-slot", "carbon-waiting", "suspend-resume")
    for cap, points in by_cap.items():
        if cap is None:
            assert all(
                pt["completed"] == len(_jobs(DURATION_S))
                for pt in points.values()
            ), "uncapped, every policy must complete every job"
        done = {pt["completed"] for pt in points.values()}
        if len(done) == 1:
            eps = 1e-9 * max(1.0, points["no-wait"]["deferrable_g"])
            for costlier, cheaper in zip(ladder, ladder[1:]):
                assert (
                    points[cheaper]["deferrable_g"]
                    <= points[costlier]["deferrable_g"] + eps
                ), f"{cheaper} out-emitted {costlier} at cap {cap}"

    uncapped = by_cap[None]
    assert (
        uncapped["carbon-waiting"]["deferrable_g"]
        < uncapped["no-wait"]["deferrable_g"]
    ), "carbon-waiting must beat no-wait on a diurnal grid"
    if outcome.chosen_plan is not None:
        assert outcome.total_g <= outcome.no_wait_g + outcome.result.carbon.realtime_g
