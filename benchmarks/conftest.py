"""Benchmark-harness configuration.

Each bench regenerates one paper table or figure: it runs the
experiment once under pytest-benchmark (wall-clock is informative, not
statistical) and registers the paper-style rows through the ``show``
fixture.  Registered tables are (a) written to
``benchmarks/results/<test>.txt``, (b) replayed in the terminal
summary, so they survive pytest's output capture and land in a tee'd
bench log.

Machine-readable results go through the ``record`` fixture, which
writes ``benchmarks/results/<test>.json`` -- the same schema family as
the repo-root ``BENCH_perf.json`` that ``python -m repro.cli bench``
maintains.  Everything under ``benchmarks/results/`` is a regenerable
artifact and stays untracked (see ``.gitignore``); only
``BENCH_perf.json`` at the repo root is committed, as the perf
baseline each PR defends.
"""

from __future__ import annotations

import json
import pathlib

import pytest

_RESULTS_DIR = pathlib.Path(__file__).parent / "results"
_TABLES: list[tuple[str, str]] = []


@pytest.fixture
def show(request):
    """Register a paper-style table/series for this bench."""

    def _show(text: str) -> None:
        _TABLES.append((request.node.name, text))
        _RESULTS_DIR.mkdir(exist_ok=True)
        path = _RESULTS_DIR / f"{request.node.name}.txt"
        with path.open("a") as fh:
            fh.write(text + "\n\n")
        print(text)

    # Start each test's result file fresh.
    _RESULTS_DIR.mkdir(exist_ok=True)
    (_RESULTS_DIR / f"{request.node.name}.txt").write_text("")
    return _show


@pytest.fixture
def record(request):
    """Write machine-readable results to ``results/<test>.json``.

    Call it with any JSON-serializable document (dict of metrics,
    list of rows, ...); repeated calls merge at the top level so a
    bench can record several named blocks.
    """
    _RESULTS_DIR.mkdir(exist_ok=True)
    path = _RESULTS_DIR / f"{request.node.name}.json"
    if path.exists():
        path.unlink()

    def _record(document: dict) -> None:
        merged = {}
        if path.exists():
            merged = json.loads(path.read_text())
        merged.update(document)
        path.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")

    return _record


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Replay every registered table after the test summary."""
    if not _TABLES:
        return
    terminalreporter.section("regenerated paper tables and figures")
    for name, text in _TABLES:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"--- {name} ---")
        terminalreporter.write_line(text)


def run_once(benchmark, fn):
    """Run an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
