"""Benchmark-harness configuration.

Each bench regenerates one paper table or figure: it runs the
experiment once under pytest-benchmark (wall-clock is informative, not
statistical) and registers the paper-style rows through the ``show``
fixture.  Registered tables are (a) written to
``benchmarks/results/<test>.txt`` and (b) replayed in the terminal
summary, so they survive pytest's output capture and land in a tee'd
bench log.
"""

from __future__ import annotations

import pathlib

import pytest

_RESULTS_DIR = pathlib.Path(__file__).parent / "results"
_TABLES: list[tuple[str, str]] = []


@pytest.fixture
def show(request):
    """Register a paper-style table/series for this bench."""

    def _show(text: str) -> None:
        _TABLES.append((request.node.name, text))
        _RESULTS_DIR.mkdir(exist_ok=True)
        path = _RESULTS_DIR / f"{request.node.name}.txt"
        with path.open("a") as fh:
            fh.write(text + "\n\n")
        print(text)

    # Start each test's result file fresh.
    _RESULTS_DIR.mkdir(exist_ok=True)
    (_RESULTS_DIR / f"{request.node.name}.txt").write_text("")
    return _show


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Replay every registered table after the test summary."""
    if not _TABLES:
        return
    terminalreporter.section("regenerated paper tables and figures")
    for name, text in _TABLES:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"--- {name} ---")
        terminalreporter.write_line(text)


def run_once(benchmark, fn):
    """Run an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
