"""Fleet routing policies under a request-level cluster replay.

Instantiates a heterogeneous fleet (T2 CPU boxes, T3 NMP boxes, T7 GPU
boxes) serving DLRM-RMC1 + DLRM-RMC2 at ~75% aggregate utilization and
replays the identical Poisson trace through each routing policy.  The
interesting quantity is the tail: round-robin ignores heterogeneity, so
the slow replicas saturate while the fast ones idle; queue-aware
(least-outstanding, power-of-two-choices) and throughput-weighted
policies keep the tail bounded on the same hardware at the same load.

This is the request-level complement of the Fig. 17 provisioning
comparison: provisioning fixes *which* servers run, routing decides
what that buys in p99.
"""

from __future__ import annotations

from _shared import model, workload
from conftest import run_once

from repro.analysis import format_table
from repro.cluster.state import Allocation
from repro.fleet import FleetSimulator, build_fleet, build_fleet_trace
from repro.hardware import SERVER_TYPES
from repro.scheduling import OfflineProfiler

POLICIES = ("rr", "weighted", "p2c", "least")
MODELS = ("DLRM-RMC1", "DLRM-RMC2")
RHO = 0.75
QUERIES = 40_000
SEED = 7


def _build():
    models = {name: model(name) for name in MODELS}
    workloads = {name: workload(name) for name in MODELS}
    table = OfflineProfiler().profile(
        [SERVER_TYPES[s] for s in ("T2", "T3", "T7")], list(models.values())
    )
    allocation = Allocation()
    for name in MODELS:
        allocation.add("T2", name, 6)
        allocation.add("T3", name, 3)
        allocation.add("T7", name, 2)
    capacity = {
        name: sum(
            count * table.qps(srv, m)
            for (srv, m), count in allocation.counts.items()
            if m == name
        )
        for name in MODELS
    }
    total_rate = RHO * sum(capacity.values())
    duration = QUERIES / total_rate
    trace = build_fleet_trace(
        workloads,
        {name: [(RHO * capacity[name], duration)] for name in MODELS},
        seed=SEED,
    )
    return models, workloads, table, allocation, trace, duration


def _run_policies():
    models, workloads, table, allocation, trace, duration = _build()
    sla = {name: models[name].sla_ms for name in MODELS}
    results = {}
    for policy in POLICIES:
        servers = build_fleet(allocation, table, models, workloads)
        sim = FleetSimulator(servers, policy=policy, sla_ms=sla, seed=SEED)
        results[policy] = sim.run(trace, warmup_s=duration * 0.1)
    return results


def test_fleet_routing_policies(benchmark, show):
    results = run_once(benchmark, _run_policies)
    rows = []
    for policy, res in results.items():
        for name, stats in sorted(res.per_model.items()):
            rows.append(
                [
                    policy,
                    name,
                    round(stats.qps),
                    round(stats.p50_ms, 1),
                    round(stats.p99_ms, 1),
                    f"{stats.violation_rate * 100:.2f}%",
                    round(res.avg_power_w / 1e3, 2),
                ]
            )
    show(
        format_table(
            ["policy", "model", "QPS", "p50 ms", "p99 ms", "SLA viol", "fleet kW"],
            rows,
            title=(
                "Routing policies on a 22-server heterogeneous fleet "
                f"(identical trace, rho={RHO})"
            ),
        )
    )
    # The routing hierarchy must be visible in the tail: the oblivious
    # policy's worst p99 strictly above the queue-aware policies'.
    worst = {p: max(s.p99_ms for s in r.per_model.values()) for p, r in results.items()}
    assert worst["rr"] > worst["p2c"]
    assert worst["rr"] > worst["least"]
    distinct = len({round(w, 1) for w in worst.values()})
    assert distinct >= 3, f"policies should differ in tail latency: {worst}"
