"""Fig. 1 (left): compute/memory-intensity map of the model zoo.

Places every Table I model on the (memory bytes per query, FLOPs per
query) plane and classifies it into the paper's regions:

- *memory-dominated*: DLRM-RMC1, DLRM-RMC2 (sparse gather-reduce);
- *compute-dominated*: DLRM-RMC3, MT-WnD, DIN, DIEN (wide FC stacks,
  attention, GRU).
"""

from __future__ import annotations

from _shared import MODEL_ORDER, model
from conftest import run_once

from repro.analysis import format_table
from repro.hardware import CPU_T2, DDR4_T2

#: Roofline balance point of the reference CPU: ops/byte above which a
#: workload is compute-bound on CPU-T2 with DDR4.
_BALANCE = (
    CPU_T2.peak_flops * CPU_T2.gemm_efficiency / DDR4_T2.gather_bw_bytes
)


def _run_fig1():
    rows = []
    for name in MODEL_ORDER:
        m = model(name)
        query_items = m.config.mean_query_size
        flops = m.graph.total_flops(query_items)
        mem = m.graph.total_mem_bytes(query_items)
        intensity = flops / mem
        region = "compute" if intensity > _BALANCE else "memory"
        rows.append(
            [
                name,
                round(flops / 1e9, 2),
                round(mem / 1e6, 2),
                round(intensity, 2),
                region,
            ]
        )
    return rows


def test_fig1_intensity_map(benchmark, show):
    rows = run_once(benchmark, _run_fig1)
    show(
        format_table(
            [
                "model",
                "GFLOP/query",
                "mem MB/query",
                "FLOP/byte",
                "region",
            ],
            rows,
            title=(
                "Fig. 1 -- compute vs memory intensity per query "
                f"(CPU-T2 balance point {_BALANCE:.1f} FLOP/byte)"
            ),
        )
    )
    regions = {r[0]: r[4] for r in rows}
    # The paper's quadrants.
    assert regions["DLRM-RMC1"] == "memory"
    assert regions["DLRM-RMC2"] == "memory"
    for name in ("DLRM-RMC3", "MT-WnD", "DIN", "DIEN"):
        assert regions[name] == "compute"
    # DIN/DIEN sit at the top of the compute axis (Fig. 1's layout).
    flops = {r[0]: r[1] for r in rows}
    assert flops["DIN"] > flops["MT-WnD"] > flops["DLRM-RMC1"]
    # RMC2 moves the most memory per query.
    mem = {r[0]: r[2] for r in rows}
    assert mem["DLRM-RMC2"] == max(mem.values())
