"""Fig. 12: balancing the sparse-dense pipeline.

(a) On the CPU: sweep the thread split between SparseNet and DenseNet
    threads; throughput rises while both stages gain parallelism and
    falls once the pipeline is unbalanced.
(b) On CPU+GPU: the gradient search balances host SparseNet threads
    against accelerator DenseNet fusion; the search trace is printed.
"""

from __future__ import annotations

from _shared import evaluator, model, workload
from conftest import run_once

from repro.analysis import format_table
from repro.models import partition_model
from repro.plans import ExecutionPlan, Placement
from repro.scheduling import GradientSearch


def _run_cpu_balance():
    ev = evaluator("T2")
    m = model("DLRM-RMC1")
    pm = partition_model(m)
    wl = workload("DLRM-RMC1")
    cores = ev.server.cpu.cores
    rows = []
    for sparse_threads in (1, 2, 3, 4, 6, 8):
        sparse_cores = 2
        dense_threads = cores - sparse_threads * sparse_cores
        if dense_threads < 1:
            continue
        plan = ExecutionPlan(
            Placement.CPU_SD_PIPELINE,
            batch_size=256,
            sparse_threads=sparse_threads,
            sparse_cores=sparse_cores,
            dense_threads=dense_threads,
        )
        perf = ev.latency_bounded(pm, wl, plan, sla_ms=m.sla_ms)
        rows.append(
            [
                f"{sparse_threads}x{sparse_cores}::{dense_threads}",
                round(perf.qps) if perf.feasible else 0,
            ]
        )
    return rows


def _run_gpu_search_trace():
    ev = evaluator("T7")
    m = model("DLRM-RMC3")
    space = GradientSearch(ev, m)
    result = space.search_gpu_sd()
    trace = [
        (plan.describe(), round(qps)) for plan, qps in result.visited[:24]
    ]
    return result, trace


def test_fig12a_cpu_sd_balance(benchmark, show):
    rows = run_once(benchmark, _run_cpu_balance)
    show(
        format_table(
            ["sparse x cores :: dense", "QPS"],
            rows,
            title="Fig. 12(a) -- DLRM-RMC1 S-D pipeline balance on CPU-T2",
        )
    )
    qps = [r[1] for r in rows]
    # Rises-then-falls: the peak is interior or at least not the first point.
    peak = qps.index(max(qps))
    assert max(qps) > 0
    assert qps[peak] >= qps[0]
    assert qps[-1] <= max(qps)


def test_fig12b_gpu_sd_search(benchmark, show):
    result, trace = run_once(benchmark, _run_gpu_search_trace)
    show(
        format_table(
            ["candidate", "QPS"],
            trace,
            title="Fig. 12(b) -- gradient-search trace, DLRM-RMC3 S-D on CPU+V100",
        )
    )
    assert result.feasible
    assert result.plan.placement is Placement.GPU_SD
    assert result.evaluations >= len(trace) // 2
