"""Ablation: gradient-based search vs exhaustive sweep.

Validates the convexity assumption Algorithm 1 rests on: the
gradient walk must find (nearly) the exhaustive optimum of the
Psp(M+D+O) space at a small fraction of its evaluation cost.
"""

from __future__ import annotations

from _shared import evaluator, model, workload
from conftest import run_once

from repro.analysis import format_table
from repro.models import partition_model
from repro.plans import ExecutionPlan, Placement
from repro.scheduling import BATCH_GRID, GradientSearch

MODELS = ("DLRM-RMC1", "DLRM-RMC3", "DIN")
OP_PARALLELISM = (1, 2, 4)


def _exhaustive(ev, m, wl):
    pm = partition_model(m)
    cores = ev.server.cpu.cores
    best_qps = 0.0
    evaluations = 0
    for o in OP_PARALLELISM:
        for threads in range(1, cores // o + 1):
            for d in BATCH_GRID:
                plan = ExecutionPlan(
                    Placement.CPU_MODEL_BASED,
                    threads=threads,
                    cores_per_thread=o,
                    batch_size=d,
                )
                perf = ev.latency_bounded(pm, wl, plan, sla_ms=m.sla_ms)
                evaluations += 1
                if perf.feasible:
                    best_qps = max(best_qps, perf.qps)
    return best_qps, evaluations


def _run_ablation():
    rows = []
    for name in MODELS:
        ev = evaluator("T2")
        m = model(name)
        wl = workload(name)
        exhaustive_qps, exhaustive_evals = _exhaustive(ev, m, wl)
        space = GradientSearch(ev, m, wl)
        result = space.search_cpu_model_based()
        rows.append(
            [
                name,
                round(exhaustive_qps),
                round(result.perf.qps) if result.feasible else 0,
                round(result.perf.qps / exhaustive_qps, 3)
                if exhaustive_qps
                else float("nan"),
                exhaustive_evals,
                result.evaluations,
            ]
        )
    return rows


def test_ablation_gradient_vs_exhaustive(benchmark, show):
    rows = run_once(benchmark, _run_ablation)
    show(
        format_table(
            [
                "model",
                "exhaustive QPS",
                "gradient QPS",
                "quality",
                "exhaustive evals",
                "gradient evals",
            ],
            rows,
            title="Ablation -- gradient search vs exhaustive Psp(M+D+O) sweep (CPU-T2)",
        )
    )
    for row in rows:
        _, exhaustive_qps, gradient_qps, quality, ex_evals, gr_evals = row
        assert quality >= 0.95  # near-optimal
        assert gr_evals < ex_evals  # and much cheaper
