"""Declarative configuration for recommendation models (paper Table I).

A :class:`ModelConfig` captures everything Table I specifies about a
production model -- embedding-table population, lookup/pooling behaviour,
attention flavour, and MLP stacks -- plus the per-model SLA latency
target used throughout the paper's evaluation (Fig. 15 caption).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["AttentionKind", "ModelVariant", "ModelConfig"]


class AttentionKind(enum.Enum):
    """The attention unit a model uses, if any (Table I column)."""

    NONE = "none"
    FC = "fc"  # DIN-style local activation unit
    GRU = "gru"  # DIEN-style interest evolution


class ModelVariant(enum.Enum):
    """Production-scale vs. the small variant that fits accelerator memory.

    Table I gives two embedding sizes per model: ``Prod`` and ``Small``.
    The paper's characterization (Section III-B) uses the small variants
    on GPUs; the evaluation (Section VI) uses production sizes with
    locality-aware partitioning.
    """

    PROD = "prod"
    SMALL = "small"


@dataclass(frozen=True)
class ModelConfig:
    """Static description of one recommendation model family.

    Attributes:
        name: Model name as in Table I (e.g. ``"DLRM-RMC1"``).
        service: The service category from Table I.
        num_tables: Number of embedding tables.
        prod_rows: Rows per table at production scale.
        small_rows: Rows per table for the small (accelerator-friendly)
            variant.
        embedding_dim: Width of each embedding row.
        pooling_factor: Average multi-hot lookups pooled per table per
            item (1 means one-hot).
        pooled: Whether lookups are gather-and-reduce (True) or plain
            gather (False).  Only pooled lookups benefit from NMP.
        dense_in: Width of the dense (continuous) feature vector.
        bottom_mlp: Hidden widths of the Bottom-FC stack, or () if the
            model has none (MT-WnD, DIN, DIEN).
        predict_mlp: Hidden widths of the Predict-FC stack, excluding
            the final task output.
        num_tasks: Number of prediction tasks (MT-WnD is multi-task).
        attention: Attention unit flavour.
        attention_seq_len: Behaviour-sequence length attended over.
        attention_hidden: Hidden width of the per-position attention MLP
            (what makes DIN/DIEN the most compute-intense models of
            Fig. 1).
        sla_ms: SLA tail-latency target used in the evaluation.
        mean_query_size: Mean number of items ranked per query
            (query-size distribution is heavy-tailed around this).
    """

    name: str
    service: str
    num_tables: int
    prod_rows: int
    small_rows: int
    embedding_dim: int
    pooling_factor: float
    pooled: bool
    dense_in: int
    bottom_mlp: tuple[int, ...]
    predict_mlp: tuple[int, ...]
    num_tasks: int = 1
    attention: AttentionKind = AttentionKind.NONE
    attention_seq_len: int = 0
    attention_hidden: int = 64
    sla_ms: float = 50.0
    mean_query_size: int = 120

    def __post_init__(self) -> None:
        if self.num_tables < 1:
            raise ValueError("num_tables must be >= 1")
        if self.prod_rows < self.small_rows:
            raise ValueError("prod variant must be at least as large as small")
        if self.pooling_factor < 1:
            raise ValueError("pooling_factor must be >= 1")
        if self.attention is not AttentionKind.NONE and self.attention_seq_len < 1:
            raise ValueError("attention models need a positive sequence length")
        if self.sla_ms <= 0:
            raise ValueError("sla_ms must be positive")
        if self.mean_query_size < 1:
            raise ValueError("mean_query_size must be >= 1")

    def rows(self, variant: ModelVariant) -> int:
        """Rows per table for the requested variant."""
        if variant is ModelVariant.PROD:
            return self.prod_rows
        return self.small_rows

    @property
    def is_multi_hot(self) -> bool:
        """True when SparseNet performs gather-and-reduce pooling."""
        return self.pooled and self.pooling_factor > 1
