"""Operator taxonomy for recommendation-model computation graphs.

The paper (Fig. 2a) decomposes every recommendation model into a
*SparseNet* -- embedding lookup (gather) and lookup-and-pooling
(gather-and-reduce) operators -- and a *DenseNet* -- fully-connected
stacks, feature interaction, attention units and recurrent cells.

Each operator here is a pure cost descriptor: it knows how many
floating-point operations it performs, how many bytes it moves through
main memory, and how large its inputs/outputs are, all as a function of
the number of *items* being ranked (the batch dimension).  Device timing
lives in :mod:`repro.perf`; operators never know what hardware they run
on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = [
    "OpKind",
    "Operator",
    "EmbeddingLookup",
    "FullyConnected",
    "MLP",
    "FeatureInteraction",
    "Attention",
    "GRUCell",
    "Concat",
    "Activation",
    "FLOAT_BYTES",
    "INDEX_BYTES",
]

FLOAT_BYTES = 4
"""Bytes per dense element (fp32 everywhere, as in the paper's Caffe2 setup)."""

INDEX_BYTES = 8
"""Bytes per sparse embedding index (int64, the PyTorch/Caffe2 default)."""


class OpKind(enum.Enum):
    """Classification of operators used by partitioners and perf models."""

    EMBEDDING_GATHER = "embedding_gather"
    EMBEDDING_GATHER_REDUCE = "embedding_gather_reduce"
    FC = "fc"
    MLP = "mlp"
    INTERACTION = "interaction"
    ATTENTION = "attention"
    GRU = "gru"
    CONCAT = "concat"
    ACTIVATION = "activation"

    @property
    def is_sparse(self) -> bool:
        """True for SparseNet (memory-dominated embedding) operators."""
        return self in (OpKind.EMBEDDING_GATHER, OpKind.EMBEDDING_GATHER_REDUCE)


@dataclass(frozen=True)
class Operator:
    """Base class for all graph operators.

    Subclasses override the cost accessors.  All costs are *per batch*
    where ``items`` is the number of user-item pairs being scored.

    Attributes:
        name: Unique name within the model graph.
        parallel_fraction: Fraction of this operator's work that can be
            executed by parallel operator workers (Amdahl).  Embedding
            tables are fully independent (1.0); a GRU is sequential in
            time (near 0.0).
    """

    name: str
    parallel_fraction: float = 1.0

    @property
    def kind(self) -> OpKind:
        raise NotImplementedError

    def flops(self, items: int) -> float:
        """Floating-point operations for a batch of ``items``."""
        raise NotImplementedError

    def mem_bytes(self, items: int) -> float:
        """Bytes touched in main memory (weights + activations)."""
        raise NotImplementedError

    def input_bytes(self, items: int) -> float:
        """Bytes of input the operator consumes (for device transfer cost)."""
        raise NotImplementedError

    def output_bytes(self, items: int) -> float:
        """Bytes of output the operator produces."""
        raise NotImplementedError

    @property
    def weight_bytes(self) -> float:
        """Resident parameter footprint in bytes (0 for stateless ops)."""
        return 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("operator name must be non-empty")
        if not 0.0 <= self.parallel_fraction <= 1.0:
            raise ValueError(
                f"parallel_fraction must be in [0, 1], got {self.parallel_fraction}"
            )


@dataclass(frozen=True)
class EmbeddingLookup(Operator):
    """One-hot gather or multi-hot gather-and-reduce over embedding tables.

    Models a *group* of ``num_tables`` identical tables (the common case:
    Table I describes tables in aggregate).  For each item, each table is
    queried with ``pooling_factor`` indices; with ``pooled=True`` the
    gathered rows are summed into a single vector per table
    (SparseLengthsSum), otherwise the raw rows are emitted.

    The paper's key distinction: gather-*reduce* is what NMP hardware
    accelerates; plain gathers see no NMP benefit (Section VI-B).
    """

    num_tables: int = 1
    rows_per_table: int = 1_000_000
    embedding_dim: int = 32
    pooling_factor: float = 1.0
    pooled: bool = True
    weight_shared: bool = False
    """True when this lookup reads a table owned by another operator
    (e.g. DIN's behaviour history reads the item-embedding table), so
    its weights must not be double-counted in the model footprint."""

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.num_tables < 1:
            raise ValueError("num_tables must be >= 1")
        if self.rows_per_table < 1:
            raise ValueError("rows_per_table must be >= 1")
        if self.embedding_dim < 1:
            raise ValueError("embedding_dim must be >= 1")
        if self.pooling_factor < 1:
            raise ValueError("pooling_factor must be >= 1")

    @property
    def kind(self) -> OpKind:
        if self.pooled and self.pooling_factor > 1:
            return OpKind.EMBEDDING_GATHER_REDUCE
        return OpKind.EMBEDDING_GATHER

    @property
    def weight_bytes(self) -> float:
        if self.weight_shared:
            return 0.0
        return (
            float(self.num_tables)
            * self.rows_per_table
            * self.embedding_dim
            * FLOAT_BYTES
        )

    def lookups(self, items: int) -> float:
        """Total number of embedding-row reads for a batch."""
        return float(items) * self.num_tables * self.pooling_factor

    def flops(self, items: int) -> float:
        # Pooling is one add per gathered element beyond the first row.
        if not self.pooled or self.pooling_factor <= 1:
            return 0.0
        adds_per_item = (self.pooling_factor - 1) * self.embedding_dim
        return float(items) * self.num_tables * adds_per_item

    def mem_bytes(self, items: int) -> float:
        # Random gathers: every looked-up row is a distinct cache-missing read.
        return self.lookups(items) * self.embedding_dim * FLOAT_BYTES

    def input_bytes(self, items: int) -> float:
        # Sparse indices: this is the data-loading traffic that dominates
        # PCIe for multi-hot models like DLRM-RMC3 (Fig. 7a).
        return self.lookups(items) * INDEX_BYTES

    def output_bytes(self, items: int) -> float:
        vectors_per_item = self.num_tables * (
            1.0 if self.pooled else self.pooling_factor
        )
        return float(items) * vectors_per_item * self.embedding_dim * FLOAT_BYTES


@dataclass(frozen=True)
class FullyConnected(Operator):
    """A single dense layer ``in_dim -> out_dim`` (GEMM + bias)."""

    in_dim: int = 1
    out_dim: int = 1

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.in_dim < 1 or self.out_dim < 1:
            raise ValueError("FC dimensions must be >= 1")

    @property
    def kind(self) -> OpKind:
        return OpKind.FC

    @property
    def weight_bytes(self) -> float:
        return float(self.in_dim * self.out_dim + self.out_dim) * FLOAT_BYTES

    def flops(self, items: int) -> float:
        return 2.0 * items * self.in_dim * self.out_dim

    def mem_bytes(self, items: int) -> float:
        activations = float(items) * (self.in_dim + self.out_dim) * FLOAT_BYTES
        return self.weight_bytes + activations

    def input_bytes(self, items: int) -> float:
        return float(items) * self.in_dim * FLOAT_BYTES

    def output_bytes(self, items: int) -> float:
        return float(items) * self.out_dim * FLOAT_BYTES


@dataclass(frozen=True)
class MLP(Operator):
    """A stack of FC layers with elementwise activations (fused).

    ``layer_dims`` lists the widths including input, e.g. the DLRM-RMC1
    Bottom-FC ``(input, 256, 128, 32)``.  The stack is inherently
    sequential across layers, but each GEMM parallelizes internally, so
    the default ``parallel_fraction`` stays high within a layer while
    the graph expresses the cross-layer dependency.
    """

    layer_dims: tuple[int, ...] = (1, 1)

    def __post_init__(self) -> None:
        super().__post_init__()
        if len(self.layer_dims) < 2:
            raise ValueError("MLP needs at least input and one output dim")
        if any(d < 1 for d in self.layer_dims):
            raise ValueError("MLP dims must be >= 1")

    @property
    def kind(self) -> OpKind:
        return OpKind.MLP

    @property
    def in_dim(self) -> int:
        return self.layer_dims[0]

    @property
    def out_dim(self) -> int:
        return self.layer_dims[-1]

    def _layer_pairs(self) -> list[tuple[int, int]]:
        return list(zip(self.layer_dims[:-1], self.layer_dims[1:]))

    @property
    def weight_bytes(self) -> float:
        return sum(
            float(i * o + o) * FLOAT_BYTES for i, o in self._layer_pairs()
        )

    def flops(self, items: int) -> float:
        return sum(2.0 * items * i * o for i, o in self._layer_pairs())

    def mem_bytes(self, items: int) -> float:
        act = sum(
            float(items) * (i + o) * FLOAT_BYTES for i, o in self._layer_pairs()
        )
        return self.weight_bytes + act

    def input_bytes(self, items: int) -> float:
        return float(items) * self.in_dim * FLOAT_BYTES

    def output_bytes(self, items: int) -> float:
        return float(items) * self.out_dim * FLOAT_BYTES


@dataclass(frozen=True)
class FeatureInteraction(Operator):
    """Pairwise dot-product interaction between feature vectors (DLRM).

    ``num_vectors`` feature vectors of width ``dim`` per item interact
    pairwise; the output is the concatenation of the upper triangle with
    the dense feature vector.
    """

    num_vectors: int = 2
    dim: int = 32

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.num_vectors < 2:
            raise ValueError("interaction needs >= 2 vectors")
        if self.dim < 1:
            raise ValueError("dim must be >= 1")

    @property
    def kind(self) -> OpKind:
        return OpKind.INTERACTION

    @property
    def num_pairs(self) -> int:
        return self.num_vectors * (self.num_vectors - 1) // 2

    @property
    def out_dim(self) -> int:
        return self.num_pairs + self.dim

    def flops(self, items: int) -> float:
        return 2.0 * items * self.num_pairs * self.dim

    def mem_bytes(self, items: int) -> float:
        in_elems = self.num_vectors * self.dim
        return float(items) * (in_elems + self.out_dim) * FLOAT_BYTES

    def input_bytes(self, items: int) -> float:
        return float(items) * self.num_vectors * self.dim * FLOAT_BYTES

    def output_bytes(self, items: int) -> float:
        return float(items) * self.out_dim * FLOAT_BYTES


@dataclass(frozen=True)
class Attention(Operator):
    """DIN-style attention unit over a user-behaviour sequence.

    Each item attends over ``seq_len`` history embeddings of width
    ``dim`` through a small per-position MLP (``hidden`` units), then a
    weighted sum.  Compute-intensive, which is what makes DIN
    compute-dominated despite tiny FC stacks (Fig. 1).
    """

    seq_len: int = 100
    dim: int = 32
    hidden: int = 36

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.seq_len < 1 or self.dim < 1 or self.hidden < 1:
            raise ValueError("attention dims must be >= 1")

    @property
    def kind(self) -> OpKind:
        return OpKind.ATTENTION

    @property
    def weight_bytes(self) -> float:
        # Per-position MLP: (4*dim -> hidden -> 1); weights shared over seq.
        per_pos = 4 * self.dim * self.hidden + self.hidden
        return float(per_pos) * FLOAT_BYTES

    def flops(self, items: int) -> float:
        per_pos = 2.0 * (4 * self.dim * self.hidden + self.hidden)
        weighted_sum = 2.0 * self.dim
        return float(items) * self.seq_len * (per_pos + weighted_sum)

    def mem_bytes(self, items: int) -> float:
        # Every item of a query attends over the *same* user history, so
        # the sequence is read from DRAM once per batch and stays
        # cache-resident; only outputs scale with items.  This is what
        # keeps DIN compute-dominated (Fig. 1) despite long histories.
        seq_bytes = float(self.seq_len) * self.dim * FLOAT_BYTES
        return self.weight_bytes + seq_bytes + self.output_bytes(items)

    def input_bytes(self, items: int) -> float:
        return float(items) * (self.seq_len + 1) * self.dim * FLOAT_BYTES

    def output_bytes(self, items: int) -> float:
        return float(items) * self.dim * FLOAT_BYTES


@dataclass(frozen=True)
class GRUCell(Operator):
    """DIEN's interest-evolution GRU over a behaviour sequence.

    Sequential over ``seq_len`` timesteps -- ``parallel_fraction``
    defaults low because timestep ``t`` depends on ``t-1``.
    """

    seq_len: int = 100
    hidden: int = 32
    parallel_fraction: float = 0.2

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.seq_len < 1 or self.hidden < 1:
            raise ValueError("GRU dims must be >= 1")

    @property
    def kind(self) -> OpKind:
        return OpKind.GRU

    @property
    def weight_bytes(self) -> float:
        # Three gates, each (hidden x hidden) x 2 matrices + bias.
        per_gate = 2 * self.hidden * self.hidden + self.hidden
        return 3.0 * per_gate * FLOAT_BYTES

    def flops(self, items: int) -> float:
        per_step = 3.0 * 2.0 * (2 * self.hidden * self.hidden)
        return float(items) * self.seq_len * per_step

    def mem_bytes(self, items: int) -> float:
        # As with attention, the history sequence is shared across the
        # query's items and read once per batch.
        seq_bytes = float(self.seq_len) * self.hidden * FLOAT_BYTES
        return self.weight_bytes + seq_bytes + self.output_bytes(items)

    def input_bytes(self, items: int) -> float:
        return float(items) * self.seq_len * self.hidden * FLOAT_BYTES

    def output_bytes(self, items: int) -> float:
        return float(items) * self.hidden * FLOAT_BYTES


@dataclass(frozen=True)
class Concat(Operator):
    """Concatenation of feature vectors (pure data movement)."""

    total_dim: int = 1

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.total_dim < 1:
            raise ValueError("total_dim must be >= 1")

    @property
    def kind(self) -> OpKind:
        return OpKind.CONCAT

    def flops(self, items: int) -> float:
        return 0.0

    def mem_bytes(self, items: int) -> float:
        return 2.0 * items * self.total_dim * FLOAT_BYTES

    def input_bytes(self, items: int) -> float:
        return float(items) * self.total_dim * FLOAT_BYTES

    def output_bytes(self, items: int) -> float:
        return float(items) * self.total_dim * FLOAT_BYTES


@dataclass(frozen=True)
class Activation(Operator):
    """Elementwise activation (ReLU/sigmoid); candidate for operator fusion."""

    dim: int = 1

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.dim < 1:
            raise ValueError("dim must be >= 1")

    @property
    def kind(self) -> OpKind:
        return OpKind.ACTIVATION

    def flops(self, items: int) -> float:
        return float(items) * self.dim

    def mem_bytes(self, items: int) -> float:
        return 2.0 * items * self.dim * FLOAT_BYTES

    def input_bytes(self, items: int) -> float:
        return float(items) * self.dim * FLOAT_BYTES

    def output_bytes(self, items: int) -> float:
        return float(items) * self.dim * FLOAT_BYTES
