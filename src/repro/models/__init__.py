"""Recommendation-model substrate: operators, graphs, Table I zoo, partitioning."""

from repro.models.config import AttentionKind, ModelConfig, ModelVariant
from repro.models.graph import Graph, GraphError, Node
from repro.models.ops import (
    Activation,
    Attention,
    Concat,
    EmbeddingLookup,
    FeatureInteraction,
    FullyConnected,
    GRUCell,
    MLP,
    Operator,
    OpKind,
)
from repro.models.partition import (
    PartitionedModel,
    ZipfAccessProfile,
    fuse_elementwise,
    partition_model,
)
from repro.models.zoo import (
    MODEL_CONFIGS,
    MODEL_NAMES,
    RecommendationModel,
    all_models,
    build_model,
    get_config,
)

__all__ = [
    "AttentionKind",
    "ModelConfig",
    "ModelVariant",
    "Graph",
    "GraphError",
    "Node",
    "Operator",
    "OpKind",
    "Activation",
    "Attention",
    "Concat",
    "EmbeddingLookup",
    "FeatureInteraction",
    "FullyConnected",
    "GRUCell",
    "MLP",
    "PartitionedModel",
    "ZipfAccessProfile",
    "fuse_elementwise",
    "partition_model",
    "MODEL_CONFIGS",
    "MODEL_NAMES",
    "RecommendationModel",
    "all_models",
    "build_model",
    "get_config",
]
