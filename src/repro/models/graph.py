"""Computation graphs for recommendation models.

A :class:`Graph` is a DAG of named operator nodes.  The task scheduler
partitions graphs into sub-graphs (SparseNet ``Gs``, DenseNet ``Gd``,
Hot-SparseNet ``Gs.hot``) and the serving simulator executes them with
parallel operator workers respecting the dependency edges, mirroring the
graph-executor abstraction of the paper's system stack (Fig. 3).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

from repro.models.ops import Operator, OpKind

__all__ = ["GraphError", "Node", "Graph"]


class GraphError(ValueError):
    """Raised for structurally invalid graphs (cycles, dangling deps)."""


@dataclass(frozen=True)
class Node:
    """One operator in a graph together with its dependencies.

    Attributes:
        op: The operator executed by this node.
        deps: Names of nodes whose outputs this node consumes.
    """

    op: Operator
    deps: tuple[str, ...] = ()

    @property
    def name(self) -> str:
        return self.op.name


class Graph:
    """An immutable operator DAG with cost roll-ups.

    Nodes are stored in insertion order, which must be a valid
    topological order (every dependency is added before its consumer).
    """

    def __init__(self, name: str, nodes: Iterable[Node] = ()) -> None:
        self.name = name
        self._nodes: dict[str, Node] = {}
        for node in nodes:
            self.add(node)

    def add(self, node: Node) -> None:
        """Append a node; its dependencies must already be present."""
        if node.name in self._nodes:
            raise GraphError(f"duplicate node name {node.name!r} in {self.name!r}")
        for dep in node.deps:
            if dep not in self._nodes:
                raise GraphError(
                    f"node {node.name!r} depends on unknown node {dep!r}"
                )
        self._nodes[node.name] = node

    # -- structure ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._nodes.values())

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def node(self, name: str) -> Node:
        try:
            return self._nodes[name]
        except KeyError:
            raise GraphError(f"no node {name!r} in graph {self.name!r}") from None

    @property
    def node_names(self) -> tuple[str, ...]:
        return tuple(self._nodes)

    def topological_order(self) -> tuple[Node, ...]:
        """Nodes in dependency order (insertion order by construction)."""
        return tuple(self._nodes.values())

    def consumers(self, name: str) -> tuple[Node, ...]:
        """All nodes that directly depend on ``name``."""
        return tuple(n for n in self._nodes.values() if name in n.deps)

    def sinks(self) -> tuple[Node, ...]:
        """Nodes whose output no other node consumes."""
        consumed = {dep for n in self._nodes.values() for dep in n.deps}
        return tuple(n for n in self._nodes.values() if n.name not in consumed)

    def sources(self) -> tuple[Node, ...]:
        """Nodes with no dependencies."""
        return tuple(n for n in self._nodes.values() if not n.deps)

    def subgraph(self, name: str, node_names: Iterable[str]) -> "Graph":
        """Project onto ``node_names``, dropping edges that leave the set.

        Cross-boundary dependencies become sub-graph inputs (this is how
        the S-D pipeline passes pooled sparse output through a queue).
        """
        keep = set(node_names)
        unknown = keep - set(self._nodes)
        if unknown:
            raise GraphError(f"subgraph refers to unknown nodes {sorted(unknown)}")
        sub = Graph(name)
        for node in self._nodes.values():
            if node.name not in keep:
                continue
            kept_deps = tuple(d for d in node.deps if d in keep)
            sub.add(Node(op=node.op, deps=kept_deps))
        return sub

    # -- critical path -----------------------------------------------------

    def critical_path_length(self, weights: dict[str, float]) -> float:
        """Longest weighted path through the DAG.

        Args:
            weights: Per-node execution cost (e.g. latency in seconds).

        Returns:
            The makespan lower bound with unlimited parallel workers --
            the quantity that bounds op-parallelism speedup (Fig. 5).
        """
        finish: dict[str, float] = {}
        for node in self._nodes.values():
            start = max((finish[d] for d in node.deps), default=0.0)
            finish[node.name] = start + weights[node.name]
        return max(finish.values(), default=0.0)

    # -- cost roll-ups -----------------------------------------------------

    def total_flops(self, items: int) -> float:
        return sum(n.op.flops(items) for n in self._nodes.values())

    def total_mem_bytes(self, items: int) -> float:
        return sum(n.op.mem_bytes(items) for n in self._nodes.values())

    def total_input_bytes(self, items: int) -> float:
        """Input bytes of source nodes only (what must cross PCIe)."""
        return sum(n.op.input_bytes(items) for n in self.sources())

    def total_output_bytes(self, items: int) -> float:
        """Output bytes of sink nodes only."""
        return sum(n.op.output_bytes(items) for n in self.sinks())

    def total_weight_bytes(self) -> float:
        """Resident model footprint (dominated by embeddings, >95% in prod)."""
        return sum(n.op.weight_bytes for n in self._nodes.values())

    def nodes_of_kind(self, *kinds: OpKind) -> tuple[Node, ...]:
        return tuple(n for n in self._nodes.values() if n.op.kind in kinds)

    @property
    def sparse_nodes(self) -> tuple[Node, ...]:
        return tuple(n for n in self._nodes.values() if n.op.kind.is_sparse)

    @property
    def dense_nodes(self) -> tuple[Node, ...]:
        return tuple(n for n in self._nodes.values() if not n.op.kind.is_sparse)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Graph({self.name!r}, nodes={len(self)})"
