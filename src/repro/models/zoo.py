"""The six industry-representative models of paper Table I.

Configurations follow Table I: DLRM-RMC1/RMC2/RMC3 (Facebook, social
media), MT-WnD (Google, video), DIN and DIEN (Alibaba, e-commerce).
Where Table I gives a range (rows per table, pooling factor) we take a
representative midpoint; SLA targets follow the Fig. 15 caption
(20/50/50/50/100/100 ms for RMC1/RMC2/RMC3/DIN/DIEN/MT-WnD).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.models.config import AttentionKind, ModelConfig, ModelVariant
from repro.models.graph import Graph, Node
from repro.models.ops import (
    Attention,
    Concat,
    EmbeddingLookup,
    FeatureInteraction,
    GRUCell,
    MLP,
    Operator,
)

__all__ = [
    "RecommendationModel",
    "MODEL_CONFIGS",
    "MODEL_NAMES",
    "build_model",
    "all_models",
    "get_config",
]

#: Maximum independent embedding-group nodes per graph.  Grouping keeps
#: graphs small while still exposing SparseNet op-parallelism (tables
#: within a group execute as one fused gather, as DL frameworks do).
_MAX_EMBEDDING_GROUPS = 8


@dataclass(frozen=True)
class RecommendationModel:
    """A concrete, runnable model: config + variant + computation graph.

    Attributes:
        config: The Table I configuration this model was built from.
        variant: Production-scale or small.
        graph: The end-to-end computation graph ``Gm``.
    """

    config: ModelConfig
    variant: ModelVariant
    graph: Graph

    @property
    def name(self) -> str:
        return self.config.name

    @property
    def sla_ms(self) -> float:
        return self.config.sla_ms

    @property
    def sparse_fraction_of_memory(self) -> float:
        """Fraction of resident bytes held by SparseNet (>95% in prod)."""
        total = self.graph.total_weight_bytes()
        if total == 0:
            return 0.0
        sparse = sum(n.op.weight_bytes for n in self.graph.sparse_nodes)
        return sparse / total

    def describe(self) -> dict[str, float | str | int]:
        """Summary row used by the Table I benchmark."""
        items = self.config.mean_query_size
        return {
            "model": self.name,
            "variant": self.variant.value,
            "service": self.config.service,
            "tables": self.config.num_tables,
            "rows_per_table": self.config.rows(self.variant),
            "pooling": self.config.pooling_factor,
            "weight_gb": self.graph.total_weight_bytes() / 1e9,
            "flops_per_item": self.graph.total_flops(items) / items,
            "mem_bytes_per_item": self.graph.total_mem_bytes(items) / items,
            "sla_ms": self.config.sla_ms,
        }


MODEL_CONFIGS: dict[str, ModelConfig] = {
    "DLRM-RMC1": ModelConfig(
        name="DLRM-RMC1",
        service="social media",
        num_tables=10,
        prod_rows=3_000_000,
        small_rows=1_000_000,
        embedding_dim=32,
        pooling_factor=80,  # Table I: 20-160 multi-hot lookups
        pooled=True,
        dense_in=128,
        bottom_mlp=(256, 128, 32),
        predict_mlp=(256, 64),
        sla_ms=20.0,
        mean_query_size=150,
    ),
    "DLRM-RMC2": ModelConfig(
        name="DLRM-RMC2",
        service="social media",
        num_tables=100,
        prod_rows=3_000_000,
        small_rows=1_000_000,
        embedding_dim=32,
        pooling_factor=80,
        pooled=True,
        dense_in=128,
        bottom_mlp=(256, 128, 32),
        predict_mlp=(512, 128),
        sla_ms=50.0,
        mean_query_size=150,
    ),
    "DLRM-RMC3": ModelConfig(
        name="DLRM-RMC3",
        service="social media",
        num_tables=10,
        prod_rows=15_000_000,
        small_rows=1_000_000,
        embedding_dim=64,
        pooling_factor=35,  # Table I: 20-50
        pooled=True,
        dense_in=512,
        bottom_mlp=(2560, 512, 32),
        predict_mlp=(512, 128),
        sla_ms=50.0,
        mean_query_size=120,
    ),
    "MT-WnD": ModelConfig(
        name="MT-WnD",
        service="video",
        num_tables=26,
        prod_rows=15_000_000,  # Table I: 3-40M; sized to fit host DRAM
        small_rows=1_000_000,
        embedding_dim=32,
        pooling_factor=1,  # one-hot, no pooling
        pooled=False,
        dense_in=256,
        bottom_mlp=(),
        predict_mlp=(1024, 512, 256),
        num_tasks=4,  # N parallel task towers
        sla_ms=100.0,
        mean_query_size=100,
    ),
    "DIN": ModelConfig(
        name="DIN",
        service="e-commerce",
        num_tables=3,
        prod_rows=150_000_000,  # Table I: 0.1M-600M; sized to fit host DRAM
        small_rows=1_000_000,
        embedding_dim=32,
        pooling_factor=1,  # one-hot lookup, attention over history
        pooled=False,
        dense_in=64,
        bottom_mlp=(),
        predict_mlp=(200, 80),
        attention=AttentionKind.FC,
        attention_seq_len=800,  # Table I: 100-1000 behaviour entries
        attention_hidden=128,  # Fig. 1: DIN tops compute intensity
        sla_ms=50.0,
        mean_query_size=100,
    ),
    "DIEN": ModelConfig(
        name="DIEN",
        service="e-commerce",
        num_tables=3,
        prod_rows=150_000_000,
        small_rows=1_000_000,
        embedding_dim=32,
        pooling_factor=1,
        pooled=False,
        dense_in=64,
        bottom_mlp=(),
        predict_mlp=(200, 80),
        attention=AttentionKind.GRU,
        attention_seq_len=800,
        attention_hidden=128,
        sla_ms=100.0,
        mean_query_size=100,
    ),
}

MODEL_NAMES: tuple[str, ...] = tuple(MODEL_CONFIGS)


def get_config(name: str) -> ModelConfig:
    """Look up a Table I configuration by model name."""
    try:
        return MODEL_CONFIGS[name]
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; available: {', '.join(MODEL_NAMES)}"
        ) from None


def _embedding_groups(config: ModelConfig, rows: int) -> list[EmbeddingLookup]:
    """Split the table population into independent gather nodes.

    Grouping bounds graph size for wide models (RMC2 has ~100 tables)
    while preserving the independence that SparseNet op-parallelism
    exploits (Fig. 10b: parallel workers on sparse threads).
    """
    num_groups = min(config.num_tables, _MAX_EMBEDDING_GROUPS)
    base, extra = divmod(config.num_tables, num_groups)
    groups = []
    for g in range(num_groups):
        tables = base + (1 if g < extra else 0)
        groups.append(
            EmbeddingLookup(
                name=f"emb_g{g}",
                num_tables=tables,
                rows_per_table=rows,
                embedding_dim=config.embedding_dim,
                pooling_factor=config.pooling_factor,
                pooled=config.pooled,
            )
        )
    return groups


def _build_dlrm_graph(config: ModelConfig, rows: int) -> Graph:
    """DLRM: Bottom-FC || embeddings -> interaction -> Predict-FC."""
    graph = Graph(config.name)
    bottom = MLP(
        name="bottom_fc", layer_dims=(config.dense_in, *config.bottom_mlp)
    )
    graph.add(Node(op=bottom))
    emb_groups = _embedding_groups(config, rows)
    for emb in emb_groups:
        graph.add(Node(op=emb))
    interaction = FeatureInteraction(
        name="interaction",
        num_vectors=config.num_tables + 1,  # per-table vectors + dense
        dim=config.embedding_dim,
    )
    graph.add(
        Node(op=interaction, deps=("bottom_fc", *(e.name for e in emb_groups)))
    )
    predict = MLP(
        name="predict_fc",
        layer_dims=(interaction.out_dim, *config.predict_mlp, 1),
    )
    graph.add(Node(op=predict, deps=("interaction",)))
    return graph


def _build_mtwnd_graph(config: ModelConfig, rows: int) -> Graph:
    """MT-WnD: one-hot embeddings -> concat -> N independent task towers."""
    graph = Graph(config.name)
    emb_groups = _embedding_groups(config, rows)
    for emb in emb_groups:
        graph.add(Node(op=emb))
    concat_dim = config.num_tables * config.embedding_dim + config.dense_in
    graph.add(
        Node(
            op=Concat(name="concat", total_dim=concat_dim),
            deps=tuple(e.name for e in emb_groups),
        )
    )
    for task in range(config.num_tasks):
        tower = MLP(
            name=f"predict_task{task}",
            layer_dims=(concat_dim, *config.predict_mlp, 1),
        )
        graph.add(Node(op=tower, deps=("concat",)))
    return graph


def _build_attention_graph(config: ModelConfig, rows: int) -> Graph:
    """DIN/DIEN: one-hot embeddings -> [GRU] -> attention -> Predict-FC."""
    graph = Graph(config.name)
    emb_groups = _embedding_groups(config, rows)
    for emb in emb_groups:
        graph.add(Node(op=emb))
    # The behaviour-history sequence belongs to the *user*, so one
    # query's items share it: its gather (and the DIEN GRU pass over
    # it) amortize over the query.  Costs are expressed per item by
    # dividing the sequence length by the mean query size.
    amortized_seq = max(1, round(config.attention_seq_len / config.mean_query_size))
    seq_emb = EmbeddingLookup(
        name="emb_history",
        num_tables=1,
        rows_per_table=rows,
        embedding_dim=config.embedding_dim,
        pooling_factor=amortized_seq,
        pooled=False,
        weight_shared=True,  # history reads the item-embedding table
    )
    graph.add(Node(op=seq_emb))
    attention_dep: tuple[str, ...] = ("emb_history",)
    if config.attention is AttentionKind.GRU:
        gru = GRUCell(
            name="interest_gru",
            seq_len=amortized_seq,
            hidden=config.embedding_dim,
        )
        graph.add(Node(op=gru, deps=("emb_history",)))
        attention_dep = ("interest_gru",)
    attn = Attention(
        name="attention",
        seq_len=config.attention_seq_len,
        dim=config.embedding_dim,
        hidden=config.attention_hidden,
    )
    graph.add(
        Node(op=attn, deps=attention_dep + tuple(e.name for e in emb_groups))
    )
    concat_dim = (
        config.num_tables * config.embedding_dim
        + config.embedding_dim
        + config.dense_in
    )
    graph.add(Node(op=Concat(name="concat", total_dim=concat_dim), deps=("attention",)))
    predict = MLP(
        name="predict_fc", layer_dims=(concat_dim, *config.predict_mlp, 1)
    )
    graph.add(Node(op=predict, deps=("concat",)))
    return graph


def build_model(
    name: str, variant: ModelVariant = ModelVariant.PROD
) -> RecommendationModel:
    """Instantiate one of the six Table I models.

    Args:
        name: One of :data:`MODEL_NAMES`.
        variant: ``PROD`` for production scale, ``SMALL`` for the
            accelerator-friendly variant.

    Returns:
        The model with its full computation graph ``Gm``.
    """
    config = get_config(name)
    rows = config.rows(variant)
    if config.attention is not AttentionKind.NONE:
        graph = _build_attention_graph(config, rows)
    elif config.num_tasks > 1:
        graph = _build_mtwnd_graph(config, rows)
    else:
        graph = _build_dlrm_graph(config, rows)
    return RecommendationModel(config=config, variant=variant, graph=graph)


def all_models(
    variant: ModelVariant = ModelVariant.PROD,
) -> list[RecommendationModel]:
    """All six Table I models at the requested scale."""
    return [build_model(name, variant) for name in MODEL_NAMES]
