"""HW-aware model partitioning (paper Section IV-B, Fig. 10a).

Production-scale recommendation models do not fit in accelerator memory
(16 GB on P100/V100): >95% of the footprint is SparseNet embeddings.
Hercules therefore partitions the full graph ``Gm`` into:

- ``Gd``      -- DenseNet, a few MBs, always accelerator-resident.
- ``Gs``      -- SparseNet over the *full* embedding tables (host side).
- ``Gs.hot``  -- Hot-SparseNet over the most-frequently-accessed rows,
  sized to the per-thread capacity budget ``capacity / co_location``.

Row popularity in production traces is heavily skewed (RecNMP/Bandana);
we model it with a Zipf distribution, so the hot-set *hit rate* is the
Zipf CDF mass of the retained rows.  Cold lookups are served on the
host, which forwards the partial sum and residual indices (Fig. 10d).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.models.graph import Graph, Node
from repro.models.ops import Activation, EmbeddingLookup, OpKind
from repro.models.zoo import RecommendationModel

__all__ = [
    "ZipfAccessProfile",
    "PartitionedModel",
    "partition_model",
    "fuse_elementwise",
]


@dataclass(frozen=True)
class ZipfAccessProfile:
    """Zipf-distributed embedding-row popularity.

    ``P(rank r) ~ 1 / r**alpha``.  ``alpha ~ 0.8-1.2`` matches the
    locality reported for production embedding traces [Bandana, RecNMP].
    """

    alpha: float = 0.95

    def __post_init__(self) -> None:
        if self.alpha <= 0:
            raise ValueError("alpha must be positive")

    def hit_rate(self, hot_rows: int, total_rows: int) -> float:
        """Fraction of accesses landing in the ``hot_rows`` most popular rows.

        Uses the continuous approximation of generalized harmonic sums,
        exact enough for the millions-of-rows regime and monotone in
        ``hot_rows`` (a property the tests rely on).
        """
        if total_rows <= 0:
            raise ValueError("total_rows must be positive")
        hot = max(0, min(hot_rows, total_rows))
        if hot == 0:
            return 0.0
        if hot == total_rows:
            return 1.0
        return self._harmonic(hot) / self._harmonic(total_rows)

    def _harmonic(self, n: int) -> float:
        """Approximate generalized harmonic number ``H(n, alpha)``."""
        if abs(self.alpha - 1.0) < 1e-9:
            return math.log(n) + 0.5772156649
        return (n ** (1.0 - self.alpha) - 1.0) / (1.0 - self.alpha) + 1.0


@dataclass(frozen=True)
class PartitionedModel:
    """The result of HW-aware partitioning of one model for one device.

    Attributes:
        model: The source model.
        dense: DenseNet ``Gd``.
        sparse: SparseNet ``Gs`` over full tables.
        hot_sparse: Hot-SparseNet ``Gs.hot`` (None when the device holds
            the full tables, i.e. host-only execution).
        hot_hit_rate: Probability a lookup is served by ``Gs.hot``.
        hot_rows_per_table: Rows retained per table in the hot set.
        capacity_budget_bytes: The per-thread budget the hot set was
            sized for (``device memory / co-location``).
    """

    model: RecommendationModel
    dense: Graph
    sparse: Graph
    hot_sparse: Graph | None
    hot_hit_rate: float
    hot_rows_per_table: int
    capacity_budget_bytes: float

    @property
    def name(self) -> str:
        return self.model.name

    @property
    def has_hot_partition(self) -> bool:
        return self.hot_sparse is not None

    @property
    def cold_miss_rate(self) -> float:
        """Fraction of lookups the host must still serve (Fig. 10d path)."""
        if not self.has_hot_partition:
            return 1.0
        return 1.0 - self.hot_hit_rate


def _split_sparse_dense(graph: Graph) -> tuple[Graph, Graph]:
    """Project ``Gm`` into SparseNet ``Gs`` and DenseNet ``Gd``."""
    sparse_names = [n.name for n in graph.sparse_nodes]
    dense_names = [n.name for n in graph.dense_nodes]
    sparse = graph.subgraph(f"{graph.name}.Gs", sparse_names)
    dense = graph.subgraph(f"{graph.name}.Gd", dense_names)
    return sparse, dense


def _shrink_embedding(op: EmbeddingLookup, hot_rows: int, suffix: str) -> EmbeddingLookup:
    """Clone an embedding op restricted to its ``hot_rows`` top rows."""
    return EmbeddingLookup(
        name=f"{op.name}{suffix}",
        num_tables=op.num_tables,
        rows_per_table=hot_rows,
        embedding_dim=op.embedding_dim,
        pooling_factor=op.pooling_factor,
        pooled=op.pooled,
    )


def partition_model(
    model: RecommendationModel,
    device_memory_bytes: float | None = None,
    co_location: int = 1,
    access_profile: ZipfAccessProfile | None = None,
) -> PartitionedModel:
    """Partition a model for a device with limited memory.

    Args:
        model: Model to partition.
        device_memory_bytes: Usable accelerator memory.  ``None`` means
            host execution with no capacity constraint: ``Gs.hot`` is not
            built and the full ``Gs``/``Gd`` split is returned.
        co_location: Number of co-located inference threads sharing the
            device; the per-thread capacity budget divides by it
            (Section IV-B: ``memory capacity / model co-location``).
        access_profile: Row-popularity model for the locality-aware hot
            split.  Defaults to a production-like Zipf(0.95).

    Returns:
        The :class:`PartitionedModel`.

    Raises:
        ValueError: If even a single-row-per-table hot set plus the
            DenseNet exceeds the capacity budget.
    """
    if co_location < 1:
        raise ValueError("co_location must be >= 1")
    profile = access_profile or ZipfAccessProfile()
    sparse, dense = _split_sparse_dense(model.graph)

    if device_memory_bytes is None:
        return PartitionedModel(
            model=model,
            dense=dense,
            sparse=sparse,
            hot_sparse=None,
            hot_hit_rate=0.0,
            hot_rows_per_table=0,
            capacity_budget_bytes=math.inf,
        )

    budget = device_memory_bytes / co_location
    dense_bytes = dense.total_weight_bytes()
    sparse_budget = budget - dense_bytes
    if sparse_budget <= 0:
        raise ValueError(
            f"DenseNet of {model.name} ({dense_bytes / 1e6:.1f} MB) alone "
            f"exceeds the per-thread capacity budget ({budget / 1e6:.1f} MB)"
        )

    emb_ops = [n.op for n in sparse if isinstance(n.op, EmbeddingLookup)]
    bytes_per_row_all_tables = sum(
        op.num_tables * op.embedding_dim * 4.0 for op in emb_ops
    )
    hot_rows = int(sparse_budget // bytes_per_row_all_tables)
    max_rows = max(op.rows_per_table for op in emb_ops)
    hot_rows = min(hot_rows, max_rows)
    if hot_rows < 1:
        raise ValueError(
            f"capacity budget of {budget / 1e9:.2f} GB cannot hold even one "
            f"hot row per table of {model.name}"
        )

    hot = Graph(f"{model.graph.name}.Gs.hot")
    total_lookups = 0.0
    hot_lookup_mass = 0.0
    for op in emb_ops:
        rows = min(hot_rows, op.rows_per_table)
        hot.add(Node(op=_shrink_embedding(op, rows, ".hot")))
        weight = op.num_tables * op.pooling_factor
        total_lookups += weight
        hot_lookup_mass += weight * profile.hit_rate(rows, op.rows_per_table)
    hit_rate = hot_lookup_mass / total_lookups if total_lookups else 0.0

    return PartitionedModel(
        model=model,
        dense=dense,
        sparse=sparse,
        hot_sparse=hot,
        hot_hit_rate=hit_rate,
        hot_rows_per_table=hot_rows,
        capacity_budget_bytes=budget,
    )


def fuse_elementwise(graph: Graph) -> Graph:
    """Operator fusion for elementwise activations (paper cites TVM).

    Every :class:`Activation` node with exactly one dependency is folded
    into its producer: consumers are re-pointed at the producer and the
    activation node disappears.  FLOP totals change by only the (tiny)
    elementwise cost, matching what kernel fusion achieves in practice.
    """
    fused_away: dict[str, str] = {}
    for node in graph:
        if isinstance(node.op, Activation) and len(node.deps) == 1:
            fused_away[node.name] = node.deps[0]

    def resolve(name: str) -> str:
        while name in fused_away:
            name = fused_away[name]
        return name

    out = Graph(graph.name)
    for node in graph:
        if node.name in fused_away:
            continue
        deps = tuple(dict.fromkeys(resolve(d) for d in node.deps))
        out.add(Node(op=node.op, deps=deps))
    return out
