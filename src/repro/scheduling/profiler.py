"""Offline profiling: the workload-classification table (Fig. 9b).

For every (server type, model) pair Hercules runs the task-scheduling
search and records the **efficiency tuple** ``(QPS, Power)`` -- the
latency-bounded throughput and the measured peak power at that optimum.
The table classifies workloads for the online cluster scheduler: QPS
feeds the coverage constraint, power feeds both the objective and the
per-server provisioned budget.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable

from repro.hardware.server import ServerType
from repro.models.zoo import RecommendationModel
from repro.scheduling.parallelism import ExecutionPlan
from repro.scheduling.search import HerculesTaskScheduler, SearchResult
from repro.sim.evaluator import ServerEvaluator
from repro.sim.queries import QueryWorkload

__all__ = ["EfficiencyTuple", "ClassificationTable", "OfflineProfiler"]


@dataclass(frozen=True)
class EfficiencyTuple:
    """One cell of the workload-classification table.

    Attributes:
        server_name: Table II server type name.
        model_name: Table I model name.
        qps: Latency-bounded throughput ``QPS_{h,m}``.
        power_w: Peak power at that operating point ``Power_{h,m}``;
            used as the per-server provisioned power budget online.
        plan: The winning scheduling configuration.
        evaluations: Search cost that produced this tuple.
    """

    server_name: str
    model_name: str
    qps: float
    power_w: float
    plan: ExecutionPlan | None
    evaluations: int = 0

    @property
    def qps_per_watt(self) -> float:
        if self.power_w <= 0:
            return 0.0
        return self.qps / self.power_w

    @property
    def feasible(self) -> bool:
        return self.plan is not None and self.qps > 0


@dataclass
class ClassificationTable:
    """The efficiency-tuple table for all workload/server pairs."""

    entries: dict[tuple[str, str], EfficiencyTuple] = field(default_factory=dict)

    def add(self, tup: EfficiencyTuple) -> None:
        self.entries[(tup.server_name, tup.model_name)] = tup

    def get(self, server_name: str, model_name: str) -> EfficiencyTuple:
        try:
            return self.entries[(server_name, model_name)]
        except KeyError:
            raise KeyError(
                f"no efficiency tuple for ({server_name}, {model_name}); "
                "run the offline profiler first"
            ) from None

    def qps(self, server_name: str, model_name: str) -> float:
        return self.get(server_name, model_name).qps

    def power(self, server_name: str, model_name: str) -> float:
        return self.get(server_name, model_name).power_w

    @property
    def server_names(self) -> list[str]:
        return sorted({s for s, _ in self.entries})

    @property
    def model_names(self) -> list[str]:
        return sorted({m for _, m in self.entries})

    def rank_servers(
        self, model_name: str, metric: str = "qps_per_watt"
    ) -> list[EfficiencyTuple]:
        """Server types ranked best-first for one workload.

        This is the classification step of the greedy scheduler
        (Section II-C): ranking by latency-bounded energy efficiency.
        """
        if metric not in ("qps_per_watt", "qps"):
            raise ValueError(f"unknown ranking metric {metric!r}")
        rows = [
            tup
            for (server, model), tup in self.entries.items()
            if model == model_name and tup.feasible
        ]
        return sorted(rows, key=lambda t: getattr(t, metric), reverse=True)

    def normalized(
        self, metric: str = "qps", baseline_server: str = "T1"
    ) -> dict[str, dict[str, float]]:
        """Per-model values normalized to one server type (Fig. 15)."""
        out: dict[str, dict[str, float]] = {}
        for model in self.model_names:
            base = self.get(baseline_server, model)
            base_value = getattr(base, metric) if base.feasible else 0.0
            row = {}
            for server in self.server_names:
                tup = self.entries.get((server, model))
                if tup is None or not tup.feasible or base_value <= 0:
                    row[server] = 0.0
                else:
                    row[server] = getattr(tup, metric) / base_value
            out[model] = row
        return out


class OfflineProfiler:
    """Runs the task-scheduling search for every workload/server pair.

    Args:
        scheduler_factory: Builds the per-pair task scheduler; defaults
            to :class:`HerculesTaskScheduler`.  Pass a baseline factory
            to build the comparison tables of Fig. 14.
        evaluator_factory: Builds the per-server evaluator; override to
            inject custom interference or PCIe models.
    """

    def __init__(
        self,
        scheduler_factory: Callable[..., object] = HerculesTaskScheduler,
        evaluator_factory: Callable[[ServerType], ServerEvaluator] = ServerEvaluator,
    ) -> None:
        self.scheduler_factory = scheduler_factory
        self.evaluator_factory = evaluator_factory
        self._evaluators: dict[str, ServerEvaluator] = {}

    def evaluator(self, server: ServerType) -> ServerEvaluator:
        if server.name not in self._evaluators:
            self._evaluators[server.name] = self.evaluator_factory(server)
        return self._evaluators[server.name]

    def profile_pair(
        self,
        server: ServerType,
        model: RecommendationModel,
        workload: QueryWorkload | None = None,
        sla_ms: float | None = None,
    ) -> EfficiencyTuple:
        """Search one (server, model) pair and record its tuple."""
        scheduler = self.scheduler_factory(
            self.evaluator(server), model, workload, sla_ms
        )
        result: SearchResult = scheduler.search()
        if not result.feasible:
            return EfficiencyTuple(
                server_name=server.name,
                model_name=model.name,
                qps=0.0,
                power_w=server.idle_w,
                plan=None,
                evaluations=result.evaluations,
            )
        return EfficiencyTuple(
            server_name=server.name,
            model_name=model.name,
            qps=result.perf.qps,
            power_w=result.perf.power_w,
            plan=result.plan,
            evaluations=result.evaluations,
        )

    def profile(
        self,
        servers: list[ServerType],
        models: list[RecommendationModel],
        workloads: dict[str, QueryWorkload] | None = None,
        jobs: int = 1,
    ) -> ClassificationTable:
        """Profile all pairs into a classification table.

        Args:
            servers: Server types to profile.
            models: Models to profile.
            workloads: Optional per-model workload overrides.
            jobs: Worker processes for the fan-out.  ``1`` (default)
                profiles serially in-process; ``0``/``None`` uses every
                CPU.  Parallel granularity is one server type per task,
                so each worker shares its evaluator (and NMP LUT)
                across that server's models exactly like the serial
                path.  The table is identical to a serial run -- each
                pair's search is deterministic and results are merged
                in server-major order.  Requires picklable models and
                factories (the defaults are).
        """
        if jobs is None or jobs == 0:
            jobs = os.cpu_count() or 1
        table = ClassificationTable()
        if jobs == 1 or len(servers) <= 1:
            for server in servers:
                for model in models:
                    workload = (workloads or {}).get(model.name)
                    table.add(self.profile_pair(server, model, workload))
            return table

        from concurrent.futures import ProcessPoolExecutor

        # Shared cache warm-up: prime the module state fork-started
        # workers inherit -- the scipy import and the lru-cached
        # log-normal percentile table behind ``tail_size`` (the
        # latency-bounded bisection's per-probe sizes) -- so each
        # worker starts hot instead of re-deriving them per process.
        for model in models:
            workload = (workloads or {}).get(model.name) or QueryWorkload.for_model(
                model.config.mean_query_size
            )
            for p in (50.0, 95.0, 99.0):
                workload.tail_size(p)

        tasks = [
            (self.scheduler_factory, self.evaluator_factory, server, models, workloads)
            for server in servers
        ]
        with ProcessPoolExecutor(max_workers=min(jobs, len(servers))) as pool:
            for rows in pool.map(_profile_server_task, tasks):
                for tup in rows:
                    table.add(tup)
        return table


def _profile_server_task(args: tuple) -> list[EfficiencyTuple]:
    """Profile one server type against every model (pool worker).

    Module-level so it pickles; returns plain :class:`EfficiencyTuple`
    rows (floats + frozen plans), which pickle cheaply.
    """
    scheduler_factory, evaluator_factory, server, models, workloads = args
    profiler = OfflineProfiler(scheduler_factory, evaluator_factory)
    return [
        profiler.profile_pair(server, model, (workloads or {}).get(model.name))
        for model in models
    ]
