"""Hybrid host + accelerator serving (paper Section IV-B, Fig. 10d).

"To fully utilize the host-side resources, the cores that remain
available can perform either S-D pipeline scheduling or model-based
scheduling."  A :class:`HybridPlan` therefore runs two independent
serving paths on one physical server:

- the *accelerator path* (GPU model-based or GPU S-D), and
- the *host path* (CPU model-based on the cores the accelerator path
  does not pin).

The query dispatcher splits traffic between the paths, so their
latency-bounded throughputs add while their component utilizations
share the same power envelope.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.power import ComponentUtilization
from repro.models.partition import PartitionedModel, partition_model
from repro.models.zoo import RecommendationModel
from repro.plans import ExecutionPlan, Placement
from repro.sim.evaluator import ServerEvaluator
from repro.sim.metrics import LatencyStats, ServerPerformance
from repro.sim.queries import QueryWorkload

__all__ = ["HybridPlan", "evaluate_hybrid", "HybridSearch"]


@dataclass(frozen=True)
class HybridPlan:
    """Two independent serving paths sharing one server.

    Attributes:
        accelerator: A GPU placement plan.
        host: A CPU placement plan running on the remaining cores.
    """

    accelerator: ExecutionPlan
    host: ExecutionPlan

    def __post_init__(self) -> None:
        if not self.accelerator.placement.uses_gpu:
            raise ValueError("accelerator path must use a GPU placement")
        if self.host.placement.uses_gpu:
            raise ValueError("host path must be CPU-only")

    @property
    def cpu_cores_used(self) -> int:
        return self.accelerator.cpu_cores_used + self.host.cpu_cores_used

    def fits(self, server) -> bool:
        if not server.has_gpu:
            return False
        return self.cpu_cores_used <= server.cpu.cores

    def describe(self) -> str:
        return f"hybrid[{self.accelerator.describe()} | {self.host.describe()}]"


def evaluate_hybrid(
    evaluator: ServerEvaluator,
    accel_partitioned: PartitionedModel,
    host_partitioned: PartitionedModel,
    workload: QueryWorkload,
    plan: HybridPlan,
    sla_ms: float,
    power_budget_w: float | None = None,
) -> ServerPerformance:
    """Latency-bounded throughput of a hybrid plan.

    The two paths serve disjoint query streams, so the combined
    latency-bounded throughput is the sum of the per-path optima; the
    p99 latency is the worse of the two, and power comes from the
    summed component utilizations (idle power counted once).
    """
    if not plan.fits(evaluator.server):
        return ServerPerformance.infeasible(
            f"hybrid plan needs {plan.cpu_cores_used} cores, server has "
            f"{evaluator.server.cpu.cores}"
        )
    accel = evaluator.latency_bounded(
        accel_partitioned, workload, plan.accelerator, sla_ms
    )
    host = evaluator.latency_bounded(host_partitioned, workload, plan.host, sla_ms)
    if not accel.feasible and not host.feasible:
        return ServerPerformance.infeasible("both hybrid paths infeasible")
    parts = [p for p in (accel, host) if p.feasible]

    qps = sum(p.qps for p in parts)
    cpu_util = min(1.0, sum(p.cpu_util for p in parts))
    gpu_util = min(1.0, sum(p.gpu_util for p in parts))
    mem_util = min(1.0, sum(p.mem_util for p in parts))
    power = evaluator.server.power_w(
        ComponentUtilization(cpu=cpu_util, memory=mem_util, gpu=gpu_util)
    )
    if power_budget_w is not None and power > power_budget_w:
        return ServerPerformance.infeasible(
            f"hybrid power {power:.0f} W exceeds budget {power_budget_w:.0f} W",
            power_w=power,
        )
    latency = LatencyStats(
        p50_ms=max(p.latency.p50_ms for p in parts),
        p95_ms=max(p.latency.p95_ms for p in parts),
        p99_ms=max(p.latency.p99_ms for p in parts),
        mean_ms=max(p.latency.mean_ms for p in parts),
    )
    return ServerPerformance(
        qps=qps,
        latency=latency,
        power_w=power,
        cpu_util=cpu_util,
        gpu_util=gpu_util,
        mem_util=mem_util,
    )


class HybridSearch:
    """Find the best hybrid plan given an already-optimized GPU plan.

    Keeps the accelerator path fixed (the optimum the gradient search
    found) and hill-climbs a host-side model-based configuration over
    the leftover cores.
    """

    def __init__(
        self,
        evaluator: ServerEvaluator,
        model: RecommendationModel,
        workload: QueryWorkload | None = None,
        sla_ms: float | None = None,
        power_budget_w: float | None = None,
    ) -> None:
        self.evaluator = evaluator
        self.model = model
        self.workload = workload or QueryWorkload.for_model(
            model.config.mean_query_size
        )
        self.sla_ms = sla_ms if sla_ms is not None else model.sla_ms
        self.power_budget_w = power_budget_w

    def search(
        self, accelerator_plan: ExecutionPlan
    ) -> tuple[HybridPlan | None, ServerPerformance | None]:
        """Best hybrid extension of ``accelerator_plan`` (None if no cores left)."""
        server = self.evaluator.server
        if not server.has_gpu or not accelerator_plan.placement.uses_gpu:
            return None, None
        free_cores = server.cpu.cores - accelerator_plan.cpu_cores_used
        if free_cores < 1:
            return None, None
        if self.model.graph.total_weight_bytes() > server.memory.capacity_bytes:
            return None, None  # host path cannot hold the model

        gpu = server.gpu
        assert gpu is not None
        accel_partitioned = partition_model(
            self.model, gpu.memory_bytes, max(1, accelerator_plan.threads)
        )
        host_partitioned = partition_model(self.model)

        best: tuple[HybridPlan, ServerPerformance] | None = None
        for cores_per_thread in (1, 2):
            threads = free_cores // cores_per_thread
            if threads < 1:
                continue
            for batch in (32, 64, 128, 256):
                host_plan = ExecutionPlan(
                    Placement.CPU_MODEL_BASED,
                    threads=threads,
                    cores_per_thread=cores_per_thread,
                    batch_size=batch,
                )
                hybrid = HybridPlan(accelerator=accelerator_plan, host=host_plan)
                perf = evaluate_hybrid(
                    self.evaluator,
                    accel_partitioned,
                    host_partitioned,
                    self.workload,
                    hybrid,
                    self.sla_ms,
                    self.power_budget_w,
                )
                if perf.feasible and (best is None or perf.qps > best[1].qps):
                    best = (hybrid, perf)
        if best is None:
            return None, None
        return best
