"""Baseline task schedulers: DeepRecSys [37] and Baymax [32].

The paper's characterization and Fig. 14 use these as the
state-of-the-art reference:

- **DeepRecSys** explores data-parallelism only on multi-core CPUs: one
  inference thread per physical core (``m = cores, o = 1``), hill-climb
  over the batch size ``d``.  On accelerators it runs one model with no
  co-location and no query fusion.
- **Baymax** adds accelerator model co-location (more concurrent model
  threads on one GPU) but still no query fusion.

Both are restrictions of the same :class:`ExecutionPlan` space, so the
improvement Hercules reports is purely from exploring the rest of it.
"""

from __future__ import annotations

from repro.models.zoo import RecommendationModel
from repro.scheduling.parallelism import ExecutionPlan, Placement
from repro.scheduling.search import BATCH_GRID, GradientSearch, SearchResult
from repro.sim.evaluator import ServerEvaluator
from repro.sim.queries import QueryWorkload

__all__ = [
    "DeepRecSysScheduler",
    "BaymaxScheduler",
    "BaselineTaskScheduler",
]


class DeepRecSysScheduler:
    """Hill-climbing over batch size with fixed one-core threads."""

    def __init__(
        self,
        evaluator: ServerEvaluator,
        model: RecommendationModel,
        workload: QueryWorkload | None = None,
        sla_ms: float | None = None,
        power_budget_w: float | None = None,
    ) -> None:
        self.space = GradientSearch(evaluator, model, workload, sla_ms, power_budget_w)

    def search_cpu(self) -> SearchResult:
        """Psp(D): sweep ``d`` with ``m = cores, o = 1`` fixed."""
        space = self.space
        cores = space.evaluator.server.cpu.cores
        partitioned = space.host_partition()
        best_plan, best = None, None
        previous_qps = -1.0
        for d in BATCH_GRID:
            plan = ExecutionPlan(
                Placement.CPU_MODEL_BASED,
                threads=cores,
                cores_per_thread=1,
                batch_size=d,
            )
            perf = space.score(plan, partitioned)
            if perf.feasible and (best is None or perf.qps > best.qps):
                best_plan, best = plan, perf
            if perf.feasible and perf.qps < previous_qps:
                break  # hill-climb termination
            previous_qps = perf.qps if perf.feasible else previous_qps
        return space._result(best_plan, best)

    def search_gpu(self) -> SearchResult:
        """Accelerator side: one model thread, no co-location, no fusion."""
        space = self.space
        if not space.evaluator.server.has_gpu:
            return space._result(None, None)
        partitioned = space.gpu_partition(1)
        if partitioned is None:
            return space._result(None, None)
        st = space.evaluator.server.cpu.cores if partitioned.cold_miss_rate > 0 else 0
        plan = ExecutionPlan(
            Placement.GPU_MODEL_BASED,
            threads=1,
            fusion_limit=0,
            sparse_threads=st,
            sparse_cores=1,
            batch_size=256,
        )
        perf = space.score(plan, partitioned)
        if not perf.feasible:
            return space._result(None, None)
        return space._result(plan, perf)

    def search(self) -> SearchResult:
        result = self.search_cpu()
        if self.space.evaluator.server.has_gpu:
            result = result.merge(self.search_gpu())
        return result


class BaymaxScheduler:
    """Accelerator model co-location without query fusion."""

    def __init__(
        self,
        evaluator: ServerEvaluator,
        model: RecommendationModel,
        workload: QueryWorkload | None = None,
        sla_ms: float | None = None,
        power_budget_w: float | None = None,
        max_co_location: int = 8,
    ) -> None:
        self.space = GradientSearch(evaluator, model, workload, sla_ms, power_budget_w)
        self.max_co_location = max_co_location

    def search(self) -> SearchResult:
        """Climb the number of co-located model threads (fusion stays off)."""
        space = self.space
        if not space.evaluator.server.has_gpu:
            return space._result(None, None)
        best_plan, best = None, None
        previous_qps = -1.0
        for g in range(1, self.max_co_location + 1):
            partitioned = space.gpu_partition(g)
            if partitioned is None:
                break
            st = (
                space.evaluator.server.cpu.cores
                if partitioned.cold_miss_rate > 0
                else 0
            )
            plan = ExecutionPlan(
                Placement.GPU_MODEL_BASED,
                threads=g,
                fusion_limit=0,
                sparse_threads=st,
                sparse_cores=1,
                batch_size=256,
            )
            perf = space.score(plan, partitioned)
            if perf.feasible and (best is None or perf.qps > best.qps):
                best_plan, best = plan, perf
            if perf.feasible and perf.qps < previous_qps:
                break
            previous_qps = perf.qps if perf.feasible else previous_qps
        return space._result(best_plan, best)


class BaselineTaskScheduler:
    """The paper's combined baseline: DeepRecSys on CPU, Baymax on GPU."""

    def __init__(
        self,
        evaluator: ServerEvaluator,
        model: RecommendationModel,
        workload: QueryWorkload | None = None,
        sla_ms: float | None = None,
        power_budget_w: float | None = None,
    ) -> None:
        self._deeprecsys = DeepRecSysScheduler(
            evaluator, model, workload, sla_ms, power_budget_w
        )
        self._baymax = BaymaxScheduler(
            evaluator, model, workload, sla_ms, power_budget_w
        )

    def search(self) -> SearchResult:
        """Best of DeepRecSys (host) and Baymax (accelerator)."""
        result = self._deeprecsys.search_cpu()
        baymax = self._baymax.search()
        merged = result.merge(baymax)
        # The two schedulers own separate evaluation counters.
        merged.evaluations = result.evaluations + baymax.evaluations
        return merged
