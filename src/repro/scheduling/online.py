"""Online serving setup: re-profile plans against real-time queries.

Paper Section IV-A: "During online serving, initial setup is first
performed by running the SLA- and power-aware task scheduling
exploration to ensure accurate profiling with the real-time queries ...
The efficiency tuple is also updated in real-time to reflect the
measured performance with real-time query loads."

The offline tuples come from the closed-form evaluator; this module
replays each tuple's plan in the discrete-event simulator with real
sampled traffic, backs the operating point off until both the SLA and
the offline-provisioned power budget hold, and writes the *measured*
tuple back into the classification table.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.server import SERVER_TYPES
from repro.models.partition import partition_model
from repro.models.zoo import RecommendationModel, build_model
from repro.scheduling.profiler import ClassificationTable, EfficiencyTuple
from repro.sim.evaluator import ServerEvaluator
from repro.sim.metrics import ServerPerformance
from repro.sim.queries import QueryWorkload
from repro.sim.server_sim import simulate

__all__ = ["CalibrationResult", "OnlineCalibrator"]


@dataclass(frozen=True)
class CalibrationResult:
    """Outcome of calibrating one efficiency tuple online.

    Attributes:
        original: The offline-profiled tuple.
        calibrated: The tuple after online measurement.
        measured: The DES measurement at the calibrated rate.
        backoff: Fraction of the offline QPS that survived calibration
            (1.0 means the offline profile held exactly).
    """

    original: EfficiencyTuple
    calibrated: EfficiencyTuple
    measured: ServerPerformance
    backoff: float


class OnlineCalibrator:
    """Replays profiled plans in the DES and adjusts their tuples.

    Args:
        duration_s: Simulated seconds per measurement.
        sla_slack: Multiplier on the SLA during calibration; production
            setups leave headroom (1.0 enforces the SLA exactly).
        seed: Trace seed, for reproducible calibration.
        max_backoff_steps: Resolution of the backoff search.
    """

    def __init__(
        self,
        duration_s: float = 10.0,
        sla_slack: float = 1.0,
        seed: int = 0,
        max_backoff_steps: int = 5,
    ) -> None:
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        if sla_slack <= 0:
            raise ValueError("sla_slack must be positive")
        if max_backoff_steps < 1:
            raise ValueError("need at least one backoff step")
        self.duration_s = duration_s
        self.sla_slack = sla_slack
        self.seed = seed
        self.max_backoff_steps = max_backoff_steps

    def _partition_for(self, model: RecommendationModel, tup: EfficiencyTuple):
        server = SERVER_TYPES[tup.server_name]
        if tup.plan is not None and tup.plan.placement.uses_gpu:
            assert server.gpu is not None
            return partition_model(
                model, server.gpu.memory_bytes, max(1, tup.plan.threads)
            )
        return partition_model(model)

    def calibrate_pair(
        self,
        tup: EfficiencyTuple,
        model: RecommendationModel | None = None,
        workload: QueryWorkload | None = None,
    ) -> CalibrationResult:
        """Measure one tuple's operating point with real queries.

        The offline QPS is replayed in the DES; if the measured p99
        violates the SLA or the power exceeds the offline-provisioned
        budget, the rate backs off geometrically until both hold.
        """
        if not tup.feasible:
            raise ValueError(f"cannot calibrate infeasible tuple {tup}")
        model = model or build_model(tup.model_name)
        workload = workload or QueryWorkload.for_model(model.config.mean_query_size)
        server = SERVER_TYPES[tup.server_name]
        evaluator = ServerEvaluator(server)
        partitioned = self._partition_for(model, tup)
        sla_ms = model.sla_ms * self.sla_slack

        fraction = 1.0
        measured: ServerPerformance | None = None
        for step in range(self.max_backoff_steps):
            rate = tup.qps * fraction
            measured = simulate(
                evaluator,
                partitioned,
                workload,
                tup.plan,
                arrival_qps=rate,
                duration_s=self.duration_s,
                seed=self.seed + step,
            )
            if (
                measured.latency.p99_ms <= sla_ms
                and measured.power_w <= tup.power_w * 1.02
            ):
                break
            fraction *= 0.85
        assert measured is not None
        calibrated = EfficiencyTuple(
            server_name=tup.server_name,
            model_name=tup.model_name,
            qps=measured.qps,
            power_w=max(measured.power_w, tup.power_w * fraction),
            plan=tup.plan,
            evaluations=tup.evaluations,
        )
        return CalibrationResult(
            original=tup,
            calibrated=calibrated,
            measured=measured,
            backoff=fraction,
        )

    def calibrate(
        self,
        table: ClassificationTable,
        models: dict[str, RecommendationModel] | None = None,
    ) -> ClassificationTable:
        """Calibrate every feasible tuple, returning the measured table."""
        models = models or {}
        out = ClassificationTable()
        for tup in table.entries.values():
            if not tup.feasible:
                out.add(tup)
                continue
            result = self.calibrate_pair(tup, models.get(tup.model_name))
            out.add(result.calibrated)
        return out
