"""Re-export of the parallelism-space types.

The plan types live in :mod:`repro.plans` so that :mod:`repro.sim` can
depend on them without importing the scheduling package (which itself
depends on the simulator).
"""

from repro.plans import ExecutionPlan, Placement

__all__ = ["ExecutionPlan", "Placement"]
