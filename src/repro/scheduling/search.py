"""Gradient-guided task-scheduling exploration (paper Algorithm 1).

The scheduling space ``Psp(M+D+O)`` is the product of model-parallelism
(co-located threads ``m``), data-parallelism (batch size / fusion limit
``d``), and op-parallelism (cores per thread ``o``).  The paper observes
that throughput/latency/power are convex over ``Psp(M+D)`` (Fig. 11),
so a gradient walk finds the global optimum of each slice:

1. start at minimal co-location and minimal batch;
2. evaluate the three forward candidates -- grow ``d``, grow ``m``,
   grow both -- keeping only candidates that meet the SLA latency and
   provisioned-power constraints;
3. move to the candidate with the largest throughput gradient;
   terminate when none improves;
4. the outer loop sweeps ``Psp(O)`` and stops when the per-``o`` peak
   starts decreasing.

Every candidate is scored by its *latency-bounded throughput* from the
closed-form evaluator -- the same measurement the paper's prototype
takes with its load generator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.models.partition import PartitionedModel, partition_model
from repro.models.zoo import RecommendationModel
from repro.scheduling.parallelism import ExecutionPlan, Placement
from repro.sim.evaluator import ServerEvaluator
from repro.sim.metrics import ServerPerformance
from repro.sim.queries import QueryWorkload

__all__ = [
    "BATCH_GRID",
    "FUSION_GRID",
    "SearchResult",
    "GradientSearch",
    "HerculesTaskScheduler",
]

#: Host-side sub-query batch sizes swept by data-parallelism.
BATCH_GRID: tuple[int, ...] = (8, 16, 32, 64, 128, 256, 512, 1024)

#: Accelerator query-fusion limits (items per fused batch).
FUSION_GRID: tuple[int, ...] = (128, 256, 512, 1024, 2048, 4096, 8192)


@dataclass
class SearchResult:
    """Outcome of one scheduling-space exploration.

    Attributes:
        plan: Best feasible plan found (None if the space is infeasible).
        perf: Performance at the best plan.
        evaluations: Number of candidate configurations scored -- the
            search-cost metric the convexity ablation compares against
            exhaustive sweeps.
        visited: Every (plan, qps) scored, in visit order.
    """

    plan: ExecutionPlan | None
    perf: ServerPerformance
    evaluations: int = 0
    visited: list[tuple[ExecutionPlan, float]] = field(default_factory=list)

    @property
    def feasible(self) -> bool:
        return self.plan is not None and self.perf.feasible

    def merge(self, other: "SearchResult") -> "SearchResult":
        """Combine two placement searches, keeping the better optimum.

        Evaluation counts take the max because placement searches share
        one :class:`GradientSearch`, whose counter is cumulative.
        """
        best = self if self.better_than(other) else other
        return SearchResult(
            plan=best.plan,
            perf=best.perf,
            evaluations=max(self.evaluations, other.evaluations),
            visited=other.visited if len(other.visited) >= len(self.visited) else self.visited,
        )

    def better_than(self, other: "SearchResult") -> bool:
        if not other.feasible:
            return True
        if not self.feasible:
            return False
        return self.perf.qps >= other.perf.qps


class GradientSearch:
    """Algorithm 1 over one placement's parallelism space.

    Args:
        evaluator: Server evaluator for the target architecture.
        model: The recommendation model (production or small variant).
        workload: Query-size statistics.
        sla_ms: SLA latency target ``L`` (defaults to the model's).
        power_budget_w: Provisioned power budget ``P`` (None during
            offline profiling, where peak power is *recorded* not
            constrained).
    """

    def __init__(
        self,
        evaluator: ServerEvaluator,
        model: RecommendationModel,
        workload: QueryWorkload | None = None,
        sla_ms: float | None = None,
        power_budget_w: float | None = None,
    ) -> None:
        self.evaluator = evaluator
        self.model = model
        self.workload = workload or QueryWorkload.for_model(
            model.config.mean_query_size
        )
        self.sla_ms = sla_ms if sla_ms is not None else model.sla_ms
        self.power_budget_w = power_budget_w
        self._host_partition: PartitionedModel | None = None
        self._gpu_partitions: dict[int, PartitionedModel | None] = {}
        self._cache: dict[ExecutionPlan, ServerPerformance] = {}
        self._sd_ratios: dict[int, float] = {}
        self.evaluations = 0
        self.visited: list[tuple[ExecutionPlan, float]] = []

    # -- partitions ------------------------------------------------------

    def host_partition(self) -> PartitionedModel:
        if self._host_partition is None:
            self._host_partition = partition_model(self.model)
        return self._host_partition

    def gpu_partition(self, co_location: int) -> PartitionedModel | None:
        """HW-aware partition for ``co_location`` accelerator threads."""
        if co_location not in self._gpu_partitions:
            gpu = self.evaluator.server.gpu
            if gpu is None:
                self._gpu_partitions[co_location] = None
            else:
                try:
                    self._gpu_partitions[co_location] = partition_model(
                        self.model, gpu.memory_bytes, co_location
                    )
                except ValueError:
                    self._gpu_partitions[co_location] = None
        return self._gpu_partitions[co_location]

    # -- scoring ---------------------------------------------------------

    def score(self, plan: ExecutionPlan, partitioned: PartitionedModel) -> ServerPerformance:
        """Latency-bounded throughput of one candidate (cached)."""
        if plan in self._cache:
            return self._cache[plan]
        perf = self.evaluator.latency_bounded(
            partitioned, self.workload, plan, self.sla_ms, self.power_budget_w
        )
        self._cache[plan] = perf
        self.evaluations += 1
        self.visited.append((plan, perf.qps if perf.feasible else 0.0))
        return perf

    def _result(
        self, plan: ExecutionPlan | None, perf: ServerPerformance | None
    ) -> SearchResult:
        if plan is None or perf is None or not perf.feasible:
            return SearchResult(
                plan=None,
                perf=ServerPerformance.infeasible("no feasible configuration"),
                evaluations=self.evaluations,
                visited=list(self.visited),
            )
        return SearchResult(
            plan=plan,
            perf=perf,
            evaluations=self.evaluations,
            visited=list(self.visited),
        )

    # -- Psp(M+D) gradient core -------------------------------------------

    def _pmd_gradient(
        self,
        make_plan,
        partition_for,
        m_max: int,
        d_grid: tuple[int, ...],
    ) -> tuple[ExecutionPlan | None, ServerPerformance | None]:
        """Gradient walk over (threads, batch) from the (1, min) origin.

        Args:
            make_plan: ``(m, d) -> ExecutionPlan | None`` (None when the
                combination is structurally invalid).
            partition_for: ``m -> PartitionedModel | None``.
            m_max: Upper bound on co-located threads.
            d_grid: Data-parallelism grid.
        """
        def attempt(m: int, di: int) -> ServerPerformance | None:
            if not 1 <= m <= m_max or not 0 <= di < len(d_grid):
                return None
            partitioned = partition_for(m)
            if partitioned is None:
                return None
            plan = make_plan(m, d_grid[di])
            if plan is None:
                return None
            perf = self.score(plan, partitioned)
            return perf if perf.feasible else None

        m, di = 1, 0
        current = attempt(m, di)
        best_plan = make_plan(m, d_grid[di]) if current else None
        best = current
        if current is None:
            # The origin violates the SLA (e.g. a single thread cannot
            # drain a tail query in time).  Scan outward for the first
            # feasible start so the walk never concedes a space the
            # restricted baselines can reach.
            for m_probe in range(1, m_max + 1):
                for di_probe in range(len(d_grid)):
                    if m_probe == 1 and di_probe == 0:
                        continue
                    current = attempt(m_probe, di_probe)
                    if current is not None:
                        m, di = m_probe, di_probe
                        best_plan, best = make_plan(m, d_grid[di]), current
                        break
                if current is not None:
                    break
            else:
                return None, None

        while True:
            candidates = ((m, di + 1), (m + 1, di), (m + 1, di + 1))
            step_best: tuple[int, int, ServerPerformance] | None = None
            for cm, cdi in candidates:
                perf = attempt(cm, cdi)
                if perf is None:
                    continue
                if step_best is None or perf.qps > step_best[2].qps:
                    step_best = (cm, cdi, perf)
            if step_best is None or step_best[2].qps <= current.qps:
                break  # all gradients negative -> convex peak reached
            m, di, current = step_best
            if best is None or current.qps > best.qps:
                best, best_plan = current, make_plan(m, d_grid[di])
        return best_plan, best

    # -- placement searches ------------------------------------------------

    def search_cpu_model_based(self) -> SearchResult:
        """Psp(M+D+O) over whole-model host threads (Fig. 11a-c)."""
        cores = self.evaluator.server.cpu.cores
        partitioned = self.host_partition()
        best_plan: ExecutionPlan | None = None
        best: ServerPerformance | None = None
        # Seed with the DeepRecSys diagonal (m = cores, o = 1, sweep d):
        # Hercules explores a strict superset of the baseline space, so
        # its optimum must never fall below that row even when the
        # convex walk terminates elsewhere.
        for d in BATCH_GRID:
            plan = ExecutionPlan(
                Placement.CPU_MODEL_BASED,
                threads=cores,
                cores_per_thread=1,
                batch_size=d,
            )
            perf = self.score(plan, partitioned)
            if perf.feasible and (best is None or perf.qps > best.qps):
                best_plan, best = plan, perf
        prev_peak = -math.inf
        for o in range(1, cores + 1):  # Psp(O) outer loop
            m_max = cores // o
            if m_max < 1:
                break
            plan_o, perf_o = self._pmd_gradient(
                make_plan=lambda m, d, o=o: ExecutionPlan(
                    Placement.CPU_MODEL_BASED,
                    threads=m,
                    cores_per_thread=o,
                    batch_size=d,
                ),
                partition_for=lambda m: partitioned,
                m_max=m_max,
                d_grid=BATCH_GRID,
            )
            peak = perf_o.qps if perf_o else -math.inf
            if perf_o and (best is None or perf_o.qps > best.qps):
                best_plan, best = plan_o, perf_o
            if peak < prev_peak:
                break  # Psp(O) termination: per-o peak is decreasing
            prev_peak = peak
        return self._result(best_plan, best)

    def search_cpu_sd_pipeline(self) -> SearchResult:
        """Balanced SparseNet/DenseNet pipelining on the host (Fig. 12a)."""
        cores = self.evaluator.server.cpu.cores
        partitioned = self.host_partition()
        best_plan: ExecutionPlan | None = None
        best: ServerPerformance | None = None
        prev_peak = -math.inf
        for sc in range(1, min(4, cores) + 1):  # op-parallelism of sparse threads
            plan_o, perf_o = self._pmd_gradient(
                make_plan=lambda pair, d, sc=sc: self._sd_plan(pair, d, sc, cores),
                partition_for=lambda pair: partitioned,
                m_max=cores - 1,  # pair index enumerates (st, dt) splits
                d_grid=BATCH_GRID,
            )
            peak = perf_o.qps if perf_o else -math.inf
            if perf_o and (best is None or perf_o.qps > best.qps):
                best_plan, best = plan_o, perf_o
            if peak < prev_peak:
                break
            prev_peak = peak
        return self._result(best_plan, best)

    def _sd_plan(
        self, scale: int, d: int, sparse_cores: int, cores: int
    ) -> ExecutionPlan | None:
        """Map a 1-D co-location scale to a balanced (st, dt) split.

        The scale grows total parallelism; sparse and dense threads are
        apportioned by their single-thread service-time ratio so the
        pipeline stays balanced as it grows (the equilibrium the paper's
        Fig. 12a search walks toward).
        """
        ratio = self._sd_ratio(sparse_cores)
        sparse_threads = max(1, round(scale * ratio))
        dense_threads = max(1, scale - sparse_threads + 1)
        if sparse_threads * sparse_cores + dense_threads > cores:
            return None
        return ExecutionPlan(
            Placement.CPU_SD_PIPELINE,
            batch_size=d,
            sparse_threads=sparse_threads,
            sparse_cores=sparse_cores,
            dense_threads=dense_threads,
        )

    def _sd_ratio(self, sparse_cores: int) -> float:
        """Fraction of threads the sparse stage needs for balance.

        Depends only on ``sparse_cores`` (the probe batch is fixed), so
        it is memoized: the S-D gradient walk used to recompute this
        pair of graph timings for every candidate it scored, which
        dominated the whole profiling pass.
        """
        cached = self._sd_ratios.get(sparse_cores)
        if cached is not None:
            return cached
        partitioned = self.host_partition()
        probe = 128
        sparse_s, _, _ = self.evaluator._cpu_graph_timing(
            partitioned.sparse, probe, sparse_cores, 2
        )
        dense_s, _, _ = self.evaluator._cpu_graph_timing(
            partitioned.dense, probe, 1, 2
        )
        total = sparse_s + dense_s
        if total <= 0:
            ratio = 0.5
        else:
            ratio = min(0.9, max(0.1, sparse_s / total))
        self._sd_ratios[sparse_cores] = ratio
        return ratio

    def _host_sparse_threads(self, miss_rate: float) -> tuple[int, int]:
        """Host cold-path allotment for GPU model-based plans."""
        if miss_rate <= 0:
            return 0, 1
        return self.evaluator.server.cpu.cores, 1

    def search_gpu_model_based(self) -> SearchResult:
        """Co-location x query fusion on the accelerator (Fig. 11d-f)."""
        if not self.evaluator.server.has_gpu:
            return self._result(None, None)

        def make_plan(g: int, fusion: int) -> ExecutionPlan | None:
            partitioned = self.gpu_partition(g)
            if partitioned is None:
                return None
            st, sc = self._host_sparse_threads(partitioned.cold_miss_rate)
            return ExecutionPlan(
                Placement.GPU_MODEL_BASED,
                threads=g,
                fusion_limit=fusion,
                sparse_threads=st,
                sparse_cores=sc,
                batch_size=256,
            )

        plan, perf = self._pmd_gradient(
            make_plan=make_plan,
            partition_for=self.gpu_partition,
            m_max=8,
            d_grid=FUSION_GRID,
        )
        return self._result(plan, perf)

    def search_gpu_sd(self) -> SearchResult:
        """SparseNet on host, DenseNet on accelerator (Fig. 12b)."""
        if not self.evaluator.server.has_gpu:
            return self._result(None, None)
        cores = self.evaluator.server.cpu.cores
        partitioned = self.host_partition()
        best_plan: ExecutionPlan | None = None
        best: ServerPerformance | None = None
        prev_peak = -math.inf
        for sc in (1, 2, 4):
            if sc > cores:
                break

            def make_plan(scale: int, fusion: int, sc=sc) -> ExecutionPlan | None:
                sparse_threads = scale
                if sparse_threads * sc > cores:
                    return None
                gpu_threads = min(4, 1 + scale // 4)
                return ExecutionPlan(
                    Placement.GPU_SD,
                    threads=gpu_threads,
                    fusion_limit=fusion,
                    sparse_threads=sparse_threads,
                    sparse_cores=sc,
                    batch_size=256,
                )

            plan_o, perf_o = self._pmd_gradient(
                make_plan=make_plan,
                partition_for=lambda scale: partitioned,
                m_max=cores,
                d_grid=FUSION_GRID,
            )
            peak = perf_o.qps if perf_o else -math.inf
            if perf_o and (best is None or perf_o.qps > best.qps):
                best_plan, best = plan_o, perf_o
            if peak < prev_peak:
                break
            prev_peak = peak
        return self._result(best_plan, best)


class HerculesTaskScheduler:
    """The full Hercules task scheduler: all partition strategies.

    For a CPU-only server it explores model-based scheduling over
    ``Psp(M+D+O)`` and S-D pipeline scheduling; for accelerated servers
    it additionally explores both CPU-accelerator mappings of Fig. 10.
    The best feasible configuration across strategies wins.
    """

    def __init__(
        self,
        evaluator: ServerEvaluator,
        model: RecommendationModel,
        workload: QueryWorkload | None = None,
        sla_ms: float | None = None,
        power_budget_w: float | None = None,
    ) -> None:
        self.search_space = GradientSearch(
            evaluator, model, workload, sla_ms, power_budget_w
        )

    def search(self) -> SearchResult:
        """Explore every applicable placement and return the best plan."""
        space = self.search_space
        result = space.search_cpu_model_based()
        result = result.merge(space.search_cpu_sd_pipeline())
        if space.evaluator.server.has_gpu:
            result = result.merge(space.search_gpu_model_based())
            result = result.merge(space.search_gpu_sd())
        return result
