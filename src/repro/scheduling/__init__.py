"""Task scheduling: parallelism space, Algorithm 1 search, baselines, profiler."""

from repro.scheduling.hybrid import HybridPlan, HybridSearch, evaluate_hybrid
from repro.scheduling.online import CalibrationResult, OnlineCalibrator
from repro.scheduling.baselines import (
    BaselineTaskScheduler,
    BaymaxScheduler,
    DeepRecSysScheduler,
)
from repro.scheduling.parallelism import ExecutionPlan, Placement
from repro.scheduling.profiler import (
    ClassificationTable,
    EfficiencyTuple,
    OfflineProfiler,
)
from repro.scheduling.search import (
    BATCH_GRID,
    FUSION_GRID,
    GradientSearch,
    HerculesTaskScheduler,
    SearchResult,
)

__all__ = [
    "HybridPlan",
    "HybridSearch",
    "evaluate_hybrid",
    "CalibrationResult",
    "OnlineCalibrator",
    "BaselineTaskScheduler",
    "BaymaxScheduler",
    "DeepRecSysScheduler",
    "ExecutionPlan",
    "Placement",
    "ClassificationTable",
    "EfficiencyTuple",
    "OfflineProfiler",
    "BATCH_GRID",
    "FUSION_GRID",
    "GradientSearch",
    "HerculesTaskScheduler",
    "SearchResult",
]
