"""Cluster state: allocations, capacity accounting, provisioned power.

The cluster manager (Fig. 13) keeps a state table of every server --
which type it is, whether it is activated, and which workload it runs.
An :class:`Allocation` is the scheduler's decision for one provisioning
interval: how many servers of each type run each workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.scheduling.profiler import ClassificationTable

__all__ = ["Allocation", "ClusterStateTable"]


@dataclass
class Allocation:
    """Server counts per (server type, workload) for one interval.

    Attributes:
        counts: ``(server_name, model_name) -> number of servers``.
        shortfall: Unserved load in QPS per model (0 when the fleet
            covers everything).
    """

    counts: dict[tuple[str, str], int] = field(default_factory=dict)
    shortfall: dict[str, float] = field(default_factory=dict)

    def add(self, server_name: str, model_name: str, count: int = 1) -> None:
        if count < 0:
            raise ValueError("count must be >= 0")
        if count == 0:
            return
        key = (server_name, model_name)
        self.counts[key] = self.counts.get(key, 0) + count

    def minus(self, other: "Allocation") -> "Allocation":
        """Positive per-cell surplus of this allocation over ``other``.

        The canonical way to build an autoscaler standby pool: peak
        allocation minus trough allocation leaves the replicas worth
        keeping warm.  Cells present only in ``other`` are ignored.
        """
        surplus = Allocation()
        for (srv, model), count in self.counts.items():
            delta = count - other.counts.get((srv, model), 0)
            if delta > 0:
                surplus.add(srv, model, delta)
        return surplus

    def servers_of_type(self, server_name: str) -> int:
        """Total activated servers of one type across all workloads."""
        return sum(
            count for (srv, _), count in self.counts.items() if srv == server_name
        )

    def servers_for_model(self, model_name: str) -> int:
        return sum(
            count for (_, model), count in self.counts.items() if model == model_name
        )

    @property
    def total_servers(self) -> int:
        return sum(self.counts.values())

    def capacity_qps(self, table: ClassificationTable, model_name: str) -> float:
        """Aggregate latency-bounded throughput assigned to one model."""
        total = 0.0
        for (srv, model), count in self.counts.items():
            if model == model_name:
                total += count * table.qps(srv, model)
        return total

    def provisioned_power_w(self, table: ClassificationTable) -> float:
        """Total provisioned power: per-pair profiled peak power x count.

        The offline-measured peak power ``Power_{h,m}`` is the budget
        reserved for each activated server (Section IV-A).
        """
        return sum(
            count * table.power(srv, model)
            for (srv, model), count in self.counts.items()
        )

    def respects_fleet(self, fleet: dict[str, int]) -> bool:
        """Check the availability constraint (Equation 3)."""
        return all(
            self.servers_of_type(srv) <= fleet.get(srv, 0)
            for srv in {s for s, _ in self.counts}
        )

    def covers(
        self,
        table: ClassificationTable,
        loads: dict[str, float],
        over_provision: float = 0.0,
    ) -> bool:
        """Check the coverage constraint (Equation 2)."""
        return all(
            self.capacity_qps(table, model) >= load * (1.0 + over_provision) - 1e-6
            for model, load in loads.items()
        )

    @property
    def has_shortfall(self) -> bool:
        return any(v > 1e-6 for v in self.shortfall.values())


@dataclass
class ClusterStateTable:
    """Tracks per-type activation against fleet availability.

    Mirrors the cluster state table of Fig. 13: the manager consults it
    to decide which physical servers to activate or release when moving
    between consecutive allocations.
    """

    fleet: dict[str, int]

    def __post_init__(self) -> None:
        if any(n < 0 for n in self.fleet.values()):
            raise ValueError("fleet availabilities must be >= 0")
        self._active: dict[tuple[str, str], int] = {}

    @property
    def active_counts(self) -> dict[tuple[str, str], int]:
        return dict(self._active)

    def transition_to(self, allocation: Allocation) -> dict[str, int]:
        """Apply a new allocation; return the churn per server type.

        Churn (activations + releases + workload switches) is what the
        provisioning interval amortizes: workload setup takes tens of
        seconds, so provisioning runs every tens of minutes.
        """
        if not allocation.respects_fleet(self.fleet):
            raise ValueError("allocation exceeds fleet availability")
        churn: dict[str, int] = {}
        keys = set(self._active) | set(allocation.counts)
        for key in keys:
            delta = abs(allocation.counts.get(key, 0) - self._active.get(key, 0))
            if delta:
                churn[key[0]] = churn.get(key[0], 0) + delta
        self._active = dict(allocation.counts)
        return churn
