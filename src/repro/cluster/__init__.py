"""Cluster-level scheduling: loads, provisioning LP, policies, manager."""

from repro.cluster.evolution import (
    EvolutionMix,
    EvolutionResult,
    linear_evolution,
    run_evolution,
)
from repro.cluster.loads import DiurnalTrace, synchronous_traces
from repro.cluster.manager import (
    ClusterManager,
    DaySummary,
    IntervalRecord,
    estimate_over_provision,
)
from repro.cluster.provision import (
    LpSolution,
    SimplexSolver,
    allocation_drawn_power_w,
    standby_power_w,
    integerize,
    solve_allocation_lp,
)
from repro.cluster.schedulers import (
    ClusterScheduler,
    GreedyScheduler,
    HerculesClusterScheduler,
    NHScheduler,
    PriorityAwareScheduler,
)
from repro.cluster.state import Allocation, ClusterStateTable

__all__ = [
    "EvolutionMix",
    "EvolutionResult",
    "linear_evolution",
    "run_evolution",
    "DiurnalTrace",
    "synchronous_traces",
    "ClusterManager",
    "DaySummary",
    "IntervalRecord",
    "estimate_over_provision",
    "LpSolution",
    "SimplexSolver",
    "allocation_drawn_power_w",
    "standby_power_w",
    "integerize",
    "solve_allocation_lp",
    "ClusterScheduler",
    "GreedyScheduler",
    "HerculesClusterScheduler",
    "NHScheduler",
    "PriorityAwareScheduler",
    "Allocation",
    "ClusterStateTable",
]
