"""Diurnal load traces for online serving (paper Fig. 2d, Fig. 8b).

Production recommendation services see synchronous diurnal load: every
datacenter and every service peaks around the same hours, with >50%
fluctuation between peak and trough.  We synthesize such traces as a
day-periodic sinusoid with a sharpened peak, optional phase offset, and
multiplicative noise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["DiurnalTrace", "synchronous_traces"]

_DAY_HOURS = 24.0


@dataclass(frozen=True)
class DiurnalTrace:
    """A one-day periodic load profile for one workload.

    Attributes:
        name: Workload (model) name this trace drives.
        peak_qps: Load at the daily peak.
        trough_ratio: Trough load as a fraction of peak (<0.5 in
            production, per the >50% fluctuation of Section II-A).
        peak_hour: Local hour of the peak.
        sharpness: >=1; larger values concentrate load around the peak
            (production evenings are spiky, not sinusoidal).
        noise: Multiplicative noise amplitude (0 disables).
        seed: RNG seed for the noise.
    """

    name: str
    peak_qps: float
    trough_ratio: float = 0.4
    peak_hour: float = 20.0
    sharpness: float = 2.0
    noise: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.peak_qps <= 0:
            raise ValueError("peak_qps must be positive")
        if not 0.0 < self.trough_ratio <= 1.0:
            raise ValueError("trough_ratio must be in (0, 1]")
        if not 0.0 <= self.peak_hour < _DAY_HOURS:
            raise ValueError("peak_hour must be in [0, 24)")
        if self.sharpness < 1.0:
            raise ValueError("sharpness must be >= 1")
        if self.noise < 0.0:
            raise ValueError("noise must be >= 0")

    def load_at(self, hour: float) -> float:
        """Load in QPS at a (possibly fractional) hour of the day."""
        phase = (hour - self.peak_hour) / _DAY_HOURS * 2.0 * math.pi
        base = (1.0 + math.cos(phase)) / 2.0  # 1 at peak, 0 at trough
        shaped = base**self.sharpness
        level = self.trough_ratio + (1.0 - self.trough_ratio) * shaped
        if self.noise > 0.0:
            rng = np.random.default_rng(
                self.seed + int(round(hour * 3600.0))
            )
            level *= 1.0 + self.noise * float(rng.standard_normal())
        return max(0.0, self.peak_qps * level)

    def series(self, interval_minutes: float = 30.0) -> list[tuple[float, float]]:
        """(hour, qps) samples covering one day at the given interval."""
        if interval_minutes <= 0:
            raise ValueError("interval must be positive")
        steps = int(round(_DAY_HOURS * 60.0 / interval_minutes))
        return [
            (i * interval_minutes / 60.0, self.load_at(i * interval_minutes / 60.0))
            for i in range(steps)
        ]

    def peak_load(self, interval_minutes: float = 30.0) -> float:
        return max(q for _, q in self.series(interval_minutes))

    def average_load(self, interval_minutes: float = 30.0) -> float:
        series = self.series(interval_minutes)
        return sum(q for _, q in series) / len(series)


def synchronous_traces(
    peaks: dict[str, float],
    trough_ratio: float = 0.4,
    peak_hour: float = 20.0,
    noise: float = 0.0,
) -> dict[str, DiurnalTrace]:
    """Build synchronized diurnal traces for several workloads.

    All traces share the peak hour -- the synchronous pattern of
    Fig. 2d that prevents load-shifting between services and drives
    over-provisioning.
    """
    return {
        name: DiurnalTrace(
            name=name,
            peak_qps=peak,
            trough_ratio=trough_ratio,
            peak_hour=peak_hour,
            noise=noise,
            seed=i,
        )
        for i, (name, peak) in enumerate(peaks.items())
    }
