"""Cluster scheduling policies: NH, greedy, priority-aware, Hercules.

The four policies the paper compares (Sections III-C, VI-C):

- **NH** (heterogeneity-oblivious): assigns whatever servers come next
  in fleet order, ignoring per-pair performance differences.
- **Greedy** [Paragon/Quasar]: per workload, allocates the best-ranked
  available servers first; when workloads compete for the same type,
  whoever is processed first wins -- the deficiency Fig. 8 exposes.
- **Priority-aware**: the characterization's improvement -- contested
  server types go to the workload with the largest *relative* benefit.
- **Hercules**: the LP provisioner of Section IV-C.

All consume the same offline-profiled efficiency-tuple table and return
an :class:`Allocation` for the current interval's loads.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.provision import integerize, solve_allocation_lp
from repro.cluster.state import Allocation
from repro.scheduling.profiler import ClassificationTable, EfficiencyTuple

__all__ = [
    "ClusterScheduler",
    "NHScheduler",
    "GreedyScheduler",
    "PriorityAwareScheduler",
    "HerculesClusterScheduler",
]


@dataclass
class ClusterScheduler:
    """Common state for cluster scheduling policies.

    Attributes:
        table: Offline-profiled efficiency tuples.
        fleet: Per-type availability ``N_h``.
        ranking_metric: Metric used to rank server types per workload
            (the paper classifies by latency-bounded energy efficiency).
    """

    table: ClassificationTable
    fleet: dict[str, int]
    ranking_metric: str = "qps_per_watt"

    def __post_init__(self) -> None:
        if any(n < 0 for n in self.fleet.values()):
            raise ValueError("fleet availabilities must be >= 0")

    @property
    def name(self) -> str:
        return type(self).__name__

    def allocate(
        self, loads: dict[str, float], over_provision: float = 0.0
    ) -> Allocation:
        raise NotImplementedError

    def _fill(
        self,
        allocation: Allocation,
        used: dict[str, int],
        model: str,
        target_qps: float,
        candidates: list[EfficiencyTuple],
    ) -> None:
        """Allocate from ``candidates`` in order until coverage or exhaustion."""
        deficit = target_qps - allocation.capacity_qps(self.table, model)
        for tup in candidates:
            if deficit <= 1e-6:
                break
            if tup.qps <= 0:
                continue
            available = self.fleet.get(tup.server_name, 0) - used.get(
                tup.server_name, 0
            )
            if available <= 0:
                continue
            needed = int(-(-deficit // tup.qps))  # ceil
            take = min(needed, available)
            allocation.add(tup.server_name, model, take)
            used[tup.server_name] = used.get(tup.server_name, 0) + take
            deficit = target_qps - allocation.capacity_qps(self.table, model)
        if deficit > 1e-6:
            allocation.shortfall[model] = deficit


class NHScheduler(ClusterScheduler):
    """Heterogeneity-oblivious baseline: fleet order, no ranking."""

    def allocate(
        self, loads: dict[str, float], over_provision: float = 0.0
    ) -> Allocation:
        allocation = Allocation()
        used: dict[str, int] = {}
        for model, load in loads.items():
            if load <= 0:
                continue
            # Candidates in raw fleet order -- whatever happens to be
            # listed first gets assigned, regardless of fit.
            candidates = [
                self.table.get(srv, model)
                for srv in self.fleet
                if self.table.entries.get((srv, model)) is not None
                and self.table.get(srv, model).feasible
            ]
            self._fill(
                allocation, used, model, load * (1.0 + over_provision), candidates
            )
        return allocation


class GreedyScheduler(ClusterScheduler):
    """Heterogeneity-aware greedy scheduler [Paragon, Quasar].

    Ranks server types per workload and always picks the best available.
    Workloads are processed in dictionary order; contested types are
    consumed first-come-first-served, which is exactly what the
    priority-aware and Hercules schedulers improve on.
    """

    def allocate(
        self, loads: dict[str, float], over_provision: float = 0.0
    ) -> Allocation:
        allocation = Allocation()
        used: dict[str, int] = {}
        for model, load in loads.items():
            if load <= 0:
                continue
            candidates = self.table.rank_servers(model, self.ranking_metric)
            self._fill(
                allocation, used, model, load * (1.0 + over_provision), candidates
            )
        return allocation


class PriorityAwareScheduler(ClusterScheduler):
    """Greedy with contention-aware workload priority (Section III-C).

    For each server type, the workload with the highest relative
    benefit -- the ratio of its efficiency on that type over its
    efficiency on its next-best type -- claims the type first.  This
    captures the Fig. 8 insight that CPU+NMP should go to RMC2 before
    RMC1 because RMC2 gains more from it.
    """

    def allocate(
        self, loads: dict[str, float], over_provision: float = 0.0
    ) -> Allocation:
        active = [m for m, load in loads.items() if load > 0]
        # Relative benefit of giving type h to model m: the efficiency
        # improvement over the model's commodity fallback (its worst
        # feasible type).  RMC2 improves more on CPU+NMP than RMC1
        # (2.04x vs 1.75x in Fig. 8a), so RMC2 claims the NMP servers.
        priorities: list[tuple[float, str, str]] = []
        for model in active:
            ranked = self.table.rank_servers(model, self.ranking_metric)
            if not ranked:
                continue
            fallback = max(getattr(ranked[-1], self.ranking_metric), 1e-12)
            for tup in ranked:
                benefit = getattr(tup, self.ranking_metric) / fallback
                priorities.append((benefit, tup.server_name, model))
        priorities.sort(reverse=True)

        allocation = Allocation()
        used: dict[str, int] = {}
        targets = {m: loads[m] * (1.0 + over_provision) for m in active}
        for _, srv, model in priorities:
            deficit = targets[model] - allocation.capacity_qps(self.table, model)
            if deficit <= 1e-6:
                continue
            tup = self.table.get(srv, model)
            if not tup.feasible or tup.qps <= 0:
                continue
            available = self.fleet.get(srv, 0) - used.get(srv, 0)
            if available <= 0:
                continue
            take = min(int(-(-deficit // tup.qps)), available)
            allocation.add(srv, model, take)
            used[srv] = used.get(srv, 0) + take
        for model in active:
            deficit = targets[model] - allocation.capacity_qps(self.table, model)
            if deficit > 1e-6:
                allocation.shortfall[model] = deficit
        return allocation


class HerculesClusterScheduler(ClusterScheduler):
    """Goal-oriented provisioning: solve the LP, then integerize.

    Args (beyond the base class):
        solver: LP backend (``"auto"``, ``"scipy"``, ``"simplex"``).
    """

    solver: str = "auto"

    def __init__(
        self,
        table: ClassificationTable,
        fleet: dict[str, int],
        ranking_metric: str = "qps_per_watt",
        solver: str = "auto",
    ) -> None:
        super().__init__(table, fleet, ranking_metric)
        self.solver = solver

    def allocate(
        self, loads: dict[str, float], over_provision: float = 0.0
    ) -> Allocation:
        active = {m: q for m, q in loads.items() if q > 0}
        if not active:
            return Allocation()
        solution = solve_allocation_lp(
            self.table, active, self.fleet, over_provision, solver=self.solver
        )
        if not solution.feasible:
            # Fleet cannot cover the load even fractionally: fall back
            # to greedy so the shortfall is reported per model.
            return GreedyScheduler(self.table, self.fleet, self.ranking_metric).allocate(
                loads, over_provision
            )
        return integerize(solution, self.table, active, self.fleet, over_provision)
