"""Constrained-optimization provisioner (paper Section IV-C).

Hercules formulates cluster provisioning as a linear program:

    minimize    sum_{h,m} N_{h,m} * Power_{h,m}                  (1)
    subject to  sum_h N_{h,m} * QPS_{h,m} >= load_m * (1 + R)    (2)
                sum_m N_{h,m} <= N_h                             (3)
                N_{h,m} >= 0

The paper solves it with a standard interior-point/simplex solver; we
provide both a SciPy (HiGHS) backend and a self-contained Big-M primal
simplex so the substrate has no required external dependency.  The
fractional optimum is then integerized: floor, then greedily repair any
residual coverage deficit with the most power-efficient available
servers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.cluster.state import Allocation
from repro.scheduling.profiler import ClassificationTable
from repro.sim import plan_cache
from repro.sim.queries import QueryWorkload

if TYPE_CHECKING:
    from repro.models.zoo import RecommendationModel

__all__ = [
    "LpSolution",
    "SimplexSolver",
    "solve_allocation_lp",
    "integerize",
    "allocation_drawn_power_w",
    "standby_power_w",
]


@dataclass(frozen=True)
class LpSolution:
    """Fractional solution of the provisioning LP.

    Attributes:
        values: ``(server_name, model_name) -> fractional server count``.
        objective_w: Provisioned power of the fractional optimum.
        feasible: False when the fleet cannot cover the loads even
            fractionally.
    """

    values: dict[tuple[str, str], float]
    objective_w: float
    feasible: bool


class SimplexSolver:
    """Dense Big-M primal simplex for ``min c@x s.t. A x <= b, x >= 0``.

    Small and dependency-free: the provisioning LPs have at most a few
    dozen variables (|server types| x |models|) and |types| + |models|
    constraints.  Rows with negative ``b`` (the >= coverage rows after
    negation) receive artificial variables priced at Big-M.
    """

    def __init__(self, big_m: float = 1e9, max_iterations: int = 10_000) -> None:
        self.big_m = big_m
        self.max_iterations = max_iterations

    def solve(
        self, c: np.ndarray, a_ub: np.ndarray, b_ub: np.ndarray
    ) -> tuple[np.ndarray | None, float]:
        """Return (x, objective) or (None, inf) when infeasible."""
        c = np.asarray(c, dtype=float)
        a = np.asarray(a_ub, dtype=float)
        b = np.asarray(b_ub, dtype=float)
        rows, cols = a.shape
        if b.shape != (rows,) or c.shape != (cols,):
            raise ValueError("inconsistent LP dimensions")

        # Normalize to b >= 0, tracking which rows need artificials.
        a = a.copy()
        b = b.copy()
        flipped = b < 0
        a[flipped] *= -1.0
        b[flipped] *= -1.0
        # Flipped rows became >=: slack enters with -1 and an artificial
        # basis column is required; plain rows take a +1 slack.
        num_art = int(flipped.sum())
        tableau_cols = cols + rows + num_art
        tab = np.zeros((rows, tableau_cols))
        tab[:, :cols] = a
        cost = np.zeros(tableau_cols)
        cost[:cols] = c
        basis = np.empty(rows, dtype=int)

        art_idx = cols + rows
        for i in range(rows):
            slack_col = cols + i
            if flipped[i]:
                tab[i, slack_col] = -1.0
                tab[i, art_idx] = 1.0
                cost[art_idx] = self.big_m
                basis[i] = art_idx
                art_idx += 1
            else:
                tab[i, slack_col] = 1.0
                basis[i] = slack_col

        rhs = b.copy()
        for _ in range(self.max_iterations):
            cb = cost[basis]
            # Reduced costs via the current basis rows (tab kept in
            # basis-canonical form by the pivots below).
            reduced = cost - cb @ tab
            entering = int(np.argmin(reduced))
            if reduced[entering] >= -1e-9:
                break  # optimal
            column = tab[:, entering]
            positive = column > 1e-12
            if not positive.any():
                return None, math.inf  # unbounded (cannot happen here)
            ratios = np.full(rows, np.inf)
            ratios[positive] = rhs[positive] / column[positive]
            leaving = int(np.argmin(ratios))
            pivot = tab[leaving, entering]
            tab[leaving] /= pivot
            rhs[leaving] /= pivot
            for i in range(rows):
                if i != leaving and abs(tab[i, entering]) > 1e-12:
                    factor = tab[i, entering]
                    tab[i] -= factor * tab[leaving]
                    rhs[i] -= factor * rhs[leaving]
            basis[leaving] = entering
        else:
            raise RuntimeError("simplex iteration limit exceeded")

        x = np.zeros(tableau_cols)
        x[basis] = rhs
        if (x[cols + rows :] > 1e-6).any():
            return None, math.inf  # artificials in basis -> infeasible
        solution = x[:cols]
        return solution, float(c @ solution)


def _lp_matrices(
    table: ClassificationTable,
    loads: dict[str, float],
    fleet: dict[str, int],
    over_provision: float,
) -> tuple[list[tuple[str, str]], np.ndarray, np.ndarray, np.ndarray]:
    """Build (variables, c, A_ub, b_ub) for the provisioning LP."""
    servers = [s for s in fleet if fleet[s] > 0]
    models = list(loads)
    variables = [
        (srv, model)
        for srv in servers
        for model in models
        if table.get(srv, model).feasible
    ]
    if not variables:
        raise ValueError("no feasible (server, model) pairs in the table")
    c = np.array([table.power(srv, model) for srv, model in variables])
    rows = []
    b = []
    for model in models:  # coverage: -sum qps x <= -load(1+R)
        row = np.array(
            [
                -table.qps(srv, m) if m == model else 0.0
                for srv, m in variables
            ]
        )
        rows.append(row)
        b.append(-loads[model] * (1.0 + over_provision))
    for srv in servers:  # availability: sum_m x <= N_h
        row = np.array([1.0 if s == srv else 0.0 for s, _ in variables])
        rows.append(row)
        b.append(float(fleet[srv]))
    return variables, c, np.vstack(rows), np.array(b)


def solve_allocation_lp(
    table: ClassificationTable,
    loads: dict[str, float],
    fleet: dict[str, int],
    over_provision: float = 0.0,
    solver: str = "auto",
) -> LpSolution:
    """Solve the fractional provisioning LP.

    Args:
        table: Offline-profiled efficiency tuples.
        loads: Current per-model load (QPS).
        fleet: Per-type availability ``N_h``.
        over_provision: Over-provision rate ``R`` (e.g. 0.1 for 10%).
        solver: ``"scipy"``, ``"simplex"`` (built-in), or ``"auto"``
            (scipy with built-in fallback).
    """
    if solver not in ("auto", "scipy", "simplex"):
        raise ValueError(f"unknown solver {solver!r}")
    active_loads = {m: q for m, q in loads.items() if q > 0}
    if not active_loads:
        return LpSolution(values={}, objective_w=0.0, feasible=True)
    variables, c, a_ub, b_ub = _lp_matrices(
        table, active_loads, fleet, over_provision
    )

    x: np.ndarray | None = None
    objective = math.inf
    if solver in ("auto", "scipy"):
        try:
            from scipy.optimize import linprog

            res = linprog(c, A_ub=a_ub, b_ub=b_ub, method="highs")
            if res.status == 0:
                x, objective = res.x, float(res.fun)
        except ImportError:
            if solver == "scipy":
                raise
    if x is None and solver in ("auto", "simplex"):
        x, objective = SimplexSolver().solve(c, a_ub, b_ub)
    if x is None:
        return LpSolution(values={}, objective_w=math.inf, feasible=False)
    values = {
        var: float(val) for var, val in zip(variables, x) if val > 1e-9
    }
    return LpSolution(values=values, objective_w=objective, feasible=True)


def integerize(
    solution: LpSolution,
    table: ClassificationTable,
    loads: dict[str, float],
    fleet: dict[str, int],
    over_provision: float = 0.0,
) -> Allocation:
    """Round the fractional LP solution to whole servers.

    Floors every fractional count, then repairs residual coverage per
    model by adding the available server with the lowest power per unit
    of *useful* coverage -- the same marginal criterion the LP
    optimizes.  Records an explicit shortfall when the fleet runs out.
    """
    allocation = Allocation()
    used: dict[str, int] = {srv: 0 for srv in fleet}
    for (srv, model), value in solution.values.items():
        count = int(math.floor(value + 1e-9))
        count = min(count, fleet[srv] - used[srv])
        if count > 0:
            allocation.add(srv, model, count)
            used[srv] += count

    for model, load in loads.items():
        target = load * (1.0 + over_provision)
        deficit = target - allocation.capacity_qps(table, model)
        while deficit > 1e-6:
            best: tuple[float, str] | None = None
            for srv, available in fleet.items():
                if used.get(srv, 0) >= available:
                    continue
                tup = table.entries.get((srv, model))
                if tup is None or not tup.feasible:
                    continue
                useful = min(tup.qps, deficit)
                if useful <= 0:
                    continue
                marginal = tup.power_w / useful
                if best is None or marginal < best[0]:
                    best = (marginal, srv)
            if best is None:
                allocation.shortfall[model] = deficit
                break
            _, srv = best
            allocation.add(srv, model, 1)
            used[srv] = used.get(srv, 0) + 1
            deficit = target - allocation.capacity_qps(table, model)
    return allocation


def standby_power_w(
    allocation: Allocation,
    baseline: Allocation,
    table: ClassificationTable,
) -> float:
    """Provisioned power of the replicas ``allocation`` holds beyond
    ``baseline``.

    The per-cell surplus (``allocation.minus(baseline)``) priced at the
    profiled peak power -- the budget line item a fault-aware
    provisioner pays for availability headroom over the fault-blind
    allocation.  Cells present only in ``baseline`` contribute nothing
    (standby capacity cannot be negative per cell).
    """
    return allocation.minus(baseline).provisioned_power_w(table)


def allocation_drawn_power_w(
    allocation: Allocation,
    table: ClassificationTable,
    loads: dict[str, float],
    models: "dict[str, RecommendationModel]",
    workloads: dict[str, QueryWorkload] | None = None,
) -> float:
    """Analytic wall power an allocation draws at the *actual* loads.

    The LP objective charges each activated server its profiled peak
    power ``Power_{h,m}`` (the provisioned budget); off-peak, servers
    run below their latency-bounded operating point and draw less.
    This estimates the drawn power by splitting each model's load over
    its servers in proportion to their profiled throughput and pricing
    each share through the closed-form queueing model -- every timings
    lookup comes from the shared :mod:`repro.sim.plan_cache`, so a
    48-interval day re-prices plans instead of re-deriving them.
    """
    from repro.hardware.server import get_server_type

    total = 0.0
    for (srv_name, model_name), count in allocation.counts.items():
        tup = table.get(srv_name, model_name)
        server = get_server_type(srv_name)
        load = loads.get(model_name, 0.0)
        capacity = allocation.capacity_qps(table, model_name)
        share_qps = load * tup.qps / capacity if capacity > 0 else 0.0
        if share_qps <= 0 or tup.plan is None:
            total += count * server.idle_w
            continue
        model = models[model_name]
        workload = (workloads or {}).get(
            model_name
        ) or QueryWorkload.for_model(model.config.mean_query_size)
        timings = plan_cache.timings_for(server, model, workload, tup.plan)
        evaluator = plan_cache.shared_evaluator(server)
        perf = evaluator.perf_at(timings, workload, min(share_qps, tup.qps))
        total += count * (perf.power_w if perf.feasible else tup.power_w)
    return total
