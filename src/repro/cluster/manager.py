"""Online serving: the cluster manager's provisioning loop (Fig. 13).

Every provisioning interval (tens of minutes, amortizing the tens of
seconds of workload setup) the manager reads the current loads, asks
its scheduling policy for an allocation, applies it to the cluster
state table, and records capacity/power.  The over-provision rate ``R``
absorbs load growth within the interval and is estimated from the
trace's own history, as Section IV-C prescribes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.cluster.loads import DiurnalTrace
from repro.cluster.schedulers import ClusterScheduler
from repro.cluster.state import Allocation, ClusterStateTable

if TYPE_CHECKING:
    from repro.fleet.report import FleetResult
    from repro.models.zoo import RecommendationModel
    from repro.sim.queries import QueryWorkload

__all__ = ["IntervalRecord", "DaySummary", "ClusterManager", "estimate_over_provision"]


def estimate_over_provision(
    traces: dict[str, DiurnalTrace], interval_minutes: float
) -> float:
    """Estimate ``R`` from the largest load increase over one interval.

    Profiles the day's history per Section IV-C: the rate must cover
    the steepest climb any workload makes within a provisioning
    interval.
    """
    if interval_minutes <= 0:
        raise ValueError("interval must be positive")
    worst = 0.0
    for trace in traces.values():
        series = trace.series(interval_minutes)
        for (_, now), (_, nxt) in zip(series, series[1:] + series[:1]):
            if now > 0:
                worst = max(worst, (nxt - now) / now)
    return worst


@dataclass(frozen=True)
class IntervalRecord:
    """Cluster state for one provisioning interval.

    Attributes:
        hour: Interval start (hour of day).
        loads: Per-model arrival rate.
        allocation: The scheduler's decision.
        provisioned_power_w: Power budget of the activated servers.
        activated_servers: Total activated servers.
        churn: Servers activated/released/switched since the last
            interval, per type.
        coverage_margin: Minimum over models and intra-interval sample
            points of ``allocated capacity / instantaneous load``.  A
            value below 1.0 means the load outgrew the allocation
            before the next provisioning decision -- the failure mode
            the over-provision rate R exists to prevent.
    """

    hour: float
    loads: dict[str, float]
    allocation: Allocation
    provisioned_power_w: float
    activated_servers: int
    churn: dict[str, int] = field(default_factory=dict)
    coverage_margin: float = float("inf")


@dataclass(frozen=True)
class DaySummary:
    """Aggregates of one simulated day (the paper's peak/average rows)."""

    records: tuple[IntervalRecord, ...]

    @property
    def peak_power_w(self) -> float:
        return max(r.provisioned_power_w for r in self.records)

    @property
    def average_power_w(self) -> float:
        return sum(r.provisioned_power_w for r in self.records) / len(self.records)

    @property
    def peak_servers(self) -> int:
        return max(r.activated_servers for r in self.records)

    @property
    def average_servers(self) -> float:
        return sum(r.activated_servers for r in self.records) / len(self.records)

    @property
    def any_shortfall(self) -> bool:
        return any(r.allocation.has_shortfall for r in self.records)

    @property
    def worst_coverage_margin(self) -> float:
        """Smallest intra-interval capacity/load ratio of the day."""
        return min(r.coverage_margin for r in self.records)

    @property
    def intervals_underwater(self) -> int:
        """Intervals whose load outgrew the allocation before the next
        provisioning decision (margin < 1)."""
        return sum(1 for r in self.records if r.coverage_margin < 1.0)

    def power_series(self) -> list[tuple[float, float]]:
        return [(r.hour, r.provisioned_power_w) for r in self.records]

    def server_series(self) -> list[tuple[float, int]]:
        return [(r.hour, r.activated_servers) for r in self.records]


class ClusterManager:
    """Drives one scheduling policy through a diurnal day.

    Args:
        scheduler: The cluster scheduling policy.
        interval_minutes: Provisioning interval.
        over_provision: Rate ``R``; ``None`` estimates it from the
            traces' own history.
    """

    def __init__(
        self,
        scheduler: ClusterScheduler,
        interval_minutes: float = 30.0,
        over_provision: float | None = None,
        validate_minutes: float = 5.0,
    ) -> None:
        if interval_minutes <= 0:
            raise ValueError("interval must be positive")
        if validate_minutes <= 0:
            raise ValueError("validate_minutes must be positive")
        self.scheduler = scheduler
        self.interval_minutes = interval_minutes
        self.over_provision = over_provision
        self.validate_minutes = validate_minutes

    def _coverage_margin(
        self,
        allocation,
        traces: dict[str, DiurnalTrace],
        start_hour: float,
    ) -> float:
        """Min capacity/load ratio at fine sample points of one interval."""
        margin = float("inf")
        steps = max(1, int(round(self.interval_minutes / self.validate_minutes)))
        for i in range(steps):
            hour = (start_hour + i * self.validate_minutes / 60.0) % 24.0
            for name, trace in traces.items():
                load = trace.load_at(hour)
                if load <= 0:
                    continue
                capacity = allocation.capacity_qps(self.scheduler.table, name)
                margin = min(margin, capacity / load)
        return margin

    def run_day(self, traces: dict[str, DiurnalTrace]) -> DaySummary:
        """Simulate one day of provisioning decisions."""
        if not traces:
            raise ValueError("need at least one workload trace")
        rate = (
            self.over_provision
            if self.over_provision is not None
            else estimate_over_provision(traces, self.interval_minutes)
        )
        state = ClusterStateTable(fleet=dict(self.scheduler.fleet))
        records = []
        steps = int(round(24.0 * 60.0 / self.interval_minutes))
        for step in range(steps):
            hour = step * self.interval_minutes / 60.0
            loads = {name: t.load_at(hour) for name, t in traces.items()}
            allocation = self.scheduler.allocate(loads, over_provision=rate)
            churn = state.transition_to(allocation)
            records.append(
                IntervalRecord(
                    hour=hour,
                    loads=loads,
                    allocation=allocation,
                    provisioned_power_w=allocation.provisioned_power_w(
                        self.scheduler.table
                    ),
                    activated_servers=allocation.total_servers,
                    churn=churn,
                    coverage_margin=self._coverage_margin(
                        allocation, traces, hour
                    ),
                )
            )
        return DaySummary(records=tuple(records))

    def replay_request_level(
        self,
        traces: dict[str, DiurnalTrace],
        models: "dict[str, RecommendationModel]",
        workloads: "dict[str, QueryWorkload] | None" = None,
        policy: str = "p2c",
        sim_seconds_per_interval: float = 2.0,
        load_scale: float = 1.0,
        stride: int = 1,
        seed: int = 0,
    ) -> "list[tuple[float, FleetResult]]":
        """Replay the day's allocations at request granularity.

        For every ``stride``-th provisioning interval, the interval's
        allocation is instantiated as a fleet of discrete-event server
        pipelines and the interval's load is replayed as a Poisson
        query stream through the given routing policy -- turning the
        closed-form coverage margins of :meth:`run_day` into measured
        p99/SLA-violation numbers (any :class:`ClusterScheduler` works).

        Args:
            traces: The diurnal day to provision and replay.
            models: Model objects per name (for stage pipelines/SLAs).
            workloads: Query-size distributions (defaults per model).
            policy: Routing-policy registry name.
            sim_seconds_per_interval: Simulated seconds of traffic per
                replayed interval (intervals are time-compressed).
            load_scale: Scales arrival rates (and nothing else) to keep
                large clusters affordable to replay.
            stride: Replay every ``stride``-th interval.
            seed: Trace/policy RNG seed.

        Returns:
            ``(hour, FleetResult)`` pairs for the replayed intervals.
        """
        from repro.fleet import FleetSimulator, build_fleet, build_fleet_trace
        from repro.sim.queries import QueryWorkload

        if stride < 1:
            raise ValueError("stride must be >= 1")
        if sim_seconds_per_interval <= 0:
            raise ValueError("sim_seconds_per_interval must be positive")
        day = self.run_day(traces)
        sla_ms = {name: model.sla_ms for name, model in models.items()}
        resolved = {
            name: (workloads or {}).get(name)
            or QueryWorkload.for_model(model.config.mean_query_size)
            for name, model in models.items()
        }
        results: list[tuple[float, "FleetResult"]] = []
        for i, record in enumerate(day.records):
            if i % stride:
                continue
            if not record.allocation.counts:
                continue
            segments = {
                name: [(load * load_scale, sim_seconds_per_interval)]
                for name, load in record.loads.items()
                if load > 0
            }
            if not segments:
                continue
            servers = build_fleet(record.allocation, self.scheduler.table, models, resolved)
            trace = build_fleet_trace(resolved, segments, seed=seed + i)
            if not trace:
                continue
            sim = FleetSimulator(servers, policy=policy, sla_ms=sla_ms, seed=seed + i)
            results.append(
                (record.hour, sim.run(trace, warmup_s=sim_seconds_per_interval * 0.1))
            )
        return results
