"""Online serving: the cluster manager's provisioning loop (Fig. 13).

Every provisioning interval (tens of minutes, amortizing the tens of
seconds of workload setup) the manager reads the current loads, asks
its scheduling policy for an allocation, applies it to the cluster
state table, and records capacity/power.  The over-provision rate ``R``
absorbs load growth within the interval and is estimated from the
trace's own history, as Section IV-C prescribes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.loads import DiurnalTrace
from repro.cluster.schedulers import ClusterScheduler
from repro.cluster.state import Allocation, ClusterStateTable

__all__ = ["IntervalRecord", "DaySummary", "ClusterManager", "estimate_over_provision"]


def estimate_over_provision(
    traces: dict[str, DiurnalTrace], interval_minutes: float
) -> float:
    """Estimate ``R`` from the largest load increase over one interval.

    Profiles the day's history per Section IV-C: the rate must cover
    the steepest climb any workload makes within a provisioning
    interval.
    """
    if interval_minutes <= 0:
        raise ValueError("interval must be positive")
    worst = 0.0
    for trace in traces.values():
        series = trace.series(interval_minutes)
        for (_, now), (_, nxt) in zip(series, series[1:] + series[:1]):
            if now > 0:
                worst = max(worst, (nxt - now) / now)
    return worst


@dataclass(frozen=True)
class IntervalRecord:
    """Cluster state for one provisioning interval.

    Attributes:
        hour: Interval start (hour of day).
        loads: Per-model arrival rate.
        allocation: The scheduler's decision.
        provisioned_power_w: Power budget of the activated servers.
        activated_servers: Total activated servers.
        churn: Servers activated/released/switched since the last
            interval, per type.
        coverage_margin: Minimum over models and intra-interval sample
            points of ``allocated capacity / instantaneous load``.  A
            value below 1.0 means the load outgrew the allocation
            before the next provisioning decision -- the failure mode
            the over-provision rate R exists to prevent.
    """

    hour: float
    loads: dict[str, float]
    allocation: Allocation
    provisioned_power_w: float
    activated_servers: int
    churn: dict[str, int] = field(default_factory=dict)
    coverage_margin: float = float("inf")


@dataclass(frozen=True)
class DaySummary:
    """Aggregates of one simulated day (the paper's peak/average rows)."""

    records: tuple[IntervalRecord, ...]

    @property
    def peak_power_w(self) -> float:
        return max(r.provisioned_power_w for r in self.records)

    @property
    def average_power_w(self) -> float:
        return sum(r.provisioned_power_w for r in self.records) / len(self.records)

    @property
    def peak_servers(self) -> int:
        return max(r.activated_servers for r in self.records)

    @property
    def average_servers(self) -> float:
        return sum(r.activated_servers for r in self.records) / len(self.records)

    @property
    def any_shortfall(self) -> bool:
        return any(r.allocation.has_shortfall for r in self.records)

    @property
    def worst_coverage_margin(self) -> float:
        """Smallest intra-interval capacity/load ratio of the day."""
        return min(r.coverage_margin for r in self.records)

    @property
    def intervals_underwater(self) -> int:
        """Intervals whose load outgrew the allocation before the next
        provisioning decision (margin < 1)."""
        return sum(1 for r in self.records if r.coverage_margin < 1.0)

    def power_series(self) -> list[tuple[float, float]]:
        return [(r.hour, r.provisioned_power_w) for r in self.records]

    def server_series(self) -> list[tuple[float, int]]:
        return [(r.hour, r.activated_servers) for r in self.records]


class ClusterManager:
    """Drives one scheduling policy through a diurnal day.

    Args:
        scheduler: The cluster scheduling policy.
        interval_minutes: Provisioning interval.
        over_provision: Rate ``R``; ``None`` estimates it from the
            traces' own history.
    """

    def __init__(
        self,
        scheduler: ClusterScheduler,
        interval_minutes: float = 30.0,
        over_provision: float | None = None,
        validate_minutes: float = 5.0,
    ) -> None:
        if interval_minutes <= 0:
            raise ValueError("interval must be positive")
        if validate_minutes <= 0:
            raise ValueError("validate_minutes must be positive")
        self.scheduler = scheduler
        self.interval_minutes = interval_minutes
        self.over_provision = over_provision
        self.validate_minutes = validate_minutes

    def _coverage_margin(
        self,
        allocation,
        traces: dict[str, DiurnalTrace],
        start_hour: float,
    ) -> float:
        """Min capacity/load ratio at fine sample points of one interval."""
        margin = float("inf")
        steps = max(1, int(round(self.interval_minutes / self.validate_minutes)))
        for i in range(steps):
            hour = (start_hour + i * self.validate_minutes / 60.0) % 24.0
            for name, trace in traces.items():
                load = trace.load_at(hour)
                if load <= 0:
                    continue
                capacity = allocation.capacity_qps(self.scheduler.table, name)
                margin = min(margin, capacity / load)
        return margin

    def run_day(self, traces: dict[str, DiurnalTrace]) -> DaySummary:
        """Simulate one day of provisioning decisions."""
        if not traces:
            raise ValueError("need at least one workload trace")
        rate = (
            self.over_provision
            if self.over_provision is not None
            else estimate_over_provision(traces, self.interval_minutes)
        )
        state = ClusterStateTable(fleet=dict(self.scheduler.fleet))
        records = []
        steps = int(round(24.0 * 60.0 / self.interval_minutes))
        for step in range(steps):
            hour = step * self.interval_minutes / 60.0
            loads = {name: t.load_at(hour) for name, t in traces.items()}
            allocation = self.scheduler.allocate(loads, over_provision=rate)
            churn = state.transition_to(allocation)
            records.append(
                IntervalRecord(
                    hour=hour,
                    loads=loads,
                    allocation=allocation,
                    provisioned_power_w=allocation.provisioned_power_w(
                        self.scheduler.table
                    ),
                    activated_servers=allocation.total_servers,
                    churn=churn,
                    coverage_margin=self._coverage_margin(
                        allocation, traces, hour
                    ),
                )
            )
        return DaySummary(records=tuple(records))
