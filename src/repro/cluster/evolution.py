"""Model-evolution experiment (paper Section VI-C, Fig. 16).

The paper mimics model evolution by linearly shifting the workload mix
from the older DLRM family (RMC1/RMC2/RMC3) to the newer, more complex
models (DIN/DIEN/MT-WnD) over a sequence of model-update cycles, and
measures how cluster capacity and provisioned power grow on a CPU-only
cluster versus an accelerated one.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.loads import DiurnalTrace, synchronous_traces
from repro.cluster.manager import ClusterManager, DaySummary
from repro.cluster.schedulers import ClusterScheduler

__all__ = ["EvolutionMix", "linear_evolution", "EvolutionResult", "run_evolution"]

OLD_MODELS: tuple[str, ...] = ("DLRM-RMC1", "DLRM-RMC2", "DLRM-RMC3")
NEW_MODELS: tuple[str, ...] = ("DIN", "DIEN", "MT-WnD")

#: Relative load shares within each family.  High-traffic ranking
#: services (RMC1) carry most of the old family's load; the wide
#: 100-table RMC2 serves a smaller, specialized slice.
OLD_SHARES: dict[str, float] = {
    "DLRM-RMC1": 0.7,
    "DLRM-RMC2": 0.1,
    "DLRM-RMC3": 0.2,
}
NEW_SHARES: dict[str, float] = {"DIN": 0.4, "DIEN": 0.3, "MT-WnD": 0.3}


@dataclass(frozen=True)
class EvolutionMix:
    """One point of the synthetic evolution: load share per model.

    Attributes:
        cycle: Model-update cycle index (0 = all old models).
        shares: Fraction of the total load routed to each model;
            must sum to ~1.
    """

    cycle: int
    shares: dict[str, float]

    def __post_init__(self) -> None:
        total = sum(self.shares.values())
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"shares must sum to 1, got {total}")
        if any(v < 0 for v in self.shares.values()):
            raise ValueError("shares must be >= 0")


def linear_evolution(cycles: int = 6) -> list[EvolutionMix]:
    """Linear shift of load from old to new models over ``cycles`` steps.

    Cycle 0 routes everything to RMC1/RMC2/RMC3 (equal split); the last
    cycle routes everything to DIN/DIEN/MT-WnD, matching the synthetic
    linear process of Fig. 16(a).
    """
    if cycles < 2:
        raise ValueError("need at least 2 cycles")
    mixes = []
    for cycle in range(cycles):
        new_fraction = cycle / (cycles - 1)
        shares: dict[str, float] = {}
        for name, weight in OLD_SHARES.items():
            shares[name] = (1.0 - new_fraction) * weight
        for name, weight in NEW_SHARES.items():
            shares[name] = new_fraction * weight
        shares = {k: v for k, v in shares.items() if v > 0}
        mixes.append(EvolutionMix(cycle=cycle, shares=shares))
    return mixes


@dataclass(frozen=True)
class EvolutionResult:
    """Per-cycle day summaries for one cluster configuration."""

    mixes: tuple[EvolutionMix, ...]
    days: tuple[DaySummary, ...]

    def peak_power_series(self) -> list[float]:
        return [d.peak_power_w for d in self.days]

    def average_power_series(self) -> list[float]:
        return [d.average_power_w for d in self.days]

    def peak_server_series(self) -> list[int]:
        return [d.peak_servers for d in self.days]


def run_evolution(
    scheduler: ClusterScheduler,
    total_peak_qps: float,
    cycles: int = 6,
    interval_minutes: float = 30.0,
    over_provision: float | None = 0.05,
) -> EvolutionResult:
    """Run the synthetic evolution through a cluster scheduler.

    Args:
        scheduler: The policy under test (its table must cover every
            model that appears in the mixes).
        total_peak_qps: Aggregate peak load, split by each mix's shares.
        cycles: Number of model-update cycles.
        interval_minutes: Provisioning interval.
        over_provision: Rate ``R`` (None = estimate from traces).
    """
    if total_peak_qps <= 0:
        raise ValueError("total_peak_qps must be positive")
    manager = ClusterManager(
        scheduler,
        interval_minutes=interval_minutes,
        over_provision=over_provision,
    )
    mixes = linear_evolution(cycles)
    days = []
    for mix in mixes:
        peaks = {
            name: total_peak_qps * share for name, share in mix.shares.items()
        }
        traces = synchronous_traces(peaks)
        days.append(manager.run_day(traces))
    return EvolutionResult(mixes=tuple(mixes), days=tuple(days))
