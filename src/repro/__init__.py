"""Hercules reproduction: heterogeneity-aware recommendation inference serving.

Reproduction of Ke et al., "Hercules: Heterogeneity-Aware Inference
Serving for At-Scale Personalized Recommendation" (HPCA 2022).

Quick tour of the public API:

- :mod:`repro.models` -- the six Table I recommendation models as
  computation graphs, plus HW-aware partitioning.
- :mod:`repro.hardware` -- the ten Table II heterogeneous server types.
- :mod:`repro.perf` -- roofline operator timing, the NMP simulator/LUT.
- :mod:`repro.sim` -- closed-form serving evaluator and discrete-event
  simulator (queries, load generation, tail latency, power).
- :mod:`repro.scheduling` -- Algorithm 1 gradient search, DeepRecSys /
  Baymax baselines, offline profiler (efficiency tuples).
- :mod:`repro.cluster` -- diurnal loads, LP provisioner, NH / greedy /
  priority-aware / Hercules cluster schedulers, online manager.

See ``examples/quickstart.py`` for an end-to-end walkthrough.
"""

from repro.plans import ExecutionPlan, Placement

__version__ = "1.0.0"

__all__ = ["ExecutionPlan", "Placement", "__version__"]
