"""Command-line interface for the Hercules reproduction.

Subcommands:

- ``models``   -- list the Table I model zoo.
- ``servers``  -- list the Table II server types.
- ``search``   -- run the task-scheduling search for one pair.
- ``profile``  -- build the efficiency-tuple classification table.
- ``serve``    -- provision a diurnal day through a cluster scheduler.
- ``fleet``    -- request-level fleet replay (routing, reactive or
  predictive autoscaling, fault injection with retries/hedging,
  measured SLA/availability/power report) over a synthesized diurnal
  day, an ``--arrivals`` process spec (Poisson/MMPP-burst/diurnal
  superpositions), or a recorded ``--trace`` file.
- ``provision-fault-aware`` -- close the availability loop: iterate
  fault-injected fleet replays to the smallest over-provision rate
  ``R`` meeting a target service availability, and report the power
  delta against the fault-blind provisioner.
- ``provision-carbon-aware`` -- find the lowest-carbon operating
  point: bisect ``R`` to the smallest fleet meeting a target service
  availability, then sweep deferrable-job (policy, power cap,
  deferral horizon) plans on its measured activation profile and pick
  the least-gCO2 feasible one.
- ``observe``  -- summarize (or diff) telemetry files exported by
  ``fleet --metrics-out/--trace-out``: windowed metrics series
  (CSV/JSONL), tagged span traces (JSONL), and Chrome trace-event
  JSON.
- ``bench``    -- perf-regression harness over the hot paths; writes
  machine-readable ``BENCH_perf.json``.

``fleet``, ``provision-fault-aware``, and ``provision-carbon-aware``
accept ``--json`` for
machine-readable results (floats serialized with ``repr``, so they
round-trip exactly); progress chatter then moves to stderr.

Subcommands that fan out over (server type, model) pairs accept
``--jobs`` for process-parallel profiling and thread ``--seed`` through
every trace generator, so runs are reproducible bit-for-bit.

Installed as ``hercules-repro`` (see pyproject) or run with
``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence

from repro.analysis import format_series, format_table
from repro.carbon import DEFERRABLE_POLICIES, load_carbon, parse_deferrable
from repro.cluster import (
    Allocation,
    ClusterManager,
    GreedyScheduler,
    HerculesClusterScheduler,
    NHScheduler,
    PriorityAwareScheduler,
    allocation_drawn_power_w,
    synchronous_traces,
)
from repro.fleet import (
    ROUTING_POLICIES,
    FaultSchedule,
    FleetSimulator,
    PredictiveAutoscaler,
    ReactiveAutoscaler,
    build_fleet,
    diurnal_segments,
    provision_carbon_aware,
    provision_fault_aware,
)
from repro.hardware import SERVER_AVAILABILITY, SERVER_TYPES
from repro.models import MODEL_NAMES, build_model
from repro.scheduling import (
    BaselineTaskScheduler,
    HerculesTaskScheduler,
    OfflineProfiler,
)
from repro.sim import QueryWorkload, ServerEvaluator
from repro.traces import (
    FleetArrivals,
    PiecewisePoissonProcess,
    RecordedTrace,
    parse_arrivals,
)

_CLUSTER_POLICIES = {
    "nh": NHScheduler,
    "greedy": GreedyScheduler,
    "priority": PriorityAwareScheduler,
    "hercules": HerculesClusterScheduler,
}


def _cmd_models(args: argparse.Namespace) -> int:
    rows = []
    for name in MODEL_NAMES:
        d = build_model(name).describe()
        rows.append(
            [
                d["model"],
                d["service"],
                d["tables"],
                d["pooling"],
                round(d["weight_gb"], 1),
                round(d["flops_per_item"] / 1e6, 2),
                d["sla_ms"],
            ]
        )
    print(
        format_table(
            ["model", "service", "tables", "pooling", "GB", "MFLOP/item", "SLA ms"],
            rows,
            title="Table I model zoo",
        )
    )
    return 0


def _cmd_servers(args: argparse.Namespace) -> int:
    rows = [
        [
            name,
            server.label,
            server.cpu.cores,
            round(server.memory.capacity_bytes / 1e9),
            round(server.tdp_w),
            SERVER_AVAILABILITY[name],
        ]
        for name, server in SERVER_TYPES.items()
    ]
    print(
        format_table(
            ["type", "composition", "cores", "mem GB", "TDP W", "avail"],
            rows,
            title="Table II server types",
        )
    )
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    model = build_model(args.model)
    evaluator = ServerEvaluator(SERVER_TYPES[args.server])
    sla = args.sla if args.sla is not None else model.sla_ms
    hercules = HerculesTaskScheduler(evaluator, model, sla_ms=sla).search()
    rows = [
        [
            "Hercules",
            hercules.plan.describe() if hercules.plan else "infeasible",
            round(hercules.perf.qps) if hercules.feasible else 0,
            round(hercules.perf.latency.p99_ms, 1) if hercules.feasible else "-",
            round(hercules.perf.qps_per_watt, 2) if hercules.feasible else "-",
            hercules.evaluations,
        ]
    ]
    if args.baseline:
        baseline = BaselineTaskScheduler(evaluator, model, sla_ms=sla).search()
        rows.append(
            [
                "DeepRecSys+Baymax",
                baseline.plan.describe() if baseline.plan else "infeasible",
                round(baseline.perf.qps) if baseline.feasible else 0,
                round(baseline.perf.latency.p99_ms, 1) if baseline.feasible else "-",
                round(baseline.perf.qps_per_watt, 2) if baseline.feasible else "-",
                baseline.evaluations,
            ]
        )
    print(
        format_table(
            ["scheduler", "plan", "QPS", "p99 ms", "QPS/W", "evals"],
            rows,
            title=f"{args.model} on {args.server} (SLA {sla:.0f} ms)",
        )
    )
    return 0 if hercules.feasible else 1


def _cmd_profile(args: argparse.Namespace) -> int:
    servers = [SERVER_TYPES[s] for s in args.servers]
    models = [build_model(m) for m in args.models]
    table = OfflineProfiler().profile(servers, models, jobs=args.jobs)
    rows = [
        [
            tup.server_name,
            tup.model_name,
            round(tup.qps),
            round(tup.power_w),
            round(tup.qps_per_watt, 2),
            tup.plan.describe() if tup.plan else "infeasible",
        ]
        for tup in table.entries.values()
    ]
    print(
        format_table(
            ["server", "model", "QPS", "power W", "QPS/W", "plan"],
            rows,
            title="Workload classification (efficiency tuples)",
        )
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    servers = [SERVER_TYPES[s] for s in args.servers]
    models = [build_model(m) for m in args.models]
    table = OfflineProfiler().profile(servers, models)
    fleet = {s: SERVER_AVAILABILITY[s] for s in args.servers}
    peaks = {m.name: args.peak_qps for m in models}
    traces = synchronous_traces(peaks)
    policy = _CLUSTER_POLICIES[args.policy]
    manager = ClusterManager(
        policy(table, fleet),
        interval_minutes=args.interval,
        over_provision=args.over_provision,
    )
    day = manager.run_day(traces)
    print(
        format_series(
            day.power_series(),
            x_label="hour",
            y_label="provisioned W",
            title=f"{args.policy} provisioning over one day",
            precision=0,
        )
    )
    print(
        f"\npeak {day.peak_power_w / 1e3:.2f} kW / avg "
        f"{day.average_power_w / 1e3:.2f} kW, peak servers "
        f"{day.peak_servers}, shortfall: {day.any_shortfall}"
    )
    return 1 if day.any_shortfall else 0


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return value


def _positive_float(text: str) -> float:
    value = float(text)
    if value <= 0:
        raise argparse.ArgumentTypeError("must be > 0")
    return value


def _distribute_fleet(total: int, types: list[str]) -> dict[str, int]:
    """Split ``total`` servers over types proportional to availability."""
    weights = {t: SERVER_AVAILABILITY[t] for t in types}
    scale = sum(weights.values())
    counts = {t: int(total * w / scale) for t, w in weights.items()}
    remainders = sorted(
        types, key=lambda t: total * weights[t] / scale - counts[t], reverse=True
    )
    for t in remainders:
        if sum(counts.values()) >= total:
            break
        counts[t] += 1
    return {t: n for t, n in counts.items() if n > 0}


def _fleet_inputs(args: argparse.Namespace, target_utilization: float):
    """Shared `fleet`/`provision-fault-aware` setup: profile the table,
    shape the fleet, and build the arrival source.

    Peak loads are explicit (``--peak-qps``) or sized so the fleet
    peaks around ``target_utilization`` of aggregate capacity.  The
    arrival source is the legacy compressed diurnal piecewise-Poisson
    stream by default, an ``--arrivals`` process spec scaled to each
    model's peak, or an on-disk ``--trace`` replay -- all returned as
    lazily-streamed re-iterable sources.
    Returns ``(models, table, fleet_counts, traces, workloads, source)``.
    """
    if getattr(args, "trace", None) and getattr(args, "arrivals", None):
        raise SystemExit("--trace and --arrivals are mutually exclusive")
    if getattr(args, "trace", None) and args.peak_qps is None:
        raise SystemExit(
            "--trace needs --peak-qps (the recorded file fixes the arrival "
            "rates, but provisioning still sizes the fleet from the peak)"
        )
    server_types = [SERVER_TYPES[s] for s in args.server_types]
    models = {name: build_model(name) for name in args.models}
    print(
        f"Profiling {len(server_types)} server types x {len(models)} models ...",
        flush=True,
        # --json owns stdout; progress chatter moves to stderr.
        file=sys.stderr if getattr(args, "json", False) else sys.stdout,
    )
    table = OfflineProfiler().profile(
        server_types, list(models.values()), jobs=args.jobs
    )
    fleet_counts = _distribute_fleet(args.servers, list(args.server_types))

    if args.peak_qps is not None:
        peaks = {name: args.peak_qps for name in models}
    else:
        peaks = {}
        for name in models:
            capacity = sum(
                count * table.qps(t, name) for t, count in fleet_counts.items()
            )
            peaks[name] = target_utilization * capacity / len(models)
    traces = synchronous_traces(peaks)
    workloads = {
        name: QueryWorkload.for_model(m.config.mean_query_size)
        for name, m in models.items()
    }
    if getattr(args, "trace", None):
        source = RecordedTrace(args.trace)
    elif getattr(args, "arrivals", None):
        spec = parse_arrivals(args.arrivals)
        source = FleetArrivals(
            {
                name: spec.build(workloads[name], peaks[name], args.duration)
                for name in models
            },
            seed=args.seed,
        )
    else:
        segments = {
            name: diurnal_segments(trace, args.duration, steps=args.segments)
            for name, trace in traces.items()
        }
        source = FleetArrivals(
            {
                name: PiecewisePoissonProcess(workloads[name], segs)
                for name, segs in segments.items()
            },
            seed=args.seed,
        )
    return models, table, fleet_counts, traces, workloads, source


def _replay_span_s(args: argparse.Namespace, source) -> float:
    """Seconds the replay spans: --duration, or the recorded trace's
    actual extent (a capture's span has nothing to do with --duration,
    and warmup/autoscaler windows must scale with the real one)."""
    if getattr(args, "trace", None):
        return max(source.end_s, 1e-9)
    return args.duration


def _cmd_fleet(args: argparse.Namespace) -> int:
    # 60% aggregate utilization: the regime where routing quality shows.
    models, table, fleet_counts, traces, workloads, source = _fleet_inputs(
        args, target_utilization=0.6
    )
    span = _replay_span_s(args, source)
    scheduler = HerculesClusterScheduler(table, fleet_counts)

    peak_loads = {m: t.peak_qps for m, t in traces.items()}
    allocation = scheduler.allocate(peak_loads, over_provision=args.over_provision)
    peak_allocation = allocation
    autoscaler = None
    standby = None
    if args.autoscale:
        trough_loads = {
            m: t.peak_qps * t.trough_ratio for m, t in traces.items()
        }
        base = scheduler.allocate(trough_loads, over_provision=args.over_provision)
        standby = allocation.minus(base)
        allocation = base
        window = max(span / 48.0, 0.02)
        sla = {name: m.sla_ms for name, m in models.items()}
        if args.autoscale_mode == "predictive":
            autoscaler = PredictiveAutoscaler(sla, window_s=window)
        else:
            autoscaler = ReactiveAutoscaler(
                sla, window_s=window, cooldown_s=2.0 * window
            )
    chatter = sys.stderr if args.json else sys.stdout
    if peak_allocation.has_shortfall:
        print("warning: fleet cannot cover the requested peak load", file=chatter)

    faults = FaultSchedule.parse(args.faults) if args.faults else None
    carbon = load_carbon(args.carbon) if args.carbon else None
    deferrable_jobs = ()
    if args.deferrable:
        if carbon is None:
            raise SystemExit("--deferrable needs --carbon (jobs are "
                             "scheduled against the grid's intensity)")
        deferrable_jobs = parse_deferrable(args.deferrable).build(span)
    if carbon is None and (
        args.power_cap is not None or args.deferral_horizon is not None
    ):
        raise SystemExit(
            "--power-cap/--deferral-horizon shape the deferrable plan; "
            "they need --carbon and --deferrable"
        )
    probe = None
    if args.metrics_out or args.trace_out:
        from repro.obs import FleetProbe

        probe = FleetProbe(
            window_s=args.metrics_window_s,
            metrics=args.metrics_out is not None,
            trace=args.trace_out is not None,
        )
    if args.shards > 1:
        if faults is not None or args.retries or args.hedge_ms is not None:
            raise SystemExit(
                "--shards > 1 supports fault-free replays only: fault "
                "injection couples shards through cross-model dead "
                "domains; drop --faults/--retries/--hedge-ms or run "
                "--shards 1 (add --percentile-mode sketch for the "
                "memory ceiling)"
            )
        if probe is not None:
            raise SystemExit(
                "--shards > 1 cannot export observability (the probe "
                "needs the single-process loop); drop "
                "--metrics-out/--trace-out or run --shards 1"
            )
        if carbon is not None:
            raise SystemExit(
                "--shards > 1 cannot account carbon (activation windows "
                "live in the single-process loop); drop --carbon or run "
                "--shards 1"
            )
        from repro.fleet.sharded import run_fleet_sharded

        result = run_fleet_sharded(
            allocation,
            table,
            models,
            workloads,
            source,
            shards=args.shards,
            policy=args.policy,
            sla_ms={name: m.sla_ms for name, m in models.items()},
            autoscaler=autoscaler,
            seed=args.seed,
            percentile_mode=args.percentile_mode,
            warmup_s=span * 0.05,
            standby=standby,
            core=(
                "python"
                if args.core in ("vector", "vector-epoch")
                else args.core
            ),
        )
    else:
        servers = build_fleet(
            allocation, table, models, workloads, standby=standby
        )
        sim = FleetSimulator(
            servers,
            policy=args.policy,
            sla_ms={name: m.sla_ms for name, m in models.items()},
            autoscaler=autoscaler,
            seed=args.seed,
            faults=faults,
            retries=args.retries,
            hedge_ms=args.hedge_ms,
            observer=probe,
            core=args.core,
            epoch_ms=args.epoch_ms,
            percentile_mode=args.percentile_mode,
            carbon=carbon,
            deferrable=deferrable_jobs,
            deferrable_policy=args.deferrable_policy,
            power_cap_w=args.power_cap,
            deferral_horizon_s=args.deferral_horizon,
        )
        result = sim.run(source, warmup_s=span * 0.05)
    if probe is not None:
        if args.metrics_out:
            probe.export_metrics(args.metrics_out)
            print(f"wrote metrics series to {args.metrics_out}", file=chatter)
        if args.trace_out:
            probe.export_trace(args.trace_out)
            print(f"wrote query trace to {args.trace_out}", file=chatter)
    avg_loads = {m: t.average_load() for m, t in traces.items()}
    drawn = allocation_drawn_power_w(peak_allocation, table, avg_loads, models)
    provisioned = peak_allocation.provisioned_power_w(table)
    if args.json:
        payload = result.to_dict()
        payload["analytic"] = {
            "provisioned_power_w": provisioned,
            "drawn_power_w": drawn,
        }
        print(json.dumps(payload))
    else:
        print()
        print(
            result.format(
                title=(
                    f"{args.policy} routing, {len(result.servers)} provisioned of "
                    f"{args.servers} fleet servers "
                    + (
                        f"({span:.0f}s recorded trace)"
                        if args.trace
                        else f"({span:.0f}s compressed diurnal day)"
                    )
                )
            )
        )
        print(
            f"analytic check: provisioned {provisioned / 1e3:.2f} kW, "
            f"drawn at average load {drawn / 1e3:.2f} kW"
        )
    # Drops are an error only when nothing (autoscaler, fault injection)
    # could legitimately leave a stream without replicas.
    return 1 if result.total_dropped and not (args.autoscale or faults) else 0


def _cmd_provision_fault_aware(args: argparse.Namespace) -> int:
    # 50% aggregate utilization: leaves fleet headroom to grow R into.
    models, table, fleet_counts, traces, workloads, source = _fleet_inputs(
        args, target_utilization=0.5
    )
    if args.shards > 1:
        raise SystemExit(
            "--shards > 1 is not supported by provision-fault-aware: its "
            "replays are fault-injected, and fault injection couples "
            "shards through cross-model dead domains; use --percentile-"
            "mode sketch to bound replay memory instead"
        )
    span = _replay_span_s(args, source)
    # The search replays the identical traffic at every candidate R;
    # materializing once beats re-drawing the stream a dozen times.
    trace = list(source)
    scheduler = HerculesClusterScheduler(table, fleet_counts)
    peak_loads = {m: t.peak_qps for m, t in traces.items()}
    faults = FaultSchedule.parse(args.faults)
    chatter = sys.stderr if args.json else sys.stdout
    if faults.is_empty:
        print(
            "warning: empty fault schedule -- the loop will trivially pick "
            "the smallest R meeting the SLA",
            file=chatter,
        )
    print(
        f"Searching R in [{args.r_min:.2f}, {args.r_max:.2f}] for "
        f"{args.target_availability * 100:.2f}% service availability "
        f"({len(trace)} queries per replay) ...",
        flush=True,
        file=chatter,
    )
    outcome = provision_fault_aware(
        scheduler,
        table,
        models,
        workloads,
        trace,
        peak_loads,
        faults,
        sla_ms={name: m.sla_ms for name, m in models.items()},
        target_availability=args.target_availability,
        baseline_r=args.baseline_r,
        policy=args.policy,
        retries=args.retries,
        hedge_ms=args.hedge_ms,
        seed=args.seed,
        core=args.core,
        percentile_mode=args.percentile_mode,
        warmup_s=span * 0.05,
        r_min=args.r_min,
        r_max=args.r_max,
        r_tol=args.r_tol,
        max_evals=args.max_evals,
    )
    if args.json:
        print(json.dumps(_provision_outcome_dict(outcome)))
    else:
        print()
        print(outcome.format())
        if outcome.converged:
            print()
            print(
                outcome.result.format(
                    title=(
                        f"fleet replay at chosen R={outcome.chosen_r:.3f} "
                        f"({args.policy} routing, "
                        f"{outcome.allocation.total_servers} replicas)"
                    )
                )
            )
    return 0 if outcome.converged else 1


def _provision_outcome_dict(outcome) -> dict:
    """JSON view of a fault-aware provisioning search outcome.

    Floats pass through untouched (``json.dumps`` renders them with
    ``repr``, so values round-trip exactly); allocations flatten to
    ``"server:model" -> replicas`` count maps.
    """

    def _alloc(allocation) -> dict:
        return {
            f"{srv}:{model}": count
            for (srv, model), count in sorted(allocation.counts.items())
        }

    return {
        "target_availability": outcome.target_availability,
        "converged": outcome.converged,
        "chosen_r": outcome.chosen_r,
        "baseline_r": outcome.baseline_r,
        "replays": outcome.replays,
        "provisioned_power_w": outcome.provisioned_power_w,
        "baseline_power_w": outcome.baseline_power_w,
        "standby_power_w": outcome.standby_power_w,
        "power_delta_w": outcome.power_delta_w,
        "allocation": _alloc(outcome.allocation),
        "baseline_allocation": _alloc(outcome.baseline_allocation),
        "evaluations": [
            {
                "r": ev.r,
                "servers": ev.servers,
                "provisioned_power_w": ev.provisioned_power_w,
                "service_availability": ev.service_availability,
                "uptime_availability": ev.uptime_availability,
                "worst_violation_rate": ev.worst_violation_rate,
                "meets_target": ev.meets_target,
                "shortfall_qps": ev.shortfall_qps,
            }
            for ev in outcome.evaluations
        ],
        "result": outcome.result.to_dict(),
        "baseline_result": outcome.baseline_result.to_dict(),
    }


def _cmd_provision_carbon_aware(args: argparse.Namespace) -> int:
    # 50% aggregate utilization: leaves fleet headroom to grow R into.
    models, table, fleet_counts, traces, workloads, source = _fleet_inputs(
        args, target_utilization=0.5
    )
    if args.shards > 1:
        raise SystemExit(
            "--shards > 1 is not supported by provision-carbon-aware: "
            "carbon accounting needs the single-process loop's "
            "activation windows; use --percentile-mode sketch to bound "
            "replay memory instead"
        )
    span = _replay_span_s(args, source)
    trace = list(source)
    scheduler = HerculesClusterScheduler(table, fleet_counts)
    peak_loads = {m: t.peak_qps for m, t in traces.items()}
    carbon = load_carbon(args.carbon)
    jobs = (
        parse_deferrable(args.deferrable).build(span)
        if args.deferrable
        else ()
    )
    chatter = sys.stderr if args.json else sys.stdout
    print(
        f"Searching R in [{args.r_min:.2f}, {args.r_max:.2f}] for "
        f"{args.target_availability * 100:.2f}% service availability, "
        f"then sweeping {len(jobs)} deferrable jobs over "
        f"{len(args.policies)} policies x {len(args.power_caps)} caps x "
        f"{len(args.deferral_horizons)} horizons ...",
        flush=True,
        file=chatter,
    )
    outcome = provision_carbon_aware(
        scheduler,
        table,
        models,
        workloads,
        trace,
        peak_loads,
        carbon,
        sla_ms={name: m.sla_ms for name, m in models.items()},
        jobs=jobs,
        policies=args.policies,
        power_caps=args.power_caps,
        deferral_horizons=args.deferral_horizons,
        target_availability=args.target_availability,
        policy=args.policy,
        seed=args.seed,
        core=args.core,
        percentile_mode=args.percentile_mode,
        warmup_s=span * 0.05,
        r_min=args.r_min,
        r_max=args.r_max,
        r_tol=args.r_tol,
        max_evals=args.max_evals,
    )
    if args.json:
        print(json.dumps(_carbon_outcome_dict(outcome)))
    else:
        print()
        print(outcome.format())
        if outcome.converged:
            print()
            print(
                outcome.result.format(
                    title=(
                        f"fleet replay at chosen R={outcome.chosen_r:.3f} "
                        f"({args.policy} routing, "
                        f"{outcome.allocation.total_servers} replicas)"
                    )
                )
            )
    return 0 if outcome.converged else 1


def _carbon_outcome_dict(outcome) -> dict:
    """JSON view of a carbon-aware provisioning search outcome."""

    def _plan(pt) -> dict:
        return {
            "policy": pt.policy,
            "power_cap_w": pt.power_cap_w,
            "deferral_horizon_s": pt.deferral_horizon_s,
            "completed": pt.completed,
            "dropped": pt.dropped,
            "suspended": pt.suspended,
            "deferrable_g": pt.deferrable_g,
            "feasible": pt.feasible,
        }

    doc = {
        "target_availability": outcome.target_availability,
        "converged": outcome.converged,
        "chosen_r": outcome.chosen_r,
        "replays": outcome.replays,
        "provisioned_power_w": outcome.provisioned_power_w,
        "total_g": outcome.total_g,
        "no_wait_g": outcome.no_wait_g,
        "deferral_savings_g": outcome.deferral_savings_g,
        "evaluations": [
            {
                "r": ev.r,
                "servers": ev.servers,
                "provisioned_power_w": ev.provisioned_power_w,
                "service_availability": ev.service_availability,
                "meets_target": ev.meets_target,
                "shortfall_qps": ev.shortfall_qps,
            }
            for ev in outcome.evaluations
        ],
        "plan": [_plan(pt) for pt in outcome.plan],
        "chosen_plan": (
            _plan(outcome.chosen_plan)
            if outcome.chosen_plan is not None
            else None
        ),
    }
    if outcome.converged:
        doc["allocation"] = {
            f"{srv}:{model}": count
            for (srv, model), count in sorted(outcome.allocation.counts.items())
        }
        doc["result"] = outcome.result.to_dict()
    return doc


def _cmd_observe(args: argparse.Namespace) -> int:
    from repro.obs import diff_summaries, format_diff, format_summary, summarize_file

    summary = summarize_file(args.file)
    if args.other is None:
        if args.json:
            print(json.dumps(summary))
        else:
            print(format_summary(summary))
        return 0
    other = summarize_file(args.other)
    delta = diff_summaries(summary, other)
    if args.json:
        print(json.dumps({"a": summary, "b": other, "diff": delta}))
    else:
        print(format_diff(delta))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro import perfbench

    if args.compare:
        import json

        with open(args.compare[0]) as fh:
            old_doc = json.load(fh)
        with open(args.compare[1]) as fh:
            new_doc = json.load(fh)
        text, regressed = perfbench.compare_bench(old_doc, new_doc)
        print(text)
        return 1 if regressed else 0

    doc = perfbench.run_bench(
        quick=args.quick,
        seed=args.seed,
        jobs=args.jobs,
        scenarios=tuple(args.scenarios) if args.scenarios else None,
        core=args.core,
        progress=lambda name: print(f"bench: {name} ...", flush=True),
    )
    if args.baseline:
        import json

        with open(args.baseline) as fh:
            doc = perfbench.attach_baseline(doc, json.load(fh))
    perfbench.write_bench_json(args.output, doc)
    print(perfbench.format_bench(doc))
    print(f"\nwrote {args.output}")
    return 0


def _add_fleet_shared_arguments(parser: argparse.ArgumentParser) -> None:
    """Flags `fleet` and `provision-fault-aware` share.

    Both subcommands feed the common :func:`_fleet_inputs` setup, so
    the fleet-shape, traffic-source, and retry/hedging flags are
    declared once here; per-subcommand defaults are overridden with
    ``set_defaults`` at the subparser.
    """
    parser.add_argument(
        "--servers", type=_positive_int, default=20, help="fleet size in servers"
    )
    parser.add_argument(
        "--server-types",
        nargs="+",
        default=["T2", "T3", "T7"],
        choices=tuple(SERVER_TYPES),
        help="server types the fleet draws from (availability-weighted)",
    )
    parser.add_argument(
        "--models", nargs="+", default=["DLRM-RMC1", "DLRM-RMC2"], choices=MODEL_NAMES
    )
    parser.add_argument(
        "--policy",
        choices=tuple(ROUTING_POLICIES),
        default="p2c",
        help="load-balancing policy routing each model's query stream",
    )
    parser.add_argument(
        "--peak-qps",
        type=_positive_float,
        default=None,
        help="per-model diurnal peak QPS (default: sized from fleet capacity)",
    )
    parser.add_argument(
        "--duration",
        type=_positive_float,
        default=8.0,
        help="simulated seconds the compressed day spans",
    )
    parser.add_argument(
        "--segments", type=_positive_int, default=24, help="diurnal segments per day"
    )
    parser.add_argument(
        "--arrivals",
        default=None,
        metavar="SPEC",
        help=(
            "arrival-process spec replacing the default diurnal synthesis: "
            "'+'-separated shape:key=value,... sections, shapes "
            "poisson/mmpp/diurnal with level= rates relative to each "
            "model's peak (e.g. 'diurnal:noise=0.15+mmpp:levels=0/1.2,"
            "dwell=3/0.25' -- see docs/cli.md)"
        ),
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help=(
            "replay a recorded trace file (.csv/.jsonl with model,arrival_s,"
            "size,pooling_scale rows) instead of synthesizing arrivals; "
            "requires --peak-qps for fleet sizing"
        ),
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=0,
        help="per-query router re-dispatch budget after a crash kills its attempt",
    )
    parser.add_argument(
        "--hedge-ms",
        type=_positive_float,
        default=None,
        help=(
            "dispatch a duplicate attempt to a second replica once a query "
            "is outstanding this long; the fastest attempt wins (off by default)"
        ),
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--core",
        choices=("auto", "python", "vector", "vector-epoch"),
        default="auto",
        help=(
            "event-core selection: 'auto' uses the vectorized batch core "
            "when eligible (rr/weighted routing, plain fault schedules) "
            "and falls back to the exact per-event core otherwise; "
            "'python' forces the per-event core; 'vector' demands the "
            "vectorized core and errors with every blocking reason when "
            "ineligible; 'vector-epoch' batches queue-aware routing "
            "(least/p2c) into arrival micro-epochs -- statistically "
            "equivalent, never picked by 'auto' (see docs/performance.md)"
        ),
    )
    parser.add_argument(
        "--epoch-ms",
        type=_positive_float,
        default=5.0,
        help=(
            "micro-epoch length for --core vector-epoch: arrivals within "
            "this window route against one queue snapshot (larger = faster "
            "but more drift; ignored by the other cores; default 5.0)"
        ),
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for offline profiling (0 = all CPUs)",
    )
    parser.add_argument(
        "--shards",
        type=_positive_int,
        default=1,
        help=(
            "shard the replay by model across this many worker processes "
            "and merge the reports (seed-deterministic: exact mode merges "
            "bit-identical to --shards 1); fault-free runs only -- "
            "--faults/--retries/--hedge-ms and the observability exports "
            "need the single-process loop (see docs/cli.md)"
        ),
    )
    parser.add_argument(
        "--percentile-mode",
        choices=("exact", "sketch"),
        default="exact",
        help=(
            "report percentiles: 'exact' stores every measured latency "
            "(bit-identical, O(queries) memory); 'sketch' folds "
            "completions into P2 quantile sketches as they retire "
            "(O(models) memory -- week-long replays survive; "
            "completed/qps/violation-rate stay exact, p50/p95/p99 are "
            "estimates, phases empty)"
        ),
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hercules-repro",
        description="Hercules (HPCA 2022) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("models", help="list the Table I model zoo").set_defaults(
        func=_cmd_models
    )
    sub.add_parser("servers", help="list the Table II server types").set_defaults(
        func=_cmd_servers
    )

    search = sub.add_parser("search", help="task-scheduling search for one pair")
    search.add_argument("model", choices=MODEL_NAMES)
    search.add_argument("server", choices=tuple(SERVER_TYPES))
    search.add_argument("--sla", type=float, default=None, help="SLA ms override")
    search.add_argument(
        "--baseline", action="store_true", help="also run DeepRecSys+Baymax"
    )
    search.set_defaults(func=_cmd_search)

    profile = sub.add_parser("profile", help="build the classification table")
    profile.add_argument(
        "--servers", nargs="+", default=["T2", "T3", "T7"], choices=tuple(SERVER_TYPES)
    )
    profile.add_argument(
        "--models", nargs="+", default=["DLRM-RMC1", "DLRM-RMC2"], choices=MODEL_NAMES
    )
    profile.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the pair fan-out (0 = all CPUs)",
    )
    profile.set_defaults(func=_cmd_profile)

    serve = sub.add_parser("serve", help="provision a diurnal day")
    serve.add_argument(
        "--servers", nargs="+", default=["T2", "T3", "T7"], choices=tuple(SERVER_TYPES)
    )
    serve.add_argument(
        "--models", nargs="+", default=["DLRM-RMC1", "DLRM-RMC2"], choices=MODEL_NAMES
    )
    serve.add_argument(
        "--policy", choices=tuple(_CLUSTER_POLICIES), default="hercules"
    )
    serve.add_argument("--peak-qps", type=float, default=10_000.0)
    serve.add_argument("--interval", type=float, default=30.0, help="minutes")
    serve.add_argument("--over-provision", type=float, default=0.05)
    serve.set_defaults(func=_cmd_serve)

    # Flags `fleet` and `provision-fault-aware` share (they feed the
    # common _fleet_inputs setup); each subcommand overrides defaults
    # via set_defaults below instead of re-declaring the arguments.
    # Built fresh per subparser: argparse's set_defaults mutates the
    # Action objects, which ``parents=`` would otherwise share.
    def _fleet_shared_flags() -> argparse.ArgumentParser:
        fleet_shared = argparse.ArgumentParser(add_help=False)
        _add_fleet_shared_arguments(fleet_shared)
        return fleet_shared

    fleet = sub.add_parser(
        "fleet",
        parents=[_fleet_shared_flags()],
        help="request-level fleet replay of a diurnal day",
        description=(
            "Provision a fleet with the Hercules LP, then replay a "
            "compressed diurnal multi-model day (or --arrivals/--trace "
            "traffic) query-by-query through a routing policy, reporting "
            "measured p50/p99, SLA-violation rate, fleet power, and "
            "queries served.  --faults injects replica crashes and "
            "stragglers (deterministic given --seed); --retries and "
            "--hedge-ms control how lost or slow queries are "
            "re-dispatched."
        ),
    )
    fleet.add_argument(
        "--autoscale",
        action="store_true",
        help="provision at trough and let the autoscaler track load",
    )
    fleet.add_argument(
        "--autoscale-mode",
        choices=("reactive", "predictive"),
        default="reactive",
        help=(
            "with --autoscale: reactive (violation-triggered) or predictive "
            "(windowed rate-trend forecast activates standbys ahead of the "
            "ramp)"
        ),
    )
    fleet.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help=(
            "fault schedule: comma-separated crash@T:TGT[+DUR], "
            "blip@T:TGT[+DUR], slow@T:TGT*FACTOR[+DUR] entries (TGT = "
            "replica index or domN), domain:LO-HI / domain:size=K "
            "correlated-fault-domain declarations, and/or a "
            "random:crash_mtbf=S,mttr=S,slow_mtbf=S,domain_mtbf=S,... "
            "seed-deterministic stochastic section; sections separate "
            "with ';' (e.g. 'domain:0-9;crash@5s:dom0' -- see docs/cli.md)"
        ),
    )
    fleet.add_argument("--over-provision", type=float, default=0.05)
    fleet.add_argument(
        "--carbon",
        default=None,
        metavar="SPEC|PATH",
        help=(
            "attach a grid carbon-intensity trace and report gCO2: a "
            "recorded .csv/.jsonl file (time_s,gco2_per_kwh rows), or a "
            "'+'-superposed synthetic spec with shapes "
            "constant:intensity=, diurnal:base=,swing=,period=, "
            "step:levels=400/120,at=0/3600 (see docs/carbon.md)"
        ),
    )
    fleet.add_argument(
        "--deferrable",
        default=None,
        metavar="SPEC",
        help=(
            "deadline-bound batch jobs run next to the real-time traffic "
            "(needs --carbon): jobs:count=4,duration=120,power=800,"
            "slack=2.0[,start=0,every=600] sections joined with '+' "
            "(see docs/carbon.md)"
        ),
    )
    fleet.add_argument(
        "--deferrable-policy",
        choices=DEFERRABLE_POLICIES,
        default="no-wait",
        help=(
            "when the deferrable jobs run: immediately (no-wait), in the "
            "lowest-carbon contiguous slot before each deadline "
            "(lowest-carbon-slot), split across below-average-intensity "
            "periods (carbon-waiting), or preemptively in the cheapest "
            "seconds (suspend-resume)"
        ),
    )
    fleet.add_argument(
        "--power-cap",
        type=_positive_float,
        default=None,
        metavar="WATTS",
        help=(
            "fleet power cap the deferrable executor honors: jobs only "
            "run when cap minus the serving replicas' measured draw "
            "leaves headroom (needs --deferrable)"
        ),
    )
    fleet.add_argument(
        "--deferral-horizon",
        type=_positive_float,
        default=None,
        metavar="SECONDS",
        help=(
            "cap how far past its natural finish (submit + duration) a "
            "deferrable job may slip, tightening deadlines that allow "
            "more slack (needs --deferrable)"
        ),
    )
    fleet.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help=(
            "attach the streaming-metrics probe and export its windowed "
            "time series (qps, p50/p95/p99, queue depth, active replicas, "
            "power, violation rate per model) to PATH (.csv or .jsonl)"
        ),
    )
    fleet.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help=(
            "attach the query tracer and export per-query spans with "
            "retry/hedge child attempts to PATH: .jsonl for tagged lines, "
            ".json for Chrome trace-event format (Perfetto-loadable)"
        ),
    )
    fleet.add_argument(
        "--metrics-window-s",
        type=_positive_float,
        default=0.25,
        help="simulated seconds per metrics sample window (default 0.25)",
    )
    fleet.add_argument(
        "--json",
        action="store_true",
        help=(
            "print the run result as one JSON object (repr-exact floats) "
            "on stdout; progress chatter moves to stderr"
        ),
    )
    fleet.set_defaults(func=_cmd_fleet)

    provision = sub.add_parser(
        "provision-fault-aware",
        parents=[_fleet_shared_flags()],
        help="close the availability -> over-provision-rate R loop",
        description=(
            "Iterate fault-injected fleet replays to a fixpoint: find the "
            "smallest over-provision rate R whose allocation delivers a "
            "target service availability (fraction of queries served "
            "within SLA) under the given fault schedule, and report the "
            "provisioned-power delta against the fault-blind provisioner "
            "at --baseline-r.  Every candidate R replays identical "
            "traffic.  Deterministic given --seed."
        ),
    )
    provision.set_defaults(servers=24, models=["DLRM-RMC1"], retries=2)
    provision.add_argument(
        "--faults",
        required=True,
        metavar="SPEC",
        help=(
            "fault schedule applied to every replay; same mini-language as "
            "'fleet --faults' including domain:LO-HI / domain:size=K and "
            "random:domain_mtbf=S correlated outages (see docs/cli.md)"
        ),
    )
    provision.add_argument(
        "--target-availability",
        type=float,
        default=0.999,
        help="service-availability target in (0, 1] (default 0.999)",
    )
    provision.add_argument(
        "--baseline-r",
        type=float,
        default=0.05,
        help="fault-blind over-provision rate to compare against",
    )
    provision.add_argument(
        "--r-min", type=float, default=0.0, help="search lower bound for R"
    )
    provision.add_argument(
        "--r-max", type=float, default=1.0, help="search upper bound for R"
    )
    provision.add_argument(
        "--r-tol",
        type=_positive_float,
        default=0.02,
        help="bisection width at which the search stops",
    )
    provision.add_argument(
        "--max-evals",
        type=_positive_int,
        default=12,
        help="cap on fault-injected evaluation replays",
    )
    provision.add_argument(
        "--json",
        action="store_true",
        help=(
            "print the search outcome as one JSON object (repr-exact "
            "floats) on stdout; progress chatter moves to stderr"
        ),
    )
    provision.set_defaults(func=_cmd_provision_fault_aware)

    def _sweep_values(text: str) -> tuple:
        """Slash-separated sweep list; 'none' = the uncapped/unbounded
        point (e.g. 'none/2000/3000')."""
        values = []
        for token in text.split("/"):
            token = token.strip().lower()
            if token in ("none", "-"):
                values.append(None)
            else:
                try:
                    values.append(float(token))
                except ValueError:
                    raise argparse.ArgumentTypeError(
                        f"bad sweep value {token!r}; use numbers or 'none'"
                    )
        return tuple(values)

    carbon_prov = sub.add_parser(
        "provision-carbon-aware",
        parents=[_fleet_shared_flags()],
        help="find the lowest-carbon fleet meeting an availability target",
        description=(
            "Bisect the over-provision rate R to the smallest fleet whose "
            "fault-free replay meets a target service availability, then "
            "sweep deferrable-job (policy, power cap, deferral horizon) "
            "plans on that fleet's measured activation profile and pick "
            "the feasible plan emitting the least gCO2.  Every candidate "
            "R replays identical traffic; the plan sweep re-prices the "
            "deferrable executor only.  Deterministic given --seed."
        ),
    )
    carbon_prov.set_defaults(servers=24, models=["DLRM-RMC1"])
    carbon_prov.add_argument(
        "--carbon",
        required=True,
        metavar="SPEC|PATH",
        help=(
            "grid carbon-intensity trace pricing every joule; same "
            "mini-language as 'fleet --carbon' (see docs/carbon.md)"
        ),
    )
    carbon_prov.add_argument(
        "--deferrable",
        default=None,
        metavar="SPEC",
        help=(
            "deferrable batch jobs to place; same mini-language as "
            "'fleet --deferrable' (omit for a realtime-only search)"
        ),
    )
    carbon_prov.add_argument(
        "--policies",
        nargs="+",
        choices=DEFERRABLE_POLICIES,
        default=list(DEFERRABLE_POLICIES),
        help="deferrable policies the plan sweep compares",
    )
    carbon_prov.add_argument(
        "--power-caps",
        type=_sweep_values,
        default=(None,),
        metavar="W/W/...",
        help=(
            "slash-separated fleet power caps (watts) to sweep; 'none' "
            "= uncapped (default: uncapped only)"
        ),
    )
    carbon_prov.add_argument(
        "--deferral-horizons",
        type=_sweep_values,
        default=(None,),
        metavar="S/S/...",
        help=(
            "slash-separated deferral horizons (seconds) to sweep; "
            "'none' = deadline-bound only (default)"
        ),
    )
    carbon_prov.add_argument(
        "--target-availability",
        type=float,
        default=0.999,
        help="service-availability target in (0, 1] (default 0.999)",
    )
    carbon_prov.add_argument(
        "--r-min", type=float, default=0.0, help="search lower bound for R"
    )
    carbon_prov.add_argument(
        "--r-max", type=float, default=1.0, help="search upper bound for R"
    )
    carbon_prov.add_argument(
        "--r-tol",
        type=_positive_float,
        default=0.02,
        help="bisection width at which the search stops",
    )
    carbon_prov.add_argument(
        "--max-evals",
        type=_positive_int,
        default=12,
        help="cap on fleet evaluation replays",
    )
    carbon_prov.add_argument(
        "--json",
        action="store_true",
        help=(
            "print the search outcome as one JSON object (repr-exact "
            "floats) on stdout; progress chatter moves to stderr"
        ),
    )
    carbon_prov.set_defaults(func=_cmd_provision_carbon_aware)

    observe = sub.add_parser(
        "observe",
        help="summarize or diff exported telemetry files",
        description=(
            "Inspect files written by 'fleet --metrics-out/--trace-out': "
            "summarize one metrics series (CSV/JSONL), trace (JSONL or "
            "Chrome trace-event JSON), or diff two files of the same "
            "family.  Formats are sniffed from extension and content."
        ),
    )
    observe.add_argument("file", help="telemetry file to summarize")
    observe.add_argument(
        "other",
        nargs="?",
        default=None,
        help="second file of the same family to diff against",
    )
    observe.add_argument(
        "--json", action="store_true", help="emit the summary/diff as JSON"
    )
    observe.set_defaults(func=_cmd_observe)

    bench = sub.add_parser(
        "bench",
        help="run the perf-regression harness",
        description=(
            "Times the hot paths (task-scheduling search, classification-"
            "table build, trace generation, single-node DES, fleet replay) "
            "on fixed seeds and writes machine-readable BENCH_perf.json "
            "(wall seconds, queries/sec, events/sec per scenario)."
        ),
    )
    bench.add_argument(
        "--quick",
        action="store_true",
        help="CI-sized scenarios (seconds instead of minutes)",
    )
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument(
        "--core",
        choices=("auto", "python", "vector", "vector-epoch"),
        default="python",
        help=(
            "event core for the fleet_replay scenario (default 'python' "
            "so its trajectory stays comparable across checkouts; the "
            "fleet_replay_fastcore and fleet_replay_queueaware scenarios "
            "always time their own core pairs)"
        ),
    )
    bench.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the profiling scenario (0 = all CPUs)",
    )
    from repro.perfbench import SCENARIOS

    bench.add_argument(
        "--scenarios",
        nargs="+",
        default=None,
        choices=SCENARIOS,
        metavar="NAME",
        help=f"subset of scenarios to run (default: all of {', '.join(SCENARIOS)})",
    )
    bench.add_argument(
        "--output",
        default="BENCH_perf.json",
        help="output JSON path (default: ./BENCH_perf.json)",
    )
    bench.add_argument(
        "--baseline",
        default=None,
        help="earlier BENCH_perf.json to embed and compute speedups against",
    )
    bench.add_argument(
        "--compare",
        nargs=2,
        metavar=("OLD", "NEW"),
        default=None,
        help=(
            "compare two existing BENCH_perf.json documents instead of "
            "running the harness: per-scenario wall deltas plus the CI "
            "gate table applied to NEW; exits nonzero when a gate fails"
        ),
    )
    bench.set_defaults(func=_cmd_bench)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
