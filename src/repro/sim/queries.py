"""Query model: heavy-tail sizes, pooling-factor variance, workloads.

Production recommendation inference queries (Section II-A, Fig. 2b-c):

- The *query size* -- the number of items ranked per query -- varies
  between ~10 and ~1000 with a pronounced heavy tail (p75/p95/p99 far
  above the median).  We use a clipped log-normal.
- The *pooling factor* -- embedding entries per lookup -- varies widely
  across tables and queries.  We use per-table gamma distributions.
"""

from __future__ import annotations

import functools
import math
from collections import namedtuple
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "QuerySizeDistribution",
    "PoolingFactorDistribution",
    "Query",
    "QueryWorkload",
]


@functools.lru_cache(maxsize=4096)
def _lognormal_percentile(
    mu: float, sigma: float, min_size: int, max_size: int, p: float
) -> int:
    """Cached clipped log-normal percentile (hot path of the evaluator)."""
    if not 0.0 < p < 100.0:
        raise ValueError("percentile must be in (0, 100)")
    from scipy.special import erfinv

    z = math.sqrt(2.0) * float(erfinv(2.0 * p / 100.0 - 1.0))
    raw = math.exp(mu + sigma * z)
    return int(min(max(raw, min_size), max_size))


@dataclass(frozen=True)
class QuerySizeDistribution:
    """Clipped log-normal query-size distribution (Fig. 2b).

    Attributes:
        mean: Target mean query size in items.
        sigma: Log-space standard deviation; 0.8 reproduces a
            production-like p99/p50 ratio of ~6.
        min_size / max_size: Clipping range (10..1000 in the paper's
            histogram, 1..2048 here to keep the tail).
    """

    mean: float = 120.0
    sigma: float = 0.8
    min_size: int = 1
    max_size: int = 2048

    def __post_init__(self) -> None:
        if self.mean <= 0:
            raise ValueError("mean must be positive")
        if self.sigma < 0:
            raise ValueError("sigma must be >= 0")
        if not 1 <= self.min_size <= self.max_size:
            raise ValueError("need 1 <= min_size <= max_size")

    @property
    def mu(self) -> float:
        """Log-space location parameter giving the target mean."""
        return math.log(self.mean) - self.sigma**2 / 2.0

    def percentile(self, p: float) -> int:
        """Analytic percentile of the (unclipped) log-normal, clipped."""
        return _lognormal_percentile(
            self.mu, self.sigma, self.min_size, self.max_size, p
        )

    def sample(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        """Draw ``n`` query sizes."""
        raw = rng.lognormal(self.mu, self.sigma, size=n)
        return np.clip(np.rint(raw), self.min_size, self.max_size).astype(int)


@dataclass(frozen=True)
class PoolingFactorDistribution:
    """Per-table pooling-factor variability (Fig. 2c).

    Each embedding table draws its per-query pooling factor from a
    gamma distribution with the table's own mean; the coefficient of
    variation is shared.  ``spread`` controls how much table means
    differ from each other (the x-axis spread in Fig. 2c).
    """

    mean: float = 80.0
    cv: float = 0.6
    spread: float = 0.5
    num_tables: int = 15

    def __post_init__(self) -> None:
        if self.mean < 1:
            raise ValueError("mean pooling must be >= 1")
        if self.cv < 0 or self.spread < 0:
            raise ValueError("cv and spread must be >= 0")
        if self.num_tables < 1:
            raise ValueError("num_tables must be >= 1")

    def table_means(self, rng: np.random.Generator) -> np.ndarray:
        """Per-table mean pooling factors (log-normal across tables)."""
        if self.spread == 0:
            return np.full(self.num_tables, self.mean)
        mu = math.log(self.mean) - self.spread**2 / 2.0
        return np.maximum(1.0, rng.lognormal(mu, self.spread, self.num_tables))

    def sample(self, rng: np.random.Generator, queries: int = 1) -> np.ndarray:
        """Pooling factors, shape ``(queries, num_tables)``."""
        means = self.table_means(rng)
        if self.cv == 0:
            return np.tile(means, (queries, 1))
        shape = 1.0 / self.cv**2
        scale = means / shape
        return np.maximum(
            1.0, rng.gamma(shape, scale, size=(queries, self.num_tables))
        )


_QueryBase = namedtuple(
    "Query", ("query_id", "arrival_s", "size", "pooling_scale")
)


class Query(_QueryBase):
    """One inference request.

    A named tuple rather than a dataclass: the load generator builds
    hundreds of thousands per trace through the C-level ``_make`` fast
    path (its inputs are vectorized-validated), while the public
    constructor keeps per-field validation.

    Attributes:
        query_id: Monotone id.
        arrival_s: Arrival time.
        size: Number of items to rank.
        pooling_scale: Multiplier on the model's mean pooling factor for
            this query (captures Fig. 2c per-query variance).
    """

    __slots__ = ()

    def __new__(cls, query_id, arrival_s, size, pooling_scale=1.0):
        if size < 1:
            raise ValueError("query size must be >= 1")
        if arrival_s < 0:
            raise ValueError("arrival time must be >= 0")
        if pooling_scale <= 0:
            raise ValueError("pooling_scale must be positive")
        return tuple.__new__(cls, (query_id, arrival_s, size, pooling_scale))


@dataclass(frozen=True)
class QueryWorkload:
    """Statistical description of one model's query stream.

    Used by both the analytical evaluator (means + percentiles) and the
    discrete-event load generator (sampling).
    """

    size_dist: QuerySizeDistribution = field(default_factory=QuerySizeDistribution)
    pooling_cv: float = 0.3

    @property
    def mean_size(self) -> float:
        return self.size_dist.mean

    def tail_size(self, p: float = 99.0) -> int:
        """Query size at the ``p``-th percentile (the SLA-binding size).

        Memoized per workload instance: the latency-bounded bisection
        asks for the same three percentiles hundreds of thousands of
        times per profiling pass.  (Lazily attached via
        ``object.__setattr__`` -- not a dataclass field, so equality,
        hashing, and pickling are unaffected.)
        """
        try:
            tails = self._tail_cache
        except AttributeError:
            tails = {}
            object.__setattr__(self, "_tail_cache", tails)
        size = tails.get(p)
        if size is None:
            size = self.size_dist.percentile(p)
            tails[p] = size
        return size

    @classmethod
    def for_model(cls, mean_query_size: int) -> "QueryWorkload":
        """Workload matching a model config's mean query size."""
        return cls(size_dist=QuerySizeDistribution(mean=float(mean_query_size)))
