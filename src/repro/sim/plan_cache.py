"""Shared memoization of closed-form plan evaluations.

Plan scoring is the repo's hottest analytic path: the gradient search
re-times hundreds of candidate plans per (model, server) pair, the
offline profiler runs that search for every pair, and the fleet
simulator builds one stage pipeline per provisioned server.  All of
those reduce to :meth:`ServerEvaluator.plan_timings`, which is a pure
function of ``(partitioned model, workload, plan)`` -- so the results
can be computed once and shared everywhere.

Three layers live here:

- :class:`PlanTimingsCache` -- a per-evaluator memo table keyed by an
  *explicit content key* (:func:`partition_key` plus the hashable
  workload/plan).  Content keys survive ``pickle``/``fork``
  round-trips, so the cache stays valid under
  ``ProcessPoolExecutor`` fan-out -- unlike the previous
  ``id(partitioned)`` scheme, where a child process could never hit on
  entries keyed by the parent's object identities.  An optional
  ``max_entries`` bound evicts oldest-first.
- A module-level registry keyed by the same content keys --
  ``shared_evaluator``, ``partitioned_for``, ``timings_for``,
  ``stages_for`` and ``serviced_stages_for`` -- used by the fleet
  builder and the cluster provisioner so that fifty replicas of
  (T2, DLRM-RMC1, plan) cost one evaluation, not fifty.
- Quantized span memos -- ``span_for`` caches
  :meth:`PlanTimings.service_span_s` per (timings, query size); the
  latency-bounded bisection hits the same four percentile sizes dozens
  of times per candidate plan.

``clear_shared_caches()`` resets everything (tests use it to measure
hit rates deterministically).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # imported lazily at runtime to avoid import cycles
    from repro.hardware.server import ServerType
    from repro.models.partition import PartitionedModel
    from repro.models.zoo import RecommendationModel
    from repro.plans import ExecutionPlan
    from repro.sim.evaluator import PlanTimings, ServerEvaluator
    from repro.sim.queries import QueryWorkload

__all__ = [
    "CacheStats",
    "PlanTimingsCache",
    "partition_key",
    "model_key",
    "shared_evaluator",
    "partitioned_for",
    "timings_for",
    "stages_for",
    "serviced_stages_for",
    "span_for",
    "shared_cache_stats",
    "clear_shared_caches",
]


@dataclass
class CacheStats:
    """Hit/miss counters for one memo table."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups


def model_key(model: "RecommendationModel") -> tuple:
    """Content identity of a model: its full config plus variant.

    The config is a frozen dataclass, so two ``build_model`` calls (or
    a pickle round-trip across a process pool) produce equal keys,
    while models that merely share a display name cannot alias.
    """
    return (model.config, model.variant)


def partition_key(partitioned: "PartitionedModel") -> tuple:
    """Content identity of a partitioned model (explicit, hashable).

    Combines the model identity with everything the partitioning step
    depends on: the capacity budget it was sized for, the resulting hot
    set, and the access profile's hit rate.  No object identity is
    involved, so keys computed in different processes agree.
    """
    return (
        model_key(partitioned.model),
        partitioned.capacity_budget_bytes,
        partitioned.hot_rows_per_table,
        partitioned.hot_hit_rate,
    )


class PlanTimingsCache:
    """Memo table for :meth:`ServerEvaluator.plan_timings`.

    Keys combine :func:`partition_key` with the (hashable) workload and
    plan.  Only successful evaluations are cached -- infeasible plans
    re-raise their ``ValueError`` so error messages stay exact.

    Args:
        max_entries: Optional bound; inserting past it evicts the
            oldest entries (insertion order) first.
    """

    def __init__(self, max_entries: int | None = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1 (or None)")
        self._data: dict[tuple, Any] = {}
        self.max_entries = max_entries
        self.stats = CacheStats()

    @staticmethod
    def key(
        partitioned: "PartitionedModel",
        workload: "QueryWorkload",
        plan: "ExecutionPlan",
    ) -> tuple:
        return (partition_key(partitioned), workload, plan)

    def get(
        self,
        partitioned: "PartitionedModel",
        workload: "QueryWorkload",
        plan: "ExecutionPlan",
    ) -> "PlanTimings | None":
        timings = self._data.get(self.key(partitioned, workload, plan))
        if timings is None:
            self.stats.misses += 1
        else:
            self.stats.hits += 1
        return timings

    def put(
        self,
        partitioned: "PartitionedModel",
        workload: "QueryWorkload",
        plan: "ExecutionPlan",
        timings: "PlanTimings",
    ) -> None:
        data = self._data
        data[self.key(partitioned, workload, plan)] = timings
        if self.max_entries is not None:
            while len(data) > self.max_entries:
                del data[next(iter(data))]  # oldest-first (insertion order)

    def __len__(self) -> int:
        return len(self._data)

    def clear(self) -> None:
        self._data.clear()
        self.stats = CacheStats()


# ----------------------------------------------------------------------
# Content-keyed shared registry (fleet + provisioning)
# ----------------------------------------------------------------------

_EVALUATORS: dict[str, "ServerEvaluator"] = {}
_PARTITIONS: dict[tuple, "PartitionedModel"] = {}
_STAGES: dict[tuple, tuple] = {}
_RUNTIME: dict[tuple, tuple] = {}
_STATS = CacheStats()
_SPAN_STATS = CacheStats()


def shared_evaluator(server: "ServerType") -> "ServerEvaluator":
    """One default-configured evaluator per server type.

    Sharing the evaluator shares its :class:`PlanTimingsCache`, so every
    consumer of (server type, model, plan) timings hits the same memo.
    """
    from repro.sim.evaluator import ServerEvaluator

    evaluator = _EVALUATORS.get(server.name)
    if evaluator is None:
        evaluator = ServerEvaluator(server)
        _EVALUATORS[server.name] = evaluator
    return evaluator


def partitioned_for(
    server: "ServerType",
    model: "RecommendationModel",
    plan: "ExecutionPlan",
) -> "PartitionedModel":
    """The partitioned model a plan was searched with (memoized).

    GPU model-based plans partition against the device-memory budget
    divided by the plan's co-location degree; every other placement
    uses the unconstrained host split (whose ``Gs``/``Gd`` graphs are
    identical to the budgeted split's).
    """
    from repro.models.partition import partition_model
    from repro.plans import Placement

    if plan.placement is Placement.GPU_MODEL_BASED:
        if server.gpu is None:
            raise ValueError(f"{server.name} has no accelerator for {plan.describe()}")
        key = (model_key(model), server.name, plan.threads)
        if key not in _PARTITIONS:
            _PARTITIONS[key] = partition_model(
                model, server.gpu.memory_bytes, plan.threads
            )
        return _PARTITIONS[key]
    key = (model_key(model), None, 0)
    if key not in _PARTITIONS:
        _PARTITIONS[key] = partition_model(model)
    return _PARTITIONS[key]


def timings_for(
    server: "ServerType",
    model: "RecommendationModel",
    workload: "QueryWorkload",
    plan: "ExecutionPlan",
) -> "PlanTimings":
    """Closed-form timings for a (server type, model, plan) triple."""
    evaluator = shared_evaluator(server)
    partitioned = partitioned_for(server, model, plan)
    return evaluator.plan_timings(partitioned, workload, plan)


def stages_for(
    server: "ServerType",
    model: "RecommendationModel",
    workload: "QueryWorkload",
    plan: "ExecutionPlan",
) -> tuple:
    """DES stage-spec pipeline for a triple, memoized across replicas.

    Stage specs are immutable (per-replica queue state lives in the
    engines), so one tuple is safely shared by every replica of the
    same (server type, model, plan).
    """
    from repro.sim.server_sim import build_stages

    key = (server.name, model_key(model), workload, plan)
    stages = _STAGES.get(key)
    if stages is None:
        _STATS.misses += 1
        evaluator = shared_evaluator(server)
        partitioned = partitioned_for(server, model, plan)
        stages = tuple(build_stages(evaluator, partitioned, workload, plan))
        _STAGES[key] = stages
    else:
        _STATS.hits += 1
    return stages


def serviced_stages_for(
    server: "ServerType",
    model: "RecommendationModel",
    workload: "QueryWorkload",
    plan: "ExecutionPlan",
) -> tuple:
    """Runtime :class:`~repro.sim.event_core.ServicedStage` pipeline.

    Wraps :func:`stages_for` in the event core's memoizing stage
    records; because the tuple is shared across every replica of the
    triple, the quantized ``items -> service`` and ``size -> chunks``
    tables fill once per fleet rather than once per replica.
    """
    from repro.sim.event_core import ServicedStage

    key = (server.name, model_key(model), workload, plan)
    stages = _RUNTIME.get(key)
    if stages is None:
        stages = tuple(
            ServicedStage(spec) for spec in stages_for(server, model, workload, plan)
        )
        _RUNTIME[key] = stages
    return stages


def span_for(timings: "PlanTimings", query_size: int) -> float:
    """Memoized :meth:`PlanTimings.service_span_s`.

    The latency-bounded bisection evaluates the span of the same four
    percentile sizes for every probed arrival rate; quantizing on
    (timings, size) turns ~35 ceil-loops per candidate into dict hits.
    The table lives on the timings instance (int keys, no re-hash of
    the stage tuple), so it is shared with the evaluator's inlined hot
    path and garbage-collects with the timings object.
    """
    cache = timings.span_cache()
    span = cache.get(query_size)
    if span is None:
        _SPAN_STATS.misses += 1
        span = timings.service_span_s(query_size)
        cache[query_size] = span
    else:
        _SPAN_STATS.hits += 1
    return span


def shared_cache_stats() -> dict[str, CacheStats]:
    """Stats for the shared registries and each evaluator's memo."""
    out = {"stages": _STATS, "spans": _SPAN_STATS}
    for name, evaluator in _EVALUATORS.items():
        out[f"timings:{name}"] = evaluator.timings_cache.stats
    return out


def clear_shared_caches() -> None:
    """Reset the registry (evaluators, partitions, stages, spans, stats)."""
    global _STATS, _SPAN_STATS
    _EVALUATORS.clear()
    _PARTITIONS.clear()
    _STAGES.clear()
    _RUNTIME.clear()
    _STATS = CacheStats()
    _SPAN_STATS = CacheStats()
