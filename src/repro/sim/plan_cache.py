"""Shared memoization of closed-form plan evaluations.

Plan scoring is the repo's hottest analytic path: the gradient search
re-times hundreds of candidate plans per (model, server) pair, the
offline profiler runs that search for every pair, and the fleet
simulator builds one stage pipeline per provisioned server.  All of
those reduce to :meth:`ServerEvaluator.plan_timings`, which is a pure
function of ``(partitioned model, workload, plan)`` -- so the results
can be computed once and shared everywhere.

Two layers live here:

- :class:`PlanTimingsCache` -- a per-evaluator memo table the evaluator
  itself consults, keyed by object identity of the partitioned model
  (plus the hashable workload/plan), so differently-parameterized
  evaluators never alias.
- A module-level registry keyed by *names* -- ``shared_evaluator``,
  ``partitioned_for``, ``timings_for`` and ``stages_for`` -- used by
  the fleet router and the cluster provisioner so that fifty replicas
  of (T2, DLRM-RMC1, plan) cost one evaluation, not fifty.

``clear_shared_caches()`` resets the registry (tests use it to measure
hit rates deterministically).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # imported lazily at runtime to avoid import cycles
    from repro.hardware.server import ServerType
    from repro.models.partition import PartitionedModel
    from repro.models.zoo import RecommendationModel
    from repro.plans import ExecutionPlan
    from repro.sim.evaluator import PlanTimings, ServerEvaluator
    from repro.sim.queries import QueryWorkload

__all__ = [
    "CacheStats",
    "PlanTimingsCache",
    "shared_evaluator",
    "partitioned_for",
    "timings_for",
    "stages_for",
    "shared_cache_stats",
    "clear_shared_caches",
]


@dataclass
class CacheStats:
    """Hit/miss counters for one memo table."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups


class PlanTimingsCache:
    """Memo table for :meth:`ServerEvaluator.plan_timings`.

    Keys combine ``id(partitioned)`` with the (hashable) workload and
    plan; a strong reference to each partitioned model is retained so a
    recycled ``id`` can never alias a different model.  Only successful
    evaluations are cached -- infeasible plans re-raise their
    ``ValueError`` so error messages stay exact.
    """

    def __init__(self) -> None:
        self._data: dict[tuple, Any] = {}
        self._pinned: dict[int, Any] = {}
        self.stats = CacheStats()

    def get(
        self,
        partitioned: "PartitionedModel",
        workload: "QueryWorkload",
        plan: "ExecutionPlan",
    ) -> "PlanTimings | None":
        timings = self._data.get((id(partitioned), workload, plan))
        if timings is None:
            self.stats.misses += 1
        else:
            self.stats.hits += 1
        return timings

    def put(
        self,
        partitioned: "PartitionedModel",
        workload: "QueryWorkload",
        plan: "ExecutionPlan",
        timings: "PlanTimings",
    ) -> None:
        self._pinned[id(partitioned)] = partitioned
        self._data[(id(partitioned), workload, plan)] = timings

    def __len__(self) -> int:
        return len(self._data)

    def clear(self) -> None:
        self._data.clear()
        self._pinned.clear()
        self.stats = CacheStats()


# ----------------------------------------------------------------------
# Name-keyed shared registry (fleet + provisioning)
# ----------------------------------------------------------------------

_EVALUATORS: dict[str, "ServerEvaluator"] = {}
_PARTITIONS: dict[tuple, "PartitionedModel"] = {}
_STAGES: dict[tuple, tuple] = {}
_STATS = CacheStats()


def shared_evaluator(server: "ServerType") -> "ServerEvaluator":
    """One default-configured evaluator per server type.

    Sharing the evaluator shares its :class:`PlanTimingsCache`, so every
    consumer of (server type, model, plan) timings hits the same memo.
    """
    from repro.sim.evaluator import ServerEvaluator

    evaluator = _EVALUATORS.get(server.name)
    if evaluator is None:
        evaluator = ServerEvaluator(server)
        _EVALUATORS[server.name] = evaluator
    return evaluator


def partitioned_for(
    server: "ServerType",
    model: "RecommendationModel",
    plan: "ExecutionPlan",
) -> "PartitionedModel":
    """The partitioned model a plan was searched with (memoized).

    GPU model-based plans partition against the device-memory budget
    divided by the plan's co-location degree; every other placement
    uses the unconstrained host split (whose ``Gs``/``Gd`` graphs are
    identical to the budgeted split's).
    """
    from repro.models.partition import partition_model
    from repro.plans import Placement

    if plan.placement is Placement.GPU_MODEL_BASED:
        if server.gpu is None:
            raise ValueError(f"{server.name} has no accelerator for {plan.describe()}")
        key = (model.name, model.variant, server.name, plan.threads)
        if key not in _PARTITIONS:
            _PARTITIONS[key] = partition_model(
                model, server.gpu.memory_bytes, plan.threads
            )
        return _PARTITIONS[key]
    key = (model.name, model.variant, None, 0)
    if key not in _PARTITIONS:
        _PARTITIONS[key] = partition_model(model)
    return _PARTITIONS[key]


def timings_for(
    server: "ServerType",
    model: "RecommendationModel",
    workload: "QueryWorkload",
    plan: "ExecutionPlan",
) -> "PlanTimings":
    """Closed-form timings for a (server type, model, plan) triple."""
    evaluator = shared_evaluator(server)
    partitioned = partitioned_for(server, model, plan)
    return evaluator.plan_timings(partitioned, workload, plan)


def stages_for(
    server: "ServerType",
    model: "RecommendationModel",
    workload: "QueryWorkload",
    plan: "ExecutionPlan",
) -> tuple:
    """DES stage pipeline for a triple, memoized across fleet replicas.

    Stages are immutable (per-replica queue state lives in the fleet
    engine), so one tuple is safely shared by every replica of the same
    (server type, model, plan).
    """
    from repro.sim.server_sim import build_stages

    key = (server.name, model.name, model.variant, workload, plan)
    stages = _STAGES.get(key)
    if stages is None:
        _STATS.misses += 1
        evaluator = shared_evaluator(server)
        partitioned = partitioned_for(server, model, plan)
        stages = tuple(build_stages(evaluator, partitioned, workload, plan))
        _STAGES[key] = stages
    else:
        _STATS.hits += 1
    return stages


def shared_cache_stats() -> dict[str, CacheStats]:
    """Stats for the stage registry and each shared evaluator's memo."""
    out = {"stages": _STATS}
    for name, evaluator in _EVALUATORS.items():
        out[f"timings:{name}"] = evaluator.timings_cache.stats
    return out


def clear_shared_caches() -> None:
    """Reset the registry (evaluators, partitions, stages, stats)."""
    global _STATS
    _EVALUATORS.clear()
    _PARTITIONS.clear()
    _STAGES.clear()
    _STATS = CacheStats()
