"""Serving metrics: latency percentiles, throughput, power, energy.

The paper's high-level workload-classification metrics are
latency-bounded throughput (QPS) and energy efficiency (QPS-per-Watt)
-- Section III-A argues these beat low-level metrics like CPU
utilization.  Everything the benches print flows through these types.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

__all__ = ["LatencyStats", "ServerPerformance", "percentile"]


def percentile(samples: list[float] | np.ndarray, p: float) -> float:
    """The ``p``-th percentile of a latency sample set (p in [0, 100])."""
    if len(samples) == 0:
        raise ValueError("cannot take a percentile of zero samples")
    if not 0.0 <= p <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {p}")
    return float(np.percentile(np.asarray(samples, dtype=float), p))


@dataclass(frozen=True)
class LatencyStats:
    """Latency distribution summary in milliseconds.

    Attributes:
        p50_ms / p95_ms / p99_ms: Percentiles of query latency.
        mean_ms: Mean query latency.
    """

    p50_ms: float
    p95_ms: float
    p99_ms: float
    mean_ms: float

    @classmethod
    def from_samples_s(cls, samples_s: list[float] | np.ndarray) -> "LatencyStats":
        """Build from latency samples in seconds."""
        arr = np.asarray(samples_s, dtype=float) * 1e3
        return cls(
            p50_ms=percentile(arr, 50),
            p95_ms=percentile(arr, 95),
            p99_ms=percentile(arr, 99),
            mean_ms=float(arr.mean()),
        )

    def meets(self, sla_ms: float) -> bool:
        """SLA check on the tail (the paper's targets bind at p99)."""
        return self.p99_ms <= sla_ms


@dataclass(frozen=True)
class ServerPerformance:
    """Performance of one (model, server, scheduling config) operating point.

    Attributes:
        qps: Sustained queries per second.
        latency: Latency distribution at that load.
        power_w: Average wall power.
        cpu_util: Average busy fraction of all physical cores (Fig. 4c).
        gpu_util: GPU busy fraction (0 without GPU).
        mem_util: Memory-bandwidth demand over peak.
        breakdown: Fractions of query latency by stage, e.g.
            ``{"queuing": .., "loading": .., "inference": ..}`` (Fig. 7).
        feasible: Whether this point satisfies SLA/power/capacity
            constraints.
        infeasible_reason: Human-readable constraint violation.
    """

    qps: float
    latency: LatencyStats
    power_w: float
    cpu_util: float = 0.0
    gpu_util: float = 0.0
    mem_util: float = 0.0
    breakdown: dict[str, float] = field(default_factory=dict)
    feasible: bool = True
    infeasible_reason: str = ""

    @property
    def qps_per_watt(self) -> float:
        """Energy efficiency -- the cluster scheduler's ranking metric."""
        if self.power_w <= 0:
            return 0.0
        return self.qps / self.power_w

    @property
    def energy_per_query_j(self) -> float:
        if self.qps <= 0:
            return math.inf
        return self.power_w / self.qps

    @staticmethod
    def infeasible(reason: str, power_w: float = 0.0) -> "ServerPerformance":
        """A sentinel for configurations that violate a constraint."""
        zero = LatencyStats(
            p50_ms=math.inf, p95_ms=math.inf, p99_ms=math.inf, mean_ms=math.inf
        )
        return ServerPerformance(
            qps=0.0,
            latency=zero,
            power_w=power_w,
            feasible=False,
            infeasible_reason=reason,
        )
