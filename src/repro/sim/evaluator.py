"""Closed-form steady-state evaluator for one (model, server, plan) point.

The gradient-based search (Algorithm 1) evaluates hundreds of candidate
scheduling configurations per workload/server pair; re-simulating each
with the discrete-event engine would be needlessly slow.  This module
computes the same quantities analytically:

- per-batch stage timings from the roofline op models, with co-location
  interference applied;
- steady-state capacity, queueing delay (M[X]/D/m approximation with
  bulk arrivals from query splitting), and p99 tail latency;
- component utilizations and wall power;
- the *latency-bounded throughput*: the largest arrival rate whose p99
  latency meets the SLA and whose power fits the provisioned budget.

The discrete-event simulator (:mod:`repro.sim.server_sim`) validates
these formulas; the integration tests compare the two.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.hardware.server import ServerType
from repro.hardware.power import ComponentUtilization
from repro.models.graph import Graph
from repro.models.partition import PartitionedModel
from repro.perf.interference import InterferenceModel
from repro.perf.nmp import NmpLut
from repro.perf.opmodel import CpuOpModel, GpuOpModel
from repro.perf.pcie import PcieLink
from repro.perf.opmodel import CPU_DISPATCH_OVERHEAD_S
from repro.perf.schedule import list_makespan
from repro.plans import ExecutionPlan, Placement
from repro.sim.metrics import LatencyStats, ServerPerformance
from repro.sim.plan_cache import PlanTimingsCache
from repro.sim.queries import QueryWorkload

__all__ = ["ServerEvaluator", "PlanTimings", "Stage"]

#: Exponential-tail multiplier turning a mean queueing delay into p99.
_P99_WAIT_FACTOR = 4.6
#: p95 multiplier under the same exponential approximation (ln 20).
_P95_WAIT_FACTOR = 3.0

#: Scattered sparse-index tensors achieve only a fraction of PCIe peak
#: (many small pinned-memory copies) -- this is what makes data loading
#: dominate for multi-hot models on GPUs (Fig. 7a).
SPARSE_TRANSFER_EFFICIENCY = 0.30

#: Utilization ceiling for the queueing model; beyond it the system is
#: considered overloaded.
_MAX_RHO = 0.995


@dataclass(frozen=True)
class Stage:
    """One pipelined execution stage of a plan.

    Attributes:
        name: ``"sparse"``, ``"dense"``, ``"loading"``, ``"inference"``.
        batch_s: Service time of one batch at this stage.
        units: Parallel service units (threads) at this stage.
        items_per_batch: Items one batch carries.
    """

    name: str
    batch_s: float
    units: int
    items_per_batch: float

    @property
    def capacity_items_s(self) -> float:
        if self.batch_s <= 0:
            return math.inf
        return self.units * self.items_per_batch / self.batch_s

    def span_s(self, query_size: int) -> float:
        """Time for this stage to process one whole query of given size."""
        batches = math.ceil(query_size / self.items_per_batch)
        rounds = math.ceil(batches / self.units)
        return rounds * self.batch_s


@dataclass(frozen=True)
class PlanTimings:
    """Load-independent timing/cost profile of one execution plan.

    Attributes:
        stages: Pipeline stages in traversal order.
        bulk_mean: Mean sub-batches per query (bulk-arrival factor).
        fill_items: Items that must accumulate before a batch launches
            (query fusion); 0 when batches form by splitting.
        cpu_core_s_per_item: Physical-core-seconds consumed per item.
        gpu_busy_s_per_item: GPU-seconds consumed per item.
        mem_bytes_per_item: Host memory traffic per item.
        gpu_power_util_scale: Scales GPU busy time into power-relevant
            utilization (small batches keep SMs idle but draw less).
    """

    stages: tuple[Stage, ...]
    bulk_mean: float
    fill_items: float
    cpu_core_s_per_item: float
    gpu_busy_s_per_item: float
    mem_bytes_per_item: float
    gpu_power_util_scale: float = 1.0

    def __hash__(self) -> int:
        # PlanTimings keys the shared span memo, which the bisection
        # hits millions of times; rehashing the stage tuple each lookup
        # dwarfed the memoized work, so the hash is computed once.
        try:
            return object.__getattribute__(self, "_hash_cache")
        except AttributeError:
            h = hash(
                (
                    self.stages,
                    self.bulk_mean,
                    self.fill_items,
                    self.cpu_core_s_per_item,
                    self.gpu_busy_s_per_item,
                    self.mem_bytes_per_item,
                    self.gpu_power_util_scale,
                )
            )
            object.__setattr__(self, "_hash_cache", h)
            return h

    @property
    def capacity_items_s(self) -> float:
        # Lazily cached: the latency-bounded bisection reads this once
        # per probed rate (frozen dataclass, so object.__setattr__).
        try:
            return object.__getattribute__(self, "_capacity_cache")
        except AttributeError:
            capacity = min(s.capacity_items_s for s in self.stages)
            object.__setattr__(self, "_capacity_cache", capacity)
            return capacity

    @property
    def bottleneck(self) -> Stage:
        try:
            return object.__getattribute__(self, "_bottleneck_cache")
        except AttributeError:
            stage = min(self.stages, key=lambda s: s.capacity_items_s)
            object.__setattr__(self, "_bottleneck_cache", stage)
            return stage

    def span_cache(self) -> dict:
        """Per-instance ``query_size -> service_span_s`` memo table."""
        try:
            return object.__getattribute__(self, "_span_cache")
        except AttributeError:
            cache: dict[int, float] = {}
            object.__setattr__(self, "_span_cache", cache)
            return cache

    def service_span_s(self, query_size: int) -> float:
        """End-to-end service time of one query (no queueing)."""
        return sum(s.span_s(query_size) for s in self.stages)


class ServerEvaluator:
    """Evaluates execution plans for one server type.

    Args:
        server: The Table II server type.
        interference: Co-location interference model.
        nmp_lut: Pre-built NMP LUT; built automatically for NMP servers
            when omitted (mirrors the offline-profiling methodology).
        sparse_transfer_efficiency: Effective PCIe efficiency for
            scattered sparse-index payloads.
    """

    def __init__(
        self,
        server: ServerType,
        interference: InterferenceModel | None = None,
        nmp_lut: NmpLut | None = None,
        sparse_transfer_efficiency: float = SPARSE_TRANSFER_EFFICIENCY,
    ) -> None:
        if not 0 < sparse_transfer_efficiency <= 1:
            raise ValueError("sparse_transfer_efficiency must be in (0, 1]")
        self.server = server
        self.interference = interference or InterferenceModel()
        if server.has_nmp and nmp_lut is None:
            nmp_lut = NmpLut(server.memory)
        self.cpu_model = CpuOpModel(server.cpu, server.memory, nmp_lut)
        self.gpu_model = GpuOpModel(server.gpu) if server.has_gpu else None
        self.pcie = (
            PcieLink(bandwidth_bytes=server.gpu.pcie_bw_bytes)
            if server.has_gpu
            else None
        )
        self.sparse_transfer_efficiency = sparse_transfer_efficiency
        self.timings_cache = PlanTimingsCache()
        # Per-(graph, items) hoisted op components for the contention
        # fixpoint; id-keyed with pinning (process-local by design).
        self._graph_profiles: dict[tuple, tuple] = {}
        self._pinned_graphs: dict[int, Graph] = {}

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def plan_timings(
        self,
        partitioned: PartitionedModel,
        workload: QueryWorkload,
        plan: ExecutionPlan,
    ) -> PlanTimings:
        """Load-independent timing profile of ``plan`` (memoized).

        Timings are a pure function of the arguments, so each distinct
        (partitioned model, workload, plan) triple is computed once per
        evaluator and served from :attr:`timings_cache` afterwards.
        """
        cached = self.timings_cache.get(partitioned, workload, plan)
        if cached is not None:
            return cached
        timings = self._compute_plan_timings(partitioned, workload, plan)
        self.timings_cache.put(partitioned, workload, plan, timings)
        return timings

    def _compute_plan_timings(
        self,
        partitioned: PartitionedModel,
        workload: QueryWorkload,
        plan: ExecutionPlan,
    ) -> PlanTimings:
        if not plan.fits(self.server):
            raise ValueError(
                f"plan {plan.describe()} does not fit server {self.server.name}"
            )
        if not plan.placement.uses_gpu:
            weights = partitioned.model.graph.total_weight_bytes()
            if weights > self.server.memory.capacity_bytes:
                raise ValueError(
                    f"{partitioned.name} needs {weights / 1e9:.0f} GB, host has "
                    f"{self.server.memory.capacity_bytes / 1e9:.0f} GB"
                )
        if plan.placement is Placement.CPU_MODEL_BASED:
            return self._cpu_model_based(partitioned, workload, plan)
        if plan.placement is Placement.CPU_SD_PIPELINE:
            return self._cpu_sd_pipeline(partitioned, workload, plan)
        if plan.placement is Placement.GPU_SD:
            return self._gpu_sd(partitioned, workload, plan)
        if plan.placement is Placement.GPU_MODEL_BASED:
            return self._gpu_model_based(partitioned, workload, plan)
        raise AssertionError(f"unhandled placement {plan.placement}")

    def evaluate(
        self,
        partitioned: PartitionedModel,
        workload: QueryWorkload,
        plan: ExecutionPlan,
        arrival_qps: float,
        power_budget_w: float | None = None,
    ) -> ServerPerformance:
        """Steady-state performance at a fixed arrival rate."""
        try:
            timings = self.plan_timings(partitioned, workload, plan)
        except ValueError as exc:
            return ServerPerformance.infeasible(str(exc))
        return self.perf_at(timings, workload, arrival_qps, power_budget_w)

    def latency_bounded(
        self,
        partitioned: PartitionedModel,
        workload: QueryWorkload,
        plan: ExecutionPlan,
        sla_ms: float,
        power_budget_w: float | None = None,
    ) -> ServerPerformance:
        """Latency-bounded throughput: max QPS meeting SLA and power budget.

        This is the offline-profiling measurement the efficiency tuple
        records (Section IV-A).
        """
        try:
            timings = self.plan_timings(partitioned, workload, plan)
        except ValueError as exc:
            return ServerPerformance.infeasible(str(exc))

        capacity_qps = timings.capacity_items_s / workload.mean_size
        if not math.isfinite(capacity_qps) or capacity_qps <= 0:
            return ServerPerformance.infeasible("plan has no capacity")

        def feasible(qps: float) -> ServerPerformance | None:
            perf = self.perf_at(timings, workload, qps, power_budget_w)
            if perf.feasible and perf.latency.p99_ms <= sla_ms:
                return perf
            return None

        # Find a feasible anchor scanning down from capacity, then
        # bisect between it and the lowest infeasible rate above it.
        fractions = (0.98, 0.95, 0.9, 0.8, 0.65, 0.5, 0.35, 0.2, 0.1, 0.05, 0.02)
        best: ServerPerformance | None = None
        hi = capacity_qps
        for frac in fractions:
            qps = capacity_qps * frac
            perf = feasible(qps)
            if perf is not None:
                best = perf
                break
            hi = qps
        if best is None:
            return ServerPerformance.infeasible(
                f"SLA {sla_ms} ms unreachable at any load"
            )
        lo = best.qps
        for _ in range(24):
            mid = (lo + hi) / 2.0
            perf = feasible(mid)
            if perf is not None:
                best, lo = perf, mid
            else:
                hi = mid
        return best

    # ------------------------------------------------------------------
    # queueing + power
    # ------------------------------------------------------------------

    def perf_at(
        self,
        timings: PlanTimings,
        workload: QueryWorkload,
        arrival_qps: float,
        power_budget_w: float | None = None,
    ) -> ServerPerformance:
        """Queueing-model performance at a given arrival rate."""
        if arrival_qps <= 0:
            raise ValueError("arrival rate must be positive")
        arrival_items = arrival_qps * workload.mean_size
        rho = arrival_items / timings.capacity_items_s
        if rho >= _MAX_RHO:
            return ServerPerformance.infeasible(
                f"overloaded: rho={rho:.3f} at {arrival_qps:.1f} qps"
            )

        bottleneck = timings.bottleneck
        wait_mean = (
            (timings.bulk_mean / 2.0)
            * rho
            / (bottleneck.units * (1.0 - rho))
            * bottleneck.batch_s
        )
        fill_s = (
            timings.fill_items / arrival_items if timings.fill_items > 0 else 0.0
        )

        # Spans are memoized per (timings, size): the latency-bounded
        # bisection re-evaluates the same four percentile sizes for
        # every probed rate.  Inlined dict probes on the per-instance
        # span table -- this is the innermost loop of the whole
        # offline profiling pass.
        spans = timings.span_cache()
        tail_size = workload.tail_size
        sizes = (tail_size(50.0), tail_size(95.0), tail_size(99.0),
                 int(workload.mean_size))
        vals = []
        for size in sizes:
            span = spans.get(size)
            if span is None:
                span = timings.service_span_s(size)
                spans[size] = span
            vals.append(span)
        latency = LatencyStats(
            p50_ms=(wait_mean + fill_s + vals[0]) * 1e3,
            p95_ms=(_P95_WAIT_FACTOR * wait_mean + fill_s + vals[1]) * 1e3,
            p99_ms=(_P99_WAIT_FACTOR * wait_mean + fill_s + vals[2]) * 1e3,
            mean_ms=(wait_mean + fill_s + vals[3]) * 1e3,
        )

        cpu_util = min(
            1.0, arrival_items * timings.cpu_core_s_per_item / self.server.cpu.cores
        )
        gpu_util = min(1.0, arrival_items * timings.gpu_busy_s_per_item)
        mem_util = min(
            1.0,
            arrival_items
            * timings.mem_bytes_per_item
            / self.server.memory.peak_bw_bytes,
        )
        power = self.server.power_w(
            ComponentUtilization(
                cpu=cpu_util,
                memory=mem_util,
                gpu=gpu_util * timings.gpu_power_util_scale,
            )
        )
        if power_budget_w is not None and power > power_budget_w:
            return ServerPerformance.infeasible(
                f"power {power:.0f} W exceeds budget {power_budget_w:.0f} W",
                power_w=power,
            )

        # Stage breakdown of *mean* latency, the quantity Fig. 7 plots:
        # queuing (wait + fusion fill), data loading, model inference.
        mean_size = int(workload.mean_size)
        total = latency.mean_ms / 1e3
        queuing = wait_mean + fill_s
        loading = sum(
            s.span_s(mean_size) for s in timings.stages if s.name == "loading"
        )
        breakdown = {
            "queuing": queuing / total if total else 0.0,
            "loading": loading / total if total else 0.0,
            "inference": max(0.0, 1.0 - (queuing + loading) / total) if total else 0.0,
        }
        return ServerPerformance(
            qps=arrival_qps,
            latency=latency,
            power_w=power,
            cpu_util=cpu_util,
            gpu_util=gpu_util,
            mem_util=mem_util,
            breakdown=breakdown,
        )

    # ------------------------------------------------------------------
    # placement-specific timing models
    # ------------------------------------------------------------------

    def _graph_profile(self, graph: Graph, items: int) -> tuple:
        """Hoisted per-(graph, items) inputs of the contention fixpoint.

        Per node: name, dispatch overhead, compute seconds, sparse
        flag, and the bandwidth-share-dependent memory term -- either
        the NMP LUT latency (divided by the share later) or
        ``(mem_bytes, base_bw)`` for the roofline path.  These are
        exactly the values :meth:`CpuOpModel.op_timing` derives before
        applying ``bw_fraction``; hoisting them keeps the bisection's
        per-share work to one multiply/divide per node.  Also returns
        the ``(name, deps)`` topology for the makespan fast path.

        Keyed by object identity (graphs are long-lived partition
        members, pinned here); this cache never crosses processes.
        """
        key = (id(graph), items)
        cached = self._graph_profiles.get(key)
        if cached is not None:
            return cached
        cpu_model = self.cpu_model
        nmp_ok = self.server.memory.is_nmp
        gather_bw = self.server.memory.gather_bw_bytes
        peak_bw = self.server.memory.peak_bw_bytes
        nodes = []
        for node in graph:
            op = node.op
            is_sparse = op.kind.is_sparse
            if is_sparse and nmp_ok and cpu_model._nmp_eligible(op):
                # NMP path: compute_s is 0, memory term is the LUT
                # latency scaled by 1/share.
                assert cpu_model.nmp_lut is not None
                nodes.append(
                    (node.name, CPU_DISPATCH_OVERHEAD_S, 0.0, True,
                     cpu_model.nmp_lut.latency_s(op, items), None)
                )
            else:
                timing = cpu_model.op_timing(op, items, 1.0)
                bw = gather_bw if is_sparse else peak_bw
                nodes.append(
                    (node.name, timing.overhead_s, timing.compute_s,
                     is_sparse, op.mem_bytes(items), bw)
                )
        topo = tuple((n.name, n.deps) for n in graph.topological_order())
        profile = (tuple(nodes), topo)
        self._graph_profiles[key] = profile
        self._pinned_graphs[id(graph)] = graph
        return profile

    def _cpu_graph_timing(
        self,
        graph: Graph,
        items: int,
        workers: int,
        co_located_threads: int,
        mem_scale: float = 1.0,
    ) -> tuple[float, float, float]:
        """(makespan_s, busy_core_s, mem_bytes) for one batch on the host.

        Applies a two-pass interference fixpoint: timings are computed
        contention-free, aggregate bandwidth demand is derived, and the
        memory components are rescaled by the resulting share.
        """
        node_profile, topo = self._graph_profile(graph, items)

        def timings(bw_fraction: float) -> dict[str, float]:
            # Bit-identical to per-node ``op_timing(op, items, f)``:
            # the roofline memory term is mem_bytes / (bw * f) and the
            # NMP term is lut_latency / f, with the same operation
            # order as the un-hoisted code.
            out = {}
            for name, overhead, compute_s, is_sparse, mem_term, bw in node_profile:
                if bw is None:
                    memory_s = mem_term / bw_fraction
                else:
                    memory_s = mem_term / (bw * bw_fraction)
                scaled_mem = memory_s * mem_scale
                scaled_compute = compute_s * mem_scale if is_sparse else compute_s
                out[name] = overhead + max(scaled_compute, scaled_mem)
            return out

        mem_bytes = graph.total_mem_bytes(items) * mem_scale
        nmp_bytes = 0.0
        if self.server.memory.is_nmp:
            nmp_bytes = (
                sum(
                    n.op.mem_bytes(items)
                    for n in graph
                    if self.cpu_model._nmp_eligible(n.op)
                )
                * mem_scale
            )
        host_bytes = mem_bytes - nmp_bytes
        inflation = self.interference.llc_inflation(co_located_threads)

        def span_at(f: float) -> float:
            return list_makespan(topo, timings(f), workers)[0]

        def saturating_share(pool_bytes: float, peak: float, f_max: float) -> float:
            """The share at which this pool's achieved bandwidth hits peak.

            Achieved aggregate bandwidth is ``threads * pool_bytes /
            span(f)`` and increases with ``f``; if even ``f_max`` keeps
            it under the peak there is no contention, otherwise bisect
            for the share where achieved == peak.

            Co-location degrades the *achievable* peak itself (more
            threads -> more row-buffer conflicts and LLC thrashing) --
            the effect that makes 10x2 beat 20x1 on memory-dominated
            models (Fig. 4).
            """
            if pool_bytes <= 0:
                return f_max
            peak_eff = peak / inflation
            if co_located_threads * pool_bytes / span_at(f_max) <= peak_eff:
                return f_max
            lo, hi = 1e-3, f_max
            for _ in range(24):
                mid = (lo + hi) / 2.0
                if co_located_threads * pool_bytes / span_at(mid) <= peak_eff:
                    lo = mid
                else:
                    hi = mid
            return lo

        # Rank-side NMP traffic contends against the rank-parallel
        # gather-reduce bandwidth; everything else against the host
        # gather bandwidth.  One share throttles all memory ops, so the
        # binding pool wins.
        f_max = 1.0 / inflation
        effective = min(
            saturating_share(
                host_bytes, self.server.memory.gather_bw_bytes, f_max
            ),
            saturating_share(
                nmp_bytes, self.server.memory.nmp_gather_reduce_bw_bytes, f_max
            ),
        )
        makespan, busy = list_makespan(topo, timings(effective), workers)
        return makespan, busy, mem_bytes

    def _cpu_model_based(
        self,
        partitioned: PartitionedModel,
        workload: QueryWorkload,
        plan: ExecutionPlan,
    ) -> PlanTimings:
        """Whole-graph execution on co-located host threads (Fig. 10, base)."""
        d = plan.batch_size
        m = plan.threads
        makespan, busy, mem_bytes = self._cpu_graph_timing(
            partitioned.model.graph, d, plan.cores_per_thread, m
        )
        stage = Stage(name="inference", batch_s=makespan, units=m, items_per_batch=d)
        bulk = max(1.0, workload.mean_size / d)
        return PlanTimings(
            stages=(stage,),
            bulk_mean=bulk,
            fill_items=0.0,
            cpu_core_s_per_item=busy / d,
            gpu_busy_s_per_item=0.0,
            mem_bytes_per_item=mem_bytes / d,
        )

    def _cpu_sd_pipeline(
        self,
        partitioned: PartitionedModel,
        workload: QueryWorkload,
        plan: ExecutionPlan,
    ) -> PlanTimings:
        """SparseNet and DenseNet threads pipelined on the host (Fig. 10b)."""
        d = plan.batch_size
        total_threads = plan.sparse_threads + plan.dense_threads
        sparse_span, sparse_busy, sparse_bytes = self._cpu_graph_timing(
            partitioned.sparse, d, plan.sparse_cores, total_threads
        )
        dense_span, dense_busy, dense_bytes = self._cpu_graph_timing(
            partitioned.dense, d, 1, total_threads
        )
        # Pooled sparse output crosses a host-side queue.
        queue_bytes = partitioned.sparse.total_output_bytes(d)
        queue_s = queue_bytes / self.server.memory.peak_bw_bytes
        stages = (
            Stage("sparse", sparse_span, plan.sparse_threads, d),
            Stage("dense", dense_span + queue_s, plan.dense_threads, d),
        )
        bulk = max(1.0, workload.mean_size / d)
        return PlanTimings(
            stages=stages,
            bulk_mean=bulk,
            fill_items=0.0,
            cpu_core_s_per_item=(sparse_busy + dense_busy) / d,
            gpu_busy_s_per_item=0.0,
            mem_bytes_per_item=(sparse_bytes + dense_bytes + queue_bytes) / d,
        )

    def _fused_batch_items(
        self, workload: QueryWorkload, plan: ExecutionPlan
    ) -> float:
        """Items per accelerator batch: fusion limit or one mean query."""
        if plan.fusion_limit > 0:
            return float(plan.fusion_limit)
        return float(workload.mean_size)

    def _gpu_graph_time(self, graph: Graph, items: int, co_located: int) -> float:
        """Sequential kernel execution of a (sub-)graph on the GPU."""
        assert self.gpu_model is not None
        return sum(
            self.gpu_model.op_timing(node.op, items, co_located).latency_s
            for node in graph
        )

    def _gpu_sd(
        self,
        partitioned: PartitionedModel,
        workload: QueryWorkload,
        plan: ExecutionPlan,
    ) -> PlanTimings:
        """SparseNet on host, DenseNet on the accelerator (Fig. 10c)."""
        assert self.pcie is not None and self.gpu_model is not None
        d = plan.batch_size
        g = plan.threads
        sparse_span, sparse_busy, sparse_bytes = self._cpu_graph_timing(
            partitioned.sparse, d, plan.sparse_cores, plan.sparse_threads
        )
        b = int(self._fused_batch_items(workload, plan))
        # Pooled sparse vectors + dense features transit PCIe.
        payload = partitioned.sparse.total_output_bytes(b)
        payload += b * partitioned.model.config.dense_in * 4.0
        load_s = self.pcie.transfer_s(payload, sharers=g)
        infer_s = self._gpu_graph_time(partitioned.dense, b, g)
        stages = (
            Stage("sparse", sparse_span, plan.sparse_threads, d),
            Stage("loading", load_s, g, b),
            Stage("inference", infer_s, g, b),
        )
        # infer_s already includes the 1/g device share, so whole-device
        # busy seconds per item divide back by g.
        gpu_busy = infer_s / (b * g)
        return PlanTimings(
            stages=stages,
            bulk_mean=max(1.0, workload.mean_size / d),
            fill_items=float(plan.fusion_limit),
            cpu_core_s_per_item=sparse_busy / d,
            gpu_busy_s_per_item=gpu_busy,
            mem_bytes_per_item=sparse_bytes / d,
            gpu_power_util_scale=self.gpu_model.gpu.utilization(b),
        )

    def _gpu_model_based(
        self,
        partitioned: PartitionedModel,
        workload: QueryWorkload,
        plan: ExecutionPlan,
    ) -> PlanTimings:
        """Hot-SparseNet + DenseNet on the accelerator (Fig. 10d).

        The host serves the cold fraction of lookups and forwards the
        partial sums; sparse indices for hot lookups cross PCIe as
        scattered tensors at reduced efficiency.
        """
        assert self.pcie is not None and self.gpu_model is not None
        if partitioned.hot_sparse is None:
            raise ValueError(
                "GPU model-based placement requires a hot-sparse partition "
                "(partition the model with the device memory budget)"
            )
        g = plan.threads
        b = int(self._fused_batch_items(workload, plan))
        hit = partitioned.hot_hit_rate
        miss = partitioned.cold_miss_rate

        weights = (
            partitioned.hot_sparse.total_weight_bytes()
            + partitioned.dense.total_weight_bytes()
        )
        gpu_mem = self.gpu_model.gpu.memory_bytes
        if weights * g > gpu_mem * 1.05:
            raise ValueError(
                f"{g} co-located threads need {weights * g / 1e9:.1f} GB "
                f"> {gpu_mem / 1e9:.0f} GB device memory"
            )

        # Data loading: hot indices (scattered), cold partial sums,
        # dense features.
        index_bytes = partitioned.sparse.total_input_bytes(b) * hit
        payload = index_bytes / self.sparse_transfer_efficiency
        if miss > 0:
            payload += partitioned.sparse.total_output_bytes(b)
        payload += b * partitioned.model.config.dense_in * 4.0
        load_s = self.pcie.transfer_s(payload, sharers=g)

        infer_s = self._gpu_graph_time(partitioned.hot_sparse, b, g)
        infer_s += self._gpu_graph_time(partitioned.dense, b, g)

        stages = [
            Stage("loading", load_s, g, b),
            Stage("inference", infer_s, g, b),
        ]
        cpu_core_s_per_item = 0.0
        mem_bytes_per_item = 0.0
        if miss > 0:
            if plan.sparse_threads < 1:
                raise ValueError(
                    f"{partitioned.name}: cold miss rate {miss:.2f} needs host "
                    "sparse threads (plan.sparse_threads = 0)"
                )
            d = plan.batch_size
            cold_span, cold_busy, cold_bytes = self._cpu_graph_timing(
                partitioned.sparse,
                d,
                plan.sparse_cores,
                plan.sparse_threads,
                mem_scale=miss,
            )
            stages.insert(0, Stage("sparse", cold_span, plan.sparse_threads, d))
            cpu_core_s_per_item = cold_busy / d
            mem_bytes_per_item = cold_bytes / d

        gpu_busy = infer_s / (b * g)
        return PlanTimings(
            stages=tuple(stages),
            bulk_mean=1.0,
            fill_items=float(plan.fusion_limit),
            cpu_core_s_per_item=cpu_core_s_per_item,
            gpu_busy_s_per_item=gpu_busy,
            mem_bytes_per_item=mem_bytes_per_item,
            gpu_power_util_scale=self.gpu_model.gpu.utilization(b),
        )
