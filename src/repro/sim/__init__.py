"""Serving simulation: queries, load generation, evaluator, DES."""

from repro.sim import plan_cache
from repro.sim.evaluator import PlanTimings, ServerEvaluator, Stage
from repro.sim.loadgen import PoissonLoadGenerator, generate_trace
from repro.sim.plan_cache import PlanTimingsCache
from repro.sim.metrics import LatencyStats, ServerPerformance, percentile
from repro.sim.queries import (
    PoolingFactorDistribution,
    Query,
    QuerySizeDistribution,
    QueryWorkload,
)
from repro.sim.server_sim import (
    DiscreteEventServerSim,
    SimResult,
    SimStage,
    StageMode,
    build_stages,
    simulate,
)

__all__ = [
    "plan_cache",
    "PlanTimings",
    "PlanTimingsCache",
    "ServerEvaluator",
    "Stage",
    "PoissonLoadGenerator",
    "generate_trace",
    "LatencyStats",
    "ServerPerformance",
    "percentile",
    "PoolingFactorDistribution",
    "Query",
    "QuerySizeDistribution",
    "QueryWorkload",
    "DiscreteEventServerSim",
    "SimResult",
    "SimStage",
    "StageMode",
    "build_stages",
    "simulate",
]
