"""Discrete-event simulation of a single serving node.

The analytical evaluator answers "what QPS can this plan sustain?" in
closed form; this module answers the same question by actually playing
a query trace through the plan's stage pipeline:

- arrivals follow the trace (Poisson with heavy-tail sizes);
- *split* stages chop queries into sub-batches of ``d`` items served by
  ``units`` parallel threads (the CPU query dispatcher of Fig. 3);
- *fuse* stages accumulate whole queries up to the fusion limit and
  serve them as one accelerator batch (query fusion, Section II-B);
- a query completes when its last work unit leaves the last stage.

The event mechanics (stage records, batch formation, the heap, the
per-replica pipeline state) live in :mod:`repro.sim.event_core` and are
shared with the fleet engine; the equivalence tests pin this engine's
per-query completion times bit-for-bit against a reference
implementation of the pre-optimization event loop.

Integration tests check the DES against the closed-form evaluator; the
examples use it to show live tail-latency behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappop
from typing import Callable

import numpy as np

from repro.hardware.power import ComponentUtilization
from repro.models.partition import PartitionedModel
from repro.plans import ExecutionPlan
from repro.sim.evaluator import ServerEvaluator
from repro.sim.event_core import (  # _split re-exported for back-compat
    EventHeap,
    Pipeline,
    QueryState,
    SimStage,
    StageMode,
    _split,
    enqueue_units,
    form_batch,
)
from repro.sim.loadgen import generate_trace
from repro.sim.metrics import LatencyStats, ServerPerformance
from repro.sim.queries import Query, QueryWorkload

__all__ = [
    "StageMode",
    "SimStage",
    "SimResult",
    "DiscreteEventServerSim",
    "simulate",
    "enqueue_units",
    "form_batch",
]


@dataclass(frozen=True)
class SimResult:
    """Raw outcome of one DES run.

    Attributes:
        latencies_s: Per-completed-query end-to-end latency.
        completed: Number of completed queries in the measured window.
        duration_s: Measured window length.
        stage_busy_s: Busy thread-seconds per stage.
        items_served: Total items completed.
        events: Events processed (arrivals + batch completions).
    """

    latencies_s: np.ndarray
    completed: int
    duration_s: float
    stage_busy_s: dict[str, float]
    items_served: int
    events: int = 0

    @property
    def qps(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return self.completed / self.duration_s

    @property
    def events_per_s(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return self.events / self.duration_s


class DiscreteEventServerSim:
    """Event-driven execution of a stage pipeline over a query trace."""

    def __init__(self, stages: list[SimStage]) -> None:
        if not stages:
            raise ValueError("need at least one stage")
        self.stages = stages

    def run(self, queries, warmup_s: float = 0.0) -> SimResult:
        """Play a trace through the pipeline.

        Args:
            queries: Arrival-sorted trace -- a list of
                :class:`Query` records or any iterable of them (e.g.
                an :meth:`repro.traces.ArrivalProcess.stream`).
            warmup_s: Initial window excluded from the statistics.

        Returns:
            Latency samples and per-stage busy accounting for the
            post-warmup window.
        """
        pipeline = Pipeline(self.stages, track_busy=True)
        heap = EventHeap()
        states = [QueryState(q) for q in queries]
        if not states:
            raise ValueError("empty trace")
        # Stable sort == the old heap order (time, then push counter);
        # arrivals beat same-time finishes just as their all-up-front
        # counters used to.
        states.sort(key=lambda s: s.arrival_s)

        done: list[QueryState] = []
        completed: list[QueryState] = []
        events = heap.items
        dead = heap.dead
        enqueue = pipeline.enqueue
        on_finish = pipeline.on_finish
        i, n = 0, len(states)
        while True:
            if events:
                if i < n:
                    state = states[i]
                    if state.arrival_s <= events[0][0]:
                        i += 1
                        enqueue(0, state, state.size, state.arrival_s, heap)
                        continue
                entry = heappop(events)
                if dead and entry[1] in dead:
                    dead.discard(entry[1])
                    continue
                now = entry[0]
                on_finish(entry[3], entry[4], now, heap, completed)
                if completed:
                    for state in completed:
                        state.finish_s = now
                        done.append(state)
                    completed.clear()
            elif i < n:
                state = states[i]
                i += 1
                enqueue(0, state, state.size, state.arrival_s, heap)
            else:
                break

        horizon = states[-1].arrival_s
        measured = [
            st
            for st in done
            if st.arrival_s >= warmup_s and st.finish_s <= horizon + 1e9
        ]
        if not measured:
            raise RuntimeError("no queries completed in the measured window")
        latencies = np.array([st.finish_s - st.arrival_s for st in measured])
        duration = horizon - warmup_s
        items = sum(st.size for st in measured)
        busy = pipeline.busy or []
        return SimResult(
            latencies_s=latencies,
            completed=len(measured),
            duration_s=max(duration, 1e-9),
            stage_busy_s={
                stage.name: busy[idx] for idx, stage in enumerate(pipeline.stages)
            },
            items_served=items,
            events=n + heap.seq,
        )


def _interpolator(t_one: float, t_nominal: float, nominal: float) -> Callable[[int], float]:
    """Linear batch-latency model through (1, t_one) and (nominal, t_nominal)."""
    if nominal <= 1:
        return lambda items: t_nominal
    slope = (t_nominal - t_one) / (nominal - 1)
    return lambda items: max(t_one, t_one + slope * (items - 1))


def build_stages(
    evaluator: ServerEvaluator,
    partitioned: PartitionedModel,
    workload: QueryWorkload,
    plan: ExecutionPlan,
) -> list[SimStage]:
    """Derive DES stages from the evaluator's timing profile.

    Stage service times interpolate between batch-of-1 and the plan's
    nominal batch, so partial sub-batches and under-filled fused
    batches are served faster than full ones.
    """
    nominal = evaluator.plan_timings(partitioned, workload, plan)
    small_plan = plan.with_(
        batch_size=1, fusion_limit=1 if plan.fusion_limit > 0 else 0
    )
    tiny = evaluator.plan_timings(partitioned, workload, small_plan)
    tiny_by_name = {s.name: s for s in tiny.stages}

    multi_hot = partitioned.model.config.is_multi_hot
    stages = []
    for stage in nominal.stages:
        t_one = tiny_by_name[stage.name].batch_s if stage.name in tiny_by_name else stage.batch_s
        fn = _interpolator(min(t_one, stage.batch_s), stage.batch_s, stage.items_per_batch)
        if stage.name in ("loading", "inference") and plan.placement.uses_gpu:
            mode = StageMode.FUSE
            fuse = plan.fusion_limit
            chunk = max(1, int(stage.items_per_batch))
        else:
            mode = StageMode.SPLIT
            fuse = 0
            chunk = plan.batch_size
        # Multi-hot models: embedding gathers and index transfers scale
        # with the query's pooling factor (Fig. 2c variance).
        if multi_hot and stage.name == "sparse":
            sensitivity = 0.9
        elif multi_hot and stage.name == "loading":
            sensitivity = 0.6
        elif multi_hot and stage.name == "inference" and not plan.placement.uses_gpu:
            # Whole-model host execution folds the gathers into the
            # single inference stage; roughly half its time is sparse.
            sensitivity = 0.5
        else:
            sensitivity = 0.0
        stages.append(
            SimStage(
                name=stage.name,
                units=stage.units,
                mode=mode,
                chunk_items=chunk,
                fuse_items=fuse,
                latency_fn=fn,
                pooling_sensitivity=sensitivity,
            )
        )
    return stages


def simulate(
    evaluator: ServerEvaluator,
    partitioned: PartitionedModel,
    workload: QueryWorkload,
    plan: ExecutionPlan,
    arrival_qps: float,
    duration_s: float = 20.0,
    seed: int = 0,
) -> ServerPerformance:
    """Run the DES and summarize it as a :class:`ServerPerformance`.

    Power is derived from the same per-item resource coefficients the
    closed-form evaluator uses, applied to the *measured* throughput.
    """
    timings = evaluator.plan_timings(partitioned, workload, plan)
    stages = build_stages(evaluator, partitioned, workload, plan)
    trace = generate_trace(workload, arrival_qps, duration_s, seed=seed)
    sim = DiscreteEventServerSim(stages)
    result = sim.run(trace, warmup_s=duration_s * 0.1)

    items_per_s = result.items_served / result.duration_s
    server = evaluator.server
    cpu_util = min(1.0, items_per_s * timings.cpu_core_s_per_item / server.cpu.cores)
    gpu_util = min(1.0, items_per_s * timings.gpu_busy_s_per_item)
    mem_util = min(
        1.0, items_per_s * timings.mem_bytes_per_item / server.memory.peak_bw_bytes
    )
    power = server.power_w(
        ComponentUtilization(
            cpu=cpu_util,
            memory=mem_util,
            gpu=gpu_util * timings.gpu_power_util_scale,
        )
    )
    return ServerPerformance(
        qps=result.qps,
        latency=LatencyStats.from_samples_s(result.latencies_s),
        power_w=power,
        cpu_util=cpu_util,
        gpu_util=gpu_util,
        mem_util=mem_util,
    )
