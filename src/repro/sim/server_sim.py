"""Discrete-event simulation of a single serving node.

The analytical evaluator answers "what QPS can this plan sustain?" in
closed form; this module answers the same question by actually playing
a query trace through the plan's stage pipeline:

- arrivals follow the trace (Poisson with heavy-tail sizes);
- *split* stages chop queries into sub-batches of ``d`` items served by
  ``units`` parallel threads (the CPU query dispatcher of Fig. 3);
- *fuse* stages accumulate whole queries up to the fusion limit and
  serve them as one accelerator batch (query fusion, Section II-B);
- a query completes when its last work unit leaves the last stage.

Integration tests check the DES against the closed-form evaluator; the
examples use it to show live tail-latency behaviour.
"""

from __future__ import annotations

import enum
import heapq
import itertools
import math
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.hardware.power import ComponentUtilization
from repro.models.partition import PartitionedModel
from repro.plans import ExecutionPlan
from repro.sim.evaluator import PlanTimings, ServerEvaluator
from repro.sim.loadgen import generate_trace
from repro.sim.metrics import LatencyStats, ServerPerformance
from repro.sim.queries import Query, QueryWorkload

__all__ = [
    "StageMode",
    "SimStage",
    "SimResult",
    "DiscreteEventServerSim",
    "simulate",
    "enqueue_units",
    "form_batch",
]


class StageMode(enum.Enum):
    """How a stage forms batches from incoming queries."""

    SPLIT = "split"
    """Chop each query into sub-batches of at most ``chunk_items``."""

    FUSE = "fuse"
    """Merge whole queued queries into one batch up to ``fuse_items``."""


@dataclass(frozen=True)
class SimStage:
    """One pipeline stage of the simulated server.

    Attributes:
        name: Stage label (matches the evaluator's stage names).
        units: Parallel service threads.
        mode: Batch-formation mode.
        chunk_items: Sub-batch size for SPLIT stages.
        fuse_items: Fusion limit for FUSE stages (0 = one query/batch).
        latency_fn: Batch service time as a function of items.
        pooling_sensitivity: Fraction of this stage's service time that
            scales with the batch's pooling factor.  Sparse (embedding)
            stages are pooling-bound, so the per-query pooling variance
            of Fig. 2(c) lengthens their service; dense stages are
            insensitive.
    """

    name: str
    units: int
    mode: StageMode
    chunk_items: int
    fuse_items: int
    latency_fn: Callable[[int], float]
    pooling_sensitivity: float = 0.0

    def service_s(self, items: int, pooling_scale: float) -> float:
        """Batch service time including the pooling-variance component."""
        base = self.latency_fn(items)
        if self.pooling_sensitivity <= 0.0:
            return base
        scale = (
            1.0 - self.pooling_sensitivity
            + self.pooling_sensitivity * pooling_scale
        )
        return base * scale


@dataclass
class _QueryState:
    query: Query
    stage_idx: int = 0
    pending_units: int = 0
    finish_s: float = 0.0


def enqueue_units(stage: SimStage, queue: deque, state, size: int) -> None:
    """Append one query's work units for a stage to its FIFO.

    SPLIT stages chop the query into ``chunk_items`` sub-batches; FUSE
    stages enqueue the whole query as one unit.  Sets the state's
    ``pending_units`` counter.  Shared by the single-node and fleet
    simulators so batch-formation semantics cannot drift apart.
    """
    if stage.mode is StageMode.SPLIT:
        chunks = _split(size, stage.chunk_items)
        state.pending_units = len(chunks)
        queue.extend((state, chunk) for chunk in chunks)
    else:
        state.pending_units = 1
        queue.append((state, size))


def form_batch(stage: SimStage, queue: deque) -> tuple[list, int, float]:
    """Pop one service batch from a stage FIFO.

    FUSE stages accumulate whole queued queries up to the fusion limit;
    SPLIT stages serve one sub-batch per dispatch.  Returns the batch
    units, total items, and the item-weighted mean pooling factor.
    """
    batch = [queue.popleft()]
    if stage.mode is StageMode.FUSE and stage.fuse_items > 0:
        total = batch[0][1]
        limit = stage.fuse_items
        while queue and total + queue[0][1] <= limit:
            unit = queue.popleft()
            total += unit[1]
            batch.append(unit)
    items = sum(it for _, it in batch)
    pooling = sum(st.query.pooling_scale * it for st, it in batch) / max(items, 1)
    return batch, items, pooling


@dataclass(frozen=True)
class SimResult:
    """Raw outcome of one DES run.

    Attributes:
        latencies_s: Per-completed-query end-to-end latency.
        completed: Number of completed queries in the measured window.
        duration_s: Measured window length.
        stage_busy_s: Busy thread-seconds per stage.
        items_served: Total items completed.
    """

    latencies_s: np.ndarray
    completed: int
    duration_s: float
    stage_busy_s: dict[str, float]
    items_served: int

    @property
    def qps(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return self.completed / self.duration_s


class DiscreteEventServerSim:
    """Event-driven execution of a stage pipeline over a query trace."""

    def __init__(self, stages: list[SimStage]) -> None:
        if not stages:
            raise ValueError("need at least one stage")
        self.stages = stages

    def run(self, queries: list[Query], warmup_s: float = 0.0) -> SimResult:
        """Play a trace through the pipeline.

        Args:
            queries: Arrival-sorted trace.
            warmup_s: Initial window excluded from the statistics.

        Returns:
            Latency samples and per-stage busy accounting for the
            post-warmup window.
        """
        if not queries:
            raise ValueError("empty trace")
        counter = itertools.count()
        events: list[tuple[float, int, tuple]] = []

        def push(time_s: float, payload: tuple) -> None:
            heapq.heappush(events, (time_s, next(counter), payload))

        # Per-stage: FIFO of (state, items) units and free-thread count.
        queues: list[deque] = [deque() for _ in self.stages]
        free: list[int] = [s.units for s in self.stages]
        busy_s: dict[str, float] = {s.name: 0.0 for s in self.stages}

        states = [_QueryState(query=q) for q in queries]
        for st in states:
            push(st.query.arrival_s, ("arrive", st))

        done: list[_QueryState] = []
        now = 0.0

        def enqueue(idx: int, state: _QueryState, time_s: float) -> None:
            state.stage_idx = idx
            enqueue_units(self.stages[idx], queues[idx], state, state.query.size)
            dispatch(idx, time_s)

        def dispatch(idx: int, time_s: float) -> None:
            stage = self.stages[idx]
            while free[idx] > 0 and queues[idx]:
                batch, items, pooling = form_batch(stage, queues[idx])
                service = stage.service_s(items, pooling)
                free[idx] -= 1
                busy_s[stage.name] += service
                push(time_s + service, ("finish", idx, batch))

        while events:
            now, _, payload = heapq.heappop(events)
            if payload[0] == "arrive":
                _, state = payload
                enqueue(0, state, now)
            else:
                _, idx, batch = payload
                free[idx] += 1
                for state, _items in batch:
                    state.pending_units -= 1
                    if state.pending_units == 0:
                        if idx + 1 < len(self.stages):
                            enqueue(idx + 1, state, now)
                        else:
                            state.finish_s = now
                            done.append(state)
                dispatch(idx, now)

        horizon = max(q.arrival_s for q in queries)
        measured = [
            st
            for st in done
            if st.query.arrival_s >= warmup_s and st.finish_s <= horizon + 1e9
        ]
        if not measured:
            raise RuntimeError("no queries completed in the measured window")
        latencies = np.array([st.finish_s - st.query.arrival_s for st in measured])
        duration = horizon - warmup_s
        items = sum(st.query.size for st in measured)
        return SimResult(
            latencies_s=latencies,
            completed=len(measured),
            duration_s=max(duration, 1e-9),
            stage_busy_s=busy_s,
            items_served=items,
        )


def _split(size: int, chunk: int) -> list[int]:
    """Sub-batch sizes for one query (last chunk may be partial)."""
    if chunk < 1:
        raise ValueError("chunk must be >= 1")
    full, rem = divmod(size, chunk)
    return [chunk] * full + ([rem] if rem else [])


def _interpolator(t_one: float, t_nominal: float, nominal: float) -> Callable[[int], float]:
    """Linear batch-latency model through (1, t_one) and (nominal, t_nominal)."""
    if nominal <= 1:
        return lambda items: t_nominal
    slope = (t_nominal - t_one) / (nominal - 1)
    return lambda items: max(t_one, t_one + slope * (items - 1))


def build_stages(
    evaluator: ServerEvaluator,
    partitioned: PartitionedModel,
    workload: QueryWorkload,
    plan: ExecutionPlan,
) -> list[SimStage]:
    """Derive DES stages from the evaluator's timing profile.

    Stage service times interpolate between batch-of-1 and the plan's
    nominal batch, so partial sub-batches and under-filled fused
    batches are served faster than full ones.
    """
    nominal = evaluator.plan_timings(partitioned, workload, plan)
    small_plan = plan.with_(
        batch_size=1, fusion_limit=1 if plan.fusion_limit > 0 else 0
    )
    tiny = evaluator.plan_timings(partitioned, workload, small_plan)
    tiny_by_name = {s.name: s for s in tiny.stages}

    multi_hot = partitioned.model.config.is_multi_hot
    stages = []
    for stage in nominal.stages:
        t_one = tiny_by_name[stage.name].batch_s if stage.name in tiny_by_name else stage.batch_s
        fn = _interpolator(min(t_one, stage.batch_s), stage.batch_s, stage.items_per_batch)
        if stage.name in ("loading", "inference") and plan.placement.uses_gpu:
            mode = StageMode.FUSE
            fuse = plan.fusion_limit
            chunk = max(1, int(stage.items_per_batch))
        else:
            mode = StageMode.SPLIT
            fuse = 0
            chunk = plan.batch_size
        # Multi-hot models: embedding gathers and index transfers scale
        # with the query's pooling factor (Fig. 2c variance).
        if multi_hot and stage.name == "sparse":
            sensitivity = 0.9
        elif multi_hot and stage.name == "loading":
            sensitivity = 0.6
        elif multi_hot and stage.name == "inference" and not plan.placement.uses_gpu:
            # Whole-model host execution folds the gathers into the
            # single inference stage; roughly half its time is sparse.
            sensitivity = 0.5
        else:
            sensitivity = 0.0
        stages.append(
            SimStage(
                name=stage.name,
                units=stage.units,
                mode=mode,
                chunk_items=chunk,
                fuse_items=fuse,
                latency_fn=fn,
                pooling_sensitivity=sensitivity,
            )
        )
    return stages


def simulate(
    evaluator: ServerEvaluator,
    partitioned: PartitionedModel,
    workload: QueryWorkload,
    plan: ExecutionPlan,
    arrival_qps: float,
    duration_s: float = 20.0,
    seed: int = 0,
) -> ServerPerformance:
    """Run the DES and summarize it as a :class:`ServerPerformance`.

    Power is derived from the same per-item resource coefficients the
    closed-form evaluator uses, applied to the *measured* throughput.
    """
    timings = evaluator.plan_timings(partitioned, workload, plan)
    stages = build_stages(evaluator, partitioned, workload, plan)
    trace = generate_trace(workload, arrival_qps, duration_s, seed=seed)
    sim = DiscreteEventServerSim(stages)
    result = sim.run(trace, warmup_s=duration_s * 0.1)

    items_per_s = result.items_served / result.duration_s
    server = evaluator.server
    cpu_util = min(1.0, items_per_s * timings.cpu_core_s_per_item / server.cpu.cores)
    gpu_util = min(1.0, items_per_s * timings.gpu_busy_s_per_item)
    mem_util = min(
        1.0, items_per_s * timings.mem_bytes_per_item / server.memory.peak_bw_bytes
    )
    power = server.power_w(
        ComponentUtilization(
            cpu=cpu_util,
            memory=mem_util,
            gpu=gpu_util * timings.gpu_power_util_scale,
        )
    )
    return ServerPerformance(
        qps=result.qps,
        latency=LatencyStats.from_samples_s(result.latencies_s),
        power_w=power,
        cpu_util=cpu_util,
        gpu_util=gpu_util,
        mem_util=mem_util,
    )
