"""Tuned discrete-event core shared by the single-node and fleet engines.

Both simulators play query traces through stage pipelines; this module
owns the semantics (batch formation, unit accounting, service timing)
and the performance machinery so the two engines cannot drift apart:

- :class:`SimStage` / :class:`StageMode` -- the immutable stage *spec*
  (public; consumed by tests and :func:`~repro.sim.server_sim.build_stages`).
- :func:`enqueue_units` / :func:`form_batch` -- the reference batch
  semantics on a plain FIFO, shared since PR 1.
- :class:`ServicedStage` -- a stage spec plus quantized memo tables:
  per-``items`` base service times and per-``size`` split chunkings are
  computed once and shared by every replica of the same plan (the memo
  lives with the stage, which :mod:`repro.sim.plan_cache` shares across
  a fleet).  The memoized results are bit-identical to calling
  ``SimStage.service_s`` / ``_split`` directly.
- :class:`QueryState` -- per-query runtime record (``__slots__``).
- :class:`EventHeap` -- the global event heap: flat ``(time, seq,
  owner, stage_idx, payload)`` tuples, a monotone sequence number for
  deterministic FIFO tie-breaks, and cheap lazy deletion (``cancel``
  marks a sequence number dead; dead entries are skipped at pop).
- :class:`Pipeline` -- per-replica queue/free-unit state with
  closure-free ``enqueue``/``dispatch``/``on_finish`` methods (the
  engines previously rebuilt these as nested closures per run).
- :class:`DirectStage` -- an exact arrival-driven fast path for
  single-stage SPLIT pipelines (every CPU placement): a G/D/c queue
  with deterministic service admits a unit-availability recurrence, so
  a query's completion time is computed *at arrival* and only one
  global event is scheduled instead of a per-chunk event chain.  The
  recurrence performs the same float operations in the same order as
  the event pipeline, so completion times are bit-identical.

Arrivals are *not* heap events: engines merge the (sorted) arrival
list with the heap, preferring arrivals on ties -- equivalent to the
old behaviour of pushing every arrival up front with the lowest
sequence numbers, at a fraction of the heap traffic.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from heapq import heappop, heappush, heapreplace
from typing import Callable, Sequence

__all__ = [
    "StageMode",
    "SimStage",
    "QueryState",
    "ServicedStage",
    "DirectStage",
    "EventHeap",
    "Pipeline",
    "enqueue_units",
    "form_batch",
]


class StageMode(enum.Enum):
    """How a stage forms batches from incoming queries."""

    SPLIT = "split"
    """Chop each query into sub-batches of at most ``chunk_items``."""

    FUSE = "fuse"
    """Merge whole queued queries into one batch up to ``fuse_items``."""


@dataclass(frozen=True)
class SimStage:
    """One pipeline stage of a simulated server.

    Attributes:
        name: Stage label (matches the evaluator's stage names).
        units: Parallel service threads.
        mode: Batch-formation mode.
        chunk_items: Sub-batch size for SPLIT stages.
        fuse_items: Fusion limit for FUSE stages (0 = one query/batch).
        latency_fn: Batch service time as a function of items.
        pooling_sensitivity: Fraction of this stage's service time that
            scales with the batch's pooling factor.  Sparse (embedding)
            stages are pooling-bound, so the per-query pooling variance
            of Fig. 2(c) lengthens their service; dense stages are
            insensitive.
    """

    name: str
    units: int
    mode: StageMode
    chunk_items: int
    fuse_items: int
    latency_fn: Callable[[int], float]
    pooling_sensitivity: float = 0.0

    def service_s(self, items: int, pooling_scale: float) -> float:
        """Batch service time including the pooling-variance component."""
        base = self.latency_fn(items)
        if self.pooling_sensitivity <= 0.0:
            return base
        scale = (
            1.0 - self.pooling_sensitivity
            + self.pooling_sensitivity * pooling_scale
        )
        return base * scale


def _split(size: int, chunk: int) -> list[int]:
    """Sub-batch sizes for one query (last chunk may be partial)."""
    if chunk < 1:
        raise ValueError("chunk must be >= 1")
    full, rem = divmod(size, chunk)
    return [chunk] * full + ([rem] if rem else [])


def enqueue_units(stage, queue: deque, state, size: int) -> None:
    """Append one query's work units for a stage to its FIFO.

    SPLIT stages chop the query into ``chunk_items`` sub-batches; FUSE
    stages enqueue the whole query as one unit.  Sets the state's
    ``pending_units`` counter.  Shared by the single-node and fleet
    simulators so batch-formation semantics cannot drift apart.

    Raises:
        ValueError: On empty queries (``size < 1``); a zero-size query
            would produce zero units and never complete.
    """
    if size < 1:
        raise ValueError("query size must be >= 1 (zero units never complete)")
    if stage.mode is StageMode.SPLIT:
        chunks = _split(size, stage.chunk_items)
        state.pending_units = len(chunks)
        queue.extend((state, chunk) for chunk in chunks)
    else:
        state.pending_units = 1
        queue.append((state, size))


def form_batch(stage, queue: deque) -> tuple[list, int, float]:
    """Pop one service batch from a stage FIFO.

    FUSE stages accumulate whole queued queries up to the fusion limit;
    SPLIT stages serve one sub-batch per dispatch.  Returns the batch
    units, total items, and the item-weighted mean pooling factor.
    """
    batch = [queue.popleft()]
    if stage.mode is StageMode.FUSE and stage.fuse_items > 0:
        total = batch[0][1]
        limit = stage.fuse_items
        while queue and total + queue[0][1] <= limit:
            unit = queue.popleft()
            total += unit[1]
            batch.append(unit)
    items = sum(it for _, it in batch)
    pooling = sum(st.pooling * it for st, it in batch) / max(items, 1)
    return batch, items, pooling


class QueryState:
    """Runtime record of one in-flight query (shared by both engines).

    ``arrival_s``/``size``/``pooling`` mirror the immutable
    :class:`~repro.sim.queries.Query` so the hot loops never chase the
    extra attribute hop; ``server``/``model`` are fleet-only,
    ``finish_s`` is single-node-only.
    """

    __slots__ = (
        "query",
        "model",
        "server",
        "arrival_s",
        "size",
        "pooling",
        "pending_units",
        "finish_s",
    )

    def __init__(self, query, model: str | None = None) -> None:
        self.query = query
        self.model = model
        self.server = None
        self.arrival_s = query.arrival_s
        self.size = query.size
        self.pooling = query.pooling_scale
        self.pending_units = 0
        self.finish_s = 0.0


class ServicedStage:
    """A stage spec plus quantized service/chunking memo tables.

    One instance is shared by every replica of the same (server type,
    model, plan) -- see :func:`repro.sim.plan_cache.serviced_stages_for`
    -- so the ``items -> base service`` and ``size -> chunks`` tables
    fill once per fleet, not once per replica.  All lookups reproduce
    ``SimStage.service_s`` / ``_split`` bit-for-bit: the memo stores the
    exact value the underlying ``latency_fn`` returned.
    """

    __slots__ = (
        "name",
        "units",
        "mode",
        "chunk_items",
        "fuse_items",
        "latency_fn",
        "pooling_sensitivity",
        "is_fuse",
        "_base_s",
        "_chunks",
    )

    def __init__(self, spec) -> None:
        self.name = spec.name
        self.units = spec.units
        self.mode = spec.mode
        self.chunk_items = spec.chunk_items
        self.fuse_items = spec.fuse_items
        self.latency_fn = spec.latency_fn
        self.pooling_sensitivity = spec.pooling_sensitivity
        self.is_fuse = spec.mode is StageMode.FUSE
        self._base_s: dict[int, float] = {}
        self._chunks: dict[int, tuple[int, ...]] = {}

    # -- memoized primitives ------------------------------------------

    def base_service_s(self, items: int) -> float:
        """``latency_fn(items)``, memoized per item count."""
        base = self._base_s.get(items)
        if base is None:
            base = self.latency_fn(items)
            self._base_s[items] = base
        return base

    def service_s(self, items: int, pooling_scale: float) -> float:
        """Memoized equivalent of :meth:`SimStage.service_s`."""
        base = self.base_service_s(items)
        ps = self.pooling_sensitivity
        if ps <= 0.0:
            return base
        return base * (1.0 - ps + ps * pooling_scale)

    def unit_service_s(self, items: int, pooling_scale: float) -> float:
        """Service time of a single-unit batch (the SPLIT dispatch case).

        The item-weighted mean pooling of a one-unit batch is
        ``(scale * items) / items`` -- kept literally (not simplified to
        ``scale``) to remain bit-identical to :func:`form_batch`.
        """
        return self.service_s(items, (pooling_scale * items) / max(items, 1))

    def chunks_for(self, size: int) -> tuple[int, ...]:
        """``_split(size, chunk_items)``, memoized per query size."""
        chunks = self._chunks.get(size)
        if chunks is None:
            chunks = tuple(_split(size, self.chunk_items))
            self._chunks[size] = chunks
        return chunks

    # -- queue operations ---------------------------------------------

    def enqueue(self, queue: deque, state, size: int) -> None:
        """Memoized equivalent of :func:`enqueue_units`."""
        if size < 1:
            raise ValueError(
                "query size must be >= 1 (zero units never complete)"
            )
        if self.is_fuse:
            state.pending_units = 1
            queue.append((state, size))
        else:
            chunks = self.chunks_for(size)
            state.pending_units = len(chunks)
            append = queue.append
            for chunk in chunks:
                append((state, chunk))

    def form_and_time(self, queue: deque) -> tuple[list, float]:
        """Pop one batch and return it with its service time.

        Fast-path equivalent of ``form_batch`` + ``service_s``: the
        overwhelmingly common single-unit batch skips the generic
        item/pooling reductions, and the memo/scale lookups are inlined
        (while computing the identical floats).  Work units carry at
        least one item (enforced at enqueue), so ``max(items, 1)``
        simplifies to ``items``.
        """
        unit = queue.popleft()
        items = unit[1]
        fuse = self.fuse_items
        if self.is_fuse and fuse > 0:
            batch = [unit]
            total = items
            while queue and total + queue[0][1] <= fuse:
                extra = queue.popleft()
                total += extra[1]
                batch.append(extra)
            if len(batch) > 1:
                pooled = 0.0
                for st, it in batch:
                    pooled += st.pooling * it
                items = total
                pooling = pooled / items
            else:
                pooling = (unit[0].pooling * items) / items
        else:
            batch = [unit]
            pooling = (unit[0].pooling * items) / items
        base = self._base_s.get(items)
        if base is None:
            base = self.latency_fn(items)
            self._base_s[items] = base
        ps = self.pooling_sensitivity
        if ps <= 0.0:
            return batch, base
        return batch, base * (1.0 - ps + ps * pooling)


class DirectStage:
    """Exact arrival-driven execution of a single-stage SPLIT pipeline.

    A SPLIT stage with deterministic service is a FIFO G/D/c queue:
    work units are served in enqueue order, each starting when the
    earliest unit-thread frees.  Tracking the ``units`` per-thread
    availability times therefore reproduces the event engine exactly --
    ``start = max(now, min(avail))`` is the same float the finish-event
    cascade would produce -- while scheduling a single completion event
    per query instead of one per chunk.

    Only valid for one-stage pipelines: with downstream stages the
    enqueue order at stage 1 depends on stage-0 completion order, which
    the recurrence does not track.
    """

    __slots__ = ("stage", "avail")

    def __init__(self, stage: ServicedStage) -> None:
        if stage.is_fuse:
            raise ValueError("DirectStage requires a SPLIT stage")
        self.stage = stage
        self.avail = [0.0] * stage.units

    def completion_time(self, now: float, size: int, pooling_scale: float) -> float:
        """Completion time of a query arriving at ``now`` (claims units).

        Inlined equivalent of per-chunk ``unit_service_s``; chunk sizes
        are >= 1, so ``max(chunk, 1)`` simplifies to ``chunk``.
        """
        stage = self.stage
        avail = self.avail
        base_memo = stage._base_s
        latency_fn = stage.latency_fn
        ps = stage.pooling_sensitivity
        if size <= stage.chunk_items:
            # Single-chunk fast path (the common case: mean query size
            # is below the plan's batch size): ``_split`` yields [size].
            base = base_memo.get(size)
            if base is None:
                base = latency_fn(size)
                base_memo[size] = base
            if ps > 0.0:
                base = base * (1.0 - ps + ps * ((pooling_scale * size) / size))
            t_free = avail[0]
            start = t_free if t_free > now else now
            done = start + base
            heapreplace(avail, done)
            return done
        finish = now
        for chunk in stage.chunks_for(size):
            base = base_memo.get(chunk)
            if base is None:
                base = latency_fn(chunk)
                base_memo[chunk] = base
            if ps > 0.0:
                base = base * (1.0 - ps + ps * ((pooling_scale * chunk) / chunk))
            t_free = avail[0]
            start = t_free if t_free > now else now
            done = start + base
            heapreplace(avail, done)
            if done > finish:
                finish = done
        return finish

    def completion_time_slowed(
        self, now: float, size: int, pooling_scale: float, factor: float
    ) -> float:
        """Completion time while the replica is a straggler.

        Identical recurrence to :meth:`completion_time` with every chunk
        service time multiplied by ``factor``; a separate method so the
        fault-free path keeps its exact float sequence.
        """
        stage = self.stage
        avail = self.avail
        ps = stage.pooling_sensitivity
        finish = now
        for chunk in stage.chunks_for(size):
            base = stage.base_service_s(chunk)
            if ps > 0.0:
                base = base * (1.0 - ps + ps * ((pooling_scale * chunk) / chunk))
            base *= factor
            t_free = avail[0]
            start = t_free if t_free > now else now
            done = start + base
            heapreplace(avail, done)
            if done > finish:
                finish = done
        return finish

    def reset(self) -> None:
        """Forget all claimed unit time (crash recovery starts fresh)."""
        self.avail = [0.0] * self.stage.units


class EventHeap:
    """Global event heap with FIFO tie-breaks and lazy deletion.

    Entries are flat ``(time, seq, owner, stage_idx, payload)`` tuples;
    comparison never reaches ``owner`` because ``seq`` is unique.  The
    engines read ``items``/``dead`` directly in their hot loops; the
    methods are the convenient path for everything else.

    Lazy deletion: :meth:`cancel` marks a sequence number dead in O(1);
    the entry stays in the heap and is discarded when it surfaces.
    (The engines do not cancel yet -- the hook exists for preemption
    scenarios such as killing a replica mid-run with in-flight batches.)
    """

    __slots__ = ("items", "seq", "dead")

    def __init__(self) -> None:
        self.items: list[tuple] = []
        self.seq = 0
        self.dead: set[int] = set()

    def push(self, time_s: float, owner, stage_idx: int, payload) -> int:
        """Schedule an event; returns its sequence number (for cancel)."""
        seq = self.seq
        self.seq = seq + 1
        heappush(self.items, (time_s, seq, owner, stage_idx, payload))
        return seq

    def cancel(self, seq: int) -> None:
        """Mark a scheduled event dead; it is skipped when popped."""
        self.dead.add(seq)

    def pop(self):
        """Next live event, or None when drained."""
        items = self.items
        dead = self.dead
        while items:
            entry = heappop(items)
            if dead and entry[1] in dead:
                dead.discard(entry[1])
                continue
            return entry
        return None

    def peek_time(self) -> float | None:
        """Timestamp of the next live event (purges dead heads)."""
        items = self.items
        dead = self.dead
        while items and dead and items[0][1] in dead:
            dead.discard(heappop(items)[1])
        return items[0][0] if items else None

    def __len__(self) -> int:
        """Live entries (scheduled minus cancelled-but-unpopped)."""
        return len(self.items) - len(self.dead)

    def __bool__(self) -> bool:
        return len(self) > 0


class Pipeline:
    """Per-replica stage queues, free-unit counts, and event plumbing.

    ``owner`` rides in every scheduled event so the driving engine can
    map a finish back to its replica without closures; the single-node
    engine sets ``owner`` to the pipeline itself.
    """

    __slots__ = ("stages", "queues", "free", "busy", "owner", "last", "service_scale")

    def __init__(
        self,
        stages: Sequence,
        owner=None,
        track_busy: bool = False,
    ) -> None:
        if not stages:
            raise ValueError("need at least one stage")
        self.stages: tuple[ServicedStage, ...] = tuple(
            s if isinstance(s, ServicedStage) else ServicedStage(s)
            for s in stages
        )
        self.queues: list[deque] = [deque() for _ in self.stages]
        self.free: list[int] = [s.units for s in self.stages]
        self.busy: list[float] | None = (
            [0.0] * len(self.stages) if track_busy else None
        )
        self.owner = owner if owner is not None else self
        self.last = len(self.stages) - 1
        # Straggler hook: service times of batches *started* while the
        # scale is != 1.0 are multiplied by it.  At the default 1.0 the
        # multiply is skipped entirely, so fault-free runs stay
        # bit-identical to the pre-fault engine.
        self.service_scale = 1.0

    def reset(self) -> None:
        """Drop all queued work and return every unit to the free pool.

        Used when a replica crashes: in-flight batches are cancelled at
        the heap, queued units are discarded here, and a later recovery
        starts from an empty pipeline.
        """
        for queue in self.queues:
            queue.clear()
        self.free = [s.units for s in self.stages]

    def dispatch(self, idx: int, now: float, heap: EventHeap) -> None:
        """Start batches at a stage while units and work are available."""
        free = self.free
        n = free[idx]
        if n <= 0:
            return
        queue = self.queues[idx]
        if not queue:
            return
        form = self.stages[idx].form_and_time
        busy = self.busy
        owner = self.owner
        items = heap.items
        seq = heap.seq
        scale = self.service_scale
        while n > 0 and queue:
            batch, service = form(queue)
            if scale != 1.0:
                service *= scale
            n -= 1
            if busy is not None:
                busy[idx] += service
            heappush(items, (now + service, seq, owner, idx, batch))
            seq += 1
        heap.seq = seq
        free[idx] = n

    def enqueue(self, idx: int, state, size: int, now: float, heap: EventHeap) -> None:
        """Admit one query's units at a stage and try to start them.

        Inlined body of :meth:`ServicedStage.enqueue` (this runs once
        per query per stage).
        """
        stage = self.stages[idx]
        queue = self.queues[idx]
        if size < 1:
            raise ValueError(
                "query size must be >= 1 (zero units never complete)"
            )
        if stage.is_fuse:
            state.pending_units = 1
            queue.append((state, size))
        else:
            chunks = stage._chunks.get(size)
            if chunks is None:
                chunks = stage.chunks_for(size)
            state.pending_units = len(chunks)
            append = queue.append
            for chunk in chunks:
                append((state, chunk))
        self.dispatch(idx, now, heap)

    def on_finish(
        self, idx: int, batch: list, now: float, heap: EventHeap, completed: list
    ) -> None:
        """Retire one batch: advance finished queries, refill the stage.

        Queries whose last unit left the last stage are appended to
        ``completed`` (engine-specific bookkeeping happens there).
        """
        self.free[idx] += 1
        last = self.last
        for unit in batch:
            state = unit[0]
            pending = state.pending_units - 1
            state.pending_units = pending
            if pending == 0:
                if idx < last:
                    self.enqueue(idx + 1, state, state.size, now, heap)
                else:
                    completed.append(state)
        self.dispatch(idx, now, heap)
