"""Vectorized fleet-replay core: batched routing and completion delivery.

The pure-Python fleet engine (:mod:`repro.fleet.engine`) processes one
event at a time through a global heap.  For the common measurement
configuration -- outstanding-oblivious routing (rr / weighted), no
fault injection, no live observer -- per-event interleaving is
unnecessary: routing decisions depend only on arrival order within a
model stream, and replicas never interact except through the router.
This module exploits that:

- Arrivals are ingested into flat numpy arrays and **pre-routed in
  batches** per model via :meth:`RoutingPolicy.choose_batch` (round-
  robin collapses to modular index arithmetic, smooth-WRR to a tight
  local credit loop).
- Queries routed to a :class:`~repro.sim.event_core.DirectStage`
  replica (every CPU placement) are delivered as **per-replica batches**:
  chunk service times are expanded vectorized, then a compact
  ``heapreplace`` recurrence over the replica's persistent unit-
  availability heap reproduces the event core's float sequence exactly.
- FUSE-bearing (accelerator) replicas run a **per-replica local event
  loop** -- batch formation there genuinely depends on queue state --
  but with plain-tuple query states and the global heap replaced by a
  replica-private one, which preserves within-replica event order (the
  only order that matters for an isolated replica).
- Only **segment boundaries** go through global coordination: when an
  autoscaler is attached, the trace is cut at its tick times and the
  engine's own :meth:`FleetSimulator._apply_autoscaler_tick` is invoked
  between segments with identically-ordered window feeds, so scaling
  decisions (and their seeds of divergence) cannot drift from the
  python core.

Exactness: per-replica completion floats are bit-identical to the
python core (the recurrences perform the same operations in the same
order; ``tests/test_fast_core.py`` pins representative configurations
and fuzzes the rest).  The one caveat is *cross-replica ties*: two
completions with byte-equal finish timestamps on different replicas may
enter per-model statistics in a different order than the global heap
would pop them, which can move ``mean_ms`` by one ulp.  Continuous-time
arrival processes make such ties vanishingly rare; percentiles are
order-insensitive either way (see ``docs/performance.md``).

This module imports numpy at module scope: environments without numpy
must stay on the python core (``FleetSimulator(core="auto")`` degrades
automatically; ``core="vector"`` raises an actionable error).
"""

from __future__ import annotations

from heapq import heappop, heappush, heapreplace

import numpy as np

__all__ = ["run_vectorized", "run_vectorized_faults", "run_epoch"]

#: Per-ServicedStage dense service tables, shared across replicas (the
#: stage objects themselves are shared via plan_cache).  Keyed by id()
#: with the stage kept referenced so a recycled id cannot alias.
_SERVICE_TABLES: dict[int, tuple[object, int, np.ndarray]] = {}

#: Python-list views of the same tables for the scalar-indexed loops
#: (the FUSE drains and the epoch core): indexing a list of floats is
#: ~3x cheaper than indexing a numpy array element-wise.
_SERVICE_LISTS: dict[int, tuple[object, int, list]] = {}

#: FUSE stages with fusion limits above this keep the dict-memo lookup
#: (a dense table would mostly hold service times no batch ever forms).
_FUSE_TABLE_CAP = 4096


def _service_table(stage, maxsz: int) -> np.ndarray:
    """Dense ``items -> base service seconds`` table for a SPLIT stage.

    Reads the stage's memo where populated and calls ``latency_fn``
    for the rest -- the same floats the python core's on-demand memo
    would produce (the memo itself is left untouched).
    """
    key = id(stage)
    cached = _SERVICE_TABLES.get(key)
    if cached is not None and cached[0] is stage and cached[1] >= maxsz:
        return cached[2]
    memo = stage._base_s
    fn = stage.latency_fn
    tab = np.empty(maxsz + 1)
    tab[0] = 0.0
    for sz in range(1, maxsz + 1):
        base = memo.get(sz)
        if base is None:
            base = fn(sz)
        tab[sz] = base
    _SERVICE_TABLES[key] = (stage, maxsz, tab)
    return tab


def _service_list(stage, maxsz: int) -> list:
    """Plain-list view of :func:`_service_table` for scalar loops."""
    key = id(stage)
    cached = _SERVICE_LISTS.get(key)
    if cached is not None and cached[0] is stage and cached[1] >= maxsz:
        return cached[2]
    tab = _service_table(stage, maxsz).tolist()
    _SERVICE_LISTS[key] = (stage, len(tab) - 1, tab)
    return tab


class _State:
    """Local stand-in for :class:`QueryState` in generic pipelines."""

    __slots__ = ("pooling", "pending_units", "size", "idx")

    def __init__(self, pooling: float, size: int, idx: int) -> None:
        self.pooling = pooling
        self.size = size
        self.idx = idx
        self.pending_units = 0


class _LocalReplicaSim:
    """Resumable private event loop for one FUSE-bearing replica.

    Mirrors :class:`~repro.sim.event_core.Pipeline` semantics exactly --
    including ``on_finish``'s per-query enqueue-then-dispatch order,
    which batch formation at the next stage observes -- but against a
    replica-private heap.  ``pump`` feeds a sorted arrival slice and
    runs local events with ``time < limit``; events at or past the
    limit stay queued so the replica can resume after an autoscaler
    tick.  ``seq`` counts batch events exactly as the global heap's
    sequence would for this replica.
    """

    __slots__ = (
        "pipeline", "queues", "free", "last", "fuse_only",
        "stages", "forms", "chunk_memos", "is_fuse",
        "fuse_of", "tab_of", "memo_of", "fn_of", "ps_of",
        "events", "seq", "completions",
    )

    def __init__(self, pipeline) -> None:
        stages = pipeline.stages
        self.pipeline = pipeline
        self.queues = pipeline.queues
        self.free = pipeline.free
        self.last = len(stages) - 1
        self.fuse_only = all(s.is_fuse for s in stages)
        self.stages = stages
        self.forms = [s.form_and_time for s in stages]
        self.chunk_memos = [s._chunks for s in stages]
        self.is_fuse = [s.is_fuse for s in stages]
        self.fuse_of = [s.fuse_items for s in stages]
        # Dense service tables replace the dict-memo lookup in the FUSE
        # drains: any batch a stage with fusion limit F can form totals
        # at most F items (a single oversize query keeps the memo path).
        self.tab_of = [
            _service_list(s, s.fuse_items)
            if s.is_fuse and 0 < s.fuse_items <= _FUSE_TABLE_CAP
            else None
            for s in stages
        ]
        self.memo_of = [s._base_s for s in stages]
        self.fn_of = [s.latency_fn for s in stages]
        self.ps_of = [s.pooling_sensitivity for s in stages]
        self.events: list[tuple] = []
        self.seq = 0
        self.completions: list[tuple[float, int]] = []

    def kill(self) -> set:
        """Cancel all in-flight work after a crash.

        Returns the global arrival indices of every query currently in
        the local heap or the stage queues, then resets to an empty
        pipeline.  ``Pipeline.reset`` clears the queue deques in place
        but *replaces* ``free``, so the alias is re-synced here; ``seq``
        is preserved (the python core's global heap sequence keeps
        counting across crashes).
        """
        vict: set = set()
        add = vict.add
        if self.fuse_only:
            for entry in self.events:
                for tup in entry[3]:
                    add(tup[2])
            for q in self.queues:
                for tup in q:
                    add(tup[2])
        else:
            for entry in self.events:
                for unit in entry[3]:
                    add(unit[0].idx)
            for q in self.queues:
                for unit in q:
                    add(unit[0].idx)
        self.events = []
        self.completions = []
        self.pipeline.reset()
        self.free = self.pipeline.free
        return vict

    def pump(self, tl, sl, pl, il, limit, finish, track: bool) -> None:
        if self.fuse_only:
            self._pump_fuse(tl, sl, pl, il, limit, finish, track)
        else:
            self._pump_generic(tl, sl, pl, il, limit, finish, track)

    def _pump_fuse(self, tl, sl, pl, il, limit, finish, track) -> None:
        """All-FUSE pipelines: query state is a plain (pooling, size,
        global-arrival-index) tuple and every dispatch is inlined.

        Service times come from the dense per-stage tables where built
        (``total <= fuse`` always holds for multi-unit batches; a lone
        oversize query falls back to the dict memo), the pooled-average
        loop runs only for pooling-sensitive stages, and batches started
        under a fault-scaled pipeline are stretched exactly like
        ``Pipeline.dispatch`` (the scale is constant within a pump: the
        fault path only changes it at segment boundaries).
        """
        queues = self.queues
        free = self.free
        last = self.last
        fuse_of = self.fuse_of
        tab_of = self.tab_of
        memo_of = self.memo_of
        fn_of = self.fn_of
        ps_of = self.ps_of
        events = self.events
        seq = self.seq
        scale = self.pipeline.service_scale
        comp = self.completions.append
        nn = len(tl)
        i = 0
        while True:
            if i < nn:
                now = tl[i]
                if not events or now <= events[0][0]:
                    queues[0].append((pl[i], sl[i], il[i]))
                    i += 1
                    nfree = free[0]
                    q = queues[0]
                    if nfree > 0 and q:
                        fuse = fuse_of[0]
                        tab = tab_of[0]
                        memo = memo_of[0]
                        fn = fn_of[0]
                        ps = ps_of[0]
                        popleft = q.popleft
                        while nfree > 0 and q:
                            unit = popleft()
                            total = unit[1]
                            batch = [unit]
                            while q and total + q[0][1] <= fuse:
                                extra = popleft()
                                total += extra[1]
                                batch.append(extra)
                            if tab is not None and total <= fuse:
                                base = tab[total]
                            else:
                                base = memo.get(total)
                                if base is None:
                                    base = fn(total)
                                    memo[total] = base
                            if ps > 0.0:
                                if len(batch) > 1:
                                    pooled = 0.0
                                    for tup in batch:
                                        pooled += tup[0] * tup[1]
                                    pooling = pooled / total
                                else:
                                    pooling = (unit[0] * total) / total
                                base = base * (1.0 - ps + ps * pooling)
                            if scale != 1.0:
                                base = base * scale
                            heappush(events, (now + base, seq, 0, batch))
                            seq += 1
                            nfree -= 1
                        free[0] = nfree
                    continue
            elif not events or events[0][0] >= limit:
                break
            entry = heappop(events)
            now = entry[0]
            idx = entry[2]
            free[idx] += 1
            if idx < last:
                # Mirror Pipeline.on_finish: each finished query is
                # enqueued and the next stage dispatched before the next
                # query lands, so batch formation sees them one at a time.
                nxt = idx + 1
                q = queues[nxt]
                fuse = fuse_of[nxt]
                tab = tab_of[nxt]
                memo = memo_of[nxt]
                fn = fn_of[nxt]
                ps = ps_of[nxt]
                popleft = q.popleft
                for tup in entry[3]:
                    q.append(tup)
                    nfree = free[nxt]
                    while nfree > 0 and q:
                        unit = popleft()
                        total = unit[1]
                        batch = [unit]
                        while q and total + q[0][1] <= fuse:
                            extra = popleft()
                            total += extra[1]
                            batch.append(extra)
                        if tab is not None and total <= fuse:
                            base = tab[total]
                        else:
                            base = memo.get(total)
                            if base is None:
                                base = fn(total)
                                memo[total] = base
                        if ps > 0.0:
                            if len(batch) > 1:
                                pooled = 0.0
                                for t2 in batch:
                                    pooled += t2[0] * t2[1]
                                pooling = pooled / total
                            else:
                                pooling = (unit[0] * total) / total
                            base = base * (1.0 - ps + ps * pooling)
                        if scale != 1.0:
                            base = base * scale
                        heappush(events, (now + base, seq, nxt, batch))
                        seq += 1
                        nfree -= 1
                    free[nxt] = nfree
            else:
                for tup in entry[3]:
                    finish[tup[2]] = now
                    if track:
                        comp((now, tup[2]))
            # refill the stage that just freed a unit
            nfree = free[idx]
            q = queues[idx]
            if nfree > 0 and q:
                fuse = fuse_of[idx]
                tab = tab_of[idx]
                memo = memo_of[idx]
                fn = fn_of[idx]
                ps = ps_of[idx]
                popleft = q.popleft
                while nfree > 0 and q:
                    unit = popleft()
                    total = unit[1]
                    batch = [unit]
                    while q and total + q[0][1] <= fuse:
                        extra = popleft()
                        total += extra[1]
                        batch.append(extra)
                    if tab is not None and total <= fuse:
                        base = tab[total]
                    else:
                        base = memo.get(total)
                        if base is None:
                            base = fn(total)
                            memo[total] = base
                    if ps > 0.0:
                        if len(batch) > 1:
                            pooled = 0.0
                            for t2 in batch:
                                pooled += t2[0] * t2[1]
                            pooling = pooled / total
                        else:
                            pooling = (unit[0] * total) / total
                        base = base * (1.0 - ps + ps * pooling)
                    if scale != 1.0:
                        base = base * scale
                    heappush(events, (now + base, seq, idx, batch))
                    seq += 1
                    nfree -= 1
                free[idx] = nfree
        self.seq = seq

    def _pump_generic(self, tl, sl, pl, il, limit, finish, track) -> None:
        """Mixed SPLIT/FUSE pipelines: slotted query states with
        ``pending_units`` accounting, exactly like ``Pipeline``."""
        stages = self.stages
        queues = self.queues
        free = self.free
        last = self.last
        forms = self.forms
        chunk_memos = self.chunk_memos
        is_fuse = self.is_fuse
        events = self.events
        seq = self.seq
        scale = self.pipeline.service_scale
        comp = self.completions.append
        nn = len(tl)
        i = 0
        while True:
            if i < nn:
                now = tl[i]
                if not events or now <= events[0][0]:
                    st = _State(pl[i], sl[i], il[i])
                    i += 1
                    if is_fuse[0]:
                        st.pending_units = 1
                        queues[0].append((st, st.size))
                    else:
                        chunks = chunk_memos[0].get(st.size)
                        if chunks is None:
                            chunks = stages[0].chunks_for(st.size)
                        st.pending_units = len(chunks)
                        q0 = queues[0]
                        for chunk in chunks:
                            q0.append((st, chunk))
                    nfree = free[0]
                    q0 = queues[0]
                    form = forms[0]
                    while nfree > 0 and q0:
                        batch, service = form(q0)
                        if scale != 1.0:
                            service *= scale
                        heappush(events, (now + service, seq, 0, batch))
                        seq += 1
                        nfree -= 1
                    free[0] = nfree
                    continue
            elif not events or events[0][0] >= limit:
                break
            now, _, idx, batch = heappop(events)
            free[idx] += 1
            for unit in batch:
                st = unit[0]
                pending = st.pending_units - 1
                st.pending_units = pending
                if pending == 0:
                    if idx < last:
                        nxt = idx + 1
                        if is_fuse[nxt]:
                            st.pending_units = 1
                            queues[nxt].append((st, st.size))
                        else:
                            chunks = chunk_memos[nxt].get(st.size)
                            if chunks is None:
                                chunks = stages[nxt].chunks_for(st.size)
                            st.pending_units = len(chunks)
                            qn = queues[nxt]
                            for chunk in chunks:
                                qn.append((st, chunk))
                        nfree = free[nxt]
                        qn = queues[nxt]
                        form = forms[nxt]
                        while nfree > 0 and qn:
                            b2, service = form(qn)
                            if scale != 1.0:
                                service *= scale
                            heappush(events, (now + service, seq, nxt, b2))
                            seq += 1
                            nfree -= 1
                        free[nxt] = nfree
                    else:
                        finish[st.idx] = now
                        if track:
                            comp((now, st.idx))
            nfree = free[idx]
            q = queues[idx]
            if nfree > 0 and q:
                form = forms[idx]
                while nfree > 0 and q:
                    b2, service = form(q)
                    if scale != 1.0:
                        service *= scale
                    heappush(events, (now + service, seq, idx, b2))
                    seq += 1
                    nfree -= 1
                free[idx] = nfree
        self.seq = seq


def _ingest(sim, trace):
    """Materialize the trace into flat arrays (sorted by arrival).

    Lists/tuples are stably sorted like the python core; streamed
    sources must already be sorted (same error text as the engine's
    lazy check).  Returns ``(arr_t, arr_size, arr_pool, arr_m,
    model_names, codes)`` where ``codes`` maps model name -> row code
    (routable models first, in sorted order, then unknown models in
    first-arrival order).
    """
    is_list = isinstance(trace, (list, tuple))
    pairs = list(trace)
    if not pairs:
        raise ValueError("empty fleet trace")
    n = len(pairs)
    arr_t = np.fromiter((q[1] for _, q in pairs), np.float64, count=n)
    arr_size = np.fromiter((q[2] for _, q in pairs), np.int64, count=n)
    arr_pool = np.fromiter((q[3] for _, q in pairs), np.float64, count=n)
    codes = {m: i for i, m in enumerate(sorted(sim._routable))}
    try:
        arr_m = np.fromiter((codes[m] for m, _ in pairs), np.int64, count=n)
    except KeyError:
        # Rare: the trace names models with no replica anywhere.  They
        # surface as dropped streams, coded in first-arrival order.
        for m, _ in pairs:
            if m not in codes:
                codes[m] = len(codes)
        arr_m = np.fromiter((codes[m] for m, _ in pairs), np.int64, count=n)
    if n > 1:
        deltas = np.diff(arr_t)
        if bool((deltas < 0.0).any()):
            if not is_list:
                bad = int(np.nonzero(deltas < 0.0)[0][0])
                raise ValueError(
                    "arrival stream is not sorted by time "
                    f"(t={arr_t[bad + 1]!r} after t={arr_t[bad]!r})"
                )
            order = np.argsort(arr_t, kind="stable")
            arr_t = arr_t[order]
            arr_size = arr_size[order]
            arr_pool = arr_pool[order]
            arr_m = arr_m[order]
    model_names = [None] * len(codes)
    for m, c in codes.items():
        model_names[c] = m
    return arr_t, arr_size, arr_pool, arr_m, model_names, codes


def run_vectorized(sim, trace, warmup_s: float = 0.0):
    """Play ``trace`` through ``sim``'s fleet on the vectorized core.

    The caller (:meth:`FleetSimulator.run`) has already verified
    eligibility: outstanding-oblivious routing, no fault machinery, no
    observer.  Results -- per-model stats, server counters, scale
    events, event counts -- reproduce the python core exactly (modulo
    the cross-replica tie caveat in the module docstring).
    """
    # The local replica loops allocate event tuples and batch lists and
    # never build cycles; keep the generational GC out of them, exactly
    # as the python core's hot loop does.
    import gc

    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    try:
        return _run_vectorized(sim, trace, warmup_s)
    finally:
        if gc_was_enabled:
            gc.enable()


def _run_vectorized(sim, trace, warmup_s: float):
    servers = sim.servers
    n_servers = len(servers)
    arr_t, arr_size, arr_pool, arr_m, model_names, codes = _ingest(sim, trace)
    n = len(arr_t)
    horizon = float(arr_t[-1])
    scaling = sim.autoscaler is not None

    finish = np.empty(n, dtype=np.float64)
    server_of = np.full(n, -1, dtype=np.int64)
    routable = sim._routable
    policies = sim._policies

    # Windowed autoscaler feeds (same shapes the python loop maintains).
    window_lat: dict[str, list[float]] = {m: [] for m in routable}
    window_arrivals: dict[str, int] = {m: 0 for m in routable}
    window_drops: dict[str, int] = {m: 0 for m in routable}
    scale_events: list = []
    dropped: dict[str, int] = {m: 0 for m in routable}
    drop_order: list[str] = []  # unknown models, first-drop order

    runners: dict[int, _LocalReplicaSim] = {}
    direct_pushes = 0
    ticks = 0
    if scaling:
        outstanding_vec = np.zeros(n_servers, dtype=np.int64)
        last_finish = np.zeros(n_servers, dtype=np.float64)
        pool: list[tuple] = []  # (fin_arr, lat_arr, code, server_index)
        pending_settles: dict = {}
        window_s = sim.autoscaler.window_s

    def deliver_segment(lo: int, hi: int, limit: float) -> None:
        """Route and deliver arrivals [lo, hi); local fuse loops run
        events strictly below ``limit`` (the next tick time)."""
        nonlocal direct_pushes
        if lo >= hi:
            return
        seg_m = arr_m[lo:hi]
        seg_t = arr_t[lo:hi]
        for code in np.unique(seg_m).tolist():
            model = model_names[code]
            sel = np.nonzero(seg_m == code)[0]
            candidates = routable.get(model)
            if not candidates:
                # Same accounting as the python loop's drop path.
                n_drop = int((seg_t[sel] >= warmup_s).sum())
                if n_drop:
                    dropped[model] = dropped.get(model, 0) + n_drop
                if model not in dropped:
                    dropped[model] = dropped.get(model, 0)
                if model not in window_lat and model not in drop_order:
                    drop_order.append(model)
                if scaling:
                    window_drops[model] = window_drops.get(model, 0) + len(sel)
                continue
            picks = policies[model].choose_batch(candidates, len(sel))
            cand_idx = np.fromiter(
                (s.index for s in candidates), np.int64, count=len(candidates)
            )
            server_of[lo + sel] = cand_idx[np.asarray(picks)]
            if scaling:
                window_arrivals[model] += len(sel)
        seg_srv = server_of[lo:hi]
        order = np.argsort(seg_srv, kind="stable")
        sorted_srv = seg_srv[order]
        uniq, starts = np.unique(sorted_srv, return_index=True)
        bounds = starts.tolist() + [hi - lo]
        for j, srv_i in enumerate(uniq.tolist()):
            if srv_i < 0:
                continue  # dropped arrivals
            gidx = lo + order[bounds[j]:bounds[j + 1]]
            s = servers[srv_i]
            ts = arr_t[gidx]
            szs = arr_size[gidx]
            pls = arr_pool[gidx]
            if scaling:
                outstanding_vec[srv_i] += len(gidx)
            if s.direct is not None:
                st = s.direct.stage
                c = st.chunk_items
                ps = st.pooling_sensitivity
                maxsz = int(szs.max())
                base_tab = _service_table(st, maxsz if maxsz > c else c)
                full, rem = np.divmod(szs, c)
                has_rem = rem > 0
                nch = full + has_rem
                csf = float(c)
                if ps > 0.0:
                    svc_full = base_tab[c] * (
                        1.0 - ps + ps * ((pls * csf) / csf)
                    )
                    remf = rem.astype(np.float64)
                    svc_rem = base_tab[rem] * (
                        1.0 - ps
                        + ps * ((pls * remf) / np.where(has_rem, remf, 1.0))
                    )
                else:
                    svc_full = np.full(len(ts), base_tab[c])
                    svc_rem = base_tab[rem]
                ends = np.cumsum(nch)
                rep_t = np.repeat(ts, nch)
                rep_svc = np.repeat(svc_full, nch)
                rep_svc[ends[has_rem] - 1] = svc_rem[has_rem]
                starts_q = np.concatenate(([0], ends[:-1]))
                # The exact DirectStage recurrence against the replica's
                # persistent unit-availability heap.
                avail = s.direct.avail
                done = []
                ap = done.append
                for now, sv in zip(rep_t.tolist(), rep_svc.tolist()):
                    tf = avail[0]
                    d = (tf if tf > now else now) + sv
                    heapreplace(avail, d)
                    ap(d)
                fin = np.maximum.reduceat(np.asarray(done), starts_q)
                finish[gidx] = fin
                direct_pushes += len(gidx)
                if scaling:
                    fmax = float(fin.max())
                    if fmax > last_finish[srv_i]:
                        last_finish[srv_i] = fmax
                    pool.append((fin, fin - ts, codes[s.model_name], srv_i))
            else:
                runner = runners.get(srv_i)
                if runner is None:
                    runner = runners[srv_i] = _LocalReplicaSim(s.pipeline)
                runner.pump(
                    ts.tolist(), szs.tolist(), pls.tolist(), gidx.tolist(),
                    limit, finish, scaling,
                )

    def collect_fuse(limit: float) -> None:
        """Run every local loop up to ``limit`` and bank completions."""
        for srv_i, runner in runners.items():
            if runner.events:
                runner.pump((), (), (), (), limit, finish, scaling)
            comps = runner.completions
            if comps:
                fin = np.fromiter(
                    (c[0] for c in comps), np.float64, count=len(comps)
                )
                aidx = np.fromiter(
                    (c[1] for c in comps), np.int64, count=len(comps)
                )
                runner.completions = []
                s = servers[srv_i]
                fmax = float(fin.max())
                if fmax > last_finish[srv_i]:
                    last_finish[srv_i] = fmax
                pool.append((fin, fin - arr_t[aidx], codes[s.model_name], srv_i))

    def harvest(tick_t: float) -> None:
        """Feed the window ending at ``tick_t`` from the pool.

        Completions with ``finish < tick_t`` pop before the tick in the
        python loop (the tick's seq -1 wins ties), so strict less-than
        matches its window membership exactly.  Within a window the
        feed is finish-sorted; both built-in autoscalers are
        order-insensitive (they count latencies, not fold them).
        """
        nonlocal pool
        if not pool:
            return
        kept: list[tuple] = []
        per_code: dict[int, list[tuple]] = {}
        for fin, lats, code, srv_i in pool:
            mask = fin < tick_t
            n_in = int(mask.sum())
            if n_in == 0:
                kept.append((fin, lats, code, srv_i))
                continue
            if n_in == len(fin):
                taken = (fin, lats)
            else:
                keep = ~mask
                kept.append((fin[keep], lats[keep], code, srv_i))
                taken = (fin[mask], lats[mask])
            outstanding_vec[srv_i] -= n_in
            per_code.setdefault(code, []).append(taken)
        pool = kept
        for code, chunks in per_code.items():
            if len(chunks) == 1:
                fin_c, lat_c = chunks[0]
            else:
                fin_c = np.concatenate([c[0] for c in chunks])
                lat_c = np.concatenate([c[1] for c in chunks])
            o = np.argsort(fin_c, kind="stable")
            window_lat[model_names[code]] = (lat_c[o] * 1e3).tolist()

    if scaling:
        tick_t = window_s
        prev_lo = 0
        while tick_t < horizon:
            hi = int(np.searchsorted(arr_t, tick_t, side="right"))
            deliver_segment(prev_lo, hi, tick_t)
            prev_lo = hi
            collect_fuse(tick_t)
            harvest(tick_t)
            if pending_settles:
                for drained, settle_t in list(pending_settles.items()):
                    if settle_t < tick_t:
                        drained.settle(settle_t)
                        drained.active = False
                        drained.draining = False
                        del pending_settles[drained]
            for s, out in zip(servers, outstanding_vec.tolist()):
                s.outstanding = out
            ticks += 1
            before = len(scale_events)
            sim._apply_autoscaler_tick(
                tick_t, window_lat, window_arrivals, window_drops, scale_events
            )
            for ev in scale_events[before:]:
                drained = ev.server
                if ev.action == "drain" and drained.draining:
                    # Outstanding work remains: the python loop settles
                    # the replica when its last completion pops.  A
                    # draining replica receives no new arrivals, so its
                    # local loop can run dry now and the settle applies
                    # lazily before the first later tick.
                    runner = runners.get(drained.index)
                    if runner is not None and runner.events:
                        runner.pump(
                            (), (), (), (), float("inf"), finish, True
                        )
                        comps = runner.completions
                        if comps:
                            fin = np.fromiter(
                                (c[0] for c in comps), np.float64,
                                count=len(comps),
                            )
                            aidx = np.fromiter(
                                (c[1] for c in comps), np.int64,
                                count=len(comps),
                            )
                            runner.completions = []
                            fmax = float(fin.max())
                            if fmax > last_finish[drained.index]:
                                last_finish[drained.index] = fmax
                            pool.append((
                                fin, fin - arr_t[aidx],
                                codes[drained.model_name], drained.index,
                            ))
                    pending_settles[drained] = float(last_finish[drained.index])
            tick_t += window_s
        deliver_segment(prev_lo, n, float("inf"))
    else:
        deliver_segment(0, n, float("inf"))

    # Drain phase: no further ticks fire past the last arrival.
    for runner in runners.values():
        if runner.events:
            runner.pump((), (), (), (), float("inf"), finish, False)
        runner.completions = []
    if scaling:
        for drained, settle_t in pending_settles.items():
            drained.settle(settle_t)
            drained.active = False
            drained.draining = False

    # ---- final counters and summary ---------------------------------
    routed = server_of >= 0
    srv_routed = server_of[routed]
    counts = np.bincount(srv_routed, minlength=n_servers)
    items = np.bincount(
        srv_routed,
        weights=arr_size[routed].astype(np.float64),
        minlength=n_servers,
    )
    inwin_mask = routed & (arr_t >= warmup_s)
    inwin_mask[inwin_mask] &= finish[inwin_mask] <= horizon
    inwin = np.bincount(server_of[inwin_mask], minlength=n_servers)
    for i, s in enumerate(servers):
        s.completed = int(counts[i])
        s.items_done = int(items[i])
        s.completed_in_window = int(inwin[i])
        s.outstanding = 0
        s.settle(horizon)

    lat_all = finish - arr_t
    completions: dict[str, tuple] = {}
    empty = (np.empty(0), np.empty(0))
    for m in routable:
        completions[m] = empty
    for m in drop_order:
        completions.setdefault(m, empty)
    for model, code in codes.items():
        sel = routed & (arr_m == code)
        if not bool(sel.any()):
            continue
        fin_m = finish[sel]
        lat_m = lat_all[sel]
        o = np.argsort(fin_m, kind="stable")
        completions[model] = (fin_m[o], lat_m[o])

    local_pushes = sum(r.seq for r in runners.values())
    sim.last_event_count = n + direct_pushes + local_pushes + ticks
    sim.last_query_log = ()
    result = sim._summarize(
        completions, dropped, warmup_s, horizon, tuple(scale_events), None
    )
    return result


def run_vectorized_faults(sim, trace, warmup_s: float = 0.0):
    """Play a faulted ``trace`` through the vectorized core, exactly.

    Crash/blip/slow schedules only perturb the simulation at their
    event timestamps, so the horizon partitions into fault-free
    segments: each segment routes and delivers arrivals exactly like
    :func:`run_vectorized`, and at every segment boundary -- an
    autoscaler tick or a fault event, merged in heap pop order by
    :func:`repro.fleet.faults.iter_boundaries` -- the shared
    :class:`~repro.fleet.faults._FaultState` applies role changes,
    heap cancellation (killed in-flight queries), and service
    rescaling.  Results are bit-identical to the python *light* fault
    loop (``retries == 0``, no hedging, no observer -- the caller has
    verified eligibility), so ``core="auto"`` can take this path.
    """
    import gc

    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    try:
        return _run_vectorized_faults(sim, trace, warmup_s)
    finally:
        if gc_was_enabled:
            gc.enable()


def _run_vectorized_faults(sim, trace, warmup_s: float):
    from repro.fleet.faults import (
        _FaultState,
        _materialized_faults,
        iter_boundaries,
    )

    servers = sim.servers
    n_servers = len(servers)
    # Stochastic schedules draw against the stream's nominal end; fetch
    # it before ingest consumes the source (mirrors the engine's lazy
    # end_hint).  Materialized traces use their exact last arrival.
    end_hint = None
    if not isinstance(trace, (list, tuple)) and (
        sim.faults is not None
        and getattr(sim.faults, "stochastic_params", None) is not None
    ):
        end_hint = getattr(trace, "end_s", None)
    arr_t, arr_size, arr_pool, arr_m, model_names, codes = _ingest(sim, trace)
    n = len(arr_t)
    last_t = float(arr_t[-1])
    if isinstance(trace, (list, tuple)):
        end_hint = last_t
    fault_evs = tuple(_materialized_faults(sim, n_servers, end_hint))
    scaling = sim.autoscaler is not None
    window_s = sim.autoscaler.window_s if scaling else 0.0

    finish = np.empty(n, dtype=np.float64)
    server_of = np.full(n, -1, dtype=np.int64)
    killed = np.zeros(n, dtype=bool)
    routable = sim._routable
    policies = sim._policies

    window_lat: dict[str, list[float]] = {m: [] for m in routable}
    window_arrivals: dict[str, int] = {m: 0 for m in routable}
    window_drops: dict[str, int] = {m: 0 for m in routable}
    window_failures: dict[str, int] = {m: 0 for m in routable}
    failed: dict[str, int] = {m: 0 for m in routable}
    scale_events: list = []
    dropped: dict[str, int] = {m: 0 for m in routable}
    drop_order: list[str] = []

    runners: dict[int, _LocalReplicaSim] = {}
    # Per-server delivered direct-query index chunks: the crash-victim
    # lookback (finish >= crash time) needs to find them.
    delivered: dict[int, list] = {}
    outstanding_vec = np.zeros(n_servers, dtype=np.int64)
    last_finish = np.zeros(n_servers, dtype=np.float64)
    pool: list[tuple] = []  # (fin_arr, lat_arr, code, server_index)
    pending_settles: dict = {}
    draining_fuse: set = set()
    direct_pushes = 0
    ticks = 0
    fstate = _FaultState(servers, routable)

    def deliver(lo: int, hi: int, limit: float) -> None:
        """Route and deliver arrivals [lo, hi) -- the fault-free
        segment body.  Identical to run_vectorized's deliver_segment
        except for the victim-lookback bookkeeping and the slowed
        direct branch (a slow fault sets ``server.slow_factor``; the
        python loop then takes ``completion_time_slowed`` per query)."""
        nonlocal direct_pushes
        if lo >= hi:
            return
        seg_m = arr_m[lo:hi]
        seg_t = arr_t[lo:hi]
        for code in np.unique(seg_m).tolist():
            model = model_names[code]
            sel = np.nonzero(seg_m == code)[0]
            candidates = routable.get(model)
            if not candidates:
                n_drop = int((seg_t[sel] >= warmup_s).sum())
                if n_drop:
                    dropped[model] = dropped.get(model, 0) + n_drop
                if model not in dropped:
                    dropped[model] = dropped.get(model, 0)
                if model not in window_lat and model not in drop_order:
                    drop_order.append(model)
                if scaling:
                    window_drops[model] = window_drops.get(model, 0) + len(sel)
                continue
            picks = policies[model].choose_batch(candidates, len(sel))
            cand_idx = np.fromiter(
                (s.index for s in candidates), np.int64, count=len(candidates)
            )
            server_of[lo + sel] = cand_idx[np.asarray(picks)]
            if scaling:
                window_arrivals[model] += len(sel)
        seg_srv = server_of[lo:hi]
        order = np.argsort(seg_srv, kind="stable")
        sorted_srv = seg_srv[order]
        uniq, starts = np.unique(sorted_srv, return_index=True)
        bounds = starts.tolist() + [hi - lo]
        for j, srv_i in enumerate(uniq.tolist()):
            if srv_i < 0:
                continue
            gidx = lo + order[bounds[j]:bounds[j + 1]]
            s = servers[srv_i]
            ts = arr_t[gidx]
            szs = arr_size[gidx]
            pls = arr_pool[gidx]
            outstanding_vec[srv_i] += len(gidx)
            if s.direct is not None:
                factor = s.slow_factor
                if factor != 1.0:
                    # Slowed episode: the python loop calls the exact
                    # scalar recurrence per query; replicate it.
                    ct = s.direct.completion_time_slowed
                    fin = np.fromiter(
                        (
                            ct(t, sz, p, factor)
                            for t, sz, p in zip(
                                ts.tolist(), szs.tolist(), pls.tolist()
                            )
                        ),
                        np.float64,
                        count=len(gidx),
                    )
                else:
                    st = s.direct.stage
                    c = st.chunk_items
                    ps = st.pooling_sensitivity
                    maxsz = int(szs.max())
                    base_tab = _service_table(st, maxsz if maxsz > c else c)
                    full, rem = np.divmod(szs, c)
                    has_rem = rem > 0
                    nch = full + has_rem
                    csf = float(c)
                    if ps > 0.0:
                        svc_full = base_tab[c] * (
                            1.0 - ps + ps * ((pls * csf) / csf)
                        )
                        remf = rem.astype(np.float64)
                        svc_rem = base_tab[rem] * (
                            1.0 - ps
                            + ps * ((pls * remf) / np.where(has_rem, remf, 1.0))
                        )
                    else:
                        svc_full = np.full(len(ts), base_tab[c])
                        svc_rem = base_tab[rem]
                    ends = np.cumsum(nch)
                    rep_t = np.repeat(ts, nch)
                    rep_svc = np.repeat(svc_full, nch)
                    rep_svc[ends[has_rem] - 1] = svc_rem[has_rem]
                    starts_q = np.concatenate(([0], ends[:-1]))
                    avail = s.direct.avail
                    done = []
                    ap = done.append
                    for now, sv in zip(rep_t.tolist(), rep_svc.tolist()):
                        tf = avail[0]
                        d = (tf if tf > now else now) + sv
                        heapreplace(avail, d)
                        ap(d)
                    fin = np.maximum.reduceat(np.asarray(done), starts_q)
                finish[gidx] = fin
                direct_pushes += len(gidx)
                fmax = float(fin.max())
                if fmax > last_finish[srv_i]:
                    last_finish[srv_i] = fmax
                chunks = delivered.get(srv_i)
                if chunks is None:
                    delivered[srv_i] = [gidx]
                else:
                    chunks.append(gidx)
                if scaling:
                    pool.append((fin, fin - ts, codes[s.model_name], srv_i))
            else:
                runner = runners.get(srv_i)
                if runner is None:
                    runner = runners[srv_i] = _LocalReplicaSim(s.pipeline)
                runner.pump(
                    ts.tolist(), szs.tolist(), pls.tolist(), gidx.tolist(),
                    limit, finish, scaling,
                )

    def collect(limit: float) -> None:
        """Run every local loop up to ``limit`` and bank completions."""
        for srv_i, runner in runners.items():
            if runner.events:
                runner.pump((), (), (), (), limit, finish, scaling)
            if scaling:
                comps = runner.completions
                if comps:
                    fin = np.fromiter(
                        (c[0] for c in comps), np.float64, count=len(comps)
                    )
                    aidx = np.fromiter(
                        (c[1] for c in comps), np.int64, count=len(comps)
                    )
                    runner.completions = []
                    s = servers[srv_i]
                    fmax = float(fin.max())
                    if fmax > last_finish[srv_i]:
                        last_finish[srv_i] = fmax
                    pool.append(
                        (fin, fin - arr_t[aidx], codes[s.model_name], srv_i)
                    )

    def harvest(tick_t: float) -> None:
        """Feed the window ending at ``tick_t`` from the pool (same
        strict ``finish < tick_t`` membership as run_vectorized)."""
        nonlocal pool
        if not pool:
            return
        kept: list[tuple] = []
        per_code: dict[int, list[tuple]] = {}
        for fin, lats, code, srv_i in pool:
            mask = fin < tick_t
            n_in = int(mask.sum())
            if n_in == 0:
                kept.append((fin, lats, code, srv_i))
                continue
            if n_in == len(fin):
                taken = (fin, lats)
            else:
                keep = ~mask
                kept.append((fin[keep], lats[keep], code, srv_i))
                taken = (fin[mask], lats[mask])
            outstanding_vec[srv_i] -= n_in
            per_code.setdefault(code, []).append(taken)
        pool = kept
        for code, chunks in per_code.items():
            if len(chunks) == 1:
                fin_c, lat_c = chunks[0]
            else:
                fin_c = np.concatenate([c[0] for c in chunks])
                lat_c = np.concatenate([c[1] for c in chunks])
            o = np.argsort(fin_c, kind="stable")
            window_lat[model_names[code]] = (lat_c[o] * 1e3).tolist()

    def kill_in_flight(server, now: float) -> None:
        """Cancel a crashed replica's work (the light loop's victim
        semantics): every query with an outstanding attempt -- direct
        finishes at or past the crash, local heap batches, queued
        units -- fails at the crash timestamp."""
        nonlocal pool
        srv_i = server.index
        vict = None
        if server.direct is not None:
            chunks = delivered.get(srv_i)
            if chunks:
                gidx = np.concatenate(chunks) if len(chunks) > 1 else chunks[0]
                vict = gidx[finish[gidx] >= now]
                delivered[srv_i] = []
            server.direct.reset()
        else:
            runner = runners.get(srv_i)
            if runner is not None:
                vict_idx = runner.kill()
                if vict_idx:
                    vict = np.fromiter(
                        vict_idx, np.int64, count=len(vict_idx)
                    )
            else:
                server.pipeline.reset()
        if vict is not None and len(vict):
            killed[vict] = True
            # failed counts use the completions measurement window
            # (arrival after warmup, crash at or before the horizon);
            # the autoscaler's failure feed stays unfiltered.
            in_horizon = now <= last_t
            for code, at in zip(arr_m[vict].tolist(), arr_t[vict].tolist()):
                model = model_names[code]
                if in_horizon and at >= warmup_s:
                    failed[model] = failed.get(model, 0) + 1
                if scaling:
                    window_failures[model] = (
                        window_failures.get(model, 0) + 1
                    )
        if scaling:
            # Completed-but-unharvested samples survive the crash (the
            # python loop already decremented outstanding for them when
            # they popped); victims must never reach a window feed.
            kept_count = 0
            if pool:
                new_pool = []
                for entry in pool:
                    if entry[3] != srv_i:
                        new_pool.append(entry)
                        continue
                    fin, lats = entry[0], entry[1]
                    keep = fin < now
                    n_keep = int(keep.sum())
                    if n_keep:
                        if n_keep == len(fin):
                            new_pool.append(entry)
                        else:
                            new_pool.append(
                                (fin[keep], lats[keep], entry[2], srv_i)
                            )
                        kept_count += n_keep
                pool = new_pool
            # Harvest will still decrement for the kept samples, so
            # park outstanding exactly that far above the python zero.
            outstanding_vec[srv_i] = kept_count
        else:
            outstanding_vec[srv_i] = 0
        server.outstanding = 0
        last_finish[srv_i] = 0.0
        draining_fuse.discard(server)
        pending_settles.pop(server, None)

    # -- boundary loop -------------------------------------------------
    pos = 0
    for kind, item in iter_boundaries(
        fault_evs, window_s if scaling else 0.0, last_t
    ):
        bt = item if kind == "tick" else item.time_s
        hi = int(np.searchsorted(arr_t, bt, side="right"))
        deliver(pos, hi, bt)
        pos = hi
        collect(bt)
        if scaling:
            if draining_fuse:
                for s in list(draining_fuse):
                    runner = runners.get(s.index)
                    if runner is None or (
                        not runner.events and not any(runner.queues)
                    ):
                        pending_settles[s] = float(last_finish[s.index])
                        draining_fuse.discard(s)
            if pending_settles:
                for drained, settle_t in list(pending_settles.items()):
                    if settle_t < bt:
                        drained.settle(settle_t)
                        drained.active = False
                        drained.draining = False
                        del pending_settles[drained]
        if kind == "tick":
            harvest(bt)
            for s, out in zip(servers, outstanding_vec.tolist()):
                s.outstanding = out
            ticks += 1
            before = len(scale_events)
            sim._apply_autoscaler_tick(
                bt, window_lat, window_arrivals, window_drops, scale_events,
                window_failures=window_failures,
            )
            for ev in scale_events[before:]:
                drained = ev.server
                if ev.action == "drain" and drained.draining:
                    if drained.direct is not None:
                        # All its finishes are already known.
                        pending_settles[drained] = float(
                            last_finish[drained.index]
                        )
                    else:
                        # A fault boundary may land before this runner
                        # empties, so it cannot be pumped dry here; the
                        # settle is discovered at the boundary where it
                        # runs out of work.
                        draining_fuse.add(drained)
        else:
            hz = float("inf") if bt < last_t else last_t
            fstate.apply(item, bt, hz, kill_in_flight)

    # -- final fault-free stretch --------------------------------------
    deliver(pos, n, float("inf"))
    collect(float("inf"))
    if scaling:
        for s in list(draining_fuse):
            pending_settles[s] = float(last_finish[s.index])
        draining_fuse.clear()
        for drained, settle_t in pending_settles.items():
            drained.settle(settle_t)
            drained.active = False
            drained.draining = False

    # -- final counters and summary ------------------------------------
    routed = (server_of >= 0) & ~killed
    srv_routed = server_of[routed]
    counts = np.bincount(srv_routed, minlength=n_servers)
    items = np.bincount(
        srv_routed,
        weights=arr_size[routed].astype(np.float64),
        minlength=n_servers,
    )
    inwin_mask = routed & (arr_t >= warmup_s)
    inwin_mask[inwin_mask] &= finish[inwin_mask] <= last_t
    inwin = np.bincount(server_of[inwin_mask], minlength=n_servers)
    for i, s in enumerate(servers):
        s.completed = int(counts[i])
        s.items_done = int(items[i])
        s.completed_in_window = int(inwin[i])
        s.outstanding = 0
        s.settle(last_t)

    lat_all = finish - arr_t
    completions: dict[str, tuple] = {}
    empty = (np.empty(0), np.empty(0))
    for m in routable:
        completions[m] = empty
    for m in drop_order:
        completions.setdefault(m, empty)
    for model, code in codes.items():
        sel = routed & (arr_m == code)
        if not bool(sel.any()):
            continue
        fin_m = finish[sel]
        lat_m = lat_all[sel]
        o = np.argsort(fin_m, kind="stable")
        completions[model] = (fin_m[o], lat_m[o])

    local_pushes = sum(r.seq for r in runners.values())
    sim.last_event_count = (
        n + len(fault_evs) + direct_pushes + local_pushes + ticks
    )
    sim.last_tick_count = ticks
    sim.last_query_log = ()
    fault_info = {
        "failed": failed,
        "retried": {m: 0 for m in completions},
        "hedged": {m: 0 for m in completions},
        "events": tuple(fstate.applied),
        "downtime_s": fstate.close(last_t),
        "arrivals": n,
        "horizon": last_t,
        "ticks": ticks,
    }
    result = sim._summarize(
        completions, dropped, warmup_s, last_t, tuple(scale_events),
        fault_info,
    )
    return result


def run_epoch(sim, trace, warmup_s: float = 0.0):
    """Play ``trace`` through the fleet on the epoch-batched core.

    Queue-aware policies (``least`` / ``p2c``) read live outstanding
    counts per arrival, which the batch core cannot reproduce exactly.
    This core routes arrival *micro-epochs* instead: all arrivals
    within ``sim.epoch_ms`` of the epoch's first unrouted arrival are
    routed together against a queue-depth snapshot refreshed at the
    epoch start (completions retire strictly-earlier finishes from
    per-replica pending heaps), via
    :meth:`RoutingPolicy.snapshot_batch`.  Epochs never span an
    autoscaler tick.

    Individual routing draws therefore differ from the python core --
    this is a *statistically* equivalent leg, never chosen by
    ``core="auto"`` (the user opts in with ``core="vector-epoch"``);
    ``tests/test_fast_core.py``'s calibrated lane bounds the per-model
    p50/p99/violation/power drift.  Fault machinery is refused by the
    caller (mid-epoch kills would invalidate the snapshot contract).
    """
    import gc

    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    try:
        return _run_epoch(sim, trace, warmup_s)
    finally:
        if gc_was_enabled:
            gc.enable()




def _run_epoch(sim, trace, warmup_s: float):
    servers = sim.servers
    n_servers = len(servers)
    arr_t, arr_size, arr_pool, arr_m, model_names, codes = _ingest(sim, trace)
    n = len(arr_t)
    horizon = float(arr_t[-1])
    eps = sim.epoch_ms * 1e-3
    scaling = sim.autoscaler is not None
    window_s = sim.autoscaler.window_s if scaling else 0.0
    routable = sim._routable
    policies = sim._policies

    # The delivery loop is scalar per arrival (epoch buckets average a
    # handful of queries, far below numpy's fixed-overhead break-even),
    # so plain python lists back every per-arrival read and write; the
    # routing picks are the one per-arrival cost that vectorizes well
    # (see LeastOutstandingPolicy.snapshot_batch's k-way merge).
    tl = arr_t.tolist()
    szl = arr_size.tolist()
    pll = arr_pool.tolist()
    ml = arr_m.tolist()
    fin_l = [0.0] * n
    server_of = np.full(n, -1, dtype=np.int64)
    max_sz = int(arr_size.max())

    # Per-replica queue state for the snapshots: ``out_ct`` is the
    # routed-minus-retired count the router reads; ``pend`` holds the
    # known finish timestamps of that backlog (unsorted -- backlogs are
    # queue-depth sized), filtered strictly-before-the-cut whenever a
    # snapshot or tick needs the live count (strict: the python core
    # pops an arrival before a completion with the same timestamp).
    pend: list[list[float]] = [[] for _ in range(n_servers)]
    out_ct = [0] * n_servers
    last_finish = [0.0] * n_servers

    window_lat: dict[str, list[float]] = {m: [] for m in routable}
    window_arrivals: dict[str, int] = {m: 0 for m in routable}
    window_drops: dict[str, int] = {m: 0 for m in routable}
    win: dict[str, list] = {m: [] for m in routable}  # pending samples
    scale_events: list = []
    dropped: dict[str, int] = {m: 0 for m in routable}
    drop_order: list[str] = []
    pending_settles: dict = {}
    runners: dict[int, _LocalReplicaSim] = {}
    # Per-server (avail, table, chunk_items, ps, chunks_for) for the
    # scalar DirectStage recurrence, built on first routing.  Epoch
    # mode never injects faults, so caching ``avail`` is safe (only
    # ``DirectStage.reset`` replaces the list).
    direct_info: list = [None] * n_servers
    direct_pushes = 0
    ticks = 0

    def bank(srv_i: int, runner) -> None:
        """Move a runner's banked completions into the queue state."""
        comps = runner.completions
        if not comps:
            return
        runner.completions = []
        h = pend[srv_i]
        lf = last_finish[srv_i]
        w = win[servers[srv_i].model_name] if scaling else None
        for fin, gi in comps:
            h.append(fin)
            if fin > lf:
                lf = fin
            if w is not None:
                w.append((fin, fin - tl[gi]))
        last_finish[srv_i] = lf

    def prune(srv_i: int, cut: float) -> None:
        """Retire finishes strictly before ``cut`` from one backlog."""
        h = pend[srv_i]
        kept = [f for f in h if f >= cut]
        if len(kept) != len(h):
            out_ct[srv_i] -= len(h) - len(kept)
            pend[srv_i] = kept

    def do_tick(T: float) -> None:
        nonlocal ticks
        for srv_i, runner in runners.items():
            if runner.events:
                runner.pump((), (), (), (), T, fin_l, True)
            bank(srv_i, runner)
        for srv_i in range(n_servers):
            if pend[srv_i]:
                prune(srv_i, T)
        if pending_settles:
            for drained, settle_t in list(pending_settles.items()):
                if settle_t < T:
                    drained.settle(settle_t)
                    drained.active = False
                    drained.draining = False
                    del pending_settles[drained]
        for s, o in zip(servers, out_ct):
            s.outstanding = o
        for m, samples in win.items():
            if not samples:
                continue
            taken = [sm for sm in samples if sm[0] < T]
            if not taken:
                continue
            if len(taken) == len(samples):
                win[m] = []
            else:
                win[m] = [sm for sm in samples if sm[0] >= T]
            taken.sort()
            window_lat[m] = [lat * 1e3 for _, lat in taken]
        ticks += 1
        before = len(scale_events)
        sim._apply_autoscaler_tick(
            T, window_lat, window_arrivals, window_drops, scale_events
        )
        for ev in scale_events[before:]:
            drained = ev.server
            if ev.action == "drain" and drained.draining:
                # No new arrivals can land here: run it dry and settle
                # lazily at its last completion, before a later tick.
                srv_i = drained.index
                runner = runners.get(srv_i)
                if runner is not None and runner.events:
                    runner.pump((), (), (), (), float("inf"), fin_l, True)
                    bank(srv_i, runner)
                pending_settles[drained] = last_finish[srv_i]

    # -- the epoch loop ------------------------------------------------
    tick_t = window_s if scaling else float("inf")
    pos = 0
    while pos < n:
        t0 = tl[pos]
        while tick_t <= t0 and tick_t < horizon:
            do_tick(tick_t)
            tick_t += window_s
        t1 = t0 + eps
        if tick_t < t1:
            t1 = tick_t  # epochs never span a tick
        hi = int(np.searchsorted(arr_t, t1, side="left"))
        if hi <= pos:
            hi = pos + 1  # degenerate epoch (eps underflow): one arrival
        # Bucket the epoch's arrivals by model in bulk: epochs hold
        # hundreds of arrivals at fleet scale, so numpy masks beat a
        # python scan here (unlike the per-server delivery buckets,
        # which stay a handful of queries each and remain scalar).
        seg = arr_m[pos:hi]
        code0 = ml[pos]
        if bool((seg == code0).all()):
            groups = ((code0, None),)
        else:
            groups = tuple(
                (int(c), np.nonzero(seg == c)[0] + pos)
                for c in np.unique(seg).tolist()
            )
        buckets: dict[int, list[int]] = {}
        for code, idxs_np in groups:
            model = model_names[code]
            candidates = routable.get(model)
            cnt = hi - pos if idxs_np is None else len(idxs_np)
            if not candidates:
                if idxs_np is None:
                    nd = int(np.count_nonzero(arr_t[pos:hi] >= warmup_s))
                else:
                    nd = int(np.count_nonzero(arr_t[idxs_np] >= warmup_s))
                if nd:
                    dropped[model] = dropped.get(model, 0) + nd
                if model not in dropped:
                    dropped[model] = dropped.get(model, 0)
                if model not in window_lat and model not in drop_order:
                    drop_order.append(model)
                if scaling:
                    window_drops[model] = window_drops.get(model, 0) + cnt
                continue
            # Refresh this stream's queue snapshot at the epoch start:
            # pump candidate runners to t0 and retire finishes < t0.
            outs = []
            cil = []
            ap = outs.append
            for s_c in candidates:
                ci = s_c.index
                cil.append(ci)
                runner = runners.get(ci)
                if runner is not None:
                    if runner.events:
                        runner.pump((), (), (), (), t0, fin_l, True)
                    bank(ci, runner)
                if pend[ci]:
                    prune(ci, t0)
                ap(out_ct[ci])
            picks = policies[model].snapshot_batch(candidates, outs, cnt)
            if type(picks) is list:
                picks = np.asarray(picks, dtype=np.int64)
            if scaling:
                window_arrivals[model] += cnt
            if idxs_np is None:
                idxs_np = np.arange(pos, hi, dtype=np.int64)
            sis = np.asarray(cil, dtype=np.int64)[picks]
            server_of[idxs_np] = sis
            for j, c_add in enumerate(
                np.bincount(picks, minlength=len(cil)).tolist()
            ):
                if c_add:
                    out_ct[cil[j]] += c_add
            # Group picks by server: a stable sort keeps each server's
            # slice in arrival order, matching the scalar apply loop.
            order = np.argsort(sis, kind="stable")
            gs = idxs_np[order].tolist()
            ss = sis[order]
            bounds = (np.nonzero(ss[1:] != ss[:-1])[0] + 1).tolist()
            bounds.append(cnt)
            a = 0
            for b_end in bounds:
                si = int(ss[a])
                chunk = gs[a:b_end]
                prev = buckets.get(si)
                if prev is None:
                    buckets[si] = chunk
                else:
                    prev.extend(chunk)
                a = b_end
        for si, idxs in buckets.items():
            s = servers[si]
            if s.direct is not None:
                info = direct_info[si]
                if info is None:
                    st = s.direct.stage
                    c = st.chunk_items
                    info = direct_info[si] = (
                        s.direct.avail,
                        _service_list(st, max_sz if max_sz > c else c),
                        c,
                        st.pooling_sensitivity,
                        st.chunks_for,
                    )
                avail, tab, c, ps, chunks_for = info
                h = pend[si]
                hap = h.append
                lf = last_finish[si]
                w = win[s.model_name] if scaling else None
                for i in idxs:
                    t = tl[i]
                    sz = szl[i]
                    # The exact DirectStage recurrence, scalar.
                    if sz <= c:
                        base = tab[sz]
                        if ps > 0.0:
                            pl = pll[i]
                            base = base * (1.0 - ps + ps * ((pl * sz) / sz))
                        tf = avail[0]
                        d = (tf if tf > t else t) + base
                        heapreplace(avail, d)
                    else:
                        pl = pll[i]
                        d = t
                        for chunk in chunks_for(sz):
                            base = tab[chunk]
                            if ps > 0.0:
                                base = base * (
                                    1.0 - ps + ps * ((pl * chunk) / chunk)
                                )
                            tf = avail[0]
                            dd = (tf if tf > t else t) + base
                            heapreplace(avail, dd)
                            if dd > d:
                                d = dd
                    fin_l[i] = d
                    hap(d)
                    if d > lf:
                        lf = d
                    if w is not None:
                        w.append((d, d - t))
                last_finish[si] = lf
                direct_pushes += len(idxs)
            else:
                runner = runners.get(si)
                if runner is None:
                    runner = runners[si] = _LocalReplicaSim(s.pipeline)
                runner.pump(
                    [tl[i] for i in idxs],
                    [szl[i] for i in idxs],
                    [pll[i] for i in idxs],
                    idxs, t1, fin_l, True,
                )
                bank(si, runner)
        pos = hi

    # Ticks between the last arrival's epoch and the horizon.
    while tick_t < horizon:
        do_tick(tick_t)
        tick_t += window_s

    # -- drain ---------------------------------------------------------
    for srv_i, runner in runners.items():
        if runner.events:
            runner.pump((), (), (), (), float("inf"), fin_l, True)
        bank(srv_i, runner)
    for drained, settle_t in pending_settles.items():
        drained.settle(settle_t)
        drained.active = False
        drained.draining = False

    # -- final counters and summary ------------------------------------
    finish = np.asarray(fin_l)
    routed = server_of >= 0
    srv_routed = server_of[routed]
    counts = np.bincount(srv_routed, minlength=n_servers)
    items = np.bincount(
        srv_routed,
        weights=arr_size[routed].astype(np.float64),
        minlength=n_servers,
    )
    inwin_mask = routed & (arr_t >= warmup_s)
    inwin_mask[inwin_mask] &= finish[inwin_mask] <= horizon
    inwin = np.bincount(server_of[inwin_mask], minlength=n_servers)
    for i, s in enumerate(servers):
        s.completed = int(counts[i])
        s.items_done = int(items[i])
        s.completed_in_window = int(inwin[i])
        s.outstanding = 0
        s.settle(horizon)

    lat_all = finish - arr_t
    completions: dict[str, tuple] = {}
    empty = (np.empty(0), np.empty(0))
    for m in routable:
        completions[m] = empty
    for m in drop_order:
        completions.setdefault(m, empty)
    for model, code in codes.items():
        msel = routed & (arr_m == code)
        if not bool(msel.any()):
            continue
        fin_m = finish[msel]
        lat_m = lat_all[msel]
        o = np.argsort(fin_m, kind="stable")
        completions[model] = (fin_m[o], lat_m[o])

    local_pushes = sum(r.seq for r in runners.values())
    sim.last_event_count = n + direct_pushes + local_pushes + ticks
    sim.last_tick_count = ticks
    sim.last_query_log = ()
    return sim._summarize(
        completions, dropped, warmup_s, horizon, tuple(scale_events), None
    )
