"""Trace-driven load generation (the paper's Fig. 13 load generator).

Query arrivals follow a Poisson process (Section I cites the Poisson
arrival pattern of production services); sizes come from the workload's
heavy-tail distribution.  A trace is just a list of queries, so traces
can also be synthesized for a diurnal day by chaining segments with
different rates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.queries import Query, QueryWorkload

__all__ = ["generate_trace", "PoissonLoadGenerator"]


def generate_trace(
    workload: QueryWorkload,
    arrival_rate_qps: float,
    duration_s: float,
    seed: int = 0,
    start_s: float = 0.0,
    first_id: int = 0,
) -> list[Query]:
    """Generate a Poisson query trace.

    Args:
        workload: Size/pooling distributions to sample.
        arrival_rate_qps: Mean arrival rate.
        duration_s: Trace length.
        seed: RNG seed (traces are reproducible).
        start_s: Timestamp of the window start.
        first_id: Id of the first query (for chaining segments).

    Returns:
        Queries sorted by arrival time.
    """
    if arrival_rate_qps <= 0:
        raise ValueError("arrival rate must be positive")
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    rng = np.random.default_rng(seed)
    # Draw arrival count then sort uniforms: equivalent to a Poisson
    # process and avoids growing a list of exponential gaps.  All
    # sampling and clamping is vectorized; ``tolist`` converts to
    # Python scalars in one C pass (bit-identical to per-element
    # ``float``/``int``/``max`` conversions, several times faster).
    count = rng.poisson(arrival_rate_qps * duration_s)
    times = (np.sort(rng.uniform(0.0, duration_s, size=count)) + start_s).tolist()
    sizes = workload.size_dist.sample(rng, count).tolist()
    if workload.pooling_cv > 0:
        shape = 1.0 / workload.pooling_cv**2
        pooling = rng.gamma(shape, 1.0 / shape, size=count)
    else:
        pooling = np.ones(count)
    pooling = np.maximum(pooling, 1e-3).tolist()
    # Query._make skips per-field validation -- every field above is
    # already validated in bulk (sizes clipped >= min_size >= 1, times
    # shifted by a non-negative start, pooling clamped positive).
    return list(
        map(
            Query._make,
            zip(range(first_id, first_id + count), times, sizes, pooling),
        )
    )


@dataclass
class PoissonLoadGenerator:
    """Stateful generator for chaining variable-rate trace segments.

    Used by the cluster manager to replay a diurnal day: each
    provisioning interval generates a segment at the interval's rate.
    """

    workload: QueryWorkload
    seed: int = 0

    def __post_init__(self) -> None:
        self._next_id = 0
        self._clock_s = 0.0
        self._segment = 0

    def next_segment(self, arrival_rate_qps: float, duration_s: float) -> list[Query]:
        """Generate the next contiguous segment of the trace."""
        queries = generate_trace(
            self.workload,
            arrival_rate_qps,
            duration_s,
            seed=self.seed + self._segment,
            start_s=self._clock_s,
            first_id=self._next_id,
        )
        self._segment += 1
        self._clock_s += duration_s
        self._next_id += len(queries)
        return queries
