"""Trace-driven load generation (the paper's Fig. 13 load generator).

Historically this module owned the Poisson sampling; the arrival layer
now lives in :mod:`repro.traces` (piecewise Poisson, MMPP bursts,
diurnal ramps, recorded-trace replay) and this module is the thin
backward-compatible adapter: :func:`generate_trace` delegates to
:func:`repro.traces.arrivals.poisson_segment`, which preserves the
historical draw sequence bit-for-bit (pinned by
``tests/test_perf_equivalence.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.queries import Query, QueryWorkload
from repro.traces.arrivals import poisson_segment

__all__ = ["generate_trace", "PoissonLoadGenerator"]


def generate_trace(
    workload: QueryWorkload,
    arrival_rate_qps: float,
    duration_s: float,
    seed: int = 0,
    start_s: float = 0.0,
    first_id: int = 0,
) -> list[Query]:
    """Generate a Poisson query trace.

    Args:
        workload: Size/pooling distributions to sample.
        arrival_rate_qps: Mean arrival rate.
        duration_s: Trace length.
        seed: RNG seed (traces are reproducible).
        start_s: Timestamp of the window start.
        first_id: Id of the first query (for chaining segments).

    Returns:
        Queries sorted by arrival time.
    """
    return poisson_segment(
        workload,
        arrival_rate_qps,
        duration_s,
        seed=seed,
        start_s=start_s,
        first_id=first_id,
    )


@dataclass
class PoissonLoadGenerator:
    """Stateful generator for chaining variable-rate trace segments.

    Used by the cluster manager to replay a diurnal day: each
    provisioning interval generates a segment at the interval's rate.
    Segment ``k`` draws with seed ``seed + k`` -- the same schedule
    :class:`repro.traces.PiecewisePoissonProcess` uses, so a chain of
    ``next_segment`` calls equals one streamed process.
    """

    workload: QueryWorkload
    seed: int = 0

    def __post_init__(self) -> None:
        self._next_id = 0
        self._clock_s = 0.0
        self._segment = 0

    def next_segment(self, arrival_rate_qps: float, duration_s: float) -> list[Query]:
        """Generate the next contiguous segment of the trace."""
        queries = poisson_segment(
            self.workload,
            arrival_rate_qps,
            duration_s,
            seed=self.seed + self._segment,
            start_s=self._clock_s,
            first_id=self._next_id,
        )
        self._segment += 1
        self._clock_s += duration_s
        self._next_id += len(queries)
        return queries
