"""Perf-regression harness: timed, seeded scenarios over the hot paths.

Classic HPC benchmarking practice (RZBENCH and its descendants) is to
establish a reproducible measurement harness *first* and optimize the
measured bottlenecks second.  This module is that harness for the
repo's four hot paths:

- ``search``        -- the gradient task-scheduling search for a pair;
- ``profile_table`` -- full classification-table construction (the 60
  workload/server efficiency tuples of Fig. 9b);
- ``loadgen``       -- Poisson trace synthesis;
- ``single_node_des`` -- the single-server discrete-event simulation;
- ``fleet_replay``  -- the request-level fleet replay (50 servers x
  100k queries in the full configuration);
- ``fleet_replay_fastcore`` -- the same replay under round-robin
  routing through the vectorized batch core vs the per-event python
  core (CI gates ``speedup_vector_vs_python`` > 3.0 on the full
  configuration), asserting both cores agree on every per-model
  statistic;
- ``fleet_replay_streaming`` -- the same replay fed by a lazily
  streamed arrival process instead of the materialized list, reporting
  the wall-time ratio against the list path (CI bounds it at < 1.1)
  and asserting both agree exactly;
- ``fleet_replay_faultpath`` -- the same replay through the
  fault-aware loop with an empty schedule, reporting its wall-time
  ratio against the fault-free loop (CI bounds it at < 1.2x) and
  asserting the two agree exactly.
- ``fleet_replay_carbonpath`` -- the same replay with a carbon trace
  attached (activation-window recording plus post-run gCO2 pricing)
  vs carbon-off, reporting the ratio CI bounds at < 1.1x and
  asserting the realtime report agrees float-for-float; a third leg
  adds deferrable jobs for trend inspection.
- ``fleet_replay_observed`` -- the same replay with the observability
  probe off vs plain construction (CI bounds the dormant-guard ratio
  at < 1.05x), with per-query tracing vs the tracked loop it rides on
  (< 1.5x), and with streaming metrics (ratio recorded for trend),
  asserting every leg agrees float-for-float.
- ``fault_aware_provisioning`` -- the availability -> ``R`` fixpoint
  search under a scripted rack-outage schedule (several fault-injected
  replays per run); wall time tracks the cost of closing the loop.

Every scenario runs on fixed seeds and reports machine-readable
metrics (wall seconds, queries/sec, events/sec, and the process RSS
high-water mark after the scenario) so each future PR has
a trajectory to defend.  ``python -m repro.cli bench`` drives it and
writes ``BENCH_perf.json``; ``benchmarks/bench_perf_core.py`` wraps it
for the pytest-benchmark lane.

The harness deliberately sticks to long-stable public APIs (and
feature-detects newer ones such as ``OfflineProfiler.profile(jobs=)``)
so the *same file* can be dropped onto an older checkout to measure a
baseline: BENCH_perf.json's ``baseline``/``speedup`` blocks are
produced exactly that way.
"""

from __future__ import annotations

import json
import os
import platform
import time
from typing import Any, Callable

__all__ = [
    "SCENARIOS",
    "BENCH_GATES",
    "run_scenario",
    "run_bench",
    "attach_baseline",
    "compare_bench",
    "format_bench",
    "write_bench_json",
]

#: Scenario registry in execution order (later scenarios reuse earlier
#: artifacts -- the classification table feeds the DES scenarios).
SCENARIOS: tuple[str, ...] = (
    "search",
    "profile_table",
    "loadgen",
    "single_node_des",
    "fleet_replay",
    "fleet_replay_fastcore",
    "fleet_replay_queueaware",
    "fleet_replay_streaming",
    "fleet_replay_faultpath",
    "fleet_replay_carbonpath",
    "fleet_replay_observed",
    "fleet_replay_sharded",
    "fleet_replay_sketchmem",
    "fault_aware_provisioning",
)

#: Scenario dimensions.  ``quick`` keeps CI smoke runs in seconds;
#: ``full`` is the acceptance configuration (50 servers x 100k queries,
#: all 10 server types x all 6 models).
_QUICK = {
    "profile_servers": ("T2", "T3", "T7"),
    "profile_models": ("DLRM-RMC1", "DLRM-RMC2"),
    "search_pairs": (("T2", "DLRM-RMC1"),),
    "loadgen_queries": 50_000,
    "des_queries": 10_000,
    "fleet_servers": 12,
    "fleet_queries": 10_000,
    "provision_fleet": {"T2": 12},
    "provision_load_units": 2.7,  # demand in T2 replica-equivalents
    "provision_duration_s": 1.5,
    "sketch_queries": 20_000,
    "queueaware_servers": 24,
    "queueaware_queries": 20_000,
}
_FULL = {
    "profile_servers": None,  # all server types
    "profile_models": None,  # all models
    "search_pairs": (("T2", "DLRM-RMC1"), ("T7", "DLRM-RMC2")),
    "loadgen_queries": 200_000,
    "des_queries": 50_000,
    "fleet_servers": 50,
    "fleet_queries": 100_000,
    "provision_fleet": {"T2": 28},
    "provision_load_units": 8.1,
    "provision_duration_s": 3.0,
    "sketch_queries": 10_000_000,
    # The queue-aware scenario runs one model fleet-wide: the python
    # least-outstanding scan is O(replicas) per arrival, so the full
    # configuration doubles the fleet to size the gap the epoch core
    # closes (and doubles the queries so the walls are not sub-100ms).
    "queueaware_servers": 100,
    "queueaware_queries": 200_000,
}

#: Offered load for the DES scenarios as a fraction of capacity; the
#: regime the slow-lane fleet test also measures.
_RHO = 0.75


def _config(quick: bool) -> dict[str, Any]:
    return dict(_QUICK if quick else _FULL)


def _timed(fn: Callable[[], Any]) -> tuple[float, Any]:
    start = time.perf_counter()
    out = fn()
    return time.perf_counter() - start, out


def _max_rss_kb() -> int | None:
    """Process RSS high-water mark in KiB (None where unsupported).

    ``ru_maxrss`` is monotone over the process lifetime, so the value
    recorded after each scenario is a running peak: the scenario whose
    reading jumps is the one that grew it.  A cheap OS counter is used
    instead of ``tracemalloc`` so the wall-time numbers stay honest.
    """
    try:
        import resource
    except ImportError:  # non-POSIX platform
        return None
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB; macOS reports bytes.
    return rss // 1024 if platform.system() == "Darwin" else rss


class _Context:
    """Artifacts shared across scenarios of one bench run."""

    def __init__(
        self, quick: bool, seed: int, jobs: int, core: str = "python"
    ) -> None:
        self.quick = quick
        self.seed = seed
        self.jobs = jobs
        self.core = core
        self.cfg = _config(quick)
        self.table = None  # classification table, set by profile_table

    def server_names(self) -> tuple[str, ...]:
        from repro.hardware import SERVER_TYPES

        return self.cfg["profile_servers"] or tuple(SERVER_TYPES)

    def model_names(self) -> tuple[str, ...]:
        from repro.models import MODEL_NAMES

        return self.cfg["profile_models"] or tuple(MODEL_NAMES)

    def classification_table(self):
        """The scenario table, profiling a small slice on demand."""
        if self.table is None:
            from repro.hardware import SERVER_TYPES
            from repro.models import build_model
            from repro.scheduling import OfflineProfiler

            servers = [SERVER_TYPES[s] for s in ("T2", "T3", "T7")]
            models = [build_model(m) for m in ("DLRM-RMC1", "DLRM-RMC2")]
            self.table = _profile(OfflineProfiler(), servers, models, self.jobs)
        return self.table


def _profile(profiler, servers, models, jobs):
    """Call ``profile`` with ``jobs`` when supported (newer trees)."""
    try:
        return profiler.profile(servers, models, jobs=jobs)
    except TypeError:
        return profiler.profile(servers, models)


# ----------------------------------------------------------------------
# scenarios
# ----------------------------------------------------------------------


def _scenario_search(ctx: _Context) -> dict[str, Any]:
    from repro.hardware import SERVER_TYPES
    from repro.models import build_model
    from repro.scheduling import HerculesTaskScheduler
    from repro.sim import ServerEvaluator

    pairs = ctx.cfg["search_pairs"]
    built = [
        (ServerEvaluator(SERVER_TYPES[s]), build_model(m)) for s, m in pairs
    ]

    def run():
        return [
            HerculesTaskScheduler(evaluator, model).search()
            for evaluator, model in built
        ]

    wall, results = _timed(run)
    evaluations = sum(r.evaluations for r in results)
    return {
        "wall_s": wall,
        "pairs": len(pairs),
        "evaluations": evaluations,
        "evaluations_per_s": evaluations / wall if wall > 0 else 0.0,
        "feasible": sum(1 for r in results if r.feasible),
    }


def _scenario_profile_table(ctx: _Context) -> dict[str, Any]:
    from repro.hardware import SERVER_TYPES
    from repro.models import build_model
    from repro.scheduling import OfflineProfiler

    servers = [SERVER_TYPES[s] for s in ctx.server_names()]
    models = [build_model(m) for m in ctx.model_names()]

    wall, table = _timed(
        lambda: _profile(OfflineProfiler(), servers, models, ctx.jobs)
    )
    if not ctx.quick:
        ctx.table = table  # full table covers the fleet's slice
    pairs = len(table.entries)
    return {
        "wall_s": wall,
        "pairs": pairs,
        "pairs_per_s": pairs / wall if wall > 0 else 0.0,
        "feasible_pairs": sum(1 for t in table.entries.values() if t.feasible),
        "jobs": ctx.jobs,
    }


def _scenario_loadgen(ctx: _Context) -> dict[str, Any]:
    from repro.sim import QueryWorkload
    from repro.sim.loadgen import generate_trace

    workload = QueryWorkload.for_model(120)
    queries = ctx.cfg["loadgen_queries"]
    qps = 10_000.0
    duration = queries / qps

    wall, trace = _timed(
        lambda: generate_trace(workload, qps, duration, seed=ctx.seed)
    )
    return {
        "wall_s": wall,
        "queries": len(trace),
        "queries_per_s": len(trace) / wall if wall > 0 else 0.0,
    }


def _scenario_single_node_des(ctx: _Context) -> dict[str, Any]:
    from repro.hardware import SERVER_TYPES
    from repro.models import build_model
    from repro.sim import QueryWorkload
    from repro.sim.loadgen import generate_trace
    from repro.sim.server_sim import DiscreteEventServerSim, build_stages
    from repro.sim.evaluator import ServerEvaluator
    from repro.models.partition import partition_model

    table = ctx.classification_table()
    tup = table.get("T2", "DLRM-RMC1")
    model = build_model("DLRM-RMC1")
    workload = QueryWorkload.for_model(model.config.mean_query_size)
    evaluator = ServerEvaluator(SERVER_TYPES["T2"])
    partitioned = partition_model(model)
    stages = build_stages(evaluator, partitioned, workload, tup.plan)

    queries = ctx.cfg["des_queries"]
    qps = _RHO * tup.qps
    duration = queries / qps
    trace = generate_trace(workload, qps, duration, seed=ctx.seed + 1)

    sim = DiscreteEventServerSim(list(stages))
    wall, result = _timed(lambda: sim.run(trace, warmup_s=duration * 0.1))
    events = getattr(result, "events", None)
    return {
        "wall_s": wall,
        "queries": len(trace),
        "queries_per_s": len(trace) / wall if wall > 0 else 0.0,
        "events": events,
        "events_per_s": (events / wall) if (events and wall > 0) else None,
        "completed": result.completed,
    }


def _fleet_replay_inputs(ctx: _Context):
    """Build the fleet-replay scenario inputs (shared by both variants)."""
    from repro.cluster.state import Allocation
    from repro.fleet import build_fleet, build_fleet_trace
    from repro.models import build_model
    from repro.sim import QueryWorkload

    table = ctx.classification_table()
    model_names = ("DLRM-RMC1", "DLRM-RMC2")
    models = {n: build_model(n) for n in model_names}
    workloads = {
        n: QueryWorkload.for_model(m.config.mean_query_size)
        for n, m in models.items()
    }

    # Availability-shaped allocation over T2/T3/T7 scaled to the target
    # fleet size (the full configuration reproduces the slow-lane 50).
    total = ctx.cfg["fleet_servers"]
    shares = {
        "DLRM-RMC1": {"T2": 0.36, "T3": 0.12, "T7": 0.08},
        "DLRM-RMC2": {"T2": 0.24, "T3": 0.12, "T7": 0.08},
    }
    allocation = Allocation()
    for name, row in shares.items():
        for srv, share in row.items():
            allocation.add(srv, name, max(1, round(total * share)))

    capacity = {
        n: sum(
            c * table.qps(srv, m)
            for (srv, m), c in allocation.counts.items()
            if m == n
        )
        for n in model_names
    }
    rate = _RHO * sum(capacity.values())
    queries = ctx.cfg["fleet_queries"]
    duration = queries / rate
    segments = {n: [(_RHO * capacity[n], duration)] for n in model_names}
    trace = build_fleet_trace(workloads, segments, seed=ctx.seed)
    try:  # the same traffic as a lazily-streamed source (newer trees)
        from repro.traces import FleetArrivals, PiecewisePoissonProcess

        stream = FleetArrivals(
            {
                n: PiecewisePoissonProcess(workloads[n], segs)
                for n, segs in segments.items()
            },
            seed=ctx.seed,
        )
    except ImportError:
        stream = None

    def make_servers():
        return build_fleet(allocation, table, models, workloads)

    sla = {n: m.sla_ms for n, m in models.items()}
    return make_servers, trace, duration, sla, stream


def _scenario_fleet_replay(ctx: _Context) -> dict[str, Any]:
    from repro.fleet import FleetSimulator

    make_servers, trace, duration, sla, _ = _fleet_replay_inputs(ctx)
    servers = make_servers()
    try:
        # Pinned to ctx.core (default "python") so the scenario's
        # trajectory keeps measuring the per-event loop across
        # checkouts; `bench --core` overrides.  Note p2c is queue-aware,
        # so "auto" falls back to the python core here anyway.
        sim = FleetSimulator(
            servers, policy="p2c", sla_ms=sla, seed=ctx.seed, core=ctx.core
        )
    except TypeError:  # pre-core checkout (baseline measurements)
        sim = FleetSimulator(servers, policy="p2c", sla_ms=sla, seed=ctx.seed)
    wall, result = _timed(lambda: sim.run(trace, warmup_s=duration * 0.1))
    events = getattr(result, "events", None)
    return {
        "wall_s": wall,
        "servers": len(servers),
        "queries": len(trace),
        "queries_per_s": len(trace) / wall if wall > 0 else 0.0,
        "events": events,
        "events_per_s": (events / wall) if (events and wall > 0) else None,
        "completed": result.total_completed,
    }


def _scenario_fleet_replay_fastcore(ctx: _Context) -> dict[str, Any]:
    """Vectorized batch core vs the exact per-event core, same traffic.

    Replays the identical fleet/trace under round-robin routing (the
    measurement configuration the vectorized core targets) through
    both cores.  ``speedup_vector_vs_python`` is the number CI's
    perf-smoke job gates at > 3.0 on the full configuration, and the
    two replays must agree on every per-model statistic -- a built-in
    differential smoke check of the batched delivery.  Best-of-three
    walls per side keep single-sample scheduler noise out of the gate
    (one repetition more than the ratio scenarios: this gate is the
    tightest in CI).
    """
    from repro.fleet import FleetSimulator

    try:
        import numpy  # noqa: F401  (the vectorized core requires it)
    except ImportError:
        return {"skipped": "numpy absent (core='vector' unavailable)"}

    make_servers, trace, duration, sla, _ = _fleet_replay_inputs(ctx)

    def replay(core):
        walls, result = [], None
        for _ in range(3):
            try:
                sim = FleetSimulator(
                    make_servers(), policy="rr", sla_ms=sla, seed=ctx.seed,
                    core=core,
                )
            except TypeError:  # pre-core checkout (baseline measurements)
                return None, None
            wall, result = _timed(lambda: sim.run(trace, warmup_s=duration * 0.1))
            walls.append(wall)
        return min(walls), result

    wall_py, result_py = replay("python")
    if result_py is None:
        return {"skipped": "core selection absent"}
    wall_vec, result_vec = replay("vector")
    if result_vec.per_model != result_py.per_model:
        raise AssertionError(
            "vectorized core diverged from the python core on per-model stats"
        )
    if result_vec.events != result_py.events:
        raise AssertionError(
            "vectorized core event count diverged from the python core"
        )

    events = getattr(result_vec, "events", None)
    return {
        "wall_s": wall_vec,
        "wall_python_s": wall_py,
        "speedup_vector_vs_python": wall_py / wall_vec if wall_vec > 0 else None,
        "servers": ctx.cfg["fleet_servers"],
        "queries": len(trace),
        "queries_per_s": len(trace) / wall_vec if wall_vec > 0 else 0.0,
        "events": events,
        "events_per_s": (events / wall_vec) if (events and wall_vec > 0) else None,
        "completed": result_vec.total_completed,
    }


def _scenario_fleet_replay_queueaware(ctx: _Context) -> dict[str, Any]:
    """Epoch-batched queue-aware routing vs the per-event python core.

    One model spread fleet-wide under least-outstanding routing -- the
    configuration where the python core pays an O(replicas) scan per
    arrival and ``core='vector-epoch'`` routes whole arrival
    micro-epochs against one queue snapshot (a k-way merge, see
    ``LeastOutstandingPolicy.snapshot_batch``).
    ``speedup_vector_epoch_vs_python`` is the number CI gates at > 2.0
    on the full configuration, best-of-three walls per side.  Unlike
    the exact-core scenarios the two replays are *statistically*
    equivalent, not bit-identical (queue depths refresh at epoch
    boundaries); the scenario bounds the drift in-process: completed
    counts within 1%, average power within 2%, p50 within 2x.
    """
    # repro.fleet first: importing repro.cluster.state before it trips
    # the cluster -> scheduling -> fleet -> cluster import cycle.
    from repro.fleet import FleetSimulator, build_fleet, build_fleet_trace
    from repro.cluster.state import Allocation
    from repro.models import build_model
    from repro.sim import QueryWorkload

    try:
        import numpy  # noqa: F401  (the epoch core requires it)
    except ImportError:
        return {"skipped": "numpy absent (core='vector-epoch' unavailable)"}

    table = ctx.classification_table()
    model = "DLRM-RMC1"
    models = {model: build_model(model)}
    workloads = {
        model: QueryWorkload.for_model(models[model].config.mean_query_size)
    }
    total = ctx.cfg["queueaware_servers"]
    allocation = Allocation()
    for srv, share in (("T2", 0.60), ("T3", 0.24), ("T7", 0.16)):
        allocation.add(srv, model, max(1, round(total * share)))
    capacity = sum(
        c * table.qps(srv, m) for (srv, m), c in allocation.counts.items()
    )
    rate = _RHO * capacity
    queries = ctx.cfg["queueaware_queries"]
    duration = queries / rate
    trace = build_fleet_trace(workloads, {model: [(rate, duration)]}, seed=ctx.seed)
    sla = {model: models[model].sla_ms}

    def replay(core):
        walls, result = [], None
        for _ in range(3):
            try:
                sim = FleetSimulator(
                    build_fleet(allocation, table, models, workloads),
                    policy="least", sla_ms=sla, seed=ctx.seed, core=core,
                )
            except (TypeError, ValueError):
                # pre-core or pre-epoch checkout (baseline measurements)
                return None, None
            wall, result = _timed(lambda: sim.run(trace, warmup_s=duration * 0.1))
            walls.append(wall)
        return min(walls), result

    wall_py, result_py = replay("python")
    if result_py is None:
        return {"skipped": "core selection absent"}
    wall_epoch, result_epoch = replay("vector-epoch")
    if result_epoch is None:
        return {"skipped": "core='vector-epoch' absent"}

    stats_py = result_py.per_model[model]
    stats_epoch = result_epoch.per_model[model]
    if abs(stats_epoch.completed - stats_py.completed) > 0.01 * stats_py.completed:
        raise AssertionError(
            "epoch core completed-count drifted beyond 1%: "
            f"{stats_epoch.completed} vs {stats_py.completed}"
        )
    if abs(result_epoch.avg_power_w - result_py.avg_power_w) > (
        0.02 * result_py.avg_power_w
    ):
        raise AssertionError(
            "epoch core average power drifted beyond 2%: "
            f"{result_epoch.avg_power_w:.1f} vs {result_py.avg_power_w:.1f} W"
        )
    if not 0.5 * stats_py.p50_ms <= stats_epoch.p50_ms <= 2.0 * stats_py.p50_ms:
        raise AssertionError(
            "epoch core p50 drifted beyond 2x: "
            f"{stats_epoch.p50_ms:.3f} vs {stats_py.p50_ms:.3f} ms"
        )

    return {
        "wall_s": wall_epoch,
        "wall_python_s": wall_py,
        "speedup_vector_epoch_vs_python": (
            wall_py / wall_epoch if wall_epoch > 0 else None
        ),
        "servers": sum(allocation.counts.values()),
        "queries": len(trace),
        "queries_per_s": len(trace) / wall_epoch if wall_epoch > 0 else 0.0,
        "p50_ms_python": stats_py.p50_ms,
        "p50_ms_epoch": stats_epoch.p50_ms,
        "p99_ms_python": stats_py.p99_ms,
        "p99_ms_epoch": stats_epoch.p99_ms,
        "completed": stats_epoch.completed,
    }


def _scenario_fleet_replay_faultpath(ctx: _Context) -> dict[str, Any]:
    """Fault machinery engaged but idle vs the tuned fault-free loop.

    Replays the identical fleet/trace three ways: the fault-free hot
    loop; the light fault loop (empty schedule, no retries/hedging --
    what a production replay pays for having the fault layer present
    but disabled); and the tracked fault loop (empty schedule plus a
    retry budget, which buys per-query attempt records).

    ``ratio_vs_fault_off`` (light/off) is the number CI's perf-smoke
    job bounds at < 1.2; ``ratio_tracked_vs_fault_off`` is recorded for
    trend inspection only (per-query records are documented overhead).
    All three runs must agree exactly on completions -- a built-in
    differential smoke check.

    A fourth and fifth leg replay a *scripted* schedule (two recovering
    crashes, a slowdown episode, a permanent crash) under round-robin
    through the python core and the segmented vectorized fault path.
    ``speedup_vector_fault_vs_python`` is the number CI gates at > 2.5
    on the full configuration, best-of-three walls per side, and the
    two legs must agree float-for-float on every report field.
    """
    from repro.fleet import FleetSimulator

    try:
        from repro.fleet import FaultSchedule
    except ImportError:  # pre-fault checkout (baseline measurements)
        return {"skipped": "fault layer absent"}

    make_servers, trace, duration, sla, _ = _fleet_replay_inputs(ctx)

    def replay(policy="p2c", reps=2, core=None, **kwargs):
        # Best of N runs: the ratios feed CI gates, so single-sample
        # scheduler noise (the quick replay is tens of ms) must not flake it.
        if core is not None:
            kwargs["core"] = core
        walls, result = [], None
        for _ in range(reps):
            try:
                sim = FleetSimulator(
                    make_servers(), policy=policy, sla_ms=sla, seed=ctx.seed,
                    **kwargs,
                )
            except (TypeError, ValueError):
                # pre-core checkout, or a checkout whose vector core
                # still refuses fault schedules (baseline measurements)
                return None, None
            wall, result = _timed(lambda: sim.run(trace, warmup_s=duration * 0.1))
            walls.append(wall)
        return min(walls), result

    wall_off, result_off = replay()
    wall_light, result_light = replay(faults=FaultSchedule())
    wall_tracked, result_tracked = replay(faults=FaultSchedule(), retries=2)
    for label, result in (("light", result_light), ("tracked", result_tracked)):
        if result.per_model != result_off.per_model:
            raise AssertionError(
                f"{label} fault loop with empty schedule diverged from the "
                "fault-free loop"
            )

    # Scripted-schedule legs: the vectorized fault path partitions the
    # horizon at fault boundaries and must stay bit-identical.
    n_srv = len(make_servers())

    def scripted():
        from repro.fleet.faults import crash, slowdown

        # Targets scale with the fleet so quick mode stays in range.
        return FaultSchedule([
            crash(duration * 0.30, 0, recover_after=duration * 0.15),
            crash(duration * 0.55, max(1, n_srv // 4),
                  recover_after=duration * 0.10),
            slowdown(duration * 0.20, max(2, n_srv // 3), 2.5,
                     duration=duration * 0.30),
            crash(duration * 0.80, n_srv - 1),
        ])

    speedup_vector_fault = None
    wall_fault_py = wall_fault_vec = None
    try:
        scripted()
    except ImportError:
        pass
    else:
        wall_fault_py, result_fault_py = replay(
            policy="rr", reps=3, core="python", faults=scripted()
        )
        wall_fault_vec, result_fault_vec = replay(
            policy="rr", reps=3, core="vector", faults=scripted()
        )
        if result_fault_py is not None and result_fault_vec is not None:
            for field in ("per_model", "fault_events", "availability",
                          "phases", "events", "avg_power_w"):
                if getattr(result_fault_vec, field, None) != getattr(
                    result_fault_py, field, None
                ):
                    raise AssertionError(
                        "vectorized fault path diverged from the python "
                        f"core on {field}"
                    )
            speedup_vector_fault = (
                wall_fault_py / wall_fault_vec if wall_fault_vec > 0 else None
            )

    events = getattr(result_light, "events", None)
    return {
        "wall_s": wall_light,
        "wall_fault_off_s": wall_off,
        "wall_tracked_s": wall_tracked,
        "ratio_vs_fault_off": wall_light / wall_off if wall_off > 0 else None,
        "ratio_tracked_vs_fault_off": (
            wall_tracked / wall_off if wall_off > 0 else None
        ),
        "wall_fault_python_s": wall_fault_py,
        "wall_fault_vector_s": wall_fault_vec,
        "speedup_vector_fault_vs_python": speedup_vector_fault,
        "queries": len(trace),
        "queries_per_s": len(trace) / wall_light if wall_light > 0 else 0.0,
        "events": events,
        "events_per_s": (events / wall_light) if (events and wall_light > 0) else None,
        "completed": result_light.total_completed,
    }


def _scenario_fleet_replay_carbonpath(ctx: _Context) -> dict[str, Any]:
    """Carbon accounting attached vs the untouched engine.

    Replays the identical fleet/trace three ways: carbon off (the
    engine exactly as every pre-carbon caller runs it); carbon on
    (activation-window recording in ``settle`` plus one post-run
    pricing pass -- what a replay pays for a gCO2 report); and carbon
    on with a batch of deferrable jobs (window recording plus the
    deferrable planner/executor).

    ``ratio_vs_carbon_off`` (carbon-on/off, no jobs) is the number
    CI's perf-smoke job bounds at < 1.1; the jobs ratio is recorded
    for trend inspection.  The realtime report must agree
    float-for-float across all three legs -- a built-in differential
    smoke check of the dormant guarantee the equivalence-test lane
    pins.
    """
    from repro.fleet import FleetSimulator

    try:
        from repro.carbon import CarbonTrace, DeferrableJob
    except ImportError:  # pre-carbon checkout (baseline measurements)
        return {"skipped": "carbon layer absent"}

    make_servers, trace, duration, sla, _ = _fleet_replay_inputs(ctx)
    carbon = CarbonTrace.diurnal(period_s=duration, steps=24)
    jobs = tuple(
        DeferrableJob(
            name=f"batch-{i}",
            submit_s=i * duration / 8.0,
            duration_s=duration / 16.0,
            power_w=800.0,
            deadline_s=i * duration / 8.0 + duration / 4.0,
        )
        for i in range(4)
    )

    def replay(**kwargs):
        # Best of two runs: the ratio feeds a CI gate, so single-sample
        # scheduler noise must not flake it.
        walls, result = [], None
        for _ in range(2):
            sim = FleetSimulator(
                make_servers(), policy="p2c", sla_ms=sla, seed=ctx.seed, **kwargs
            )
            wall, result = _timed(lambda: sim.run(trace, warmup_s=duration * 0.1))
            walls.append(wall)
        return min(walls), result

    wall_off, result_off = replay()
    wall_on, result_on = replay(carbon=carbon)
    wall_jobs, result_jobs = replay(
        carbon=carbon, deferrable=jobs, deferrable_policy="carbon-waiting"
    )
    for label, result in (("carbon", result_on), ("deferrable", result_jobs)):
        if result.per_model != result_off.per_model:
            raise AssertionError(
                f"{label} run diverged from the carbon-off replay on "
                "per-model stats"
            )
        if result.avg_power_w != result_off.avg_power_w:
            raise AssertionError(
                f"{label} run diverged from the carbon-off replay on power"
            )
    if result_on.carbon is None or result_on.carbon.total_g <= 0.0:
        raise AssertionError("carbon-on replay produced no emissions")

    events = getattr(result_on, "events", None)
    return {
        "wall_s": wall_on,
        "wall_carbon_off_s": wall_off,
        "wall_deferrable_s": wall_jobs,
        "ratio_vs_carbon_off": wall_on / wall_off if wall_off > 0 else None,
        "ratio_deferrable_vs_carbon_off": (
            wall_jobs / wall_off if wall_off > 0 else None
        ),
        "queries": len(trace),
        "queries_per_s": len(trace) / wall_on if wall_on > 0 else 0.0,
        "events": events,
        "events_per_s": (events / wall_on) if (events and wall_on > 0) else None,
        "completed": result_on.total_completed,
        "total_g": result_on.carbon.total_g,
    }


def _scenario_fleet_replay_streaming(ctx: _Context) -> dict[str, Any]:
    """Streamed arrivals vs materialize-then-replay on the same traffic.

    The arrival-stream refactor lets the fleet engine pull arrivals
    lazily from an :class:`~repro.traces.FleetArrivals` source (O(one
    segment) memory) instead of a fully-materialized sorted list.
    This scenario runs the identical fleet/traffic both ways end to
    end -- traffic synthesis *included* on both sides, since either
    path must draw the arrivals: the materialized leg builds the full
    list first and replays it, the streamed leg replays the source
    directly.  ``ratio_vs_materialized`` (streamed wall over
    materialized wall) is the number CI's perf-smoke job bounds at
    < 1.1, and the two replays must agree float-for-float -- a
    built-in differential smoke check of the lazy pull.
    """
    from repro.fleet import FleetSimulator

    make_servers, trace, duration, sla, stream = _fleet_replay_inputs(ctx)
    if stream is None:  # pre-traces checkout (baseline measurements)
        return {"skipped": "traces subsystem absent"}

    def replay(make_source):
        # Best of two runs: the ratio feeds a CI gate, so single-sample
        # scheduler noise must not flake it.
        walls, result = [], None
        for _ in range(2):
            sim = FleetSimulator(
                make_servers(), policy="p2c", sla_ms=sla, seed=ctx.seed
            )
            wall, result = _timed(
                lambda: sim.run(make_source(), warmup_s=duration * 0.1)
            )
            walls.append(wall)
        return min(walls), result

    wall_mat, result_mat = replay(lambda: list(stream))
    wall_stream, result_stream = replay(lambda: stream)
    if result_stream.per_model != result_mat.per_model:
        raise AssertionError(
            "streamed arrivals diverged from the materialized trace"
        )

    events = getattr(result_stream, "events", None)
    return {
        "wall_s": wall_stream,
        "wall_materialized_s": wall_mat,
        "ratio_vs_materialized": (
            wall_stream / wall_mat if wall_mat > 0 else None
        ),
        "queries": len(trace),
        "queries_per_s": len(trace) / wall_stream if wall_stream > 0 else 0.0,
        "events": events,
        "events_per_s": (
            events / wall_stream if (events and wall_stream > 0) else None
        ),
        "completed": result_stream.total_completed,
    }


def _scenario_fleet_replay_observed(ctx: _Context) -> dict[str, Any]:
    """Observer cost: dark engine vs metrics probe vs tracing probe.

    Replays the identical fleet/trace five ways: the plain engine
    exactly as every pre-observability caller constructs it (no
    ``observer`` argument); explicitly observer-off (the dormant-guard
    path); with a streaming-metrics :class:`~repro.obs.FleetProbe`;
    through the tracked fault loop without an observer (empty schedule
    plus a retry budget -- the loop tracing rides on); and with a
    trace-only probe.  All five must agree float-for-float on
    per-model stats -- the bit-identical observer-off contract,
    checked differentially on every bench run.

    Two ratios feed CI gates.  ``ratio_off_vs_plain`` (< 1.05) bounds
    the observer-off path against the no-observer construction: the
    dormant hook guards must stay within measurement noise of the
    plain engine (the true no-hooks comparison is cross-checkout, via
    the baseline/speedup mechanism on ``wall_s``).
    ``ratio_traced_vs_tracked`` (< 1.5) bounds tracing against the
    tracked loop it rides on: span capture reads the loop's own
    per-query records and defers span construction to export, so a
    traced run must stay close to the tracked loop's cost.
    ``ratio_metrics_vs_off`` is recorded ungated: live windowed
    metrics pay ~1-2 microseconds of Python hook per event on a loop
    that processes events in about that time -- a documented 2-3x,
    tracked for trend.
    """
    from repro.fleet import FleetSimulator

    try:
        from repro.fleet import FaultSchedule
        from repro.obs import FleetProbe
    except ImportError:  # pre-observability checkout (baseline measurements)
        return {"skipped": "observability absent"}

    make_servers, trace, duration, sla, _ = _fleet_replay_inputs(ctx)
    window_s = max(duration / 32.0, 1e-3)  # ~32 samples regardless of mode

    def replay(make_probe=None, **kwargs):
        # Best of two runs: the ratios feed CI gates, so single-sample
        # scheduler noise (the quick replay is tens of ms) must not flake.
        walls, result, probe = [], None, None
        for _ in range(2):
            if make_probe is not None:
                probe = make_probe()
                kwargs["observer"] = probe
            sim = FleetSimulator(
                make_servers(), policy="p2c", sla_ms=sla, seed=ctx.seed, **kwargs
            )
            wall, result = _timed(lambda: sim.run(trace, warmup_s=duration * 0.1))
            walls.append(wall)
        return min(walls), result, probe

    wall_plain, result_plain, _ = replay()
    wall_off, result_off, _ = replay(lambda: None)
    wall_metrics, result_metrics, probe_m = replay(
        lambda: FleetProbe(window_s=window_s, metrics=True)
    )
    wall_tracked, result_tracked, _ = replay(faults=FaultSchedule(), retries=2)
    wall_traced, result_traced, probe_t = replay(
        lambda: FleetProbe(window_s=window_s, metrics=False, trace=True)
    )
    for label, result in (
        ("observer-off", result_off),
        ("metrics", result_metrics),
        ("tracked", result_tracked),
        ("traced", result_traced),
    ):
        if result.per_model != result_plain.per_model:
            raise AssertionError(
                f"{label} replay perturbed the simulation: per-model stats "
                "diverged from the plain run"
            )

    events = getattr(result_plain, "events", None)
    return {
        "wall_s": wall_off,
        "wall_plain_s": wall_plain,
        "wall_metrics_s": wall_metrics,
        "wall_tracked_s": wall_tracked,
        "wall_traced_s": wall_traced,
        "ratio_off_vs_plain": wall_off / wall_plain if wall_plain > 0 else None,
        "ratio_traced_vs_tracked": (
            wall_traced / wall_tracked if wall_tracked > 0 else None
        ),
        "ratio_metrics_vs_off": wall_metrics / wall_off if wall_off > 0 else None,
        "ratio_traced_vs_off": wall_traced / wall_off if wall_off > 0 else None,
        "queries": len(trace),
        "queries_per_s": len(trace) / wall_off if wall_off > 0 else 0.0,
        "events": events,
        "events_per_s": (events / wall_off) if (events and wall_off > 0) else None,
        "completed": result_plain.total_completed,
        "metric_rows": len(probe_m.metrics_rows),
        "trace_spans": len(probe_t.spans),
    }


#: Four-model fleet for the scale-out scenarios: the sharded replay
#: needs at least four models for four real shards (the planner clamps
#: to one shard per model).  Shares sum to 1.0 of ``fleet_servers``.
_SCALE_OUT_MODELS = ("DIN", "DLRM-RMC1", "DLRM-RMC2", "DLRM-RMC3")
_SCALE_OUT_SHARES = {
    "DIN": {"T2": 0.12, "T7": 0.16},
    "DLRM-RMC1": {"T2": 0.20, "T3": 0.08},
    "DLRM-RMC2": {"T2": 0.16, "T3": 0.08},
    "DLRM-RMC3": {"T3": 0.12, "T7": 0.08},
}


def _scale_out_inputs(ctx: _Context, queries: int):
    """Fleet + lazily streamed traffic for the scale-out scenarios.

    Mirrors :func:`_fleet_replay_inputs` (rho-loaded availability-shaped
    allocation, piecewise-Poisson per-model streams) but over four
    models, and never materializes the trace -- the sketch-memory
    scenario streams orders of magnitude more queries than a list
    should hold.  The profiled table is cached on the context.
    """
    from repro.cluster.state import Allocation
    from repro.hardware import SERVER_TYPES
    from repro.models import build_model
    from repro.scheduling import OfflineProfiler
    from repro.sim import QueryWorkload
    from repro.traces import FleetArrivals, PiecewisePoissonProcess

    table = getattr(ctx, "scale_out_table", None)
    if table is None:
        servers = [SERVER_TYPES[s] for s in ("T2", "T3", "T7")]
        table = _profile(
            OfflineProfiler(),
            servers,
            [build_model(m) for m in _SCALE_OUT_MODELS],
            ctx.jobs,
        )
        ctx.scale_out_table = table

    models = {n: build_model(n) for n in _SCALE_OUT_MODELS}
    workloads = {
        n: QueryWorkload.for_model(m.config.mean_query_size)
        for n, m in models.items()
    }
    total = ctx.cfg["fleet_servers"]
    allocation = Allocation()
    for name, row in _SCALE_OUT_SHARES.items():
        for srv, share in row.items():
            allocation.add(srv, name, max(1, round(total * share)))
    capacity = {
        n: sum(
            c * table.qps(srv, m)
            for (srv, m), c in allocation.counts.items()
            if m == n
        )
        for n in _SCALE_OUT_MODELS
    }
    rate = _RHO * sum(capacity.values())
    duration = queries / rate
    # A piecewise process materializes one segment of arrivals at a
    # time, so a single queries-long segment would hold the whole
    # stream (~190 B/query -- GiBs at the sketchmem scale).  Chop the
    # constant rate into <=100k-query segments to keep generation
    # memory flat; the rate trajectory is unchanged.
    segments = max(1, -(-queries // 100_000))
    stream = FleetArrivals(
        {
            n: PiecewisePoissonProcess(
                workloads[n],
                [(_RHO * capacity[n], duration / segments)] * segments,
            )
            for n in _SCALE_OUT_MODELS
        },
        seed=ctx.seed,
    )
    sla = {n: m.sla_ms for n, m in models.items()}
    return {
        "table": table,
        "models": models,
        "workloads": workloads,
        "allocation": allocation,
        "sla": sla,
        "duration": duration,
        "stream": stream,
    }


def _scenario_fleet_replay_sharded(ctx: _Context) -> dict[str, Any]:
    """4-shard multi-process replay vs the single-process engine.

    Shards the four-model fleet by model across a process pool
    (oblivious round-robin routing, exact percentile mode) and asserts
    the merged report equals the single-process report float for
    float -- ``sharded_merge_equal`` is the bool CI's perf-smoke job
    gates on.  ``speedup_shards`` is recorded ungated: CI's 1-vCPU
    runner serializes the workers (plus pays process spawn and a
    phase-A stream scan), so the number only means something on
    multi-core hosts; the scaling story lives in
    ``benchmarks/bench_scale_out.py``.
    """
    try:
        from repro.fleet.sharded import run_fleet_sharded
    except ImportError:  # pre-sharding checkout (baseline measurements)
        return {"skipped": "sharded runner absent"}

    inputs = _scale_out_inputs(ctx, ctx.cfg["fleet_queries"])

    def replay(shards):
        return _timed(
            lambda: run_fleet_sharded(
                inputs["allocation"],
                inputs["table"],
                inputs["models"],
                inputs["workloads"],
                inputs["stream"],
                shards=shards,
                # weighted splits load by replica capacity; rr's equal
                # split saturates the slowest server type at this rho
                # and the resulting backlog dominates wall and memory
                policy="weighted",
                sla_ms=inputs["sla"],
                seed=ctx.seed,
                warmup_s=inputs["duration"] * 0.1,
                core="python",
            )
        )

    wall_single, result_single = replay(1)
    wall_sharded, result_sharded = replay(4)
    if result_sharded.to_dict() != result_single.to_dict():
        raise AssertionError(
            "sharded merge diverged from the single-process replay"
        )

    queries = result_single.total_completed + result_single.total_dropped
    events = result_sharded.events
    return {
        "wall_s": wall_sharded,
        "wall_single_s": wall_single,
        "speedup_shards": (
            wall_single / wall_sharded if wall_sharded > 0 else None
        ),
        "sharded_merge_equal": True,
        "shards": 4,
        "servers": len(result_sharded.servers),
        "queries": queries,
        "queries_per_s": queries / wall_sharded if wall_sharded > 0 else 0.0,
        "events": events,
        "events_per_s": (
            events / wall_sharded if (events and wall_sharded > 0) else None
        ),
        "completed": result_sharded.total_completed,
    }


def _scenario_fleet_replay_sketchmem(ctx: _Context) -> dict[str, Any]:
    """Sketch-mode report memory: a long streamed replay on a budget.

    Streams ``sketch_queries`` arrivals (10M in the slow-lane full
    configuration) through the four-model fleet with
    ``percentile_mode="sketch"``: the report folds completions into
    O(models) P² sketches instead of per-query latency lists, which at
    the full scale would hold ~10M ``(finish, latency)`` tuples --
    close to a GiB of list -- just to compute three percentiles.  The
    replay must finish inside a fixed RSS-growth budget (asserted
    in-scenario; ``rss_delta_kb`` lands in BENCH_perf.json as the
    recorded evidence).
    """
    from repro.fleet import FleetSimulator, build_fleet

    inputs = _scale_out_inputs(ctx, ctx.cfg["sketch_queries"])
    servers = build_fleet(
        inputs["allocation"], inputs["table"], inputs["models"],
        inputs["workloads"],
    )
    try:
        sim = FleetSimulator(
            servers,
            # capacity-proportional routing keeps the in-flight backlog
            # bounded, so measured RSS growth is report state, not queues
            policy="weighted",
            sla_ms=inputs["sla"],
            seed=ctx.seed,
            core="python",
            percentile_mode="sketch",
        )
    except TypeError:  # pre-sketch checkout (baseline measurements)
        return {"skipped": "percentile_mode absent"}

    rss_before = _max_rss_kb()
    wall, result = _timed(
        lambda: sim.run(inputs["stream"], warmup_s=inputs["duration"] * 0.1)
    )
    rss_after = _max_rss_kb()
    delta = (
        rss_after - rss_before
        if rss_before is not None and rss_after is not None
        else None
    )
    # ~256 MiB of growth headroom: generous against allocator noise,
    # far under the per-query lists exact mode would have appended.
    budget_kb = 262_144
    if delta is not None and delta > budget_kb:
        raise AssertionError(
            f"sketch-mode replay grew RSS by {delta} KiB "
            f"(budget {budget_kb} KiB): the report path is holding "
            "per-query state again"
        )

    queries = result.total_completed + result.total_dropped
    events = getattr(result, "events", None)
    return {
        "wall_s": wall,
        "queries": queries,
        "queries_per_s": queries / wall if wall > 0 else 0.0,
        "events": events,
        "events_per_s": (events / wall) if (events and wall > 0) else None,
        "completed": result.total_completed,
        "rss_delta_kb": delta,
        "rss_budget_kb": budget_kb,
        "percentile_mode": "sketch",
    }


def _scenario_fault_aware_provisioning(ctx: _Context) -> dict[str, Any]:
    """Time one availability -> R fixpoint search (several replays).

    A T2 fleet sized so the R=0 allocation runs ~90% utilized, under a
    scripted rack outage: the search must grow R past the crash's
    absorption point, replaying the same deterministic trace at each
    candidate rate.  Wall time therefore tracks both the replay cost
    and the number of allocations the bracketing visits.
    """
    try:
        from repro.cluster import HerculesClusterScheduler
        from repro.fleet import (
            FaultSchedule,
            build_fleet_trace,
            provision_fault_aware,
        )
    except ImportError:  # pre-provisioning checkout (baseline measurements)
        return {"skipped": "fault-aware provisioning absent"}
    from repro.models import build_model
    from repro.sim import QueryWorkload

    table = ctx.classification_table()
    model_name = "DLRM-RMC1"
    models = {model_name: build_model(model_name)}
    workloads = {
        model_name: QueryWorkload.for_model(
            models[model_name].config.mean_query_size
        )
    }
    tup = table.get("T2", model_name)
    loads = {model_name: ctx.cfg["provision_load_units"] * tup.qps}
    duration = ctx.cfg["provision_duration_s"]
    trace = build_fleet_trace(
        workloads, {model_name: [(loads[model_name], duration)]}, seed=ctx.seed
    )
    scheduler = HerculesClusterScheduler(table, dict(ctx.cfg["provision_fleet"]))
    faults = FaultSchedule.parse(f"domain:size=2;crash@{duration * 0.5}:dom0+0.3")

    wall, outcome = _timed(
        lambda: provision_fault_aware(
            scheduler,
            table,
            models,
            workloads,
            trace,
            loads,
            faults,
            sla_ms={model_name: models[model_name].sla_ms},
            target_availability=0.995,
            baseline_r=0.05,
            policy="least",
            retries=2,
            seed=ctx.seed,
            warmup_s=duration * 0.05,
            r_tol=0.05,
            max_evals=8,
        )
    )
    # Rate over *actual* replays: evaluations whose allocation
    # integerized identically share one replay and cost ~nothing.
    replays = getattr(outcome, "replays", len(outcome.evaluations))
    return {
        "wall_s": wall,
        "queries": len(trace),
        "evaluations": len(outcome.evaluations),
        "replays": replays,
        "queries_per_s": replays * len(trace) / wall if wall > 0 else 0.0,
        "converged": outcome.converged,
        "chosen_r": outcome.chosen_r,
        "power_delta_w": outcome.power_delta_w if outcome.converged else None,
    }


_SCENARIO_FNS: dict[str, Callable[[_Context], dict[str, Any]]] = {
    "search": _scenario_search,
    "profile_table": _scenario_profile_table,
    "loadgen": _scenario_loadgen,
    "single_node_des": _scenario_single_node_des,
    "fleet_replay": _scenario_fleet_replay,
    "fleet_replay_fastcore": _scenario_fleet_replay_fastcore,
    "fleet_replay_queueaware": _scenario_fleet_replay_queueaware,
    "fleet_replay_streaming": _scenario_fleet_replay_streaming,
    "fleet_replay_faultpath": _scenario_fleet_replay_faultpath,
    "fleet_replay_carbonpath": _scenario_fleet_replay_carbonpath,
    "fleet_replay_observed": _scenario_fleet_replay_observed,
    "fleet_replay_sharded": _scenario_fleet_replay_sharded,
    "fleet_replay_sketchmem": _scenario_fleet_replay_sketchmem,
    "fault_aware_provisioning": _scenario_fault_aware_provisioning,
}


def run_scenario(
    name: str, quick: bool = True, seed: int = 0, jobs: int = 1,
    core: str = "python",
) -> dict[str, Any]:
    """Run one scenario standalone (used by the pytest bench wrapper)."""
    if name not in _SCENARIO_FNS:
        raise ValueError(f"unknown scenario {name!r}; choose from {SCENARIOS}")
    metrics = _SCENARIO_FNS[name](_Context(quick, seed, jobs, core))
    metrics.setdefault("max_rss_kb", _max_rss_kb())
    return metrics


def run_bench(
    quick: bool = False,
    seed: int = 0,
    jobs: int = 1,
    scenarios: tuple[str, ...] | None = None,
    core: str = "python",
    progress: Callable[[str], None] | None = None,
) -> dict[str, Any]:
    """Run the harness and return the BENCH_perf document (no baseline)."""
    selected = scenarios or SCENARIOS
    unknown = [s for s in selected if s not in _SCENARIO_FNS]
    if unknown:
        raise ValueError(f"unknown scenarios {unknown}; choose from {SCENARIOS}")
    ctx = _Context(quick, seed, jobs, core)
    results: dict[str, Any] = {}
    for name in SCENARIOS:  # registry order so artifacts flow downstream
        if name not in selected:
            continue
        if progress is not None:
            progress(name)
        results[name] = _SCENARIO_FNS[name](ctx)
        # Running peak: the scenario whose reading jumps grew it.
        results[name].setdefault("max_rss_kb", _max_rss_kb())
    return {
        "schema": 1,
        "suite": "repro-perf-core",
        "mode": "quick" if quick else "full",
        "seed": seed,
        "jobs": jobs,
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpus": os.cpu_count(),
        },
        "scenarios": results,
    }


def attach_baseline(doc: dict[str, Any], baseline: dict[str, Any]) -> dict[str, Any]:
    """Embed a baseline harness run and per-scenario wall-time speedups."""
    doc = dict(doc)
    doc["baseline"] = {
        "mode": baseline.get("mode"),
        "seed": baseline.get("seed"),
        "jobs": baseline.get("jobs"),
        "label": baseline.get("label", "baseline run"),
        "scenarios": baseline.get("scenarios", {}),
    }
    speedup: dict[str, float] = {}
    for name, current in doc.get("scenarios", {}).items():
        base = doc["baseline"]["scenarios"].get(name)
        if not base:
            continue
        if base.get("wall_s") and current.get("wall_s"):
            speedup[name] = base["wall_s"] / current["wall_s"]
    doc["speedup"] = speedup
    return doc


def format_bench(doc: dict[str, Any]) -> str:
    """Human-readable summary table of one BENCH_perf document."""
    lines = [
        f"perf-core bench ({doc.get('mode')} mode, seed {doc.get('seed')}, "
        f"jobs {doc.get('jobs')})"
    ]
    speedups = doc.get("speedup", {})
    for name, metrics in doc.get("scenarios", {}).items():
        wall = metrics.get("wall_s", 0.0)
        rate = metrics.get("queries_per_s") or metrics.get("pairs_per_s") or (
            metrics.get("evaluations_per_s")
        )
        rate_txt = f" | {rate:,.0f}/s" if rate else ""
        extra = f" | {speedups[name]:.2f}x vs baseline" if name in speedups else ""
        lines.append(f"  {name:<22} {wall:8.3f} s{rate_txt}{extra}")
    return "\n".join(lines)


#: CI's perf gates as data: (scenario, metric, op, threshold).  ``<``
#: metrics are overhead ratios bounded from above; ``>`` metrics are
#: speedups bounded from below.  ``bench --compare`` re-applies these
#: to any two BENCH_perf documents so a regression is visible locally
#: before CI sees it.
BENCH_GATES: tuple[tuple[str, str, str, float], ...] = (
    ("fleet_replay_faultpath", "ratio_vs_fault_off", "<", 1.20),
    ("fleet_replay_carbonpath", "ratio_vs_carbon_off", "<", 1.10),
    ("fleet_replay_streaming", "ratio_vs_materialized", "<", 1.10),
    ("fleet_replay_observed", "ratio_off_vs_plain", "<", 1.05),
    ("fleet_replay_observed", "ratio_traced_vs_tracked", "<", 1.50),
    ("fleet_replay_observed", "ratio_metrics_vs_off", "<", 1.60),
    ("fleet_replay_fastcore", "speedup_vector_vs_python", ">", 3.0),
    ("fleet_replay_faultpath", "speedup_vector_fault_vs_python", ">", 2.5),
    ("fleet_replay_queueaware", "speedup_vector_epoch_vs_python", ">", 2.0),
)


def compare_bench(
    old: dict[str, Any], new: dict[str, Any]
) -> tuple[str, bool]:
    """Diff two BENCH_perf documents and apply the CI gates to the new one.

    Returns ``(report, regressed)``: a human-readable table of
    per-scenario wall times (old vs new, ungated -- wall deltas across
    machines are noise) followed by one row per :data:`BENCH_GATES`
    entry present in either document, and a flag that is True when any
    gated metric in the *new* document fails its threshold.  Metrics
    absent from the new document (scenario skipped or an older schema)
    are reported but never fail the comparison.
    """
    old_sc = old.get("scenarios", {})
    new_sc = new.get("scenarios", {})
    lines = [
        f"bench compare: old={old.get('mode')}/seed {old.get('seed')} "
        f"vs new={new.get('mode')}/seed {new.get('seed')}"
    ]
    if old.get("mode") != new.get("mode"):
        lines.append(
            "  note: documents were produced in different modes; wall "
            "times and gated metrics are not directly comparable"
        )
    lines.append(f"  {'scenario':<26} {'old wall':>10} {'new wall':>10} {'delta':>8}")
    names = [n for n in SCENARIOS if n in old_sc or n in new_sc]
    names += [n for n in sorted(set(old_sc) | set(new_sc)) if n not in names]
    for name in names:
        o = old_sc.get(name, {}).get("wall_s")
        nw = new_sc.get(name, {}).get("wall_s")
        o_txt = f"{o:9.3f}s" if isinstance(o, (int, float)) else "      --  "
        n_txt = f"{nw:9.3f}s" if isinstance(nw, (int, float)) else "      --  "
        if isinstance(o, (int, float)) and isinstance(nw, (int, float)) and o > 0:
            d_txt = f"{(nw - o) / o * 100.0:+7.1f}%"
        else:
            d_txt = "     --"
        lines.append(f"  {name:<26} {o_txt:>10} {n_txt:>10} {d_txt:>8}")
    lines.append("")
    lines.append(
        f"  {'gate':<58} {'old':>8} {'new':>8}  verdict"
    )
    regressed = False
    for scenario, metric, op, threshold in BENCH_GATES:
        o = old_sc.get(scenario, {}).get(metric)
        nw = new_sc.get(scenario, {}).get(metric)
        if o is None and nw is None:
            continue
        label = f"{scenario}.{metric} {op} {threshold}"
        o_txt = f"{o:7.3f}" if isinstance(o, (int, float)) else "    -- "
        n_txt = f"{nw:7.3f}" if isinstance(nw, (int, float)) else "    -- "
        if not isinstance(nw, (int, float)):
            verdict = "SKIP (not in new document)"
        elif (nw < threshold) if op == "<" else (nw > threshold):
            verdict = "PASS"
        else:
            verdict = "FAIL"
            regressed = True
        lines.append(f"  {label:<58} {o_txt:>8} {n_txt:>8}  {verdict}")
    return "\n".join(lines), regressed


def write_bench_json(path: str, doc: dict[str, Any]) -> None:
    """Write the document with stable formatting (sorted, indented)."""
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
