"""Opt-in observability for the fleet simulator.

The engine runs dark by default -- ``FleetSimulator(observer=None)``
performs zero observability work and its float sequence is pinned
bit-identical to the pre-observability engine.  Attaching a
:class:`FleetProbe` turns on any of three capture planes:

- **streaming metrics** (:mod:`repro.obs.probe`): a windowed time
  series of qps / p50 / p99 / queue depth / active replicas / power /
  violation rate per model, computed with O(1)-memory P² quantile
  sketches (:mod:`repro.obs.sketch`) -- no stored sample lists;
- **per-query tracing** (:mod:`repro.obs.trace`): arrival-to-
  resolution spans with retry/hedge child attempts and crash/straggler
  annotations, exportable as tagged JSONL or Chrome trace-event JSON
  (Perfetto-loadable);
- **control-plane timeline**: autoscaler decisions with their forecast
  inputs, fault events, and phase boundaries merged on one clock.

``repro.cli observe`` (:mod:`repro.obs.inspect`) summarizes and diffs
the exported files.
"""

from repro.obs.inspect import (
    diff_summaries,
    format_diff,
    format_summary,
    sniff_format,
    summarize_file,
)
from repro.obs.probe import METRIC_FIELDS, FleetProbe, MetricsRegistry
from repro.obs.sketch import P2Quantile, QuantileSketch
from repro.obs.trace import (
    build_spans,
    chrome_trace,
    read_trace_jsonl,
    write_trace_jsonl,
)

__all__ = [
    "FleetProbe",
    "MetricsRegistry",
    "METRIC_FIELDS",
    "P2Quantile",
    "QuantileSketch",
    "build_spans",
    "chrome_trace",
    "read_trace_jsonl",
    "write_trace_jsonl",
    "sniff_format",
    "summarize_file",
    "format_summary",
    "diff_summaries",
    "format_diff",
]
