"""Summarize and diff exported telemetry files (``repro.cli observe``).

Three file shapes are sniffed by extension and content:

- ``*.csv`` -- a windowed metrics series (:data:`repro.obs.probe.
  METRIC_FIELDS` columns);
- ``*.jsonl`` -- either a metrics series (one row object per line) or
  a tagged trace (``type`` = ``meta``/``span``/``control``);
- ``*.json`` -- a Chrome trace-event document.

Every summary is a plain dict (printable with :func:`format_summary`,
or emitted as JSON by the CLI); summaries of the same family can be
diffed.  The chrome summary recomputes the run's measured outcome
counts from the span events' args, which is how the round-trip
against ``FleetResult`` is checked.
"""

from __future__ import annotations

import json

from repro.obs.probe import METRIC_FIELDS
from repro.obs.trace import read_trace_jsonl

__all__ = [
    "sniff_format",
    "summarize_file",
    "format_summary",
    "diff_summaries",
    "format_diff",
]

_INT_FIELDS = {
    "arrivals", "completed", "dropped", "failed", "violations",
    "queue_depth", "active_replicas",
}
_STR_FIELDS = {"model"}


def sniff_format(path: str) -> str:
    """Classify a telemetry file: metrics-csv / metrics-jsonl /
    trace-jsonl / chrome-trace."""
    if path.endswith(".csv"):
        return "metrics-csv"
    if path.endswith(".jsonl"):
        with open(path) as fh:
            first = fh.readline().strip()
        if not first:
            raise ValueError(f"{path} is empty")
        obj = json.loads(first)
        return "trace-jsonl" if "type" in obj else "metrics-jsonl"
    if path.endswith(".json"):
        with open(path) as fh:
            doc = json.load(fh)
        if "traceEvents" in doc:
            return "chrome-trace"
        raise ValueError(f"{path} is JSON but not a Chrome trace (no traceEvents)")
    raise ValueError(f"cannot classify {path!r} (expect .csv, .jsonl, or .json)")


# ----------------------------------------------------------------------
# Readers
# ----------------------------------------------------------------------


def _read_metrics_csv(path: str) -> list[dict]:
    rows: list[dict] = []
    with open(path) as fh:
        header = fh.readline().strip().split(",")
        missing = set(METRIC_FIELDS) - set(header)
        if missing:
            raise ValueError(f"{path} misses metric columns {sorted(missing)}")
        for line in fh:
            line = line.strip()
            if not line:
                continue
            cells = line.split(",")
            row: dict = {}
            for name, cell in zip(header, cells):
                if name in _STR_FIELDS:
                    row[name] = cell
                elif name in _INT_FIELDS:
                    row[name] = int(cell)
                else:
                    row[name] = float(cell)
            rows.append(row)
    return rows


def _read_metrics_jsonl(path: str) -> list[dict]:
    rows = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows


# ----------------------------------------------------------------------
# Summaries
# ----------------------------------------------------------------------


def summarize_file(path: str) -> dict:
    """Summarize one exported telemetry file into a plain dict."""
    fmt = sniff_format(path)
    if fmt == "metrics-csv":
        return _summarize_metrics(path, fmt, _read_metrics_csv(path))
    if fmt == "metrics-jsonl":
        return _summarize_metrics(path, fmt, _read_metrics_jsonl(path))
    if fmt == "trace-jsonl":
        return _summarize_trace_jsonl(path)
    return _summarize_chrome(path)


def _summarize_metrics(path: str, fmt: str, rows: list[dict]) -> dict:
    if not rows:
        raise ValueError(f"{path} has no metric rows")
    per_model: dict[str, dict] = {}
    peak_queue = 0
    peak_active = 0
    power_sum = 0.0
    times = sorted({row["t"] for row in rows})
    for row in rows:
        m = per_model.setdefault(
            row["model"],
            {
                "arrivals": 0, "completed": 0, "dropped": 0, "failed": 0,
                "violations": 0, "peak_qps": 0.0, "peak_p99_ms": 0.0,
            },
        )
        for key in ("arrivals", "completed", "dropped", "failed", "violations"):
            m[key] += row[key]
        if row["qps"] > m["peak_qps"]:
            m["peak_qps"] = row["qps"]
        p99 = row["p99_ms"]
        if p99 == p99 and p99 > m["peak_p99_ms"]:  # skip NaN windows
            m["peak_p99_ms"] = p99
        peak_queue = max(peak_queue, row["queue_depth"])
        peak_active = max(peak_active, row["active_replicas"])
    # Fleet-wide gauges repeat across the models of one window; average
    # over distinct windows, not rows.
    seen_t = set()
    for row in rows:
        if row["t"] not in seen_t:
            seen_t.add(row["t"])
            power_sum += row["power_w"]
    return {
        "file": path,
        "format": fmt,
        "rows": len(rows),
        "windows": len(times),
        "t_start": times[0],
        "t_end": times[-1],
        "models": sorted(per_model),
        "per_model": per_model,
        "fleet": {
            "peak_queue_depth": peak_queue,
            "peak_active_replicas": peak_active,
            "mean_power_w": power_sum / len(times),
        },
    }


def _count_outcomes(spans, warmup_s: float) -> dict:
    """Measured-window outcome counts, matching ``FleetResult``.

    Completions/failures are measured when the span is (arrival after
    warmup, resolution by the horizon -- the exporter's ``measured``
    flag); retried/hedged attribution needs only the warmup cut, like
    the engine's counters.
    """
    out = {"completed": 0, "failed": 0, "dropped": 0, "retried": 0, "hedged": 0}
    for span in spans:
        if span["measured"]:
            out[span["outcome"]] = out.get(span["outcome"], 0) + 1
        if span["arrival_s"] >= warmup_s:
            out["retried"] += span["retries"]
            if span["hedged"]:
                out["hedged"] += 1
    return out


def _summarize_trace_jsonl(path: str) -> dict:
    meta, spans, control = read_trace_jsonl(path)
    attempt_kinds: dict[str, int] = {}
    annotations: dict[str, int] = {}
    attempts = 0
    for span in spans:
        for att in span["attempts"]:
            attempts += 1
            attempt_kinds[att["kind"]] = attempt_kinds.get(att["kind"], 0) + 1
            for ann in att["annotations"]:
                annotations[ann] = annotations.get(ann, 0) + 1
    control_kinds: dict[str, int] = {}
    for ev in control:
        control_kinds[ev["kind"]] = control_kinds.get(ev["kind"], 0) + 1
    outcomes: dict[str, int] = {}
    for span in spans:
        outcomes[span["outcome"]] = outcomes.get(span["outcome"], 0) + 1
    return {
        "file": path,
        "format": "trace-jsonl",
        "warmup_s": meta.get("warmup_s", 0.0),
        "horizon_s": meta.get("horizon_s"),
        "spans": len(spans),
        "outcomes": outcomes,
        "measured": _count_outcomes(spans, meta.get("warmup_s", 0.0)),
        "attempts": attempts,
        "attempt_kinds": attempt_kinds,
        "annotations": annotations,
        "control_events": control_kinds,
    }


def _summarize_chrome(path: str) -> dict:
    with open(path) as fh:
        doc = json.load(fh)
    events = doc["traceEvents"]
    other = doc.get("otherData", {})
    warmup_s = other.get("warmup_s", 0.0)
    by_phase: dict[str, int] = {}
    outcomes: dict[str, int] = {}
    spans = []
    attempts = 0
    instants: dict[str, int] = {}
    for ev in events:
        ph = ev["ph"]
        by_phase[ph] = by_phase.get(ph, 0) + 1
        if ph == "b" and ev.get("cat") == "query":
            args = ev.get("args", {})
            outcomes[args["outcome"]] = outcomes.get(args["outcome"], 0) + 1
            spans.append(
                {
                    "outcome": args["outcome"],
                    "measured": args["measured"],
                    "retries": args["retries"],
                    "hedged": args["hedged"],
                    "arrival_s": args["arrival_s"],
                }
            )
        elif ph == "X":
            attempts += 1
        elif ph == "i":
            cat = ev.get("cat", "?")
            instants[cat] = instants.get(cat, 0) + 1
    return {
        "file": path,
        "format": "chrome-trace",
        "warmup_s": warmup_s,
        "horizon_s": other.get("horizon_s"),
        "events": len(events),
        "by_phase": by_phase,
        "balanced": by_phase.get("b", 0) == by_phase.get("e", 0),
        "spans": len(spans),
        "outcomes": outcomes,
        "measured": _count_outcomes(spans, warmup_s),
        "attempts": attempts,
        "instants": instants,
    }


# ----------------------------------------------------------------------
# Formatting and diffing
# ----------------------------------------------------------------------


def format_summary(summary: dict) -> str:
    lines = [f"{summary['file']} ({summary['format']})"]
    if summary["format"].startswith("metrics"):
        lines.append(
            f"  {summary['windows']} windows over "
            f"[{summary['t_start']:.2f}s, {summary['t_end']:.2f}s], "
            f"{summary['rows']} rows"
        )
        for model in summary["models"]:
            m = summary["per_model"][model]
            lines.append(
                f"  {model}: completed {m['completed']}, dropped {m['dropped']}, "
                f"failed {m['failed']}, violations {m['violations']}, "
                f"peak qps {m['peak_qps']:.0f}, peak p99 {m['peak_p99_ms']:.1f} ms"
            )
        fleet = summary["fleet"]
        lines.append(
            f"  fleet: peak queue {fleet['peak_queue_depth']}, "
            f"peak active {fleet['peak_active_replicas']}, "
            f"mean power {fleet['mean_power_w'] / 1e3:.2f} kW"
        )
    else:
        measured = summary["measured"]
        lines.append(
            f"  {summary['spans']} query spans, {summary['attempts']} attempts"
        )
        lines.append(
            "  measured: "
            + ", ".join(f"{k} {v}" for k, v in sorted(measured.items()))
        )
        outcomes = ", ".join(
            f"{k} {v}" for k, v in sorted(summary["outcomes"].items())
        )
        lines.append(f"  outcomes (all spans): {outcomes}")
        if summary["format"] == "chrome-trace":
            lines.append(
                f"  {summary['events']} trace events, async pairs "
                f"{'balanced' if summary['balanced'] else 'UNBALANCED'}"
            )
        extra = summary.get("annotations") or summary.get("instants")
        if extra:
            lines.append(
                "  annotations/instants: "
                + ", ".join(f"{k} {v}" for k, v in sorted(extra.items()))
            )
    return "\n".join(lines)


def _family(fmt: str) -> str:
    return "metrics" if fmt.startswith("metrics") else "trace"


def diff_summaries(a: dict, b: dict) -> dict:
    """Field-by-field comparison of two same-family summaries."""
    if _family(a["format"]) != _family(b["format"]):
        raise ValueError(
            f"cannot diff {a['format']} against {b['format']}"
        )
    deltas: dict[str, dict] = {}
    if _family(a["format"]) == "metrics":
        models = sorted(set(a["per_model"]) | set(b["per_model"]))
        zero = {"arrivals": 0, "completed": 0, "dropped": 0, "failed": 0,
                "violations": 0, "peak_qps": 0.0, "peak_p99_ms": 0.0}
        for model in models:
            ma = a["per_model"].get(model, zero)
            mb = b["per_model"].get(model, zero)
            deltas[model] = {
                key: {"a": ma[key], "b": mb[key], "delta": mb[key] - ma[key]}
                for key in zero
            }
    else:
        keys = sorted(set(a["measured"]) | set(b["measured"]))
        deltas["measured"] = {
            key: {
                "a": a["measured"].get(key, 0),
                "b": b["measured"].get(key, 0),
                "delta": b["measured"].get(key, 0) - a["measured"].get(key, 0),
            }
            for key in keys
        }
    return {"a": a["file"], "b": b["file"], "family": _family(a["format"]),
            "deltas": deltas}


def format_diff(diff: dict) -> str:
    lines = [f"diff ({diff['family']}): {diff['a']} -> {diff['b']}"]
    for group, fields in sorted(diff["deltas"].items()):
        lines.append(f"  {group}:")
        for key, cell in fields.items():
            delta = cell["delta"]
            if isinstance(delta, float):
                rendered = f"{cell['a']:.1f} -> {cell['b']:.1f} ({delta:+.1f})"
            else:
                rendered = f"{cell['a']} -> {cell['b']} ({delta:+d})"
            lines.append(f"    {key}: {rendered}")
    return "\n".join(lines)
