"""Streaming quantile estimation for the observability layer.

The fleet engine's end-of-run report computes exact percentiles from
the full latency list; the metrics *time series* cannot afford that --
at the ROADMAP's million-user scale a per-window sample list is the
exact memory blow-up the streaming-ingestion work removed.  This
module provides the P² (piecewise-parabolic) estimator of Jain &
Chlamtac (CACM 1985): five markers per tracked quantile, O(1) memory
and O(1) update, no stored samples.

Accuracy is statistical, not exact -- the property tests pin the
estimates to a rank band around ``numpy.percentile`` rather than to
equality.  Exact run-level percentiles still come from the engine's
:class:`~repro.fleet.report.FleetResult`.
"""

from __future__ import annotations

from bisect import insort

__all__ = ["P2Quantile", "QuantileSketch"]


class P2Quantile:
    """Single-quantile P² estimator (Jain & Chlamtac, 1985).

    Five markers track the running min, max, the target quantile ``p``
    and the two intermediate quantiles ``p/2`` and ``(1+p)/2``; marker
    heights move by a piecewise-parabolic (falling back to linear)
    interpolation as observations arrive.  The first five observations
    are buffered and sorted; until then :meth:`value` interpolates the
    sorted buffer directly, so small windows still report something
    sensible.
    """

    __slots__ = ("p", "_count", "_buf", "_q", "_n", "_desired", "_inc")

    def __init__(self, p: float) -> None:
        if not 0.0 < p < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {p!r}")
        self.p = p
        self._count = 0
        self._buf: list[float] = []  # startup buffer, sorted
        self._q: list[float] | None = None  # marker heights once primed
        self._n: list[float] = []  # marker positions (1-based)
        self._desired: list[float] = []
        self._inc = (0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0)

    @property
    def count(self) -> int:
        return self._count

    def add(self, x: float) -> None:
        """Fold one observation into the estimate."""
        x = float(x)
        self._count += 1
        q = self._q
        if q is None:
            insort(self._buf, x)
            if len(self._buf) == 5:
                p = self.p
                self._q = self._buf
                self._buf = []
                self._n = [1.0, 2.0, 3.0, 4.0, 5.0]
                self._desired = [
                    1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0,
                ]
            return

        n = self._n
        # Locate the marker cell (extending the extremes if needed).
        if x < q[0]:
            q[0] = x
            k = 0
        elif x >= q[4]:
            q[4] = x
            k = 3
        elif x < q[1]:
            k = 0
        elif x < q[2]:
            k = 1
        elif x < q[3]:
            k = 2
        else:
            k = 3
        for i in range(k + 1, 5):
            n[i] += 1.0
        desired = self._desired
        inc = self._inc
        for i in range(1, 5):
            desired[i] += inc[i]

        # Nudge the three interior markers toward their desired ranks.
        for i in (1, 2, 3):
            d = desired[i] - n[i]
            if (d >= 1.0 and n[i + 1] - n[i] > 1.0) or (
                d <= -1.0 and n[i - 1] - n[i] < -1.0
            ):
                step = 1.0 if d > 0.0 else -1.0
                cand = self._parabolic(i, step)
                if not q[i - 1] < cand < q[i + 1]:
                    cand = self._linear(i, step)
                q[i] = cand
                n[i] += step

    def add_many(self, values) -> None:
        """Fold a batch of observations; identical state to repeated :meth:`add`.

        The windowed-metrics path buffers a window's latencies and
        flushes them through here: the marker lists, desired-rank
        increments, and interpolation helpers are bound once per batch
        instead of once per observation, which is most of the per-event
        hook cost the live-metrics overhead gate bounds.
        """
        q = self._q
        start = 0
        if q is None:
            nv = len(values)
            while start < nv:
                self.add(values[start])
                start += 1
                if self._q is not None:
                    break
            q = self._q
            if q is None or start >= nv:
                return
        n = self._n
        desired = self._desired
        inc = self._inc
        i1 = inc[1]
        i2 = inc[2]
        i3 = inc[3]
        count = self._count
        # Marker heights, positions, and desired ranks live in scalar
        # registers for the batch: the per-value work is pure local
        # float arithmetic (the list round-trips of add() dominate its
        # cost).  Marker 0's position is pinned at 1.0 -- cell updates
        # never advance it -- so it needs no register.  Every
        # expression below replays add()'s exact float sequence,
        # including the inlined parabolic/linear interpolations.
        q0, q1, q2, q3, q4 = q
        n1, n2, n3, n4 = n[1], n[2], n[3], n[4]
        d1, d2, d3, d4 = desired[1], desired[2], desired[3], desired[4]
        for x in values[start:] if start else values:
            x = float(x)
            count += 1
            # Same cell location as add(), restructured as a branch
            # tree; the cell index folds directly into the position
            # increments (cell k advances markers k+1..4).
            if x < q1:
                if x < q0:
                    q0 = x
                n1 += 1.0
                n2 += 1.0
                n3 += 1.0
            elif x < q2:
                n2 += 1.0
                n3 += 1.0
            elif x < q3:
                n3 += 1.0
            elif x >= q4:
                q4 = x
            n4 += 1.0
            d1 += i1
            d2 += i2
            d3 += i3
            d4 += 1.0

            d = d1 - n1
            if (d >= 1.0 and n2 - n1 > 1.0) or (d <= -1.0 and 1.0 - n1 < -1.0):
                step = 1.0 if d > 0.0 else -1.0
                cand = q1 + step / (n2 - 1.0) * (
                    (n1 - 1.0 + step) * (q2 - q1) / (n2 - n1)
                    + (n2 - n1 - step) * (q1 - q0) / (n1 - 1.0)
                )
                if not q0 < cand < q2:
                    if step > 0.0:
                        cand = q1 + step * (q2 - q1) / (n2 - n1)
                    else:
                        cand = q1 + step * (q0 - q1) / (1.0 - n1)
                q1 = cand
                n1 += step
            d = d2 - n2
            if (d >= 1.0 and n3 - n2 > 1.0) or (d <= -1.0 and n1 - n2 < -1.0):
                step = 1.0 if d > 0.0 else -1.0
                cand = q2 + step / (n3 - n1) * (
                    (n2 - n1 + step) * (q3 - q2) / (n3 - n2)
                    + (n3 - n2 - step) * (q2 - q1) / (n2 - n1)
                )
                if not q1 < cand < q3:
                    if step > 0.0:
                        cand = q2 + step * (q3 - q2) / (n3 - n2)
                    else:
                        cand = q2 + step * (q1 - q2) / (n1 - n2)
                q2 = cand
                n2 += step
            d = d3 - n3
            if (d >= 1.0 and n4 - n3 > 1.0) or (d <= -1.0 and n2 - n3 < -1.0):
                step = 1.0 if d > 0.0 else -1.0
                cand = q3 + step / (n4 - n2) * (
                    (n3 - n2 + step) * (q4 - q3) / (n4 - n3)
                    + (n4 - n3 - step) * (q3 - q2) / (n3 - n2)
                )
                if not q2 < cand < q4:
                    if step > 0.0:
                        cand = q3 + step * (q4 - q3) / (n4 - n3)
                    else:
                        cand = q3 + step * (q2 - q3) / (n2 - n3)
                q3 = cand
                n3 += step
        q[0] = q0
        q[1] = q1
        q[2] = q2
        q[3] = q3
        q[4] = q4
        n[1] = n1
        n[2] = n2
        n[3] = n3
        n[4] = n4
        desired[1] = d1
        desired[2] = d2
        desired[3] = d3
        desired[4] = d4
        self._count = count

    def _parabolic(self, i: int, d: float) -> float:
        q, n = self._q, self._n
        return q[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, d: float) -> float:
        q, n = self._q, self._n
        j = i + int(d)
        return q[i] + d * (q[j] - q[i]) / (n[j] - n[i])

    def value(self) -> float:
        """Current estimate (``nan`` before the first observation).

        Below five observations the sorted startup buffer is
        interpolated directly (linear, matching ``numpy.percentile``'s
        default); afterwards the middle marker's height is the
        estimate.
        """
        if self._q is not None:
            return self._q[2]
        buf = self._buf
        if not buf:
            return float("nan")
        if len(buf) == 1:
            return buf[0]
        rank = self.p * (len(buf) - 1)
        lo = int(rank)
        hi = min(lo + 1, len(buf) - 1)
        frac = rank - lo
        return buf[lo] + (buf[hi] - buf[lo]) * frac


class QuantileSketch:
    """A bundle of P² estimators plus count/min/max/mean accounting.

    One sketch summarizes one stream of observations (e.g. one model's
    completion latencies within one metrics window) in O(1) memory.
    """

    __slots__ = ("quantiles", "_estimators", "count", "_sum", "min", "max")

    def __init__(self, quantiles: tuple[float, ...] = (0.5, 0.95, 0.99)) -> None:
        self.quantiles = tuple(quantiles)
        self._estimators = {p: P2Quantile(p) for p in self.quantiles}
        self.count = 0
        self._sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def add(self, x: float) -> None:
        self.count += 1
        self._sum += x
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x
        for est in self._estimators.values():
            est.add(x)

    def add_many(self, values) -> None:
        """Batch :meth:`add`: bit-identical state, one pass per estimator.

        The running sum accumulates sequentially from the current
        ``_sum`` (not via a local subtotal), so mixing ``add`` and
        ``add_many`` calls still lands on the exact floats repeated
        ``add`` would produce.
        """
        if not values:
            return
        count = self.count
        s = self._sum
        mn = self.min
        mx = self.max
        for x in values:
            count += 1
            s += x
            if x < mn:
                mn = x
            if x > mx:
                mx = x
        self.count = count
        self._sum = s
        self.min = mn
        self.max = mx
        for est in self._estimators.values():
            est.add_many(values)

    @property
    def mean(self) -> float:
        return self._sum / self.count if self.count else float("nan")

    def quantile(self, p: float) -> float:
        """Estimate for one of the tracked quantiles."""
        return self._estimators[p].value()
